"""Tests for the sampled simulator: mechanics, accounting, fallbacks."""

import pytest

from repro.core.simulator import simulate
from repro.sampling import (
    SampledSimulator, SamplingConfig, simulate_sampled,
)
from repro.trace.materialize import get_workload


CFG = SamplingConfig(interval=1000, detail=200, warmup=80, head=500,
                     jitter_seed=7)


def _workload(bench="gcc", length=12_000, seed=1):
    return get_workload(bench, length, seed)


class TestMechanics:
    def test_reports_sampled_result(self):
        warmup, trace = _workload()
        result = simulate_sampled(trace, num_slices=2, l2_cache_kb=256.0,
                                  sampling=CFG, warmup_addresses=warmup)
        assert result.sampled
        summary = result.sampling
        assert summary is not None
        assert summary.windows > 0
        assert summary.total_instructions == 12_000
        assert summary.head_instructions == 500
        assert 0.0 < summary.detail_fraction < 1.0
        # Committed (detailed) + fast-forwarded must cover the trace.
        assert (summary.detailed_instructions + summary.fast_forwarded
                == 12_000)

    def test_ci_brackets_the_estimate(self):
        warmup, trace = _workload()
        result = simulate_sampled(trace, num_slices=2, l2_cache_kb=256.0,
                                  sampling=CFG, warmup_addresses=warmup)
        lo, hi = result.ipc_ci
        assert lo < result.ipc < hi
        # Interval at least as wide as the systematic bias floor.
        assert hi - result.ipc >= CFG.bias_floor * result.ipc * 0.999
        assert result.ipc - lo >= CFG.bias_floor * result.ipc * 0.999

    def test_deterministic(self):
        warmup, trace = _workload()
        a = simulate_sampled(trace, num_slices=2, l2_cache_kb=256.0,
                             sampling=CFG, warmup_addresses=warmup)
        b = simulate_sampled(trace, num_slices=2, l2_cache_kb=256.0,
                             sampling=CFG, warmup_addresses=warmup)
        assert a.ipc == b.ipc
        assert a.ipc_ci == b.ipc_ci
        assert a.stats.summary() == b.stats.summary()

    def test_memory_counters_are_full_trace(self):
        # Fast-forward streams every access through the hierarchy, so
        # the L1D counters cover the whole trace (not a scaled-up window
        # sample): at least one access per memory instruction, and a
        # miss count close to the exact run's (small wrong-path delta).
        warmup, trace = _workload(length=8_000)
        sampled = simulate_sampled(trace, num_slices=2,
                                   l2_cache_kb=256.0, sampling=CFG,
                                   warmup_addresses=warmup)
        exact = simulate(trace, num_slices=2, l2_cache_kb=256.0,
                         warmup_addresses=warmup)
        mem_ops = sum(1 for inst in trace if inst.mem is not None)
        assert sampled.stats.l1d_accesses >= mem_ops
        assert sampled.stats.l1d_misses == pytest.approx(
            exact.stats.l1d_misses, rel=0.05)

    def test_short_trace_falls_back_to_exact(self):
        warmup, trace = _workload(length=1_500)
        result = simulate_sampled(trace, num_slices=2, l2_cache_kb=256.0,
                                  sampling=CFG, warmup_addresses=warmup)
        assert not result.sampled
        assert result.sampling is None
        exact = simulate(trace, num_slices=2, l2_cache_kb=256.0,
                         warmup_addresses=warmup)
        assert result.stats.summary() == exact.stats.summary()

    def test_schedule_visible_before_run(self):
        warmup, trace = _workload()
        sim = SampledSimulator(trace, num_slices=2, l2_cache_kb=256.0,
                               sampling=CFG, warmup_addresses=warmup)
        assert not sim.schedule.exact
        assert sim.schedule.length == 12_000


class TestPhaseStratification:
    def test_phase_lengths_shape_the_schedule(self):
        warmup, trace = _workload()
        sim = SampledSimulator(trace, num_slices=2, l2_cache_kb=256.0,
                               sampling=CFG, warmup_addresses=warmup,
                               phase_lengths=[6_000, 6_000])
        starts = [w.start for w in sim.schedule.windows]
        assert any(s < 6_000 for s in starts)
        assert any(s >= 6_000 for s in starts)
        result = sim.run()
        assert result.sampled


class TestScaling:
    def test_committed_reported_at_trace_size(self):
        warmup, trace = _workload()
        result = simulate_sampled(trace, num_slices=2, l2_cache_kb=256.0,
                                  sampling=CFG, warmup_addresses=warmup)
        assert result.stats.committed == 12_000
        assert result.stats.cycles == pytest.approx(
            12_000 / result.ipc, abs=1.0)
