"""Tests for the sampling policy: schedules, jitter, head stratum."""

import dataclasses

import pytest

from repro.sampling import (
    DEFAULT_SAMPLING, SamplingConfig, SamplingPolicy,
)


def _cfg(**kwargs):
    base = dict(interval=1000, detail=200, warmup=80, head=0,
                jitter_seed=7)
    base.update(kwargs)
    return SamplingConfig(**base)


class TestConfigValidation:
    def test_window_must_fit_interval(self):
        with pytest.raises(ValueError):
            SamplingConfig(interval=100, detail=80, warmup=40)

    @pytest.mark.parametrize("field,value", [
        ("interval", 0),
        ("detail", 0),
        ("warmup", -1),
        ("head", -1),
        ("min_windows", 0),
        ("confidence_z", 0.0),
        ("bias_floor", 1.0),
    ])
    def test_rejects_bad_values(self, field, value):
        with pytest.raises(ValueError):
            _cfg(**{field: value})

    def test_key_fields_cover_every_field(self):
        # Every config knob changes the schedule or the estimate, so
        # every field must enter the result-cache key.
        cfg = DEFAULT_SAMPLING
        assert set(cfg.key_fields()) == {
            f.name for f in dataclasses.fields(SamplingConfig)
        }


class TestPlan:
    def test_windows_tile_the_tail(self):
        cfg = _cfg(head=500)
        schedule = SamplingPolicy(cfg).plan(10_500)
        assert not schedule.exact
        assert schedule.head == 500
        assert len(schedule.windows) == 10  # one per interval of the tail
        for window in schedule.windows:
            assert window.start >= 500
            assert window.end <= 10_500
            assert window.detail == cfg.detail
            assert window.warmup == cfg.warmup

    def test_windows_stay_inside_their_interval(self):
        cfg = _cfg()
        schedule = SamplingPolicy(cfg).plan(20_000)
        for i, window in enumerate(schedule.windows):
            assert i * cfg.interval <= window.start
            assert window.end <= (i + 1) * cfg.interval

    def test_deterministic_per_seed(self):
        a = SamplingPolicy(_cfg(jitter_seed=3)).plan(30_000)
        b = SamplingPolicy(_cfg(jitter_seed=3)).plan(30_000)
        assert a == b

    def test_seed_changes_offsets(self):
        a = SamplingPolicy(_cfg(jitter_seed=3)).plan(30_000)
        b = SamplingPolicy(_cfg(jitter_seed=4)).plan(30_000)
        assert a != b
        # Same shape, different in-interval placement.
        assert len(a.windows) == len(b.windows)

    def test_no_jitter_starts_at_interval_heads(self):
        schedule = SamplingPolicy(_cfg(jitter_seed=None)).plan(5_000)
        assert [w.start for w in schedule.windows] == [0, 1000, 2000,
                                                       3000, 4000]

    def test_short_trace_degenerates_to_exact(self):
        schedule = SamplingPolicy(_cfg(min_windows=3)).plan(2_200)
        assert schedule.exact
        assert schedule.windows == ()

    def test_head_clipped_to_trace(self):
        schedule = SamplingPolicy(_cfg(head=50_000)).plan(1_000)
        assert schedule.exact or schedule.head <= 1_000

    def test_accounting(self):
        cfg = _cfg(head=1_000)
        schedule = SamplingPolicy(cfg).plan(11_000)
        span = cfg.warmup + cfg.detail
        n = len(schedule.windows)
        assert schedule.detailed_instructions == 1_000 + n * span
        assert schedule.measured_instructions == 1_000 + n * cfg.detail
        assert (schedule.fast_forward_instructions
                == 11_000 - schedule.detailed_instructions)
        assert 0.0 < schedule.detail_fraction < 1.0


class TestPlanPhases:
    def test_every_phase_gets_a_window(self):
        cfg = _cfg()
        schedule = SamplingPolicy(cfg).plan_phases([4_000, 2_000, 4_000])
        assert not schedule.exact
        starts = [w.start for w in schedule.windows]
        assert any(s < 4_000 for s in starts)
        assert any(4_000 <= s < 6_000 for s in starts)
        assert any(s >= 6_000 for s in starts)

    def test_degenerate_phase_falls_back_to_exact(self):
        cfg = _cfg()  # window span 280
        schedule = SamplingPolicy(cfg).plan_phases([4_000, 100, 4_000])
        assert schedule.exact

    def test_head_swallowed_phase_is_fine(self):
        cfg = _cfg(head=2_000)
        # First phase lies entirely inside the exhaustively-measured
        # head; it must not force an exact fallback.
        schedule = SamplingPolicy(cfg).plan_phases([1_500, 5_000, 5_000])
        assert not schedule.exact
        assert all(w.start >= 2_000 for w in schedule.windows)

    def test_rejects_empty_and_nonpositive(self):
        policy = SamplingPolicy(_cfg())
        with pytest.raises(ValueError):
            policy.plan_phases([])
        with pytest.raises(ValueError):
            policy.plan_phases([1_000, 0])


class TestDefaultOperatingPoint:
    def test_default_is_the_validated_tuple(self):
        # The default config is a *calibrated unit* (see policy.py):
        # the offline schedule search validated exactly this tuple
        # against exact runs of all fifteen profiles.  Changing any of
        # these re-opens the error budget and must re-run validation.
        assert (DEFAULT_SAMPLING.interval,
                DEFAULT_SAMPLING.detail,
                DEFAULT_SAMPLING.warmup,
                DEFAULT_SAMPLING.head,
                DEFAULT_SAMPLING.jitter_seed) == (1100, 180, 80, 2000, 12)

    def test_default_detail_fraction_supports_3x(self):
        # speedup ~= 1 / (f + (1 - f) / 51); f <= 0.30 keeps >= 3x.
        schedule = SamplingPolicy(DEFAULT_SAMPLING).plan(96_000)
        assert schedule.detail_fraction <= 0.30
