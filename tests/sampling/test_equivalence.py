"""Seeded equivalence: sampled IPC vs exact IPC under the default policy.

The default :data:`~repro.sampling.DEFAULT_SAMPLING` operating point was
selected by an offline schedule search and validated against exact runs
of **all fifteen** trace profiles at the 96k-instruction validation
length (worst profile error -4.3%, every profile inside the reported
CI).  Everything here is seeded - trace seed, jitter seed - so these are
deterministic regression tests of that validated operating point, not
statistical coin flips.

The tier-1 slice checks three sentinel profiles (the Figure 12 anchor,
the worst-error profile from validation, and a cheap typical one); the
full fifteen-profile sweep runs when ``REPRO_EQUIVALENCE_FULL=1`` (the
CI perf-smoke job sets it).
"""

import os

import pytest

from repro.core.simulator import simulate
from repro.sampling import DEFAULT_SAMPLING, simulate_sampled
from repro.trace.materialize import get_workload
from repro.trace.profiles import all_benchmarks

#: The validated operating point: length, seed and VCore configuration
#: used by the offline schedule search and its real-run validation.
LENGTH = 96_000
SEED = 1
SLICES = 4
L2_KB = 256.0

#: Acceptance band (ISSUE): sampled IPC within 5% absolute of exact,
#: and exact inside the sampled run's reported confidence interval.
MAX_REL_ERROR = 0.05

SENTINELS = ("gcc", "swaptions", "astar")

FULL = os.environ.get("REPRO_EQUIVALENCE_FULL") == "1"


def _check_profile(bench):
    warmup, trace = get_workload(bench, LENGTH, SEED)
    exact = simulate(trace, num_slices=SLICES, l2_cache_kb=L2_KB,
                     warmup_addresses=warmup, timeout=20_000_000)
    sampled = simulate_sampled(trace, num_slices=SLICES,
                               l2_cache_kb=L2_KB,
                               sampling=DEFAULT_SAMPLING,
                               warmup_addresses=warmup,
                               timeout=20_000_000)
    assert sampled.sampled, f"{bench}: schedule degenerated to exact"
    rel_error = abs(sampled.ipc - exact.ipc) / exact.ipc
    assert rel_error <= MAX_REL_ERROR, (
        f"{bench}: sampled IPC {sampled.ipc:.4f} vs exact "
        f"{exact.ipc:.4f} ({rel_error:+.2%})"
    )
    lo, hi = sampled.ipc_ci
    assert lo <= exact.ipc <= hi, (
        f"{bench}: exact IPC {exact.ipc:.4f} outside reported CI "
        f"[{lo:.4f}, {hi:.4f}]"
    )


@pytest.mark.parametrize("bench", SENTINELS)
def test_sentinel_equivalence(bench):
    _check_profile(bench)


@pytest.mark.skipif(not FULL, reason="set REPRO_EQUIVALENCE_FULL=1 "
                    "for the full fifteen-profile sweep (CI perf-smoke)")
@pytest.mark.parametrize("bench", sorted(all_benchmarks()))
def test_full_equivalence(bench):
    if bench in SENTINELS:
        pytest.skip("covered by the sentinel tier")
    _check_profile(bench)
