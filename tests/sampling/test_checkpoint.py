"""Tests for micro-architectural checkpoints."""

import pytest

from repro.core.simulator import SharingSimulator
from repro.sampling import Checkpoint
from repro.trace.materialize import get_workload


def _sim(length=3000, **kwargs):
    warmup, trace = get_workload("gcc", length, 1)
    return SharingSimulator(trace, num_slices=2, l2_cache_kb=256.0,
                           warmup_addresses=warmup, **kwargs)


class TestCapture:
    def test_requires_drained_pipeline(self):
        sim = _sim()
        sim._fetch_limit = 500
        sim.run_to_commit(200)  # committed 200, but fetch ran ahead
        if sim.stats.committed < sim._fetch_ptr:
            with pytest.raises(RuntimeError):
                Checkpoint.capture(sim)

    def test_captures_position_and_cycle(self):
        sim = _sim()
        sim.fast_forward(1000)
        ckpt = Checkpoint.capture(sim)
        assert ckpt.position == 1000
        assert ckpt.cycle == sim._now


class TestRestore:
    def test_replay_is_deterministic(self):
        # Run A: FF 1000, checkpoint, run to completion.
        sim = _sim()
        sim.fast_forward(1000)
        ckpt = Checkpoint.capture(sim)
        result_a = sim.run()

        # Run B: restore the same snapshot onto the finished simulator
        # and re-run; identical trace suffix => identical result.
        ckpt.restore(sim)
        result_b = sim.run()
        assert result_a.stats.summary() == result_b.stats.summary()

    def test_restore_is_reusable(self):
        sim = _sim(length=2000)
        sim.fast_forward(500)
        ckpt = Checkpoint.capture(sim)
        first = sim.run().stats.summary()
        ckpt.restore(sim)
        second = sim.run().stats.summary()
        ckpt.restore(sim)
        third = sim.run().stats.summary()
        assert first == second == third

    def test_snapshot_isolated_from_live_run(self):
        sim = _sim(length=2000)
        sim.fast_forward(800)
        ckpt = Checkpoint.capture(sim)
        baseline_cycle = ckpt.cycle
        sim.run()  # mutates the live simulator heavily
        assert ckpt.cycle == baseline_cycle
        ckpt.restore(sim)
        assert sim._now == baseline_cycle
        assert sim._fetch_ptr == 800

    def test_shares_immutable_config_and_trace(self):
        sim = _sim()
        sim.fast_forward(200)
        config, trace = sim.config, sim.trace
        ckpt = Checkpoint.capture(sim)
        ckpt.restore(sim)
        # The frozen config and the trace are shared with the snapshot,
        # never deep-copied (the memo pins them).
        assert sim.config is config
        assert sim.trace is trace
        assert sim.vcore.config is config
