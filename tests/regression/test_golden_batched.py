"""Golden regression: the batched backend vs checked-in seed-run values.

``fixtures/golden_batched.json`` pins the scalar seed run's simulated
Figure 12 (Slice scaling at 128 KB) and Figure 13 (cache scaling at 4
Slices) points for the gcc trace.  The batched backend must reproduce
every pinned cycle count exactly and every pinned IPC at **0 ulp**
(``==`` on the float, no tolerance): the backend's contract is
bit-identity, so "close" is a regression.

To regenerate after a *deliberate* simulator change, run the scalar
backend over the grids named in the fixture and rewrite the JSON - never
regenerate from the batched backend itself (that would pin the thing
under test to itself).

The cache-key tests prove the sweep engine can never serve a result
recorded under one backend to a request for another: the
``backend`` field reaches the content address through
``SimConfig.fingerprint()``.
"""

import json
from pathlib import Path

import pytest

from repro.core.batched import BatchedSimulator
from repro.trace.materialize import get_workload

FIXTURE = Path(__file__).parent / "fixtures" / "golden_batched.json"


@pytest.fixture(scope="module")
def golden():
    return json.loads(FIXTURE.read_text())


@pytest.fixture(scope="module")
def workload(golden):
    return get_workload(golden["benchmark"], golden["trace_length"],
                        golden["trace_seed"])


class TestBatchedReproducesGolden:
    def test_fig12_slice_scaling_exact(self, golden, workload):
        warmup, trace = workload
        points = golden["fig12_128kb"]
        lanes = [(int(ns), 128.0) for ns in sorted(points, key=int)]
        results = BatchedSimulator(trace, lanes,
                                   warmup_addresses=[warmup]).run()
        for (ns, _), result in zip(lanes, results):
            want = points[str(ns)]
            assert result.stats.cycles == want["cycles"], ns
            # 0 ulp: the extrapolation-free IPC is cycles-derived, so
            # equality must be exact, not approximate.
            assert result.ipc == want["ipc"], ns

    def test_fig13_cache_scaling_exact(self, golden, workload):
        warmup, trace = workload
        points = golden["fig13_4slices"]
        lanes = [(4, float(kb)) for kb in sorted(points, key=int)]
        results = BatchedSimulator(trace, lanes,
                                   warmup_addresses=[warmup]).run()
        for (_, kb), result in zip(lanes, results):
            want = points[str(int(kb))]
            assert result.stats.cycles == want["cycles"], kb
            assert result.stats.l2_misses == want["l2_misses"], kb
            assert result.ipc == want["ipc"], kb


class TestEngineCacheKeysSeeBackend:
    def _unit(self, sim_config):
        from repro.engine.core import WorkUnit
        from repro.perfmodel.model import profile_key

        return WorkUnit(kind="simulation",
                        profile_fields=profile_key("gcc"),
                        cache_grid=(128.0,), slice_grid=(1, 4),
                        calibration=(), trace_length=4000, trace_seed=1,
                        sim_config=sim_config)

    def test_backend_perturbation_changes_cache_key(self):
        from repro.core.config import SimConfig

        python_key = self._unit(SimConfig()).cache_key()
        batched_key = self._unit(SimConfig(backend="batched")).cache_key()
        assert python_key != batched_key

    def test_default_config_aliases_none(self):
        """``sim_config=None`` means the default SimConfig; both spell
        the same evaluation, so they must share one cache entry."""
        from repro.core.config import SimConfig

        assert (self._unit(None).cache_key()
                == self._unit(SimConfig()).cache_key())

    def test_fingerprint_differs_only_in_backend_field(self):
        from repro.core.config import SimConfig

        base = dict(SimConfig().fingerprint())
        batched = dict(SimConfig(backend="batched").fingerprint())
        changed = {k for k in base if base[k] != batched.get(k)}
        assert changed == {"backend"}
