"""Golden-shape regression tests for the paper's headline curves.

``fixtures/golden_shapes.json`` pins the seed run's Figure 12 speedup
series (per benchmark, at the 128 KB baseline over the Slice grid) and
Figure 13 L2 miss-fraction series (over the cache grid).  The tests
assert both exact-shape invariants (monotonicity) and closeness to the
committed values, so a model/calibration change that silently reshapes
the curves fails loudly.  Regenerate the fixture deliberately when a
change is *meant* to move the curves (see the JSON's field layout).
"""

import json
from pathlib import Path

import pytest

from repro.experiments import scalability
from repro.perfmodel.model import CACHE_GRID_KB, SLICE_GRID
from repro.trace.profiles import all_benchmarks, get_profile

FIXTURE = Path(__file__).parent / "fixtures" / "golden_shapes.json"
REL_TOL = 1e-6


@pytest.fixture(scope="module")
def golden():
    return json.loads(FIXTURE.read_text())


@pytest.fixture(scope="module")
def fig12():
    return scalability.run()


class TestFig12Speedups:
    def test_grid_matches_fixture(self, golden, fig12):
        assert list(fig12.slice_grid) == golden["fig12"]["slice_grid"]
        assert (golden["fig12"]["baseline_cache_kb"]
                == scalability.BASELINE_CACHE_KB)

    def test_benchmark_set_matches_fixture(self, golden, fig12):
        assert sorted(fig12.series) == sorted(golden["fig12"]["speedups"])

    def test_values_match_seed_run(self, golden, fig12):
        for bench, expected in golden["fig12"]["speedups"].items():
            got = fig12.series[bench]
            assert got == pytest.approx(expected, rel=REL_TOL), bench

    def test_speedup_monotone_nondecreasing_in_slices(self, fig12):
        for bench, series in fig12.series.items():
            for lo, hi in zip(series, series[1:]):
                assert hi >= lo - 1e-12, (
                    f"{bench}: speedup dropped from {lo} to {hi}"
                )

    def test_single_slice_is_unity_baseline(self, fig12):
        idx = fig12.slice_grid.index(1)
        for bench, series in fig12.series.items():
            assert series[idx] == pytest.approx(1.0), bench


class TestFig13MissFractions:
    def test_grid_matches_fixture(self, golden):
        assert list(CACHE_GRID_KB) == golden["fig13"]["cache_grid_kb"]

    def test_values_match_seed_run(self, golden):
        for bench, expected in golden["fig13"]["l2_miss_fraction"].items():
            got = [get_profile(bench).l2_miss_fraction(c)
                   for c in CACHE_GRID_KB]
            assert got == pytest.approx(expected, rel=REL_TOL), bench

    def test_miss_fraction_nonincreasing_in_cache_size(self):
        for bench in all_benchmarks():
            profile = get_profile(bench)
            series = [profile.l2_miss_fraction(c) for c in CACHE_GRID_KB]
            for lo, hi in zip(series, series[1:]):
                assert hi <= lo + 1e-12, (
                    f"{bench}: miss fraction rose from {lo} to {hi}"
                )

    def test_miss_fraction_in_unit_interval(self):
        for bench in all_benchmarks():
            profile = get_profile(bench)
            for c in CACHE_GRID_KB:
                assert 0.0 <= profile.l2_miss_fraction(c) <= 1.0


def test_fixture_grids_cover_paper_ranges(golden):
    # Equation 3 grid: Slices 1-8, cache 0 KB - 8 MB.
    assert golden["fig12"]["slice_grid"] == list(SLICE_GRID)
    assert golden["fig13"]["cache_grid_kb"][0] == 0
    assert golden["fig13"]["cache_grid_kb"][-1] == 8192
