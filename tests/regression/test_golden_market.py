"""Golden regression tests for the market-economics outputs.

``fixtures/golden_market.json`` pins the seed run's Table 4 and Table 6
optimal configurations, the Figure 14 surface peaks, and the Figure
15/16 gain summaries.  Both backends are checked against the same
fixture: configurations (grid argmax winners) must match *exactly* on
either backend - the numpy kernel shares the scalar tie-breaking
contract - while float values are held to ``REL_TOL`` (the documented
fp-tolerance policy; observed scalar-vs-vector drift is ~1e-15).
Regenerate the fixture deliberately when a model or calibration change
is meant to move these numbers.
"""

import json
from pathlib import Path

import pytest

from repro.economics.comparison import MarketEfficiencyComparison
from repro.economics.efficiency import efficiency_table
from repro.economics.market import STANDARD_MARKETS, MARKET2
from repro.economics.optimizer import UtilityOptimizer
from repro.economics.tensor import BACKENDS, HAVE_NUMPY
from repro.economics.utility import STANDARD_UTILITIES
from repro.trace.profiles import PROFILES

FIXTURE = Path(__file__).parent / "fixtures" / "golden_market.json"
REL_TOL = 1e-9

RUN_BACKENDS = BACKENDS if HAVE_NUMPY else ("python",)
BENCHES = sorted(PROFILES)


@pytest.fixture(scope="module")
def golden():
    return json.loads(FIXTURE.read_text())


@pytest.mark.parametrize("backend", RUN_BACKENDS)
class TestTable4:
    def test_matches_fixture(self, golden, backend):
        table = efficiency_table(BENCHES, backend=backend)
        want = golden["tab4"]
        assert sorted(str(m) for m in table) == sorted(want)
        for metric, per_bench in table.items():
            for bench, design in per_bench.items():
                pin = want[str(metric)][bench]
                assert design.cache_kb == pin["cache_kb"], (metric, bench)
                assert design.slices == pin["slices"], (metric, bench)
                assert design.score == pytest.approx(pin["score"],
                                                     rel=REL_TOL)


@pytest.mark.parametrize("backend", RUN_BACKENDS)
class TestTable6:
    def test_matches_fixture(self, golden, backend):
        table = UtilityOptimizer(backend=backend).table6(
            BENCHES, STANDARD_UTILITIES, STANDARD_MARKETS
        )
        want = golden["tab6"]
        assert len(table) == len(want)
        for (mkt, util, bench), choice in table.items():
            pin = want[f"{mkt}|{util}|{bench}"]
            assert choice.cache_kb == pin["cache_kb"], (mkt, util, bench)
            assert choice.slices == pin["slices"], (mkt, util, bench)
            assert choice.utility == pytest.approx(pin["utility"],
                                                   rel=REL_TOL)
            assert choice.vcores == pytest.approx(pin["vcores"],
                                                  rel=REL_TOL)


@pytest.mark.parametrize("backend", RUN_BACKENDS)
class TestFig14Peaks:
    def test_matches_fixture(self, golden, backend):
        optimizer = UtilityOptimizer(backend=backend)
        for key, pin in golden["fig14_peaks"].items():
            bench, util_name = key.split("|")
            utility = next(u for u in STANDARD_UTILITIES
                           if u.name == util_name)
            surface = optimizer.utility_surface(bench, utility, MARKET2)
            (cache_kb, slices), peak = max(surface.items(),
                                           key=lambda kv: kv[1])
            assert cache_kb == pin["peak_cache_kb"], key
            assert slices == pin["peak_slices"], key
            assert peak == pytest.approx(pin["peak_value"], rel=REL_TOL)


@pytest.mark.parametrize("backend", RUN_BACKENDS)
class TestFig15Fig16:
    @pytest.fixture()
    def comparison(self, backend):
        return MarketEfficiencyComparison(BENCHES, backend=backend)

    def test_reference_configs_exact(self, golden, comparison):
        assert (list(comparison.best_static_config())
                == golden["fig15_static_config"])
        for u in comparison.utilities:
            assert (list(comparison.best_config_for_utility(u))
                    == golden["fig16_per_utility_configs"][u.name])

    def test_summaries_match_fixture(self, golden, comparison):
        for name, method in (("fig15_summary", "summary_vs_static"),
                             ("fig16_summary",
                              "summary_vs_heterogeneous")):
            got = getattr(comparison, method)()
            pin = golden[name]
            assert got["pairs"] == pin["pairs"]
            for key in ("min", "median", "mean", "max"):
                assert got[key] == pytest.approx(pin[key], rel=REL_TOL)
