"""The shared cache index and cross-sweep dedupe.

The index is pure acceleration (rebuildable from entry files, identical
hit behaviour), appends are atomic single-line writes (a reader never
observes a torn record), and in-flight claims let two engines on one
cache directory split a sweep's units instead of both evaluating them.
"""

import json
import multiprocessing
import os
import threading
import time

import pytest

from repro.engine import ResultCache, SweepEngine, SweepSpec
from repro.engine import core as engine_core
from repro.engine.cache import canonical_key
from repro.engine.claims import ClaimBox

IS_FORK = multiprocessing.get_start_method() == "fork"


@pytest.fixture
def root(tmp_path):
    return tmp_path / "cache"


def _fill(root, n=5):
    cache = ResultCache(root=root)
    keys = []
    for i in range(n):
        key = canonical_key({"i": i})
        cache.put(key, [[0.0, 1, float(i)]])
        keys.append(key)
    return keys


class TestIndex:
    def test_hits_resolve_through_index(self, root):
        keys = _fill(root)
        fresh = ResultCache(root=root)
        for i, key in enumerate(keys):
            assert fresh.get(key) == [[0.0, 1, float(i)]]
        assert fresh.counters()["hits"] == len(keys)

    def test_deleted_index_is_rebuilt_identically(self, root):
        keys = _fill(root)
        reference = ResultCache(root=root)
        expected = {k: reference.get(k) for k in keys}

        os.unlink(reference.index_path)
        rebuilt = ResultCache(root=root)
        assert {k: rebuilt.get(k) for k in keys} == expected
        assert rebuilt.counters()["hits"] == len(keys)
        assert rebuilt.index_path.exists()  # regenerated on load

    def test_rebuild_returns_entry_count(self, root):
        keys = _fill(root, n=7)
        cache = ResultCache(root=root)
        assert cache.rebuild_index() == 7
        assert cache._scan_entry_keys() == set(keys)

    def test_refresh_sees_concurrent_appends(self, root):
        writer = ResultCache(root=root)
        reader = ResultCache(root=root)
        key0 = canonical_key({"i": 0})
        writer.put(key0, [0])
        assert reader.get(key0) == [0]  # first load reads everything

        key1 = canonical_key({"i": 1})
        writer.put(key1, [1])
        # Not visible until a refresh (the index memo is per-instance).
        assert reader.contains(key1) is False
        assert reader.refresh_index() == 1
        assert reader.get(key1) == [1]

    def test_torn_final_line_is_ignored_until_complete(self, root):
        keys = _fill(root, n=2)
        reader = ResultCache(root=root)
        reader.get(keys[0])

        key = canonical_key({"late": True})
        line = json.dumps({"key": key}, separators=(",", ":"))
        with open(reader.index_path, "ab") as fh:
            fh.write(line[:10].encode())  # a torn, in-flight append
        assert reader.refresh_index() == 0
        assert not reader.contains(key)

        with open(reader.index_path, "ab") as fh:
            fh.write(line[10:].encode() + b"\n")
        assert reader.refresh_index() == 1
        assert reader.contains(key)

    def test_contains_moves_no_counters(self, root):
        keys = _fill(root)
        cache = ResultCache(root=root)
        assert cache.contains(keys[0]) is True
        assert cache.contains("0" * 64) is False
        counters = cache.counters()
        assert counters["hits"] == 0 and counters["misses"] == 0

    def test_clear_resets_index(self, root):
        keys = _fill(root)
        cache = ResultCache(root=root)
        cache.clear()
        assert not cache.index_path.exists()
        assert cache.get(keys[0]) is None


class TestClaims:
    def test_acquire_release_roundtrip(self, tmp_path):
        box = ClaimBox(tmp_path / "claims")
        assert box.acquire("k") is True
        assert box.active("k") is True
        assert box.acquire("k") is False  # live claim held (our pid)
        box.release("k")
        assert box.active("k") is False
        assert box.acquire("k") is True

    def test_dead_owner_claim_is_broken(self, tmp_path):
        box = ClaimBox(tmp_path / "claims")
        path = box.path("k")
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text('{"pid": 999999999, "ts": 0.0}',
                        encoding="utf-8")
        old = os.stat(path)
        os.utime(path, (old.st_atime - 10, old.st_mtime - 10))
        assert box.active("k") is False
        assert box.acquire("k") is True

    def test_aged_claim_expires(self, tmp_path):
        box = ClaimBox(tmp_path / "claims", ttl_s=0.05)
        assert box.acquire("k")
        time.sleep(0.1)
        assert box.active("k") is False  # own pid alive, but past TTL
        assert box.acquire("k") is True  # broken and re-taken

    def test_release_is_idempotent(self, tmp_path):
        box = ClaimBox(tmp_path / "claims")
        box.release("never-acquired")
        assert box.acquire("k")
        box.release("k")
        box.release("k")


@pytest.mark.skipif(not IS_FORK,
                    reason="dedupe test monkeypatches via fork")
class TestConcurrentSweeps:
    def test_two_engines_split_the_work(self, tmp_path, monkeypatch):
        """Two engines, one cache dir, overlapping sweeps: every unique
        unit is evaluated exactly once across both, and both get the
        full (identical) result set through the shared index."""
        calls_dir = tmp_path / "calls"
        calls_dir.mkdir()
        real = engine_core.evaluate_unit

        def counted(unit):
            stamp = f"{unit.cache_key()}.{time.monotonic_ns()}"
            (calls_dir / stamp).touch()
            time.sleep(0.15)  # hold the overlap window open
            return real(unit)

        monkeypatch.setattr(engine_core, "evaluate_unit", counted)
        spec = SweepSpec(benchmarks=("gcc", "bzip", "mcf"),
                         cache_grid=(0.0, 128.0), slice_grid=(1, 2))
        cache_root = tmp_path / "cache"
        sweeps = {}

        def run(name):
            engine = SweepEngine(jobs=1,
                                 cache=ResultCache(root=cache_root))
            sweeps[name] = (engine, engine.run(spec))

        first = threading.Thread(target=run, args=("a",))
        first.start()
        time.sleep(0.05)  # let A claim its units before B expands
        run("b")
        first.join()

        engine_a, sweep_a = sweeps["a"]
        engine_b, sweep_b = sweeps["b"]
        assert sweep_a.values == sweep_b.values

        evaluated = sorted(p.name.split(".")[0]
                           for p in calls_dir.iterdir())
        assert evaluated == sorted(u.cache_key() for u in spec.expand())

        # B arrived second: its units were claimed by A, deferred, and
        # served from A's published entries - never re-evaluated.
        assert engine_b._claims_lost == 3
        assert engine_b._deferred_served == 3
        assert sweep_b.sched_stats["deferred_served"] == 3
        # No claims left behind by either engine.
        for unit in spec.expand():
            assert not engine_a.cache.claims.active(unit.cache_key())

    def test_deferred_falls_back_when_claimant_dies(self, tmp_path):
        """A claim whose owner vanished without publishing must not
        wedge the sweep: the deferred unit is evaluated locally."""
        cache_root = tmp_path / "cache"
        spec = SweepSpec(benchmarks=("gcc",), cache_grid=(0.0, 128.0),
                         slice_grid=(1, 2))
        unit = spec.expand()[0]

        cache = ResultCache(root=cache_root)
        path = cache.claims.path(unit.cache_key())
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text('{"pid": 999999999, "ts": 0.0}',
                        encoding="utf-8")
        old = os.stat(path)
        os.utime(path, (old.st_atime - 10, old.st_mtime - 10))

        engine = SweepEngine(jobs=1, cache=cache)
        sweep = engine.run(spec)
        # The stale claim was broken outright (dead pid), so the unit
        # was claimed and evaluated here, not deferred.
        assert sweep.cache_misses == 1
        assert sweep.values[("gcc",)]

    def test_dedupe_off_ignores_claims(self, tmp_path):
        cache_root = tmp_path / "cache"
        spec = SweepSpec(benchmarks=("gcc",), cache_grid=(0.0,),
                         slice_grid=(1,))
        unit = spec.expand()[0]
        cache = ResultCache(root=cache_root)
        assert cache.claims.acquire(unit.cache_key())
        try:
            engine = SweepEngine(jobs=1,
                                 cache=ResultCache(root=cache_root),
                                 dedupe=False)
            sweep = engine.run(spec)
            assert sweep.cache_misses == 1
            assert engine._claims_lost == 0
        finally:
            cache.claims.release(unit.cache_key())
