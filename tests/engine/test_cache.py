"""Tests for the content-addressed on-disk result cache."""

import json
import subprocess
import sys

import pytest

from repro.engine.cache import CACHE_VERSION, ResultCache, canonical_key
from repro.engine.core import SweepEngine, SweepSpec, model_calibration
from repro.perfmodel.model import AnalyticModel


@pytest.fixture
def cache(tmp_path):
    return ResultCache(root=tmp_path / "cache")


class TestKeying:
    def test_key_is_deterministic(self):
        payload = {"kind": "performance", "grid": [0.0, 64.0]}
        assert canonical_key(payload) == canonical_key(dict(payload))

    def test_key_order_independent(self):
        assert canonical_key({"a": 1, "b": 2}) == canonical_key(
            {"b": 2, "a": 1}
        )

    def test_key_depends_on_every_field(self):
        base = {"kind": "performance", "budget": 24.0}
        assert canonical_key(base) != canonical_key(
            {**base, "budget": 25.0}
        )

    def test_key_folds_cache_version(self):
        # The version is mixed into the digest, so bumping it orphans
        # every old entry rather than serving stale layouts.
        encoded = json.dumps(
            {"cache_version": CACHE_VERSION, "x": 1},
            sort_keys=True, separators=(",", ":"), default=str,
        )
        assert canonical_key({"x": 1}) != canonical_key({"x": 2})
        assert len(canonical_key({"x": 1})) == 64
        assert encoded  # the canonical form exists and is compact

    def test_key_stable_across_processes(self):
        """PYTHONHASHSEED must not leak into keys (cross-run cache)."""
        import os
        import repro

        payload = {"kind": "performance", "profile": [["name", "gcc"]]}
        script = (
            "from repro.engine.cache import canonical_key; "
            f"print(canonical_key({payload!r}))"
        )
        src_dir = os.path.dirname(os.path.dirname(repro.__file__))
        outs = {
            subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True, text=True, check=True,
                env={**os.environ, "PYTHONPATH": src_dir,
                     "PYTHONHASHSEED": seed},
            ).stdout.strip()
            for seed in ("0", "12345")
        }
        assert outs == {canonical_key(payload)}


class TestStore:
    def test_miss_then_hit(self, cache):
        key = canonical_key({"x": 1})
        assert cache.get(key) is None
        cache.put(key, [[0.0, 1, 0.5]])
        assert cache.get(key) == [[0.0, 1, 0.5]]
        assert cache.counters() == {"hits": 1, "misses": 1, "puts": 1,
                                    "corrupt": 0}

    def test_float_roundtrip_exact(self, cache):
        value = [[8192.0, 7, 0.12345678901234567]]
        key = canonical_key({"y": 2})
        cache.put(key, value)
        assert cache.get(key) == value

    def test_corrupt_entry_is_a_miss(self, cache):
        key = canonical_key({"z": 3})
        cache.put(key, [1, 2, 3])
        path = cache._path_for(key)
        path.write_text("{not json", encoding="utf-8")
        assert cache.get(key) is None
        assert cache.counters()["corrupt"] == 1

    def test_corrupt_entry_is_unlinked_and_repairable(self, cache):
        """A poison entry is quarantined (unlinked) on first read, so a
        recompute's put() repairs the cache instead of tripping on it."""
        key = canonical_key({"z": 4})
        cache.put(key, [[0.0, 1, 0.5]])
        path = cache._path_for(key)
        path.write_text('{"key": "x"}', encoding="utf-8")  # no "value"
        assert cache.get(key) is None
        assert not path.exists()
        cache.put(key, [[0.0, 1, 0.7]])
        assert cache.get(key) == [[0.0, 1, 0.7]]
        counters = cache.counters()
        assert counters["corrupt"] == 1
        assert counters["hits"] == 1

    def test_missing_entry_behind_index_is_not_corrupt(self, cache):
        """An entry unlinked behind the index (a concurrent clear or
        quarantine) is a plain miss, not corruption."""
        key = canonical_key({"z": 5})
        cache.put(key, [1])
        cache._path_for(key).unlink()
        assert cache.get(key) is None
        assert cache.counters()["corrupt"] == 0

    def test_disabled_cache_never_stores(self, tmp_path):
        cache = ResultCache(root=tmp_path / "c", enabled=False)
        key = canonical_key({"k": 1})
        cache.put(key, [1])
        assert cache.get(key) is None
        assert not (tmp_path / "c").exists()

    def test_clear_removes_entries(self, cache):
        for i in range(3):
            cache.put(canonical_key({"i": i}), [i])
        assert cache.clear() == 3
        assert cache.get(canonical_key({"i": 0})) is None

    def test_env_var_sets_root(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "env_cache"))
        cache = ResultCache()
        assert cache.root == tmp_path / "env_cache"


class TestInvalidation:
    def test_calibration_change_invalidates(self, tmp_path, monkeypatch):
        """Editing a calibration constant must change every unit key."""
        spec = SweepSpec(benchmarks=("gcc",), cache_grid=(0.0, 128.0),
                         slice_grid=(1, 2))
        before = [u.cache_key() for u in spec.expand()]

        import repro.perfmodel.model as model_mod
        monkeypatch.setattr(model_mod, "MEMORY_DELAY", 120.0)
        after = [u.cache_key() for u in spec.expand()]
        assert set(before).isdisjoint(after)

    def test_model_parameters_in_fingerprint(self):
        default = model_calibration(AnalyticModel())
        tuned = model_calibration(AnalyticModel(comm_tolerance=5.0))
        assert default != tuned

    def test_warm_engine_serves_hits(self, tmp_path):
        spec = SweepSpec(benchmarks=("gcc", "bzip"),
                         cache_grid=(0.0, 256.0), slice_grid=(1, 4))
        cache_root = tmp_path / "cache"
        cold = SweepEngine(jobs=1, cache=ResultCache(root=cache_root))
        first = cold.run(spec)
        assert first.cache_hits == 0 and first.cache_misses == 2

        warm = SweepEngine(jobs=1, cache=ResultCache(root=cache_root))
        second = warm.run(spec)
        assert second.cache_hits == 2 and second.cache_misses == 0
        assert second.values == first.values
