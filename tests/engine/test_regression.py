"""Engine-backed experiments must equal the pre-engine serial path
bit-for-bit - same floats, same argmax tie-breaks, warm cache included."""

import pytest

from repro.economics.market import MARKET2
from repro.economics.optimizer import UtilityOptimizer
from repro.economics.utility import UTILITY2
from repro.engine import ResultCache, SweepEngine
from repro.experiments import (
    cache_sensitivity,
    optima,
    scalability,
    utility_surfaces,
)


@pytest.fixture
def cache_root(tmp_path):
    return tmp_path / "cache"


def fresh_engine(cache_root, **kwargs):
    kwargs.setdefault("jobs", 2)
    kwargs.setdefault("parallel_threshold", 1)
    return SweepEngine(cache=ResultCache(root=cache_root), **kwargs)


class TestBitForBit:
    def test_scalability(self, cache_root):
        serial = scalability.run()
        engine = fresh_engine(cache_root)
        assert scalability.run(engine=engine).series == serial.series

    def test_cache_sensitivity(self, cache_root):
        serial = cache_sensitivity.run()
        engine = fresh_engine(cache_root)
        backed = cache_sensitivity.run(engine=engine)
        assert backed.series == serial.series

    def test_optima_argmax_and_tiebreaks(self, cache_root):
        serial = optima.run()
        engine = fresh_engine(cache_root)
        backed = optima.run(engine=engine)
        assert backed.table == serial.table
        assert backed.diversity == serial.diversity

    def test_utility_surfaces(self, cache_root):
        serial = utility_surfaces.run()
        engine = fresh_engine(cache_root)
        backed = utility_surfaces.run(engine=engine)
        assert backed.surfaces == serial.surfaces
        assert backed.peaks == serial.peaks

    def test_optimizer_best_choice(self, cache_root):
        serial = UtilityOptimizer().best("gcc", UTILITY2, MARKET2)
        engine = fresh_engine(cache_root)
        backed = UtilityOptimizer(engine=engine).best(
            "gcc", UTILITY2, MARKET2
        )
        assert backed == serial


class TestWarmCache:
    def test_second_engine_serves_hits_identically(self, cache_root):
        cold = fresh_engine(cache_root)
        first = scalability.run(engine=cold)
        assert cold.cache.hits == 0

        warm = fresh_engine(cache_root)
        second = scalability.run(engine=warm)
        assert warm.cache.hits > 0
        assert warm.cache.puts == 0
        assert second.series == first.series
        assert second.to_dict(include_elapsed=False) == \
            first.to_dict(include_elapsed=False)
