"""Streaming-service work units: expansion, cache keys, service_map."""

import pytest

pytest.importorskip("numpy")

from repro.engine.cache import ResultCache
from repro.engine.core import SweepEngine, SweepSpec, WorkUnit, evaluate_unit
from repro.experiments.datacenter_stream import STREAM_METRICS

PARAMS = {
    "num_events": 200,
    "seed": 9,
    "backend": "numpy",
    "admission_floor": 0.0,
    "active_target": 24,
    "reprice_every": 20,
}


def _service_unit(**overrides):
    params = dict(PARAMS)
    shard = overrides.pop("shard", 0)
    params.update(overrides)
    return WorkUnit(
        kind="service",
        profile_fields=(("name", f"stream/shard{shard}"),),
        cache_grid=(),
        slice_grid=(),
        calibration=(),
        service=tuple(sorted(params.items())),
        shard=shard,
    )


class TestExpansion:
    def test_service_spec_yields_shard_units(self):
        spec = SweepSpec(benchmarks=(), service=dict(PARAMS), shards=3)
        units = spec.expand()
        assert [u.kind for u in units] == ["service"] * 3
        assert [u.shard for u in units] == [0, 1, 2]
        assert [u.benchmark for u in units] == [
            "stream/shard0", "stream/shard1", "stream/shard2"]
        # Shards are independent streams, decorrelated by seed.
        seeds = [dict(u.service)["seed"] for u in units]
        assert seeds == [9, 10, 11]

    def test_points_count_events(self):
        unit = _service_unit()
        assert unit.points == PARAMS["num_events"]

    def test_result_key_is_shard_name(self):
        assert _service_unit(shard=2).result_key() == ("stream/shard2",)


class TestCacheKeys:
    def test_params_and_shard_are_content_addressed(self):
        base = _service_unit()
        assert base.cache_key() == _service_unit().cache_key()
        distinct = [
            _service_unit(num_events=400),
            _service_unit(seed=10),
            _service_unit(backend="python"),
            _service_unit(admission_floor=0.5),
            _service_unit(shard=1),
        ]
        keys = {u.cache_key() for u in distinct}
        assert base.cache_key() not in keys
        assert len(keys) == len(distinct)

    def test_grid_units_unaffected_by_service_fields(self):
        # The new unconditional key fields must hold inert defaults for
        # grid kinds, so they perturb every key uniformly (one cold
        # restart) rather than aliasing anything.
        from repro.perfmodel.model import profile_key

        unit = WorkUnit(
            kind="performance",
            profile_fields=profile_key("gcc"),
            cache_grid=(256.0,),
            slice_grid=(2,),
            calibration=(("comm_tolerance", 0.9),
                         ("mlp_per_slice", 1.0)),
        )
        fields = unit.key_fields()
        assert fields["service"] is None
        assert fields["shard"] == 0


class TestEvaluation:
    def test_evaluate_unit_returns_metric_rows(self):
        rows = evaluate_unit(_service_unit())
        assert len(rows) == len(STREAM_METRICS)
        grid = {(c, int(s)): v for c, s, v in rows}
        events = grid[(float(STREAM_METRICS.index("events")), 0)]
        assert events == PARAMS["num_events"]

    def test_evaluation_is_deterministic(self):
        unit = _service_unit()
        first = evaluate_unit(unit)
        second = evaluate_unit(unit)
        # Drop the wall-clock metrics; everything else is seeded.
        timing = {float(STREAM_METRICS.index(name))
                  for name in ("events_per_s", "wall_s",
                               "latency_p50_ms", "latency_p99_ms")}
        assert [r for r in first if r[0] not in timing] == \
            [r for r in second if r[0] not in timing]


class TestServiceMap:
    def test_service_map_runs_and_caches(self, tmp_path):
        engine = SweepEngine(jobs=1,
                             cache=ResultCache(root=str(tmp_path)))
        sweep = engine.service_map(PARAMS, shards=2)
        assert set(sweep.values) == {("stream/shard0",),
                                     ("stream/shard1",)}
        assert sweep.cache_misses == 2
        for key in sweep.values:
            grid = sweep.values[key]
            assert len(grid) == len(STREAM_METRICS)
        again = engine.service_map(PARAMS, shards=2)
        assert again.cache_hits == 2
