"""Tests for the sweep engine: expansion, fan-out, grids, metrics."""

import pytest

from repro.economics.market import MARKET2, STANDARD_MARKETS
from repro.economics.utility import STANDARD_UTILITIES, UTILITY2
from repro.engine import (
    GridModel,
    ResultCache,
    RunMetrics,
    SweepEngine,
    SweepSpec,
    evaluate_unit,
)
from repro.perfmodel.model import (
    AnalyticModel,
    CACHE_GRID_KB,
    SLICE_GRID,
)
from repro.trace.profiles import get_profile


@pytest.fixture
def engine(tmp_path):
    return SweepEngine(jobs=1, cache=ResultCache(root=tmp_path / "cache"))


class TestExpansion:
    def test_performance_units(self):
        spec = SweepSpec(benchmarks=("gcc", "bzip"))
        units = spec.expand()
        assert len(units) == 2
        assert {u.kind for u in units} == {"performance"}
        assert [u.benchmark for u in units] == ["gcc", "bzip"]
        assert units[0].points == len(CACHE_GRID_KB) * len(SLICE_GRID)

    def test_utility_units(self):
        spec = SweepSpec(benchmarks=("gcc",),
                         utilities=tuple(STANDARD_UTILITIES),
                         markets=tuple(STANDARD_MARKETS),
                         budget=24.0)
        units = spec.expand()
        assert len(units) == 9
        assert {u.kind for u in units} == {"utility"}

    def test_profile_objects_accepted(self):
        spec = SweepSpec(benchmarks=(get_profile("gcc"),))
        (unit,) = spec.expand()
        assert unit.benchmark == "gcc"

    def test_unknown_kind_rejected(self):
        spec = SweepSpec(benchmarks=("gcc",))
        (unit,) = spec.expand()
        from dataclasses import replace
        with pytest.raises(ValueError):
            evaluate_unit(replace(unit, kind="nonsense"))


class TestEvaluation:
    def test_performance_matches_model(self, engine):
        model = AnalyticModel()
        sweep = engine.performance_map(["gcc"], (0.0, 512.0), (1, 4))
        grid = sweep.grid("gcc")
        for (c, s), value in grid.items():
            assert value == model.performance("gcc", c, s)

    def test_utility_matches_serial_path(self, engine):
        sweep = engine.utility_map(["gcc"], [UTILITY2], [MARKET2],
                                   budget=24.0,
                                   cache_grid=(0.0, 256.0),
                                   slice_grid=(1, 2))
        model = AnalyticModel()
        grid = sweep.grid("gcc", UTILITY2, MARKET2)
        for (c, s), value in grid.items():
            perf = model.performance("gcc", c, s)
            vcores = MARKET2.vcores_affordable(24.0, c, s)
            assert value == UTILITY2.value(perf, vcores)

    def test_parallel_equals_serial(self, tmp_path):
        spec = SweepSpec(benchmarks=("gcc", "bzip", "hmmer", "omnetpp"))
        serial = SweepEngine(
            jobs=1, cache=ResultCache(root=tmp_path / "a")
        ).run(spec)
        fanned = SweepEngine(
            jobs=2, cache=ResultCache(root=tmp_path / "b"),
            parallel_threshold=1,
        ).run(spec)
        assert fanned.parallel
        assert not serial.parallel
        assert fanned.values == serial.values

    def test_small_sweeps_stay_serial(self, tmp_path):
        engine = SweepEngine(jobs=8,
                             cache=ResultCache(root=tmp_path / "c"))
        sweep = engine.run(SweepSpec(benchmarks=("gcc",),
                                     cache_grid=(0.0,), slice_grid=(1,)))
        assert not sweep.parallel
        assert sweep.workers == 1


class TestGridModel:
    def test_drop_in_equality(self, engine):
        plain = AnalyticModel()
        grid = engine.grid_model(profiles=["gcc", "bzip"])
        assert isinstance(grid, GridModel)
        for c in CACHE_GRID_KB:
            for s in SLICE_GRID:
                assert grid.performance("gcc", c, s) == \
                    plain.performance("gcc", c, s)

    def test_off_grid_falls_back(self, engine):
        grid = engine.grid_model(cache_grid=(0.0, 128.0),
                                 slice_grid=(1, 2),
                                 profiles=["gcc"])
        plain = AnalyticModel()
        assert grid.performance("gcc", 96.0, 3) == \
            plain.performance("gcc", 96.0, 3)

    def test_unprimed_benchmark_autoprimes(self, engine):
        grid = engine.grid_model(cache_grid=(0.0, 128.0),
                                 slice_grid=(1, 2))
        value = grid.performance("hmmer", 128.0, 2)
        assert value == AnalyticModel().performance("hmmer", 128.0, 2)

    def test_priming_batches_one_sweep(self, engine):
        engine.grid_model(profiles=["gcc", "bzip", "hmmer"])
        assert len(engine.metrics.records) == 1
        assert engine.metrics.records[0].units == 3


class TestMetrics:
    def test_sweep_accounting(self, engine):
        engine.performance_map(["gcc", "bzip"], (0.0, 64.0), (1, 2))
        engine.performance_map(["gcc", "bzip"], (0.0, 64.0), (1, 2))
        totals = engine.metrics.totals()
        assert totals["sweeps"] == 2
        assert totals["units"] == 4
        assert totals["points"] == 16
        assert totals["cache_hits"] == 2
        assert totals["cache_misses"] == 2
        assert totals["evaluated_points"] == 8
        assert totals["cache_hit_rate"] == 0.5

    def test_run_metrics_attribution(self, engine):
        run_metrics = RunMetrics(engine=engine)
        with run_metrics.measure("demo"):
            engine.performance_map(["gcc"], (0.0,), (1,))
        exported = run_metrics.to_dict()
        (entry,) = exported["experiments"]
        assert entry["name"] == "demo"
        assert entry["engine"]["sweeps"] == 1
        assert exported["engine"]["jobs"] == engine.jobs
        assert run_metrics.to_json()
