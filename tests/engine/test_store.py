"""The mmap workload store: roundtrip fidelity, content addressing,
corruption quarantine, claim coordination, and the get_workload tier.

The store's contract is *bit-identity*: a loaded workload must compare
equal element-by-element to the generated one - same instructions, same
warmup stream, same simulation results - while sharing its columns with
the mapped file instead of copying them.
"""

import os

import pytest

from repro.core.simulator import simulate
from repro.engine.store import (
    STORE_VERSION,
    WorkloadStore,
    reset_store_counters,
    store_counters,
    store_key,
)
from repro.trace import materialize
from repro.trace.generator import make_workload
from repro.trace.materialize import get_workload, workload_key

BENCH = "gcc"
LENGTH = 1500
SEED = 3
MULT = 4.0


@pytest.fixture(autouse=True)
def _clean_counters():
    reset_store_counters()
    materialize.clear()
    yield
    materialize.set_store(None)


@pytest.fixture
def store(tmp_path):
    return WorkloadStore(tmp_path / "workloads")


def _fields():
    return workload_key(BENCH, LENGTH, SEED, MULT)[0]


def _generate():
    return make_workload(BENCH, LENGTH, seed=SEED,
                         warmup_cold_multiplier=MULT)


def _key():
    return store_key(_fields(), LENGTH, SEED, MULT)


class TestRoundtrip:
    def test_loaded_workload_is_bit_identical(self, store):
        warmup, trace = _generate()
        key = _key()
        assert store.dump(key, warmup, trace, MULT)

        # A fresh instance: nothing shared with the dumping store.
        fresh = WorkloadStore(store.root)
        loaded = fresh.load(key)
        assert loaded is not None
        warmup2, trace2 = loaded

        assert list(warmup2) == list(warmup)
        assert trace2.metadata == trace.metadata
        assert len(trace2) == len(trace)
        for a, b in zip(trace, trace2):
            assert a == b

    def test_simulation_results_identical(self, store):
        warmup, trace = _generate()
        key = _key()
        store.dump(key, warmup, trace, MULT)
        warmup2, trace2 = WorkloadStore(store.root).load(key)

        ref = simulate(trace, num_slices=2, l2_cache_kb=128.0,
                       warmup_addresses=warmup)
        got = simulate(trace2, num_slices=2, l2_cache_kb=128.0,
                       warmup_addresses=warmup2)
        assert got.ipc == ref.ipc
        assert got.stats.summary() == ref.stats.summary()

    def test_columns_are_zero_copy_views(self, store):
        warmup, trace = _generate()
        key = _key()
        store.dump(key, warmup, trace, MULT)
        warmup2, trace2 = WorkloadStore(store.root).load(key)

        assert isinstance(warmup2, memoryview)
        assert warmup2.readonly
        arrays = materialize.materialize(trace2)
        assert isinstance(arrays.pcs, memoryview)
        assert arrays.pcs.readonly
        counters = store_counters()
        assert counters["mmap_opens"] == 1
        assert counters["bytes_mapped"] > 0

    def test_dump_is_idempotent(self, store):
        warmup, trace = _generate()
        key = _key()
        assert store.dump(key, warmup, trace, MULT) is True
        assert store.dump(key, warmup, trace, MULT) is False
        assert store.entries() == 1


class TestAddressing:
    def test_key_depends_on_every_parameter(self):
        fields = _fields()
        base = store_key(fields, LENGTH, SEED, MULT)
        assert store_key(fields, LENGTH + 1, SEED, MULT) != base
        assert store_key(fields, LENGTH, SEED + 1, MULT) != base
        assert store_key(fields, LENGTH, SEED, MULT + 1.0) != base
        other = workload_key("bzip", LENGTH, SEED, MULT)[0]
        assert store_key(other, LENGTH, SEED, MULT) != base

    def test_version_in_key(self):
        # STORE_VERSION is folded into the digest, so a layout bump
        # orphans old entries instead of misreading them.
        assert f"v{STORE_VERSION}" in str(
            WorkloadStore("x").entry_dir(_key()))


class TestCorruption:
    def test_truncated_bin_is_quarantined(self, store):
        warmup, trace = _generate()
        key = _key()
        store.dump(key, warmup, trace, MULT)
        bin_path = store.entry_dir(key) / "workload.bin"
        bin_path.write_bytes(bin_path.read_bytes()[:100])

        fresh = WorkloadStore(store.root)
        assert fresh.load(key) is None
        counters = store_counters()
        assert counters["corrupt"] == 1
        assert not store.entry_dir(key).exists()

    def test_corrupt_meta_is_quarantined(self, store):
        warmup, trace = _generate()
        key = _key()
        store.dump(key, warmup, trace, MULT)
        (store.entry_dir(key) / "meta.json").write_text(
            "{torn", encoding="utf-8")

        fresh = WorkloadStore(store.root)
        assert fresh.load(key) is None
        assert store_counters()["corrupt"] == 1

    def test_fetch_repairs_after_quarantine(self, store):
        warmup, trace = _generate()
        key = _key()
        store.dump(key, warmup, trace, MULT)
        (store.entry_dir(key) / "meta.json").write_text(
            "{torn", encoding="utf-8")

        fresh = WorkloadStore(store.root)
        warmup2, trace2 = fresh.fetch(_fields(), LENGTH, SEED, MULT,
                                      _generate)
        assert list(warmup2) == list(warmup)
        assert fresh.has(key)  # re-dumped by the repairing fetch


class TestFetch:
    def test_first_fetch_generates_and_dumps(self, store):
        calls = []

        def generate():
            calls.append(1)
            return _generate()

        warmup, trace = store.fetch(_fields(), LENGTH, SEED, MULT,
                                    generate)
        assert calls == [1]
        assert store.has(_key())
        assert store_counters()["dumps"] == 1

    def test_second_fetch_loads_without_generating(self, store):
        store.fetch(_fields(), LENGTH, SEED, MULT, _generate)

        def never():
            raise AssertionError("generator must not run on a hit")

        fresh = WorkloadStore(store.root)
        warmup, trace = fresh.fetch(_fields(), LENGTH, SEED, MULT, never)
        assert len(trace) == LENGTH
        assert store_counters()["hits"] >= 1

    def test_wedged_claim_falls_back_to_generation(self, tmp_path):
        # A live claim held by this very process never goes stale, so a
        # short claim_wait_s must degrade to local generation.
        store = WorkloadStore(tmp_path / "w", claim_wait_s=0.05)
        key = _key()
        assert store.claims.acquire(key)
        try:
            warmup, trace = store.fetch(_fields(), LENGTH, SEED, MULT,
                                        _generate)
            assert len(trace) == LENGTH
            assert store_counters()["claim_waits"] == 1
        finally:
            store.claims.release(key)

    def test_dead_claimant_claim_is_broken(self, store):
        # A claim owned by a dead pid is stale: the next fetch breaks
        # it and generates immediately instead of waiting out the TTL.
        key = _key()
        path = store.claims.path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text('{"pid": 999999999, "ts": 0.0}',
                        encoding="utf-8")
        old = os.stat(path)
        os.utime(path, (old.st_atime - 10, old.st_mtime - 10))

        warmup, trace = store.fetch(_fields(), LENGTH, SEED, MULT,
                                    _generate)
        assert len(trace) == LENGTH
        assert store_counters()["claim_waits"] == 0
        assert store.has(key)


class TestGetWorkloadTier:
    def test_store_tier_skips_generation(self, store):
        # Prime the store, then drop the LRU: the reload must come from
        # the store with zero generator invocations.
        get_workload(BENCH, LENGTH, seed=SEED,
                     warmup_cold_multiplier=MULT, store=store)
        assert materialize.cache_stats()["generations"] == 1

        materialize.clear()
        warmup, trace = get_workload(BENCH, LENGTH, seed=SEED,
                                     warmup_cold_multiplier=MULT,
                                     store=store)
        stats = materialize.cache_stats()
        assert stats["generations"] == 0
        assert len(trace) == LENGTH
        assert isinstance(warmup, memoryview)

    def test_default_store_installation(self, store):
        previous = materialize.set_store(store)
        try:
            get_workload(BENCH, LENGTH, seed=SEED,
                         warmup_cold_multiplier=MULT)
            assert store.has(_key())
        finally:
            materialize.set_store(previous)

    def test_explicit_none_bypasses_default(self, store):
        previous = materialize.set_store(store)
        try:
            get_workload(BENCH, LENGTH, seed=SEED,
                         warmup_cold_multiplier=MULT, store=None)
            assert not store.has(_key())
        finally:
            materialize.set_store(previous)

    def test_store_served_equals_generated(self, store):
        warmup_gen, trace_gen = get_workload(
            BENCH, LENGTH, seed=SEED, warmup_cold_multiplier=MULT)
        materialize.clear()
        get_workload(BENCH, LENGTH, seed=SEED,
                     warmup_cold_multiplier=MULT, store=store)
        materialize.clear()
        warmup_st, trace_st = get_workload(
            BENCH, LENGTH, seed=SEED, warmup_cold_multiplier=MULT,
            store=store)
        assert list(warmup_st) == list(warmup_gen)
        assert list(trace_st) == list(trace_gen)
