"""Simulation work units and the audit-proof cache key.

The perturbation regression walks every result-affecting knob -
``WorkUnit`` simulation fields, every ``SimConfig`` sub-dataclass field,
every ``SamplingConfig`` field - and asserts each one lands in a
*distinct* cache key.  A knob missing from the key silently aliases
results for different configurations, which is the worst failure mode a
result cache can have.
"""

import dataclasses

import pytest

from repro.core.config import (
    CacheConfig, CacheLevelConfig, SimConfig, SliceConfig, VCoreConfig,
)
from repro.engine.cache import ResultCache
from repro.engine.core import SweepEngine, SweepSpec, WorkUnit, evaluate_unit
from repro.perfmodel.model import profile_key
from repro.sampling import DEFAULT_SAMPLING, SamplingConfig


def _sim_unit(**overrides):
    base = dict(
        kind="simulation",
        profile_fields=profile_key("gcc"),
        cache_grid=(256.0,),
        slice_grid=(2,),
        calibration=(),
        trace_length=3_000,
        trace_seed=1,
    )
    base.update(overrides)
    return WorkUnit(**base)


class TestExpansion:
    def test_simulate_spec_yields_simulation_units(self):
        spec = SweepSpec(benchmarks=("gcc", "mcf"), cache_grid=(256.0,),
                         slice_grid=(1, 2), simulate=True,
                         trace_length=2_000, trace_seed=3)
        units = spec.expand()
        assert [u.kind for u in units] == ["simulation", "simulation"]
        for unit in units:
            # Analytic calibration cannot affect a simulation; it must
            # stay out of the key so model tweaks don't cold the cache.
            assert unit.calibration == ()
            assert unit.trace_length == 2_000
            assert unit.trace_seed == 3

    def test_result_key_is_benchmark(self):
        unit = _sim_unit()
        assert unit.result_key() == ("gcc",)


class TestEvaluation:
    def test_exact_rows_match_direct_simulation(self):
        from repro.core.simulator import simulate
        from repro.trace.materialize import get_workload

        unit = _sim_unit()
        rows = evaluate_unit(unit)
        assert len(rows) == 1
        c, s, ipc = rows[0]
        warmup, trace = get_workload("gcc", 3_000, 1)
        direct = simulate(trace, num_slices=2, l2_cache_kb=256.0,
                          warmup_addresses=warmup)
        assert (c, s) == (256.0, 2)
        assert ipc == direct.ipc

    def test_sampled_unit_uses_sampling(self):
        cfg = SamplingConfig(interval=500, detail=100, warmup=40,
                             head=200, jitter_seed=5)
        sampling_key = tuple(sorted(cfg.key_fields().items()))
        exact_rows = evaluate_unit(_sim_unit(trace_length=6_000))
        sampled_rows = evaluate_unit(
            _sim_unit(trace_length=6_000, sampling=sampling_key))
        # Different estimator, close answers - but not the same number.
        assert sampled_rows[0][2] != exact_rows[0][2]
        assert sampled_rows[0][2] == pytest.approx(exact_rows[0][2],
                                                   rel=0.2)

    def test_engine_injects_sampling_into_simulation_units(self, tmp_path):
        engine = SweepEngine(jobs=1,
                             cache=ResultCache(root=str(tmp_path)),
                             sampling=DEFAULT_SAMPLING)
        sweep = engine.simulation_map(["gcc"], cache_grid=(256.0,),
                                      slice_grid=(1,), trace_length=2_000)
        assert sweep.grid("gcc")[(256.0, 1)] > 0
        # The same spec expanded standalone carries no sampling; the
        # engine stamped its config in, so the cached entry must be
        # keyed as sampled (a later exact run misses, never aliases).
        spec = SweepSpec(benchmarks=("gcc",), cache_grid=(256.0,),
                         slice_grid=(1,), simulate=True,
                         trace_length=2_000)
        exact_unit = spec.expand()[0]
        assert engine.cache.get(exact_unit.cache_key()) is None


class TestKeyPerturbation:
    """Every result-affecting knob must move the cache key."""

    def test_workunit_simulation_fields(self):
        base = _sim_unit()
        keys = {
            "base": base.cache_key(),
            "length": _sim_unit(trace_length=3_001).cache_key(),
            "seed": _sim_unit(trace_seed=2).cache_key(),
            "profile": _sim_unit(
                profile_fields=profile_key("mcf")).cache_key(),
            "cache_grid": _sim_unit(cache_grid=(128.0,)).cache_key(),
            "slice_grid": _sim_unit(slice_grid=(4,)).cache_key(),
            "kind": _sim_unit(kind="performance").cache_key(),
        }
        assert len(set(keys.values())) == len(keys)

    def test_default_and_explicit_default_simconfig_agree(self):
        # kind="simulation" with sim_config=None runs SimConfig(); the
        # key must say so explicitly, not hash the None sentinel.
        implicit = _sim_unit()
        explicit = _sim_unit(sim_config=SimConfig())
        assert implicit.cache_key() == explicit.cache_key()

    @staticmethod
    def _perturb(value):
        if isinstance(value, bool):
            return not value
        if isinstance(value, int):
            return value + 1
        if isinstance(value, float):
            return value + 1.0
        if value == "bimodal":
            return "gshare"
        if value == "pc":
            return "dynamic"
        if value == "python":
            return "batched"
        return None

    def _assert_each_field_moves_key(self, obj, rebuild):
        base_key = rebuild(obj).cache_key()
        skipped = []
        for f in dataclasses.fields(obj):
            perturbed = self._perturb(getattr(obj, f.name))
            if perturbed is None:
                skipped.append(f.name)
                continue
            try:
                variant = dataclasses.replace(obj, **{f.name: perturbed})
            except ValueError:
                # Validation rejected the perturbation (bounded ranges
                # like Equation 3 slice counts or fractions in [0, 1));
                # halve instead of growing.
                variant = dataclasses.replace(
                    obj, **{f.name: getattr(obj, f.name) / 2})
            key = rebuild(variant).cache_key()
            assert key != base_key, (
                f"{type(obj).__name__}.{f.name} does not affect the "
                f"cache key - cached results would alias"
            )
        return skipped

    def test_every_simconfig_field_moves_key(self):
        skipped = self._assert_each_field_moves_key(
            SimConfig(),
            lambda cfg: _sim_unit(sim_config=cfg),
        )
        # Nested dataclasses are walked field-by-field below.
        assert set(skipped) <= {"slice_config", "cache_config", "vcore"}

    def test_every_sliceconfig_field_moves_key(self):
        self._assert_each_field_moves_key(
            SliceConfig(),
            lambda sc: _sim_unit(sim_config=SimConfig(slice_config=sc)),
        )

    def test_every_cacheconfig_field_moves_key(self):
        skipped = self._assert_each_field_moves_key(
            CacheConfig(),
            lambda cc: _sim_unit(sim_config=SimConfig(cache_config=cc)),
        )
        assert set(skipped) <= {"l1i", "l1d"}
        # The nested cache levels, too.
        self._assert_each_field_moves_key(
            CacheLevelConfig(size_kb=16.0),
            lambda lvl: _sim_unit(sim_config=SimConfig(
                cache_config=CacheConfig(l1d=lvl))),
        )

    def test_every_vcoreconfig_field_moves_key(self):
        skipped = self._assert_each_field_moves_key(
            VCoreConfig(num_slices=2),
            lambda vc: _sim_unit(sim_config=SimConfig(vcore=vc)),
        )
        assert set(skipped) <= {"l2_bank_distances"}

    def test_every_samplingconfig_field_moves_key(self):
        base = SamplingConfig(interval=1000, detail=200, warmup=80,
                              head=500, jitter_seed=7)

        def rebuild(cfg):
            return _sim_unit(
                sampling=tuple(sorted(cfg.key_fields().items())))

        self._assert_each_field_moves_key(base, rebuild)

    def test_sampled_vs_exact_never_alias(self):
        exact = _sim_unit()
        sampled = _sim_unit(sampling=tuple(
            sorted(DEFAULT_SAMPLING.key_fields().items())))
        assert exact.cache_key() != sampled.cache_key()
