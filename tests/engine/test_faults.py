"""Fault paths of the sweep engine: failing units, hung workers,
corrupted cache entries.

A failing work unit must surface as a one-line :class:`WorkUnitError`
(worker traceback on an attribute, not in ``str()``), must never write
to the on-disk result cache, and a hung worker must trip ``timeout_s``
rather than wedging the sweep.  The hang/failure tests monkeypatch
``repro.engine.core.evaluate_unit`` in the parent; the ``fork`` start
method propagates the patch into pool workers.
"""

import multiprocessing
import os
import time

import pytest

from repro.engine import (
    ResultCache,
    SweepEngine,
    SweepSpec,
    SweepTimeoutError,
    WorkUnitError,
)
from repro.engine import core as engine_core

IS_FORK = multiprocessing.get_start_method() == "fork"

BENCHES = ("gcc", "bzip")
GRID = dict(cache_grid=(0.0, 128.0), slice_grid=(1, 2, 4))


def _engine(tmp_path, **kwargs):
    return SweepEngine(cache=ResultCache(root=tmp_path / "cache"),
                       **kwargs)


def _spec(*benches):
    return SweepSpec(benchmarks=benches or BENCHES, **GRID)


def _boom(unit):
    raise ValueError(f"synthetic failure for {unit.benchmark}")


def _hang(unit):
    time.sleep(60)


class TestFailingUnit:
    def test_serial_failure_raises_clear_error(self, tmp_path,
                                               monkeypatch):
        monkeypatch.setattr(engine_core, "evaluate_unit", _boom)
        engine = _engine(tmp_path, jobs=1)
        with pytest.raises(WorkUnitError) as excinfo:
            engine.run(_spec("gcc"))
        message = str(excinfo.value)
        assert "gcc" in message
        assert "ValueError" in message
        assert "synthetic failure" in message
        # one line, traceback relegated to the attribute
        assert "\n" not in message
        assert "Traceback" not in message
        assert "Traceback" in excinfo.value.worker_traceback
        assert excinfo.value.unit.benchmark == "gcc"

    def test_failure_does_not_poison_cache(self, tmp_path, monkeypatch):
        engine = _engine(tmp_path, jobs=1)
        spec = _spec("gcc")
        key = spec.expand()[0].cache_key()

        monkeypatch.setattr(engine_core, "evaluate_unit", _boom)
        with pytest.raises(WorkUnitError):
            engine.run(spec)
        assert engine.cache.get(key) is None

        # undo the fault: the unit re-evaluates cleanly and caches
        monkeypatch.undo()
        sweep = engine.run(spec)
        assert sweep.cache_hits == 0
        assert engine.cache.get(key) is not None
        assert engine.run(spec).cache_hits == 1

    def test_successful_units_cached_despite_sibling_failure(
            self, tmp_path, monkeypatch):
        real = engine_core.evaluate_unit

        def selective(unit):
            if unit.benchmark == "bzip":
                raise RuntimeError("bzip only")
            return real(unit)

        monkeypatch.setattr(engine_core, "evaluate_unit", selective)
        engine = _engine(tmp_path, jobs=1)
        spec = _spec("gcc", "bzip")
        keys = {u.benchmark: u.cache_key() for u in spec.expand()}
        with pytest.raises(WorkUnitError, match="bzip"):
            engine.run(spec)
        assert engine.cache.get(keys["gcc"]) is not None
        assert engine.cache.get(keys["bzip"]) is None

    @pytest.mark.skipif(not IS_FORK,
                        reason="monkeypatch propagation needs fork")
    def test_parallel_failure_raises_clear_error(self, tmp_path,
                                                 monkeypatch):
        monkeypatch.setattr(engine_core, "evaluate_unit", _boom)
        engine = _engine(tmp_path, jobs=2, parallel_threshold=1)
        with pytest.raises(WorkUnitError) as excinfo:
            engine.run(_spec())
        assert "ValueError" in str(excinfo.value)
        assert excinfo.value.worker_pid > 0
        assert "Traceback" in excinfo.value.worker_traceback


class TestHungWorker:
    @pytest.mark.skipif(not IS_FORK,
                        reason="monkeypatch propagation needs fork")
    def test_timeout_raises_and_names_pending_units(self, tmp_path,
                                                    monkeypatch):
        monkeypatch.setattr(engine_core, "evaluate_unit", _hang)
        engine = _engine(tmp_path, jobs=2, parallel_threshold=1,
                         timeout_s=1.0)
        start = time.perf_counter()
        with pytest.raises(SweepTimeoutError) as excinfo:
            engine.run(_spec())
        elapsed = time.perf_counter() - start
        assert elapsed < 30  # did not wait for the 60s sleep
        assert excinfo.value.pending_units
        assert "timed out" in str(excinfo.value)

    def test_serial_runs_ignore_timeout(self, tmp_path):
        # timeout applies to pool fan-outs; small sweeps stay serial
        engine = _engine(tmp_path, jobs=1, timeout_s=0.000001)
        sweep = engine.run(_spec("gcc"))
        assert sweep.units == 1


class TestWorkerDeath:
    """A worker process dying (``os._exit``, OOM-kill analog) must be
    retried on a fresh pool; only persistent deaths surface, and every
    unit completed before the death is cached first."""

    @staticmethod
    def _die_on_bzip(sentinel, once):
        """Worker hook: die hard on the bzip unit (optionally only the
        first time); the sleep lets the sibling gcc unit finish and be
        yielded before the pool breaks, keeping outcome order
        deterministic."""
        real = engine_core.evaluate_unit

        def hook(unit):
            if unit.benchmark == "bzip":
                time.sleep(0.5)
                if once:
                    try:
                        sentinel.touch(exist_ok=False)
                    except FileExistsError:
                        return real(unit)
                os._exit(1)
            return real(unit)

        return hook

    @pytest.mark.skipif(not IS_FORK,
                        reason="monkeypatch propagation needs fork")
    def test_transient_death_recovers_on_retry(self, tmp_path,
                                               monkeypatch):
        sentinel = tmp_path / "died_once"
        monkeypatch.setattr(engine_core, "evaluate_unit",
                            self._die_on_bzip(sentinel, once=True))
        engine = _engine(tmp_path, jobs=2, parallel_threshold=1)
        spec = _spec()
        sweep = engine.run(spec)
        assert sentinel.exists()  # the crash really happened
        assert sweep.units == 2 and sweep.cache_misses == 2
        for unit in spec.expand():
            assert engine.cache.get(unit.cache_key()) is not None

    @pytest.mark.skipif(not IS_FORK,
                        reason="monkeypatch propagation needs fork")
    def test_persistent_death_exhausts_retries(self, tmp_path,
                                               monkeypatch):
        sentinel = tmp_path / "unused"
        monkeypatch.setattr(engine_core, "evaluate_unit",
                            self._die_on_bzip(sentinel, once=False))
        engine = _engine(tmp_path, jobs=2, parallel_threshold=1,
                         pool_retries=1)
        spec = _spec()
        keys = {u.benchmark: u.cache_key() for u in spec.expand()}
        with pytest.raises(WorkUnitError) as excinfo:
            engine.run(spec)
        assert "BrokenProcessPool" in str(excinfo.value)
        assert "bzip" in str(excinfo.value)
        # The completed sibling was cached before the error surfaced.
        assert engine.cache.get(keys["gcc"]) is not None
        assert engine.cache.get(keys["bzip"]) is None
        # A healthy re-run only redoes the lost unit.
        monkeypatch.undo()
        sweep = engine.run(spec)
        assert sweep.cache_hits == 1 and sweep.cache_misses == 1

    def test_pool_retries_validation(self, tmp_path):
        with pytest.raises(ValueError):
            _engine(tmp_path, pool_retries=-1)


class TestCorruptedCache:
    def test_corrupt_entry_detected_and_recomputed(self, tmp_path):
        engine = _engine(tmp_path, jobs=1)
        spec = _spec("gcc")
        first = engine.run(spec)
        unit = spec.expand()[0]
        path = engine.cache._path_for(unit.cache_key())
        assert path.exists()
        path.write_text("{ this is not json")

        again = _engine(tmp_path, jobs=1)
        sweep = again.run(spec)
        assert sweep.cache_hits == 0
        assert sweep.cache_misses == 1
        assert sweep.grid("gcc") == first.grid("gcc")
        # the recompute repaired the entry
        warm = _engine(tmp_path, jobs=1).run(spec)
        assert warm.cache_hits == 1

    def test_truncated_entry_treated_as_miss(self, tmp_path):
        engine = _engine(tmp_path, jobs=1)
        spec = _spec("gcc")
        engine.run(spec)
        path = engine.cache._path_for(spec.expand()[0].cache_key())
        path.write_text("")
        sweep = _engine(tmp_path, jobs=1).run(spec)
        assert sweep.cache_misses == 1


class TestUnitTelemetry:
    def test_unit_stats_cover_all_units(self, tmp_path):
        engine = _engine(tmp_path, jobs=1)
        sweep = engine.run(_spec())
        assert len(sweep.unit_stats) == sweep.units
        assert all(not s.cached and s.eval_s >= 0
                   for s in sweep.unit_stats)
        warm = engine.run(_spec())
        assert all(s.cached for s in warm.unit_stats)
        dist = engine.metrics.unit_distributions()
        assert dist["evaluated_units"] == 2
        assert dist["cached_units"] == 2
        assert dist["eval_s"]["count"] == 2


class TestDeathAndSharedState:
    """Worker death crossed with the shared index and store claims:
    everything published before a crash stays visible to every other
    reader, and nothing a dead process held can wedge a successor."""

    @pytest.mark.skipif(not IS_FORK,
                        reason="monkeypatch propagation needs fork")
    def test_completed_prefix_in_index_after_death(self, tmp_path,
                                                   monkeypatch):
        sentinel = tmp_path / "unused"
        monkeypatch.setattr(
            engine_core, "evaluate_unit",
            TestWorkerDeath._die_on_bzip(sentinel, once=False))
        engine = _engine(tmp_path, jobs=2, parallel_threshold=1,
                         pool_retries=0)
        spec = _spec()
        keys = {u.benchmark: u.cache_key() for u in spec.expand()}
        with pytest.raises(WorkUnitError):
            engine.run(spec)

        # A brand-new cache instance (fresh pool of readers) resolves
        # the completed prefix through the on-disk index.
        fresh = ResultCache(root=tmp_path / "cache")
        assert fresh.contains(keys["gcc"]) is True
        assert fresh.contains(keys["bzip"]) is False
        assert fresh.get(keys["gcc"]) is not None
        assert fresh.counters()["hits"] == 1

    @pytest.mark.skipif(not IS_FORK,
                        reason="monkeypatch propagation needs fork")
    def test_no_claims_left_after_death(self, tmp_path, monkeypatch):
        sentinel = tmp_path / "unused"
        monkeypatch.setattr(
            engine_core, "evaluate_unit",
            TestWorkerDeath._die_on_bzip(sentinel, once=False))
        engine = _engine(tmp_path, jobs=2, parallel_threshold=1,
                         pool_retries=0)
        spec = _spec()
        with pytest.raises(WorkUnitError):
            engine.run(spec)
        for unit in spec.expand():
            assert not engine.cache.claims.active(unit.cache_key())

    def test_store_claim_from_dead_worker_expires(self, tmp_path):
        """A workload-store claim held by a dead pid (a worker that was
        OOM-killed mid-generation) must be broken by the next sweep,
        not waited out."""
        from repro.engine.store import WorkloadStore, store_key
        from repro.trace import materialize
        from repro.trace.materialize import workload_key

        materialize.clear()  # force the store tier, not the LRU
        store = WorkloadStore(tmp_path / "workloads")
        fields = workload_key("gcc", 600, 1, 4.0)[0]
        key = store_key(fields, 600, 1, 4.0)
        path = store.claims.path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text('{"pid": 999999999, "ts": 0.0}',
                        encoding="utf-8")
        old = os.stat(path)
        os.utime(path, (old.st_atime - 10, old.st_mtime - 10))

        engine = _engine(tmp_path, jobs=1, store=store)
        spec = SweepSpec(benchmarks=("gcc",), simulate=True,
                         cache_grid=(64.0,), slice_grid=(1,),
                         trace_length=600)
        start = time.perf_counter()
        sweep = engine.run(spec)
        assert time.perf_counter() - start < 60  # no TTL wait
        assert sweep.cache_misses == 1
        assert store.has(key)  # the successor generated and published
        assert not store.claims.active(key)
