"""The work-stealing scheduler: dual-path equivalence, workload
affinity, straggler re-dispatch.

The scheduler's contract mirrors the store's: turning it on (affinity
batches, speculative duplicates, the store tier) changes *when and
where* units run, never *what* they produce - values, cache keys, and
cache entry sets are bit-identical to the serial store-off path.
"""

import multiprocessing
import time

import pytest

from repro.engine import ResultCache, SweepEngine, SweepSpec
from repro.engine import core as engine_core
from repro.engine.core import _affinity_key
from repro.trace import materialize

IS_FORK = multiprocessing.get_start_method() == "fork"

pytestmark = pytest.mark.skipif(
    not IS_FORK, reason="scheduler tests monkeypatch via fork")


class _Utility:
    def __init__(self, name, perf_exponent=1.0):
        self.name = name
        self.perf_exponent = perf_exponent


class _Market:
    def __init__(self, name):
        self.name = name
        self.slice_price = 1.0
        self.bank_price = 0.004
        self.fixed_cost = 2.0


def _utility_spec():
    return SweepSpec(
        benchmarks=("gcc", "bzip"),
        cache_grid=(0.0, 128.0, 512.0),
        slice_grid=(1, 2, 4, 8),
        utilities=(_Utility("U1"), _Utility("U2", 0.5)),
        markets=(_Market("M"),),
        budget=24.0,
    )


@pytest.fixture(autouse=True)
def _clean_lru():
    materialize.clear()
    yield
    materialize.set_store(None)


class TestEquivalence:
    def test_scheduler_and_store_match_serial(self, tmp_path):
        """jobs=2 + store + affinity scheduling == serial store-off:
        same values AND the same set of cache entries on disk."""
        spec = SweepSpec(benchmarks=("gcc", "bzip", "mcf", "astar"),
                         cache_grid=(0.0, 64.0, 256.0),
                         slice_grid=(1, 2, 4))
        serial_cache = ResultCache(root=tmp_path / "serial")
        serial = SweepEngine(jobs=1, cache=serial_cache).run(spec)

        fan_cache = ResultCache(root=tmp_path / "fanned")
        fanned = SweepEngine(jobs=2, cache=fan_cache,
                             parallel_threshold=1,
                             store=tmp_path / "workloads").run(spec)

        assert fanned.parallel and not serial.parallel
        assert fanned.values == serial.values
        assert (fan_cache._scan_entry_keys()
                == serial_cache._scan_entry_keys())

    def test_simulation_sweep_bit_identical_with_store(self, tmp_path):
        spec = SweepSpec(benchmarks=("gcc", "bzip"), simulate=True,
                         cache_grid=(64.0, 256.0), slice_grid=(1, 2),
                         trace_length=800)
        off = SweepEngine(jobs=1,
                          cache=ResultCache(root=tmp_path / "off"),
                          dedupe=False).run(spec)
        materialize.clear()
        on = SweepEngine(jobs=2, parallel_threshold=1,
                         cache=ResultCache(root=tmp_path / "on"),
                         store=tmp_path / "workloads").run(spec)
        assert on.values == off.values

    def test_store_stats_surface_in_result(self, tmp_path):
        spec = SweepSpec(benchmarks=("gcc",), simulate=True,
                         cache_grid=(64.0,), slice_grid=(1, 2),
                         trace_length=600)
        sweep = SweepEngine(jobs=1,
                            cache=ResultCache(root=tmp_path / "c"),
                            store=tmp_path / "w").run(spec)
        assert sweep.store_stats["generations"] == 1
        # Second grid point of the unit rides the worker's LRU.
        assert sweep.store_stats["lru_hits"] >= 1
        assert sweep.sched_stats["claims_won"] == 1


class TestAffinity:
    def test_units_sharing_a_workload_share_a_batch(self):
        spec = _utility_spec()
        units = spec.expand()
        keys = {_affinity_key(u) for u in units}
        # 4 units (2 benchmarks x 2 utilities), 2 affinity groups.
        assert len(units) == 4 and len(keys) == 2

    def test_simulation_affinity_ignores_grid(self):
        a = SweepSpec(benchmarks=("gcc",), simulate=True,
                      cache_grid=(64.0,), slice_grid=(1,),
                      trace_length=500).expand()[0]
        b = SweepSpec(benchmarks=("gcc",), simulate=True,
                      cache_grid=(256.0,), slice_grid=(4,),
                      trace_length=500).expand()[0]
        assert _affinity_key(a) == _affinity_key(b)
        c = SweepSpec(benchmarks=("gcc",), simulate=True,
                      cache_grid=(64.0,), slice_grid=(1,),
                      trace_length=600).expand()[0]
        assert _affinity_key(a) != _affinity_key(c)

    def test_same_benchmark_units_land_on_one_worker(self, tmp_path):
        sweep = SweepEngine(
            jobs=2, parallel_threshold=1,
            cache=ResultCache(root=tmp_path / "c"),
        ).run(_utility_spec())
        pids = {}
        for stat in sweep.unit_stats:
            pids.setdefault(stat.benchmark, set()).add(stat.worker_pid)
        # Both utility units of one benchmark evaluated in one process.
        assert all(len(p) == 1 for p in pids.values())
        assert sweep.sched_stats["batches"] == 2

    def test_batches_split_when_workers_idle(self, tmp_path):
        # One benchmark, 4 workers: the single affinity group must be
        # split rather than serializing the sweep on one worker.
        engine = SweepEngine(jobs=4, parallel_threshold=1,
                             cache=ResultCache(root=tmp_path / "c"))
        spec = SweepSpec(
            benchmarks=("gcc",),
            cache_grid=(0.0, 128.0),
            slice_grid=(1, 2),
            utilities=(_Utility("U1"), _Utility("U2", 0.5),
                       _Utility("U3", 2.0), _Utility("U4", 0.25)),
            markets=(_Market("M"),),
            budget=24.0,
        )
        sweep = engine.run(spec)
        assert sweep.sched_stats["batches"] == 4
        assert sweep.units == 4


class TestStragglers:
    def test_straggling_batch_is_redispatched(self, tmp_path,
                                              monkeypatch):
        real = engine_core.evaluate_unit

        def slow_bzip(unit):
            if unit.benchmark == "bzip":
                time.sleep(0.75)
            return real(unit)

        monkeypatch.setattr(engine_core, "evaluate_unit", slow_bzip)
        engine = SweepEngine(jobs=3, parallel_threshold=1,
                             cache=ResultCache(root=tmp_path / "c"),
                             straggler_min_s=0.05,
                             straggler_factor=2.0)
        sweep = engine.run(SweepSpec(benchmarks=("gcc", "bzip"),
                                     cache_grid=(0.0, 128.0),
                                     slice_grid=(1, 2, 4)))
        # gcc's batch finished fast, bzip's blew the threshold with a
        # worker idle: it must have been speculatively duplicated.
        assert sweep.sched_stats["steals"] >= 1
        assert engine._steals >= 1
        # First-completion-wins left exactly one result set, correct.
        clean = SweepEngine(jobs=1,
                            cache=ResultCache(root=tmp_path / "ref"))
        assert sweep.values == clean.run(
            SweepSpec(benchmarks=("gcc", "bzip"),
                      cache_grid=(0.0, 128.0),
                      slice_grid=(1, 2, 4))).values

    def test_no_steals_without_idle_workers(self, tmp_path):
        sweep = SweepEngine(
            jobs=2, parallel_threshold=1,
            cache=ResultCache(root=tmp_path / "c"),
        ).run(SweepSpec(benchmarks=("gcc", "bzip"),
                        cache_grid=(0.0,), slice_grid=(1, 2)))
        assert sweep.sched_stats["steals"] == 0


class TestCostOrdering:
    def test_cost_ema_learns_from_outcomes(self, tmp_path):
        engine = SweepEngine(jobs=1,
                             cache=ResultCache(root=tmp_path / "c"))
        engine.run(SweepSpec(benchmarks=("gcc",),
                             cache_grid=(0.0, 128.0),
                             slice_grid=(1, 2)))
        assert "performance" in engine._cost_ema
        assert engine._cost_ema["performance"] >= 0.0

    def test_heaviest_batch_first(self, tmp_path):
        engine = SweepEngine(jobs=2,
                             cache=ResultCache(root=tmp_path / "c"))
        light = SweepSpec(benchmarks=("gcc",), cache_grid=(0.0,),
                          slice_grid=(1,)).expand()
        heavy = SweepSpec(benchmarks=("bzip",), simulate=True,
                          cache_grid=(0.0, 64.0), slice_grid=(1, 2),
                          trace_length=500).expand()
        batches = engine._make_batches(light + heavy, workers=2)
        # Simulation points dominate the cost prior: heavy goes first.
        assert batches[0][0].kind == "simulation"
