"""Tests for VCore composition and reconfiguration costs."""

import pytest

from repro.core.config import SimConfig
from repro.core.reconfig import ReconfigurationEngine
from repro.core.vcore import VCore


def _vcore(slices=4, cache_kb=256.0):
    return VCore(SimConfig().with_vcore(slices, cache_kb))


class TestVCoreComposition:
    def test_structures_scale_with_slices(self):
        vcore = _vcore(slices=4)
        assert len(vcore.slices) == 4
        assert vcore.rob.total_capacity == 4 * 64
        assert vcore.lsq.aggregate_capacity() == 4 * 32

    def test_l2_banks_match_config(self):
        assert _vcore(cache_kb=512).l2.num_banks == 8
        assert _vcore(cache_kb=0).l2.num_banks == 0

    def test_pc_based_fetch_assignment(self):
        """Section 3.1: the same PC always fetches on the same Slice."""
        vcore = _vcore(slices=4)
        for pc in range(64):
            assert vcore.slice_for_fetch(pc) == vcore.slice_for_fetch(pc)
        # Pairs of PCs share a Slice; consecutive pairs rotate.
        assert vcore.slice_for_fetch(0) == vcore.slice_for_fetch(1)
        assert vcore.slice_for_fetch(2) != vcore.slice_for_fetch(0)

    def test_operand_latency_paper_model(self):
        vcore = _vcore(slices=8)
        assert vcore.operand_latency(0, 0) == 0
        assert vcore.operand_latency(0, 1) == 2
        assert vcore.operand_latency(0, 4) == 5

    def test_global_rename_sized_for_max_slices(self):
        """Section 3.2: sized for the maximum (8-Slice) configuration."""
        assert _vcore(slices=1).global_rename.num_global == 512
        assert _vcore(slices=8).global_rename.num_global == 512

    def test_reconfiguration_flush(self):
        vcore = _vcore()
        ctx = vcore.slices[0]
        ctx.hierarchy.l1d.access(0, is_write=True)
        ctx.operand_arrival[3] = 10
        dirty = vcore.flush_for_reconfiguration()
        assert dirty >= 1
        assert not ctx.operand_arrival


class TestReconfigurationEngine:
    def test_cache_change_cost(self):
        engine = ReconfigurationEngine()
        cost = engine.cost(256, 2, 512, 2)
        assert cost.cycles == 10_000
        assert cost.cache_flushed

    def test_slice_only_change_cost(self):
        engine = ReconfigurationEngine()
        cost = engine.cost(256, 2, 256, 4)
        assert cost.cycles == 500
        assert cost.registers_flushed
        assert not cost.cache_flushed

    def test_no_change_is_free(self):
        cost = ReconfigurationEngine().cost(256, 2, 256, 2)
        assert cost.is_free

    def test_combined_change_charges_cache_cost(self):
        cost = ReconfigurationEngine().cost(256, 2, 512, 4)
        assert cost.cycles == 10_000
        assert cost.registers_flushed

    def test_schedule_cost(self):
        engine = ReconfigurationEngine()
        schedule = [(256, 2), (256, 4), (512, 4), (512, 4)]
        assert engine.schedule_cost(schedule) == 500 + 10_000

    def test_register_flush_scales_with_slices(self):
        engine = ReconfigurationEngine()
        assert (engine.register_flush_cycles(8)
                > engine.register_flush_cycles(1))

    def test_validation(self):
        engine = ReconfigurationEngine()
        with pytest.raises(ValueError):
            engine.cost(256, 0, 256, 1)
        with pytest.raises(ValueError):
            engine.cost(-1, 1, 256, 1)
        with pytest.raises(ValueError):
            ReconfigurationEngine(cache_flush_cycles=-1)
