"""Reflection guard: every SimConfig field must reach ``fingerprint()``.

``SimConfig.fingerprint()`` is the content-address basis for the sweep
engine's on-disk result cache.  A config field that doesn't reach the
fingerprint silently aliases cache entries: two sweeps differing only in
that knob would serve each other's results.  These tests enumerate the
dataclass fields *by reflection* - so a field added tomorrow is covered
the day it's added - and fail if any field (the ``backend`` selector
included) can change without changing the fingerprint.
"""

import copy
from dataclasses import fields, is_dataclass

import pytest

from repro.core.config import SimConfig


def _leaf_paths(obj, prefix=()):
    """(path, value) for every non-dataclass leaf field, recursively."""
    for f in fields(obj):
        value = getattr(obj, f.name)
        if is_dataclass(value) and not isinstance(value, type):
            yield from _leaf_paths(value, prefix + (f.name,))
        else:
            yield prefix + (f.name,), value


def _perturb(value):
    """A different value of the same shape (validation is bypassed -
    only fingerprint sensitivity is under test, not validators)."""
    if isinstance(value, bool):
        return not value
    if isinstance(value, int):
        return value + 1
    if isinstance(value, float):
        return value + 1.0
    if isinstance(value, str):
        return value + "-perturbed"
    if isinstance(value, tuple):
        return value + (1,)
    if value is None:
        return (1, 2)  # optional sequence knobs: give them a value
    raise TypeError(f"unhandled leaf type {type(value)!r}: add a case")


def _set_path(config, path, value):
    """In-place write through frozen dataclasses (bypasses validation)."""
    target = config
    for name in path[:-1]:
        target = getattr(target, name)
    object.__setattr__(target, path[-1], value)


def _lookup(mapping, path):
    for name in path:
        mapping = mapping[name]
    return mapping


ALL_PATHS = sorted(_leaf_paths(SimConfig()))


def test_reflection_sees_a_nontrivial_config_surface():
    # If this shrinks to nothing the walk itself broke.
    assert len(ALL_PATHS) >= 20
    assert (("backend",), "python") in ALL_PATHS


@pytest.mark.parametrize(
    "path", [p for p, _ in ALL_PATHS],
    ids=[".".join(p) for p, _ in ALL_PATHS])
def test_every_field_perturbs_the_fingerprint(path):
    base = SimConfig().fingerprint()
    config = copy.deepcopy(SimConfig())
    original = _lookup(base, path)
    _set_path(config, path, _perturb(original))
    perturbed = config.fingerprint()
    assert perturbed != base, (
        f"field {'.'.join(path)} changed without changing the "
        f"fingerprint: engine cache entries would alias"
    )
    # The change must land at the field's own path (tuples are encoded
    # as lists, so compare against the base entry, not the raw value).
    assert _lookup(perturbed, path) != _lookup(base, path)


def test_fingerprint_keys_match_dataclass_fields_exactly():
    """The fingerprint must be exactly the dataclass field set - no
    hand-maintained subset (missing = aliasing) and no stray extras."""

    def check(obj, mapping, where):
        names = {f.name for f in fields(obj)}
        assert set(mapping) == names, where
        for f in fields(obj):
            value = getattr(obj, f.name)
            if is_dataclass(value) and not isinstance(value, type):
                check(value, mapping[f.name], f"{where}.{f.name}")

    config = SimConfig()
    check(config, config.fingerprint(), "SimConfig")
