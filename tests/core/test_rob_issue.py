"""Tests for the distributed ROB and per-Slice issue windows."""

import pytest

from repro.core.dyninst import DynInst
from repro.core.issue import IssueWindow, SliceIssueStage
from repro.core.rob import DistributedROB
from repro.isa import Instruction, MemAccess, Opcode


def _dyn(seq, slice_id=0, opcode=Opcode.ADD, complete=None, ready=0):
    mem = MemAccess(address=seq * 64) if opcode in (Opcode.LD, Opcode.ST) else None
    srcs = (1,) if opcode != Opcode.ST else (1, 2)
    dst = 2 if opcode not in (Opcode.ST,) else None
    inst = Instruction(seq=seq, pc=seq, opcode=opcode, srcs=srcs, dst=dst,
                       mem=mem)
    dyn = DynInst(inst=inst, slice_id=slice_id)
    dyn.dispatch_cycle = 0
    dyn.src_ready = [ready]
    if complete is not None:
        dyn.complete_cycle = complete
    return dyn


class TestDistributedROB:
    def test_program_order_enforced(self):
        rob = DistributedROB(num_slices=1)
        rob.dispatch(_dyn(0))
        with pytest.raises(ValueError):
            rob.dispatch(_dyn(0))

    def test_per_slice_capacity(self):
        rob = DistributedROB(num_slices=2, per_slice_capacity=1)
        assert rob.dispatch(_dyn(0, slice_id=0))
        assert not rob.dispatch(_dyn(1, slice_id=0))  # segment 0 full
        assert rob.dispatch(_dyn(2, slice_id=1))
        assert rob.total_capacity == 2

    def test_precommit_sync_only_multislice(self):
        """Section 3.7: the pre-commit pointer costs nothing at 1 Slice."""
        assert DistributedROB(num_slices=1, precommit_sync=3).precommit_sync == 0
        assert DistributedROB(num_slices=4, precommit_sync=3).precommit_sync == 3

    def test_commit_eligibility_waits_for_sync(self):
        rob = DistributedROB(num_slices=2, precommit_sync=3)
        dyn = _dyn(0, complete=10)
        rob.dispatch(dyn)
        assert rob.commit_eligible(now=12) is None
        assert rob.commit_eligible(now=13) is dyn

    def test_incomplete_head_blocks(self):
        rob = DistributedROB(num_slices=1)
        rob.dispatch(_dyn(0))
        assert rob.commit_eligible(now=100) is None

    def test_squash_younger_marks_and_counts(self):
        rob = DistributedROB(num_slices=1, per_slice_capacity=8)
        dyns = [_dyn(i) for i in range(5)]
        for d in dyns:
            rob.dispatch(d)
        squashed = rob.squash_younger(2)
        assert [d.seq for d in squashed] == [4, 3]  # youngest first
        assert all(d.squashed for d in squashed)
        assert len(rob) == 3
        assert rob.occupancy_of(0) == 3


class TestIssueWindow:
    def test_oldest_ready_first(self):
        window = IssueWindow(capacity=4)
        late = _dyn(5, ready=0)
        early = _dyn(2, ready=0)
        window.insert(late)
        window.insert(early)
        assert window.pick_ready(now=0) is early

    def test_not_ready_not_picked(self):
        window = IssueWindow(capacity=4)
        window.insert(_dyn(1, ready=10))
        assert window.pick_ready(now=5) is None
        assert window.pick_ready(now=10) is not None

    def test_predicate_filters(self):
        window = IssueWindow(capacity=4)
        a, b = _dyn(1), _dyn(2)
        window.insert(a)
        window.insert(b)
        picked = window.pick_ready(now=0, predicate=lambda d: d.seq == 2)
        assert picked is b

    def test_capacity(self):
        window = IssueWindow(capacity=1)
        assert window.insert(_dyn(1))
        assert not window.insert(_dyn(2))
        assert window.full_stalls == 1

    def test_squash_younger(self):
        window = IssueWindow(capacity=4)
        window.insert(_dyn(1))
        window.insert(_dyn(5))
        assert window.squash_younger(2) == 1
        assert len(window) == 1


class TestSliceIssueStage:
    def test_separate_windows(self):
        """Section 3.3: separate windows for ALU and memory operations."""
        stage = SliceIssueStage(slice_id=0, window_size=4)
        stage.insert(_dyn(1, opcode=Opcode.ADD))
        stage.insert(_dyn(2, opcode=Opcode.LD))
        assert len(stage.alu_window) == 1
        assert len(stage.mem_window) == 1

    def test_dual_issue_per_cycle(self):
        stage = SliceIssueStage(slice_id=0, window_size=4)
        stage.insert(_dyn(1, opcode=Opcode.ADD))
        stage.insert(_dyn(2, opcode=Opcode.LD))
        alu, mem = stage.issue_cycle_picks(now=0)
        assert alu is not None and mem is not None
        assert stage.alu_issued == 1 and stage.mem_issued == 1
