"""Tests for the ablation configuration knobs.

DESIGN.md calls out three design-choice ablations beyond the operand
network: fetch-to-Slice assignment, ordered vs unordered LSQ, and the
branch predictor family.
"""

import pytest

from repro.core.branch import BranchUnit, GSharePredictor
from repro.core.config import SimConfig, SliceConfig
from repro.core.simulator import SharingSimulator, simulate
from repro.trace.generator import generate_trace


def _run(trace, **overrides):
    import dataclasses
    cfg = dataclasses.replace(
        SimConfig().with_vcore(num_slices=4, l2_cache_kb=256), **overrides
    )
    return SharingSimulator(trace, cfg).run()


class TestFetchAssignmentAblation:
    def test_dynamic_assignment_hurts_prediction(self):
        """The paper's PC-interleave keeps each static branch on one
        Slice's predictor; dynamic rotation scatters it and accuracy
        drops - the reason for the Section 3.1 design."""
        trace = generate_trace("sjeng", 2500, seed=5)
        pc_based = _run(trace, fetch_assignment="pc")
        dynamic = _run(trace, fetch_assignment="dynamic")
        assert (pc_based.stats.branch_accuracy
                >= dynamic.stats.branch_accuracy)

    def test_both_assignments_commit_everything(self):
        trace = generate_trace("gcc", 800, seed=6)
        for mode in ("pc", "dynamic"):
            assert _run(trace, fetch_assignment=mode).stats.committed == 800

    def test_invalid_assignment_rejected(self):
        with pytest.raises(ValueError):
            SimConfig(fetch_assignment="random")


class TestOrderedLSQAblation:
    def test_ordered_lsq_eliminates_violations(self):
        trace = generate_trace("gcc", 1500, seed=7)
        ordered = _run(trace, ordered_lsq=True)
        assert ordered.stats.lsq_violations == 0
        assert ordered.stats.committed == 1500

    def test_unordered_lsq_is_not_slower(self):
        """Section 3.6's design point: speculative unordered issue with
        violation replay beats conservative ordering."""
        trace = generate_trace("gcc", 1500, seed=7)
        unordered = _run(trace, ordered_lsq=False)
        ordered = _run(trace, ordered_lsq=True)
        assert unordered.cycles <= ordered.cycles * 1.05


class TestPredictorAblation:
    def test_gshare_config_plumbs_through(self):
        cfg = SliceConfig(predictor_kind="gshare")
        trace = generate_trace("gcc", 600, seed=8)
        import dataclasses
        sim_cfg = dataclasses.replace(
            SimConfig().with_vcore(2, 128), slice_config=cfg
        )
        result = SharingSimulator(trace, sim_cfg).run()
        assert result.stats.committed == 600

    def test_gshare_uses_history(self):
        pred = GSharePredictor(entries=256, history_bits=4)
        # Alternating pattern at one PC: bimodal fails, gshare learns.
        for _ in range(64):
            taken = pred.predict(0x10)
            actual = (pred._history & 1) == 0  # alternation
            pred.train(0x10, taken=actual, predicted=taken)
        assert pred.accuracy > 0.5

    def test_unknown_predictor_rejected(self):
        with pytest.raises(ValueError):
            BranchUnit(predictor_kind="neural")
        with pytest.raises(ValueError):
            SliceConfig(predictor_kind="neural")
