"""Tests for the bimodal predictor, BTB, and branch unit."""

import pytest

from repro.core.branch import BimodalPredictor, BranchTargetBuffer, BranchUnit


class TestBimodalPredictor:
    def test_learns_always_taken(self):
        pred = BimodalPredictor(entries=64)
        for _ in range(4):
            taken = pred.predict(0x10)
            pred.train(0x10, taken=True, predicted=taken)
        assert pred.predict(0x10) is True

    def test_learns_always_not_taken(self):
        pred = BimodalPredictor(entries=64)
        for _ in range(4):
            taken = pred.predict(0x10)
            pred.train(0x10, taken=False, predicted=taken)
        assert pred.predict(0x10) is False

    def test_two_bit_hysteresis(self):
        """One anomaly must not flip a saturated counter."""
        pred = BimodalPredictor(entries=64)
        for _ in range(4):
            pred.train(0x10, taken=True, predicted=True)
        pred.train(0x10, taken=False, predicted=True)
        assert pred.predict(0x10) is True

    def test_accuracy_tracking(self):
        pred = BimodalPredictor(entries=64)
        p = pred.predict(0x10)
        pred.train(0x10, taken=p, predicted=p)
        assert pred.accuracy == 1.0

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            BimodalPredictor(entries=100)


class TestBTB:
    def test_miss_then_hit(self):
        btb = BranchTargetBuffer(entries=64)
        assert btb.lookup(0x20) is None
        btb.install(0x20, target=0x100)
        assert btb.lookup(0x20) == 0x100

    def test_fake_entries(self):
        """Paper Section 3.1: fake entries redirect non-branch Slices."""
        btb = BranchTargetBuffer(entries=64)
        btb.install(0x20, target=0x104, is_fake=True)
        assert btb.is_fake(0x20)
        assert btb.lookup(0x20) == 0x104

    def test_aliasing_overwrites(self):
        btb = BranchTargetBuffer(entries=4)
        btb.install(0, target=0x100)
        btb.install(4, target=0x200)  # same slot
        assert btb.lookup(0) == 0x200


class TestBranchUnit:
    def test_taken_prediction_needs_btb_entry(self):
        unit = BranchUnit()
        # Saturate the predictor toward taken without a BTB target.
        for _ in range(4):
            unit.predictor.train(0x30, taken=True, predicted=False)
        assert unit.predict(0x30) is False  # no target -> cannot redirect
        unit.btb.install(0x30, target=0x99)
        assert unit.predict(0x30) is True

    def test_resolve_counts_mispredicts(self):
        unit = BranchUnit()
        assert unit.resolve(0x30, taken=True, target=0x99, predicted=False)
        assert unit.mispredicts == 1
        assert not unit.resolve(0x30, taken=True, target=0x99,
                                predicted=True)
        assert unit.mispredict_rate == 0.5

    def test_resolve_installs_btb(self):
        unit = BranchUnit()
        unit.resolve(0x30, taken=True, target=0x99, predicted=False)
        assert unit.btb.lookup(0x30) == 0x99
