"""Tests for two-stage register renaming."""

import pytest

from repro.core.rename import (
    GlobalRenameState,
    LocalRegisterFile,
    RenameStallError,
    rename_pipeline_depth,
)


class TestGlobalRename:
    def test_allocate_tracks_mapping(self):
        state = GlobalRenameState(num_global=8, num_arch=4)
        reg, prior = state.allocate(arch_reg=1, producer_seq=0,
                                    producer_slice=2)
        assert prior is None
        mapping = state.lookup(1)
        assert mapping.global_reg == reg
        assert mapping.producer_slice == 2
        assert state.producer_slice(reg) == 2

    def test_reallocation_returns_prior(self):
        state = GlobalRenameState(num_global=8, num_arch=4)
        first, _ = state.allocate(1, 0, 0)
        second, prior = state.allocate(1, 1, 1)
        assert prior.global_reg == first
        assert state.lookup(1).global_reg == second

    def test_free_list_exhaustion(self):
        state = GlobalRenameState(num_global=4, num_arch=2)
        for i in range(4):
            state.allocate(i % 2, i, 0)
        with pytest.raises(RenameStallError):
            state.allocate(0, 5, 0)
        assert state.free_list_stalls == 1

    def test_release_recycles(self):
        state = GlobalRenameState(num_global=4, num_arch=2)
        reg, _ = state.allocate(0, 0, 0)
        free_before = state.free_count
        state.release(reg)
        assert state.free_count == free_before + 1
        assert state.producer_slice(reg) is None

    def test_rollback_restores_prior_mapping(self):
        state = GlobalRenameState(num_global=8, num_arch=4)
        first, _ = state.allocate(1, 0, 0)
        second, prior = state.allocate(1, 1, 1)
        state.rollback(1, second, prior)
        assert state.lookup(1).global_reg == first

    def test_rollback_without_prior_clears(self):
        state = GlobalRenameState(num_global=8, num_arch=4)
        reg, prior = state.allocate(1, 0, 0)
        state.rollback(1, reg, prior)
        assert state.lookup(1) is None

    def test_global_space_must_cover_arch(self):
        with pytest.raises(ValueError):
            GlobalRenameState(num_global=16, num_arch=32)


class TestLocalRegisterFile:
    def test_dst_allocation(self):
        lrf = LocalRegisterFile(capacity=2)
        assert lrf.allocate_dst(10)
        assert lrf.allocate_dst(11)
        assert not lrf.allocate_dst(12)
        assert lrf.full_stalls == 1

    def test_remote_cache_eviction_makes_room(self):
        lrf = LocalRegisterFile(capacity=2)
        lrf.allocate_remote(10)
        lrf.allocate_remote(11)
        assert lrf.allocate_dst(12)  # evicts a cached remote

    def test_dst_cannot_evict_live_dsts(self):
        lrf = LocalRegisterFile(capacity=2)
        lrf.allocate_dst(10)
        lrf.allocate_dst(11)
        assert not lrf.allocate_remote(12)

    def test_release(self):
        lrf = LocalRegisterFile(capacity=1)
        lrf.allocate_dst(10)
        lrf.release(10)
        assert lrf.allocate_dst(11)

    def test_holds_and_idempotent_alloc(self):
        lrf = LocalRegisterFile(capacity=1)
        lrf.allocate_dst(10)
        assert lrf.holds(10)
        assert lrf.allocate_dst(10)  # already resident: no new entry
        assert len(lrf) == 1

    def test_flush_remote_cache(self):
        lrf = LocalRegisterFile(capacity=4)
        lrf.allocate_dst(1)
        lrf.allocate_remote(2)
        lrf.allocate_remote(3)
        assert lrf.flush_remote_cache() == 2
        assert lrf.holds(1)
        assert not lrf.holds(2)


class TestRenameDepth:
    def test_single_slice_skips_broadcast(self):
        assert rename_pipeline_depth(1) == 1

    def test_multi_slice_pays_broadcast(self):
        """Section 3.2.1: send-to-master / broadcast / correct steps."""
        assert rename_pipeline_depth(4) == 3

    def test_invalid_slices(self):
        with pytest.raises(ValueError):
            rename_pipeline_depth(0)
