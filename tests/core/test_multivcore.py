"""Tests for multi-VCore (PARSEC-style) simulation with coherence."""

import pytest

from repro.core.multivcore import (
    MultiVCoreSimulator,
    generate_thread_traces,
)


class TestThreadTraces:
    def test_per_thread_traces_differ(self):
        traces = generate_thread_traces("dedup", 400, num_threads=4, seed=1)
        assert len(traces) == 4
        pcs = [tuple(i.pc for i in t) for t in traces]
        assert len(set(pcs)) == 4  # distinct control flow per thread

    def test_threads_share_a_region(self):
        traces = generate_thread_traces("dedup", 2000, num_threads=2,
                                        seed=1, shared_fraction=0.5)
        shared = [
            {i.mem.address for i in t if i.mem is not None
             and i.mem.address >= 0x7000_0000}
            for t in traces
        ]
        assert shared[0] and shared[1]
        assert shared[0] & shared[1]  # actual overlap -> coherence traffic

    def test_zero_sharing_possible(self):
        traces = generate_thread_traces("dedup", 500, num_threads=2,
                                        seed=1, shared_fraction=0.0)
        for t in traces:
            assert all(
                i.mem.address < 0x7000_0000
                for i in t if i.mem is not None
            )

    def test_validation(self):
        with pytest.raises(ValueError):
            generate_thread_traces("dedup", 100, num_threads=0)
        with pytest.raises(ValueError):
            generate_thread_traces("dedup", 100, num_threads=2,
                                   shared_fraction=1.5)


class TestMultiVCoreSimulation:
    def test_four_threads_run_and_commit(self):
        """The paper's PARSEC setup: 4 threads on 4 equal VCores."""
        sim = MultiVCoreSimulator("dedup", num_vcores=4,
                                  slices_per_vcore=2, l2_cache_kb=512,
                                  trace_length=600, seed=2)
        result = sim.run()
        assert len(result.threads) == 4
        assert result.total_committed == 4 * 600
        assert result.vm_cycles > 0
        assert result.aggregate_ipc > 0

    def test_sharing_generates_coherence_traffic(self):
        shared = MultiVCoreSimulator("ferret", num_vcores=2,
                                     slices_per_vcore=1, l2_cache_kb=256,
                                     trace_length=800, seed=3,
                                     shared_fraction=0.6).run()
        private = MultiVCoreSimulator("ferret", num_vcores=2,
                                      slices_per_vcore=1, l2_cache_kb=256,
                                      trace_length=800, seed=3,
                                      shared_fraction=0.0).run()
        assert (shared.directory_invalidations
                + shared.directory_downgrades) > 0
        assert private.directory_invalidations == 0
        shared_stalls = sum(t.coherence_stall_cycles for t in shared.threads)
        private_stalls = sum(t.coherence_stall_cycles
                             for t in private.threads)
        assert shared_stalls > private_stalls == 0

    def test_vm_finishes_with_slowest_thread(self):
        sim = MultiVCoreSimulator("swaptions", num_vcores=2,
                                  slices_per_vcore=1, l2_cache_kb=128,
                                  trace_length=400, seed=4)
        result = sim.run()
        slowest = max(
            t.result.cycles + t.coherence_stall_cycles
            for t in result.threads
        )
        assert result.vm_cycles == slowest

    def test_validation(self):
        with pytest.raises(ValueError):
            MultiVCoreSimulator("dedup", num_vcores=0)
