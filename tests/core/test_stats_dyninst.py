"""Tests for simulation statistics and the in-flight instruction record."""

import pytest

from repro.core.dyninst import NEVER, PENDING, DynInst
from repro.core.stats import SimStats, StallBreakdown
from repro.isa import Instruction, Opcode


class TestSimStats:
    def test_ipc(self):
        stats = SimStats(cycles=100, committed=150)
        assert stats.ipc == 1.5
        assert SimStats().ipc == 0.0

    def test_branch_accuracy(self):
        stats = SimStats(branches=100, branch_mispredicts=5)
        assert stats.branch_accuracy == pytest.approx(0.95)
        assert SimStats().branch_accuracy == 1.0

    def test_miss_rates(self):
        stats = SimStats(l1d_accesses=200, l1d_misses=20,
                         l2_accesses=20, l2_misses=10)
        assert stats.l1d_miss_rate == pytest.approx(0.1)
        assert stats.l2_miss_rate == pytest.approx(0.5)
        assert SimStats().l1d_miss_rate == 0.0

    def test_summary_keys(self):
        summary = SimStats(cycles=10, committed=5).summary()
        assert {"cycles", "committed", "ipc", "branch_accuracy",
                "l1d_miss_rate", "l2_miss_rate", "lsq_violations",
                "squashed"} <= set(summary)

    def test_stall_breakdown_total(self):
        stalls = StallBreakdown(fetch_icache=3, dispatch_rob_full=7)
        assert stalls.total() == 10
        assert stalls.as_dict()["fetch_icache"] == 3


class TestDynInst:
    def _dyn(self):
        inst = Instruction(seq=5, pc=10, opcode=Opcode.ADD, srcs=(1,),
                           dst=2)
        return DynInst(inst=inst, slice_id=1)

    def test_initial_state(self):
        dyn = self._dyn()
        assert dyn.seq == 5
        assert not dyn.is_dispatched
        assert not dyn.is_issued
        assert not dyn.is_complete
        assert not dyn.is_committed
        assert dyn.fetch_cycle == NEVER

    def test_lifecycle_flags(self):
        dyn = self._dyn()
        dyn.dispatch_cycle = 3
        dyn.issue_cycle = 5
        dyn.complete_cycle = 6
        dyn.commit_cycle = 9
        assert dyn.is_dispatched and dyn.is_issued
        assert dyn.is_complete and dyn.is_committed

    def test_ready_cycle_tracks_slowest_source(self):
        dyn = self._dyn()
        dyn.dispatch_cycle = 2
        dyn.src_ready = [3, 17, 4]
        assert dyn.ready_cycle() == 17

    def test_ready_cycle_pending_source(self):
        dyn = self._dyn()
        dyn.dispatch_cycle = 2
        dyn.src_ready = [3, PENDING]
        assert dyn.ready_cycle() >= PENDING

    def test_ready_without_sources(self):
        dyn = self._dyn()
        dyn.dispatch_cycle = 7
        assert dyn.ready_cycle() == 7
