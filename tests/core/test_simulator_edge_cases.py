"""Adversarial and edge-case traces for the simulator.

Failure injection by construction: traces designed to stress one
mechanism at a time (replay storms, store-buffer pressure, branch
walls, single instructions, maximum configurations).
"""

import pytest

from repro.core.simulator import simulate
from repro.isa import Instruction, MemAccess, Opcode
from repro.trace.records import Trace, TraceMetadata


def _trace(insts, name="edge"):
    return Trace(insts, TraceMetadata(benchmark=name, seed=0,
                                      length=len(insts)))


class TestDegenerateTraces:
    def test_single_instruction(self):
        tr = _trace([Instruction(seq=0, pc=0, opcode=Opcode.ADD,
                                 srcs=(1,), dst=2)])
        result = simulate(tr, num_slices=8, l2_cache_kb=8192)
        assert result.stats.committed == 1

    def test_single_store(self):
        tr = _trace([Instruction(seq=0, pc=0, opcode=Opcode.ST,
                                 srcs=(1, 2), mem=MemAccess(address=64))])
        result = simulate(tr, num_slices=1, l2_cache_kb=0)
        assert result.stats.committed == 1

    def test_single_taken_branch(self):
        tr = _trace([Instruction(seq=0, pc=0, opcode=Opcode.BEQ,
                                 srcs=(1,), taken=True, target=100)])
        result = simulate(tr, num_slices=2, l2_cache_kb=64)
        assert result.stats.committed == 1
        assert result.stats.branches == 1


class TestStorePressure:
    def test_all_stores_to_one_line(self):
        """Store-buffer back-pressure must not deadlock commit."""
        insts = [
            Instruction(seq=i, pc=i, opcode=Opcode.ST, srcs=(0, 0),
                        mem=MemAccess(address=0x400))
            for i in range(120)
        ]
        result = simulate(_trace(insts), num_slices=1, l2_cache_kb=64)
        assert result.stats.committed == 120

    def test_all_stores_striped_across_banks(self):
        insts = [
            Instruction(seq=i, pc=i, opcode=Opcode.ST, srcs=(0, 0),
                        mem=MemAccess(address=i * 64))
            for i in range(120)
        ]
        result = simulate(_trace(insts), num_slices=4, l2_cache_kb=256)
        assert result.stats.committed == 120


class TestReplayStorm:
    def test_alternating_store_load_same_line(self):
        """Maximum aliasing: every load races its predecessor store."""
        insts = []
        for i in range(80):
            if i % 2 == 0:
                insts.append(Instruction(
                    seq=i, pc=i, opcode=Opcode.ST, srcs=((i % 5) + 1, 2),
                    mem=MemAccess(address=0x800)))
            else:
                insts.append(Instruction(
                    seq=i, pc=i, opcode=Opcode.LD, srcs=(0,),
                    dst=(i % 5) + 1, mem=MemAccess(address=0x800)))
        result = simulate(_trace(insts), num_slices=4, l2_cache_kb=128)
        assert result.stats.committed == 80
        # The storm resolves through forwarding and/or bounded replay.
        assert result.stats.store_forwards + result.stats.lsq_violations > 0


class TestBranchWall:
    def test_every_instruction_is_a_branch(self):
        insts = []
        for i in range(100):
            taken = i % 3 == 0
            insts.append(Instruction(
                seq=i, pc=(i * 7) % 50, opcode=Opcode.BNE, srcs=(1,),
                taken=taken, target=((i + 1) * 7) % 50 if taken else None))
        result = simulate(_trace(insts), num_slices=4, l2_cache_kb=64)
        assert result.stats.committed == 100
        assert result.stats.branches == 100


class TestExtremeConfigurations:
    def test_eight_slices_tiny_trace(self):
        insts = [Instruction(seq=i, pc=i, opcode=Opcode.ADD, srcs=(0,),
                             dst=1) for i in range(4)]
        result = simulate(_trace(insts), num_slices=8, l2_cache_kb=8192)
        assert result.stats.committed == 4

    def test_zero_register_only_traffic(self):
        """Instructions reading/writing only the zero register carry no
        dependences and allocate no rename state."""
        insts = [Instruction(seq=i, pc=i, opcode=Opcode.ADD, srcs=(0, 0),
                             dst=0) for i in range(64)]
        result = simulate(_trace(insts), num_slices=2, l2_cache_kb=64)
        assert result.stats.committed == 64

    def test_dense_mul_chain_across_slices(self):
        insts = [Instruction(seq=i, pc=i, opcode=Opcode.MUL, srcs=(5,),
                             dst=5) for i in range(60)]
        result = simulate(_trace(insts), num_slices=8, l2_cache_kb=128)
        assert result.stats.committed == 60
        # Serial 3-cycle multiplies: at least 3 cycles per instruction.
        assert result.cycles >= 60 * 3
