"""Tests for Table 1's replicated/partitioned structure policies."""

import pytest

from repro.core.structures import (
    STRUCTURE_POLICIES,
    StructurePolicy,
    effective_capacity,
    partitioned_structures,
    replicated_structures,
)


class TestTable1:
    def test_paper_replicated_set(self):
        """Table 1: predictor, BTB, scoreboard, global RAT replicate."""
        assert set(replicated_structures()) == {
            "branch_predictor", "btb", "scoreboard", "global_rat"
        }

    def test_paper_partitioned_set(self):
        assert set(partitioned_structures()) == {
            "issue_window", "load_queue", "store_queue", "rob",
            "local_rat", "physical_rf",
        }

    def test_every_structure_classified(self):
        assert len(STRUCTURE_POLICIES) == 10
        for policy in STRUCTURE_POLICIES.values():
            assert isinstance(policy, StructurePolicy)


class TestEffectiveCapacity:
    def test_partitioned_capacity_scales(self):
        assert effective_capacity("rob", 64, 1) == 64
        assert effective_capacity("rob", 64, 8) == 512

    def test_replicated_capacity_does_not_scale(self):
        assert effective_capacity("btb", 512, 1) == 512
        assert effective_capacity("btb", 512, 8) == 512

    def test_unknown_structure(self):
        with pytest.raises(KeyError):
            effective_capacity("flux_capacitor", 1, 1)

    def test_invalid_slice_count(self):
        with pytest.raises(ValueError):
            effective_capacity("rob", 64, 0)
