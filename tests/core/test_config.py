"""Tests for SSim configuration (Tables 2-3, XML interface)."""

import pytest

from repro.core.config import (
    CacheConfig,
    CacheLevelConfig,
    SimConfig,
    SliceConfig,
    VCoreConfig,
)


class TestTableDefaults:
    def test_table2_slice_defaults(self):
        cfg = SliceConfig()
        assert cfg.issue_window_size == 32
        assert cfg.lsq_size == 32
        assert cfg.num_functional_units == 2
        assert cfg.rob_size == 64
        assert cfg.num_local_registers == 64
        assert cfg.store_buffer_size == 8
        assert cfg.max_inflight_loads == 8
        assert cfg.fetch_width == 2

    def test_table3_cache_defaults(self):
        cfg = CacheConfig()
        assert cfg.l1i.size_kb == 16 and cfg.l1i.assoc == 2
        assert cfg.l1d.hit_delay == 3
        assert cfg.l2_bank_kb == 64 and cfg.l2_assoc == 4
        assert cfg.memory_delay == 100


class TestVCoreConfig:
    def test_equation3_bounds(self):
        with pytest.raises(ValueError):
            VCoreConfig(num_slices=9)
        with pytest.raises(ValueError):
            VCoreConfig(num_slices=0)
        with pytest.raises(ValueError):
            VCoreConfig(l2_cache_kb=8193)

    def test_bank_count(self):
        assert VCoreConfig(l2_cache_kb=256).num_l2_banks == 4
        assert VCoreConfig(l2_cache_kb=0).num_l2_banks == 0

    def test_explicit_distances_validated(self):
        cfg = VCoreConfig(l2_cache_kb=128, l2_bank_distances=[1, 2])
        assert cfg.bank_distances() == [1, 2]
        bad = VCoreConfig(l2_cache_kb=128, l2_bank_distances=[1])
        with pytest.raises(ValueError):
            bad.bank_distances()

    def test_with_vcore_helper(self):
        cfg = SimConfig().with_vcore(num_slices=4, l2_cache_kb=512)
        assert cfg.vcore.num_slices == 4
        assert cfg.vcore.l2_cache_kb == 512


class TestXMLInterface:
    def test_roundtrip(self):
        original = SimConfig().with_vcore(num_slices=3, l2_cache_kb=192)
        parsed = SimConfig.from_xml(original.to_xml())
        assert parsed.vcore.num_slices == 3
        assert parsed.vcore.l2_cache_kb == 192
        assert parsed.slice_config.issue_window_size == 32

    def test_parse_custom_parameters(self):
        xml = """
        <ssim>
          <slice issue_window_size="16" rob_size="32"/>
          <cache memory_delay="200"/>
          <vcore num_slices="2" l2_cache_kb="128.0"/>
          <timing frontend_depth="5"/>
        </ssim>
        """
        cfg = SimConfig.from_xml(xml)
        assert cfg.slice_config.issue_window_size == 16
        assert cfg.slice_config.rob_size == 32
        assert cfg.cache_config.memory_delay == 200
        assert cfg.vcore.num_slices == 2
        assert cfg.frontend_depth == 5

    def test_rejects_wrong_root(self):
        with pytest.raises(ValueError):
            SimConfig.from_xml("<simulator/>")

    def test_rejects_unknown_field(self):
        with pytest.raises(ValueError):
            SimConfig.from_xml('<ssim><slice warp_drive="1"/></ssim>')

    def test_rejects_invalid_cache_level(self):
        with pytest.raises(ValueError):
            CacheLevelConfig(size_kb=-1)
