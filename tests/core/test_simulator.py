"""Tests for the SSim cycle-level simulator."""

import pytest

from repro.core.config import SimConfig
from repro.core.simulator import SharingSimulator, SimulationTimeout, simulate
from repro.isa import Instruction, MemAccess, Opcode
from repro.trace.generator import generate_trace, make_workload
from repro.trace.records import Trace, TraceMetadata


def _trace(insts):
    return Trace(insts, TraceMetadata(benchmark="unit", seed=0,
                                      length=len(insts)))


def _alu_stream(n, dep_chain=False, opcode=Opcode.ADD):
    insts = []
    for i in range(n):
        srcs = (2,) if dep_chain else (0,)
        insts.append(Instruction(seq=i, pc=i, opcode=opcode,
                                 srcs=srcs, dst=2))
    return _trace(insts)


class TestBasicExecution:
    def test_commits_whole_trace(self):
        result = simulate(_alu_stream(200), num_slices=1, l2_cache_kb=64)
        assert result.stats.committed == 200
        assert result.cycles > 0

    def test_independent_stream_near_full_throughput(self):
        """One ALU per Slice: independent ALU ops run near IPC 1."""
        result = simulate(_alu_stream(1000), num_slices=1, l2_cache_kb=64)
        assert result.ipc > 0.8

    def test_dependence_chain_serializes(self):
        """A dependent chain of 3-cycle multiplies runs at ~1/3 the rate
        of independent multiplies (the single MUL unit is pipelined)."""
        chained = simulate(_alu_stream(400, dep_chain=True,
                                       opcode=Opcode.MUL),
                           num_slices=1, l2_cache_kb=64)
        parallel = simulate(_alu_stream(400, opcode=Opcode.MUL),
                            num_slices=1, l2_cache_kb=64)
        assert chained.cycles > parallel.cycles * 1.5

    def test_more_slices_help_parallel_work(self):
        one = simulate(_alu_stream(1000), num_slices=1, l2_cache_kb=64)
        four = simulate(_alu_stream(1000), num_slices=4, l2_cache_kb=64)
        assert four.cycles < one.cycles

    def test_result_records_configuration(self):
        result = simulate(_alu_stream(50), num_slices=2, l2_cache_kb=128)
        assert result.num_slices == 2
        assert result.l2_cache_kb == 128
        assert result.benchmark == "unit"


class TestMemorySystem:
    def test_loads_execute_and_complete(self):
        insts = []
        for i in range(100):
            insts.append(Instruction(
                seq=i, pc=i, opcode=Opcode.LD, srcs=(0,), dst=(i % 30) + 1,
                mem=MemAccess(address=(i % 8) * 64),
            ))
        result = simulate(_trace(insts), num_slices=2, l2_cache_kb=128)
        assert result.stats.committed == 100
        assert result.stats.l1d_accesses > 0

    def test_store_load_forwarding_or_violation_handling(self):
        insts = []
        seq = 0
        for i in range(50):
            insts.append(Instruction(seq=seq, pc=seq, opcode=Opcode.ST,
                                     srcs=(0, 0),
                                     mem=MemAccess(address=0x1000)))
            seq += 1
            insts.append(Instruction(seq=seq, pc=seq, opcode=Opcode.LD,
                                     srcs=(0,), dst=5,
                                     mem=MemAccess(address=0x1000)))
            seq += 1
        result = simulate(_trace(insts), num_slices=2, l2_cache_kb=64)
        assert result.stats.committed == 100
        # Same-address traffic exercises forwarding and/or replay.
        assert (result.stats.store_forwards + result.stats.lsq_violations) > 0

    def test_warmup_addresses_reduce_misses(self):
        warmup, trace = make_workload("gcc", 1500, seed=3)
        cold = simulate(trace, num_slices=2, l2_cache_kb=512)
        warm = simulate(trace, num_slices=2, l2_cache_kb=512,
                        warmup_addresses=warmup)
        assert warm.stats.l2_miss_rate <= cold.stats.l2_miss_rate


class TestBranches:
    def test_branch_statistics_collected(self):
        trace = generate_trace("sjeng", 1500, seed=2)
        result = simulate(trace, num_slices=2, l2_cache_kb=128)
        assert result.stats.branches > 0
        assert 0.5 <= result.stats.branch_accuracy <= 1.0

    def test_predictable_branches_learned(self):
        trace = generate_trace("libquantum", 2000, seed=2)
        result = simulate(trace, num_slices=1, l2_cache_kb=128)
        assert result.stats.branch_accuracy > 0.9


class TestRobustness:
    def test_timeout_raises(self):
        import dataclasses
        cfg = dataclasses.replace(SimConfig(), max_cycles=3)
        with pytest.raises(SimulationTimeout):
            SharingSimulator(_alu_stream(1000), cfg).run()

    def test_timeout_keyword(self):
        with pytest.raises(SimulationTimeout):
            SharingSimulator(_alu_stream(1000), timeout=3).run()
        with pytest.raises(SimulationTimeout):
            simulate(_alu_stream(1000), timeout=3)

    def test_simulator_vcore_keywords_match_simulate(self):
        """SharingSimulator takes the same num_slices/l2_cache_kb
        keywords as simulate() and builds the same configuration."""
        trace = generate_trace("gcc", 500, seed=3)
        via_wrapper = simulate(trace, num_slices=3, l2_cache_kb=256)
        sim = SharingSimulator(trace, num_slices=3, l2_cache_kb=256)
        assert sim.config.vcore.num_slices == 3
        assert sim.config.vcore.l2_cache_kb == 256
        assert sim.run().cycles == via_wrapper.cycles

    def test_partial_vcore_override_keeps_config(self):
        import dataclasses
        from repro.core.config import VCoreConfig
        base = dataclasses.replace(
            SimConfig(), vcore=VCoreConfig(num_slices=4, l2_cache_kb=512)
        )
        sim = SharingSimulator(_alu_stream(10), config=base, num_slices=2)
        assert sim.config.vcore.num_slices == 2
        assert sim.config.vcore.l2_cache_kb == 512

    def test_every_benchmark_simulates(self):
        from repro.trace import all_benchmarks
        for bench in all_benchmarks()[:5]:
            trace = generate_trace(bench, 400, seed=1)
            result = simulate(trace, num_slices=2, l2_cache_kb=128)
            assert result.stats.committed == 400

    def test_all_slice_counts_run(self):
        trace = generate_trace("gcc", 600, seed=1)
        for s in range(1, 9):
            result = simulate(trace, num_slices=s, l2_cache_kb=128)
            assert result.stats.committed == 600

    def test_deterministic(self):
        trace = generate_trace("gcc", 800, seed=4)
        a = simulate(trace, num_slices=4, l2_cache_kb=256)
        b = simulate(trace, num_slices=4, l2_cache_kb=256)
        assert a.cycles == b.cycles
