"""Tests for the unordered, address-banked LSQ."""

import pytest

from repro.core.lsq import DistributedLSQ, LSQBank


class TestLSQBank:
    def test_capacity_and_force(self):
        bank = LSQBank(capacity=1)
        assert bank.insert(0, is_store=False, line=1, resolved_cycle=5)
        assert bank.insert(1, is_store=False, line=2, resolved_cycle=6) is None
        assert bank.full_stalls == 1
        # The ROB-head entry may exceed capacity so commit never deadlocks.
        assert bank.insert(1, is_store=False, line=2, resolved_cycle=6,
                           force=True)

    def test_forwarding_youngest_older_store(self):
        bank = LSQBank(capacity=8)
        bank.insert(1, is_store=True, line=7, resolved_cycle=5)
        bank.insert(3, is_store=True, line=7, resolved_cycle=6)
        bank.insert(4, is_store=True, line=9, resolved_cycle=6)
        fwd = bank.find_forwarding_store(load_seq=5, line=7)
        assert fwd.seq == 3  # youngest older store to the same line
        assert bank.forwards == 1

    def test_forwarding_respects_resolution_time(self):
        bank = LSQBank(capacity=8)
        bank.insert(1, is_store=True, line=7, resolved_cycle=50)
        assert bank.find_forwarding_store(5, 7, before_cycle=10) is None
        assert bank.find_forwarding_store(5, 7, before_cycle=60) is not None

    def test_store_commit_violation_detection(self):
        """Paper Figure 9: committing store checks younger loads."""
        bank = LSQBank(capacity=8)
        bank.insert(2, is_store=True, line=7, resolved_cycle=20)
        bank.insert(5, is_store=False, line=7, resolved_cycle=10)  # early load
        violators = bank.check_store_commit(store_seq=2, line=7)
        assert [v.seq for v in violators] == [5]

    def test_forwarded_load_is_not_a_violation(self):
        bank = LSQBank(capacity=8)
        bank.insert(2, is_store=True, line=7, resolved_cycle=5)
        entry = bank.insert(5, is_store=False, line=7, resolved_cycle=10)
        entry.forwarded_from = 2
        assert bank.check_store_commit(store_seq=2, line=7) == []

    def test_older_loads_are_safe(self):
        bank = LSQBank(capacity=8)
        bank.insert(1, is_store=False, line=7, resolved_cycle=3)
        bank.insert(2, is_store=True, line=7, resolved_cycle=20)
        assert bank.check_store_commit(store_seq=2, line=7) == []

    def test_squash_younger(self):
        bank = LSQBank(capacity=8)
        bank.insert(1, is_store=False, line=1, resolved_cycle=1)
        bank.insert(5, is_store=False, line=2, resolved_cycle=2)
        bank.insert(9, is_store=True, line=3, resolved_cycle=3)
        assert bank.squash_younger(4) == 2
        assert bank.occupancy() == 1


class TestDistributedLSQ:
    def test_same_line_same_home(self):
        """Section 3.5: accesses to one line always sort to one Slice, so
        no intra-VCore coherence is needed."""
        lsq = DistributedLSQ(num_slices=4)
        assert lsq.home_slice(0x100) == lsq.home_slice(0x13F)

    def test_lines_interleave_across_slices(self):
        lsq = DistributedLSQ(num_slices=4)
        homes = {lsq.home_slice(line * 64) for line in range(8)}
        assert homes == {0, 1, 2, 3}

    def test_aggregate_capacity_scales(self):
        """Section 3.6: aggregate LSQ capacity grows with Slices."""
        assert DistributedLSQ(1, bank_capacity=32).aggregate_capacity() == 32
        assert DistributedLSQ(8, bank_capacity=32).aggregate_capacity() == 256

    def test_stat_aggregation(self):
        lsq = DistributedLSQ(num_slices=2)
        bank = lsq.bank_for(0)
        bank.insert(2, is_store=True, line=0, resolved_cycle=1)
        bank.insert(5, is_store=False, line=0, resolved_cycle=0)
        bank.check_store_commit(2, 0)
        assert lsq.total_violations == 1

    def test_squash_younger_spans_banks(self):
        lsq = DistributedLSQ(num_slices=2)
        lsq.banks[0].insert(5, is_store=False, line=0, resolved_cycle=0)
        lsq.banks[1].insert(6, is_store=False, line=1, resolved_cycle=0)
        assert lsq.squash_younger(4) == 2
