"""Dual-path equivalence: the batched SoA backend vs the scalar simulator.

The batched backend (:mod:`repro.core.batched`) is an independent
re-implementation of the pipeline over flat columns; its only
correctness contract is **bit-identity** with the scalar
:class:`~repro.core.simulator.SharingSimulator` on every
:class:`~repro.core.stats.SimStats` field of every configuration.
These tests pin that contract:

* the Figure 12 grid (every Slice count at the 128 KB baseline) and the
  Figure 13 grid (every nonzero cache size at 4 Slices) for sentinel
  profiles in tier-1, and for **all fifteen** profiles when
  ``REPRO_EQUIVALENCE_FULL=1`` (the CI batched-equiv job sets it);
* randomized configurations drawn from ``REPRO_EQUIV_SEED`` (the CI job
  runs two seed universes), exercising the multi-trace lane axis;
* equality is ``SimResult == SimResult`` - cycles, every event counter
  and the full stall breakdown - not an IPC tolerance band.
"""

import os
import random

import pytest

from repro.core.batched import BatchedSimulator
from repro.core.simulator import simulate
from repro.trace.materialize import get_workload
from repro.trace.profiles import all_benchmarks

LENGTH = 4000
SEED = 1

#: Figure 12 axis: Slice scaling at the paper's 128 KB baseline.
FIG12_GRID = tuple((ns, 128.0) for ns in (1, 2, 3, 4, 5, 6, 7, 8))
#: Figure 13 axis: cache scaling at 4 Slices (0 KB is analytic-only).
FIG13_GRID = tuple((4, float(kb))
                   for kb in (64, 128, 256, 512, 1024, 2048, 4096, 8192))

SENTINELS = ("gcc", "swaptions", "astar")

FULL = os.environ.get("REPRO_EQUIVALENCE_FULL") == "1"
EQUIV_SEED = int(os.environ.get("REPRO_EQUIV_SEED", "0"))


def _diff(bench, ns, kb, scalar, batched):
    lines = [f"{bench} ns={ns} kb={kb:g}: batched diverged"]
    for field in scalar.stats.__dataclass_fields__:
        a = getattr(scalar.stats, field)
        b = getattr(batched.stats, field)
        if a != b:
            lines.append(f"  {field}: scalar={a} batched={b}")
    return "\n".join(lines)


def _check_profile(bench, grid):
    warmup, trace = get_workload(bench, LENGTH, SEED)
    batched = BatchedSimulator(trace, list(grid),
                               warmup_addresses=[warmup]).run()
    for (ns, kb), got in zip(grid, batched):
        want = simulate(trace, num_slices=ns, l2_cache_kb=kb,
                        warmup_addresses=warmup)
        assert want == got, _diff(bench, ns, kb, want, got)


@pytest.mark.parametrize("bench", SENTINELS)
def test_sentinel_fig12_grid(bench):
    _check_profile(bench, FIG12_GRID)


@pytest.mark.parametrize("bench", SENTINELS)
def test_sentinel_fig13_grid(bench):
    _check_profile(bench, FIG13_GRID)


@pytest.mark.skipif(not FULL, reason="set REPRO_EQUIVALENCE_FULL=1 "
                    "for the full fifteen-profile sweep (CI batched-equiv)")
@pytest.mark.parametrize("bench", sorted(all_benchmarks()))
def test_full_profile_sweep(bench):
    if not FULL:  # pragma: no cover - skipif handles it
        return
    _check_profile(bench, FIG12_GRID + FIG13_GRID)


def test_randomized_rows_multi_trace():
    """Seeded random configurations on the shared multi-trace lane axis.

    One BatchedSimulator instance carries lanes over *different* traces
    (the ``(trace_index, num_slices, l2_cache_kb)`` spec form); every
    lane must still match its own scalar run exactly.
    """
    rng = random.Random(EQUIV_SEED)
    benches = rng.sample(sorted(all_benchmarks()), 3)
    workloads = [get_workload(b, rng.randrange(2500, 6000), rng.randrange(100))
                 for b in benches]
    lanes = []
    for tidx in range(len(benches)):
        for _ in range(2):
            lanes.append((tidx, rng.randrange(1, 9),
                          float(rng.choice((64, 128, 256, 512, 1024)))))
    batched = BatchedSimulator(
        [trace for _, trace in workloads], lanes,
        warmup_addresses=[warm for warm, _ in workloads]).run()
    for (tidx, ns, kb), got in zip(lanes, batched):
        warm, trace = workloads[tidx]
        want = simulate(trace, num_slices=ns, l2_cache_kb=kb,
                        warmup_addresses=warm)
        assert want == got, _diff(benches[tidx], ns, kb, want, got)


def test_sampled_composition_matches_scalar_sampled():
    """Interval sampling composed with the batched backend must produce
    the same extrapolated result as the scalar SampledSimulator."""
    from repro.sampling import SamplingConfig, simulate_sampled

    warmup, trace = get_workload("gcc", 30_000, 3)
    sampling = SamplingConfig(interval=3000, warmup=300, detail=900)
    scalar = simulate_sampled(trace, num_slices=4, l2_cache_kb=256.0,
                              sampling=sampling, warmup_addresses=warmup)
    batched = simulate_sampled(trace, num_slices=4, l2_cache_kb=256.0,
                               sampling=sampling, warmup_addresses=warmup,
                               backend="batched")
    assert scalar == batched


def test_backend_dispatch_through_simulate():
    """``simulate(..., backend="batched")`` and ``SimConfig.backend``
    both route to the batched backend and agree with the scalar path."""
    from repro.core.config import SimConfig

    warmup, trace = get_workload("mcf", 3000, 2)
    want = simulate(trace, num_slices=2, l2_cache_kb=256.0,
                    warmup_addresses=warmup)
    via_kwarg = simulate(trace, num_slices=2, l2_cache_kb=256.0,
                         warmup_addresses=warmup, backend="batched")
    via_config = simulate(trace, num_slices=2, l2_cache_kb=256.0,
                          warmup_addresses=warmup,
                          config=SimConfig(backend="batched"))
    assert want == via_kwarg == via_config
    with pytest.raises(ValueError):
        simulate(trace, num_slices=2, l2_cache_kb=256.0,
                 warmup_addresses=warmup, backend="fortran")


def test_predictor_tensor_exports():
    """The numpy views of the per-lane predictor/BTB state expose the
    (lane, slice, entry) layout with construction-value padding for
    Slices a narrower lane does not have."""
    warmup, trace = get_workload("gcc", 2000, 5)
    sim = BatchedSimulator(trace, [(2, 128.0), (4, 128.0)],
                           warmup_addresses=[warmup])
    sim.run()
    pred = sim.pred_tensor()
    btb = sim.btb_tensor()
    assert pred.shape == (2, 4, sim.bp_entries)
    assert btb.shape == (2, 4, sim.btb_entries)
    # Live entries are 2-bit counters; the trained tables moved off the
    # all-ones init somewhere.
    assert pred.min() >= 0 and pred.max() <= 3
    assert (pred != 1).any() and (btb != -1).any()
    # Lane 0 has only 2 Slices: rows 2..3 stay at the pad values.
    assert (pred[0, 2:] == 1).all()
    assert (btb[0, 2:] == -1).all()
