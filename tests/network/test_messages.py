"""Tests for typed network messages."""

from repro.network.messages import (
    CacheReply,
    CacheRequest,
    MemSortMessage,
    MessageKind,
    OperandReply,
    OperandRequest,
    RenameBroadcast,
    WakeupSignal,
)


class TestMessageKinds:
    def test_each_type_carries_its_kind(self):
        cases = [
            (OperandRequest(src=0, dst=1, sent_cycle=0),
             MessageKind.OPERAND_REQUEST),
            (OperandReply(src=0, dst=1, sent_cycle=0),
             MessageKind.OPERAND_REPLY),
            (WakeupSignal(src=0, dst=1, sent_cycle=0), MessageKind.WAKEUP),
            (RenameBroadcast(src=0, dst=1, sent_cycle=0),
             MessageKind.RENAME_BROADCAST),
            (MemSortMessage(src=0, dst=1, sent_cycle=0),
             MessageKind.MEM_SORT),
            (CacheRequest(src=0, dst=1, sent_cycle=0),
             MessageKind.CACHE_REQUEST),
            (CacheReply(src=0, dst=1, sent_cycle=0),
             MessageKind.CACHE_REPLY),
        ]
        for message, kind in cases:
            assert message.kind is kind

    def test_messages_are_immutable(self):
        msg = OperandRequest(src=0, dst=1, sent_cycle=0, global_reg=3)
        try:
            msg.global_reg = 4  # type: ignore[misc]
        except AttributeError:
            return
        raise AssertionError("message mutated")

    def test_payload_fields(self):
        sort = MemSortMessage(src=2, dst=0, sent_cycle=5, address=0x1000,
                              is_store=True, inst_seq=42)
        assert sort.address == 0x1000
        assert sort.is_store
        assert sort.inst_seq == 42
