"""Tests for the switched-network timing model."""

import pytest

from repro.network.messages import OperandRequest
from repro.network.switched import SwitchedNetwork
from repro.network.topology import Mesh2D


def _net(**kwargs):
    return SwitchedNetwork(Mesh2D(width=8, height=1), **kwargs)


class TestLatencyModel:
    def test_paper_nearest_neighbor_latency(self):
        """Section 3.4: two cycles between nearest-neighbour Slices."""
        assert _net().latency(0, 1) == 2

    def test_paper_per_hop_latency(self):
        """Section 3.4: one additional cycle per extra hop."""
        net = _net()
        assert net.latency(0, 2) == 3
        assert net.latency(0, 7) == 8

    def test_local_delivery_is_free(self):
        assert _net().latency(3, 3) == 0

    def test_send_uncontended(self):
        net = _net()
        msg = OperandRequest(src=0, dst=3, sent_cycle=10, global_reg=5,
                             consumer_seq=1)
        assert net.send(msg) == 10 + net.latency(0, 3)

    def test_stats_accumulate(self):
        net = _net()
        for i in range(3):
            net.send(OperandRequest(src=0, dst=1, sent_cycle=i,
                                    global_reg=0, consumer_seq=0))
        assert net.stats.messages == 3
        assert net.stats.mean_hops == 1.0
        assert net.stats.mean_latency == 2.0


class TestContention:
    def test_two_messages_share_a_link(self):
        net = _net(model_contention=True)
        m1 = OperandRequest(src=0, dst=2, sent_cycle=0, global_reg=0,
                            consumer_seq=0)
        m2 = OperandRequest(src=0, dst=2, sent_cycle=0, global_reg=1,
                            consumer_seq=1)
        t1 = net.send(m1)
        t2 = net.send(m2)
        assert t2 > t1  # second message queues behind the first

    def test_second_channel_removes_contention(self):
        single = _net(model_contention=True, channels=1)
        double = _net(model_contention=True, channels=2)
        msgs = [
            OperandRequest(src=0, dst=3, sent_cycle=0, global_reg=i,
                           consumer_seq=i)
            for i in range(2)
        ]
        t_single = [single.send(m) for m in msgs]
        t_double = [double.send(m) for m in msgs]
        assert t_double[1] <= t_single[1]

    def test_contention_never_beats_unloaded(self):
        net = _net(model_contention=True)
        for i in range(5):
            msg = OperandRequest(src=0, dst=4, sent_cycle=0, global_reg=i,
                                 consumer_seq=i)
            assert net.send(msg) >= net.latency(0, 4)

    def test_reset_clears_link_state(self):
        net = _net(model_contention=True)
        msg = OperandRequest(src=0, dst=2, sent_cycle=0, global_reg=0,
                             consumer_seq=0)
        first = net.send(msg)
        net.reset_stats()
        assert net.send(msg) == first


class TestValidation:
    def test_rejects_negative_delays(self):
        with pytest.raises(ValueError):
            _net(insertion_delay=-1)

    def test_rejects_zero_channels(self):
        with pytest.raises(ValueError):
            _net(channels=0)

    def test_rejects_negative_send_cycle(self):
        with pytest.raises(ValueError):
            OperandRequest(src=0, dst=1, sent_cycle=-1, global_reg=0,
                           consumer_seq=0)
