"""Tests for the 2-D mesh topology."""

import pytest

from repro.network.topology import Mesh2D


class TestMesh2D:
    def test_coords_roundtrip(self):
        mesh = Mesh2D(width=4, height=3)
        for node in range(mesh.num_nodes):
            x, y = mesh.coords(node)
            assert mesh.node_at(x, y) == node

    def test_manhattan_distance(self):
        mesh = Mesh2D(width=4, height=4)
        assert mesh.distance(0, 0) == 0
        assert mesh.distance(0, 3) == 3
        assert mesh.distance(0, mesh.node_at(3, 3)) == 6

    def test_distance_symmetry(self):
        mesh = Mesh2D(width=5, height=3)
        for a in range(mesh.num_nodes):
            for b in range(mesh.num_nodes):
                assert mesh.distance(a, b) == mesh.distance(b, a)

    def test_route_length_equals_distance(self):
        mesh = Mesh2D(width=4, height=4)
        for a in (0, 5, 10):
            for b in (3, 12, 15):
                assert len(mesh.route(a, b)) == mesh.distance(a, b)

    def test_route_is_x_then_y(self):
        mesh = Mesh2D(width=4, height=4)
        links = mesh.route(0, mesh.node_at(2, 2))
        xs = [mesh.coords(dst)[0] for _, dst in links]
        # X coordinate settles before Y movement begins.
        assert xs == sorted(xs[:2]) + [xs[-1]] * (len(xs) - 2)

    def test_neighbors_interior(self):
        mesh = Mesh2D(width=3, height=3)
        center = mesh.node_at(1, 1)
        assert len(list(mesh.neighbors(center))) == 4

    def test_neighbors_corner(self):
        mesh = Mesh2D(width=3, height=3)
        assert len(list(mesh.neighbors(0))) == 2

    def test_row_run(self):
        mesh = Mesh2D(width=4, height=2)
        assert mesh.row(1, start_x=1, count=2) == [
            mesh.node_at(1, 1), mesh.node_at(2, 1)
        ]

    def test_row_overflow_rejected(self):
        mesh = Mesh2D(width=4, height=2)
        with pytest.raises(ValueError):
            mesh.row(0, start_x=3, count=2)

    def test_out_of_range_node(self):
        mesh = Mesh2D(width=2, height=2)
        with pytest.raises(ValueError):
            mesh.coords(4)

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            Mesh2D(width=0, height=1)
