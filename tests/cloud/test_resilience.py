"""Fault injection, invariant auditing, and checkpoint/restore."""

import json

import pytest

from repro.cloud.errors import InvariantViolation, SimulatedCrash
from repro.cloud.fabric import Fabric
from repro.cloud.resilience import (
    DEFAULT_INJECT_KINDS,
    FAULT_KINDS,
    STATE_NEUTRAL_KINDS,
    FaultEvent,
    FaultInjector,
    FaultPlan,
    load_checkpoint,
    rng_state_from_json,
    rng_state_to_json,
    save_checkpoint,
    verify_invariants,
)
from repro.cloud.service import AllocationService, Event, TenantRequest
from repro.economics.utility import UTILITY1, UTILITY2


def tenant(name, budget=24.0, utility=UTILITY2):
    return TenantRequest(name=name, benchmark="gcc",
                         utility=utility, budget=budget)


def rack_service(**kwargs):
    kwargs.setdefault("backend", "python")
    return AllocationService(fabric=Fabric(16, 8), **kwargs)


def state_fingerprint(service):
    """Everything a state-neutral fault must leave untouched."""
    snap = service.snapshot()
    return (snap["prices"], snap["roster"], snap["fabric"])


class TestFaultPlan:
    def test_seeded_is_deterministic(self):
        a = FaultPlan.seeded(5000, 0.05, seed=9)
        b = FaultPlan.seeded(5000, 0.05, seed=9)
        assert list(a) == list(b)
        assert len(a) > 0

    def test_different_seeds_differ(self):
        a = FaultPlan.seeded(5000, 0.05, seed=1)
        b = FaultPlan.seeded(5000, 0.05, seed=2)
        assert list(a) != list(b)

    def test_rate_zero_is_empty(self):
        assert len(FaultPlan.seeded(1000, 0.0, seed=3)) == 0

    def test_rate_bounds(self):
        with pytest.raises(ValueError):
            FaultPlan.seeded(10, 1.5, seed=0)
        with pytest.raises(ValueError):
            FaultPlan.seeded(10, 0.5, seed=0, kinds=())

    def test_kind_validation(self):
        with pytest.raises(ValueError):
            FaultEvent(0, "meteor")
        with pytest.raises(ValueError):
            FaultEvent(-1, "crash")

    def test_at_and_counts(self):
        plan = FaultPlan([FaultEvent(3, "crash"),
                          FaultEvent(3, "unknown"),
                          FaultEvent(7, "duplicate")])
        assert {f.kind for f in plan.at(3)} == {"crash", "unknown"}
        assert plan.at(5) == ()
        assert plan.counts() == {"crash": 1, "unknown": 1,
                                 "duplicate": 1}

    def test_without_disarms_one_crash(self):
        plan = FaultPlan([FaultEvent(3, "crash"),
                          FaultEvent(3, "unknown"),
                          FaultEvent(9, "crash")])
        disarmed = plan.without(3, kind="crash")
        assert {f.kind for f in disarmed.at(3)} == {"unknown"}
        assert {f.kind for f in disarmed.at(9)} == {"crash"}

    def test_kind_taxonomy_is_consistent(self):
        assert set(STATE_NEUTRAL_KINDS) < set(FAULT_KINDS)
        assert set(DEFAULT_INJECT_KINDS) < set(FAULT_KINDS)
        assert "crash" not in DEFAULT_INJECT_KINDS
        assert "nonconverge" not in STATE_NEUTRAL_KINDS


class TestFaultInjector:
    def test_crash_raises_simulated_crash(self):
        injector = FaultInjector(FaultPlan([FaultEvent(4, "crash")]))
        service = rack_service()
        injector.perturb(service, 3)  # nothing scheduled
        with pytest.raises(SimulatedCrash) as exc:
            injector.perturb(service, 4)
        assert exc.value.index == 4

    def test_nonconverge_degrades_next_step(self):
        service = rack_service()
        service.submit(tenant("a"))
        injector = FaultInjector(
            FaultPlan([FaultEvent(0, "nonconverge")]))
        before = service.prices()
        injector.perturb(service, 0)
        result = service.step()
        assert result.degraded and not result.converged
        assert service.prices() == before
        assert service.summary().degraded_steps == 1
        # The very next step is healthy again.
        assert not service.step().degraded

    def test_malformed_and_unknown_are_dead_lettered(self):
        service = rack_service()
        service.submit(tenant("a"))
        plan = FaultPlan([FaultEvent(0, "malformed"),
                          FaultEvent(1, "unknown")])
        injector = FaultInjector(plan, seed=5)
        injector.perturb(service, 0)
        injector.perturb(service, 1)
        assert sum(service.dead_letter_counts.values()) == 2
        assert injector.counts == {"malformed": 1, "unknown": 1}

    def test_duplicate_dead_letters_active_tenant(self):
        service = rack_service()
        service.submit(tenant("a"))
        injector = FaultInjector(
            FaultPlan([FaultEvent(0, "duplicate")]))
        injector.perturb(service, 0)
        assert service.dead_letter_counts == {"duplicate_tenant": 1}
        assert service.dead_letters[-1]["tenant"] == "a"

    def test_duplicate_on_empty_roster_falls_back_to_unknown(self):
        service = rack_service()
        injector = FaultInjector(
            FaultPlan([FaultEvent(0, "duplicate")]))
        injector.perturb(service, 0)
        assert service.dead_letter_counts == {"unknown_tenant": 1}

    def test_state_neutral_kinds_leave_state_untouched(self):
        for kind in STATE_NEUTRAL_KINDS:
            service = rack_service()
            service.submit(tenant("a"))
            service.submit(tenant("b", budget=30.0, utility=UTILITY1))
            service.step()
            before = state_fingerprint(service)
            injector = FaultInjector(FaultPlan([FaultEvent(0, kind)]),
                                     seed=11)
            injector.perturb(service, 0)
            assert state_fingerprint(service) == before, kind

    def test_injector_snapshot_restore_round_trip(self):
        plan = FaultPlan([FaultEvent(i, "churn_burst")
                          for i in range(4)])
        a = FaultInjector(plan, seed=7)
        b = FaultInjector(plan, seed=7)
        service_a = rack_service()
        service_b = rack_service()
        a.perturb(service_a, 0)
        a.perturb(service_a, 1)
        state = json.loads(json.dumps(a.snapshot()))
        b.restore(state)
        assert b.counts == a.counts
        a.perturb(service_a, 2)
        b.perturb(service_b, 2)
        # Same rng draws and chaos-name serial after restore.
        assert a.snapshot() == b.snapshot()


class TestDeadLetterQueue:
    def test_queue_is_bounded_counts_are_not(self):
        service = rack_service(dead_letter_limit=4)
        for i in range(10):
            service.process(Event(kind="depart", tenant_id=f"g{i}"),
                            i, strict=False)
        assert len(service.dead_letters) == 4
        assert service.dead_letter_counts == {"unknown_tenant": 10}
        assert [d["tenant"] for d in service.dead_letters] == \
            ["g6", "g7", "g8", "g9"]

    def test_strict_mode_still_raises(self):
        service = rack_service()
        with pytest.raises(KeyError):
            service.process(Event(kind="depart", tenant_id="ghost"),
                            0, strict=True)
        assert not service.dead_letters

    def test_records_are_json_stable(self):
        service = rack_service()
        service.process(Event(kind="resize", tenant_id="ghost",
                              budget=5.0), 3, strict=False)
        record = service.dead_letters[-1]
        assert json.loads(json.dumps(record)) == record
        assert record["index"] == 3
        assert record["reason"] == "unknown_tenant"


class TestReadmission:
    def test_backoff_schedule(self):
        service = rack_service(readmit_backoff=8)
        service.note_capacity_rejection(tenant("late"), index=0)
        # Not eligible before the backoff expires.
        assert service.readmit_pending(5) == []
        assert service.summary().retry_pending == 1

    def test_queue_deduplicates_and_bounds(self):
        service = rack_service(readmit_queue_limit=2)
        service.note_capacity_rejection(tenant("a"), 0)
        service.note_capacity_rejection(tenant("a"), 1)
        service.note_capacity_rejection(tenant("b"), 2)
        service.note_capacity_rejection(tenant("c"), 3)
        assert service.summary().retry_pending == 2

    def test_readmits_after_capacity_frees(self):
        service = rack_service(readmit_backoff=1)
        # Fill the rack until someone bounces on capacity.
        rejected = None
        for i in range(64):
            result = service.submit(tenant(f"t{i}", budget=40.0))
            if not result.admitted:
                assert result.reason == "rejected_capacity"
                rejected = f"t{i}"
                break
        assert rejected is not None
        service.note_capacity_rejection(service_tenant(rejected), 0)
        # Free enough capacity, then retry past the backoff horizon.
        for name in list(service.active_tenants)[:4]:
            service.depart(name)
        readmitted = service.readmit_pending(10)
        assert readmitted == [rejected]
        assert rejected in service.active_tenants
        assert service.summary().readmitted == 1

    def test_skips_tenants_the_stream_already_resubmitted(self):
        service = rack_service(readmit_backoff=1)
        service.note_capacity_rejection(tenant("a"), 0)
        service.submit(tenant("a"))
        assert service.readmit_pending(10) == []
        assert service.summary().retry_pending == 0

    def test_attempts_are_capped(self):
        service = rack_service(readmit_attempts=2, readmit_backoff=1,
                               readmit_backoff_cap=2)
        # Keep the rack full so every retry re-bounces on capacity.
        for i in range(64):
            if not service.submit(tenant(f"t{i}", budget=40.0)).admitted:
                break
        service.note_capacity_rejection(tenant("late", budget=40.0), 0)
        index = 0
        for _ in range(10):
            index += 4
            service.readmit_pending(index)
            if service.summary().retry_pending == 0:
                break
        assert service.summary().retry_pending == 0
        assert "late" not in service.active_tenants


def service_tenant(name, budget=40.0):
    return TenantRequest(name=name, benchmark="gcc",
                         utility=UTILITY2, budget=budget)


class TestInvariants:
    def test_clean_service_passes(self):
        service = rack_service()
        for i in range(6):
            service.submit(tenant(f"t{i}", budget=20.0 + i))
        service.step()
        verify_invariants(service)
        service.verify_invariants()  # method alias

    def test_detects_foreign_fabric_owner(self):
        service = rack_service()
        service.submit(tenant("a"))
        run = service.fabric.find_contiguous_slices(1)
        service.fabric.claim(run, "ghost")
        with pytest.raises(InvariantViolation) as exc:
            verify_invariants(service)
        assert "ghost" in str(exc.value)

    def test_detects_roster_index_divergence(self):
        service = rack_service()
        service.submit(tenant("a"))
        service._by_name["phantom"] = service._by_name["a"]
        with pytest.raises(InvariantViolation):
            verify_invariants(service)

    def test_detects_bad_prices(self):
        service = rack_service()
        service.slice_price = -1.0
        with pytest.raises(InvariantViolation) as exc:
            verify_invariants(service)
        assert "slice_price" in str(exc.value)


class TestCheckpointHelpers:
    def test_rng_state_round_trip(self):
        import random

        rng = random.Random(42)
        rng.random()
        state = json.loads(json.dumps(rng_state_to_json(rng.getstate())))
        clone = random.Random()
        clone.setstate(rng_state_from_json(state))
        assert [rng.random() for _ in range(5)] == \
            [clone.random() for _ in range(5)]

    def test_save_load_round_trip(self, tmp_path):
        path = str(tmp_path / "sub" / "ckpt.json")
        payload = {"a": [1, 2.5, "x"], "b": {"c": None}}
        save_checkpoint(path, payload)
        assert load_checkpoint(path) == payload
        # Atomic write leaves no temp file behind.
        assert list((tmp_path / "sub").iterdir()) == \
            [tmp_path / "sub" / "ckpt.json"]


class TestServiceSnapshot:
    def build(self):
        service = rack_service()
        for i in range(5):
            service.submit(tenant(f"t{i}", budget=18.0 + 3 * i))
        service.step()
        assert service.active_tenants
        service.depart(service.active_tenants[0])
        service.process(Event(kind="depart", tenant_id="ghost"),
                        7, strict=False)
        service.note_capacity_rejection(tenant("late"), 8)
        return service

    def test_snapshot_json_round_trips(self):
        service = self.build()
        snap = service.snapshot()
        assert json.loads(json.dumps(snap)) == snap

    def test_restore_is_bit_exact(self):
        service = self.build()
        snap = json.loads(json.dumps(service.snapshot()))
        clone = rack_service()
        clone.restore(snap)
        assert clone.snapshot() == service.snapshot()
        # Both copies evolve identically afterwards.
        for svc in (service, clone):
            svc.submit(tenant("next", budget=21.0))
            svc.step()
        assert clone.snapshot() == service.snapshot()

    def test_restore_rejects_config_mismatch(self):
        snap = self.build().snapshot()
        other = AllocationService(slice_supply=4.0, bank_supply=4.0,
                                  backend="python")
        with pytest.raises(ValueError):
            other.restore(snap)

    def test_restore_passes_invariants(self):
        service = self.build()
        clone = rack_service()
        clone.restore(service.snapshot())
        verify_invariants(clone)
