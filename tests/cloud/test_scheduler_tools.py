"""Tests for the scheduler, meta-program, and auto-tuner."""

import pytest

from repro.cloud.autotuner import AutoTuner
from repro.cloud.fabric import Fabric
from repro.cloud.hypervisor import Hypervisor
from repro.cloud.metaprogram import MetaProgram, PriceQuote
from repro.cloud.scheduler import CloudScheduler, CustomerRequest
from repro.economics.utility import UTILITY1, UTILITY2, UTILITY3
from repro.perfmodel.model import AnalyticModel


class TestMetaProgram:
    def test_decision_matches_optimizer(self):
        meta = MetaProgram("gcc", UTILITY2, budget=24.0)
        decision = meta.decide(PriceQuote(slice_price=2, bank_price=1))
        assert decision.slices >= 1
        assert decision.expected_utility > 0

    def test_reacts_to_price_changes(self):
        """Expensive Slices push the customer toward cache (Section 4)."""
        meta = MetaProgram("gcc", UTILITY3, budget=24.0)
        cheap = meta.decide(PriceQuote(slice_price=2, bank_price=1))
        dear = meta.decide(PriceQuote(slice_price=16, bank_price=1))
        assert dear.slices <= cheap.slices

    def test_hysteresis_prevents_thrash(self):
        meta = MetaProgram("gcc", UTILITY2, budget=24.0)
        quote = PriceQuote(slice_price=2, bank_price=1)
        best = meta.decide(quote)
        assert not meta.would_reconfigure(
            (best.cache_kb, best.slices), quote
        )

    def test_bad_config_triggers_reconfigure(self):
        meta = MetaProgram("omnetpp", UTILITY3, budget=24.0)
        quote = PriceQuote(slice_price=2, bank_price=1)
        assert meta.would_reconfigure((0.0, 1), quote)

    def test_budget_validated(self):
        with pytest.raises(ValueError):
            MetaProgram("gcc", UTILITY1, budget=0)


class TestAutoTuner:
    def test_finds_model_optimum_region(self):
        model = AnalyticModel()
        measure = lambda c, s: model.performance("omnetpp", c, s)
        tuner = AutoTuner(measure, max_evaluations=72)
        result = tuner.tune(start_cache_kb=128, start_slices=2)
        # Hill climbing reaches a configuration close to the global best.
        best = max(
            model.performance("omnetpp", c, s)
            for c in tuner.cache_grid for s in tuner.slice_grid
        )
        assert result.best_score >= 0.8 * best

    def test_trajectory_is_monotone(self):
        model = AnalyticModel()
        tuner = AutoTuner(lambda c, s: model.performance("gcc", c, s))
        result = tuner.tune()
        scores = [score for _, _, score in result.trajectory]
        assert scores == sorted(scores)

    def test_respects_budget(self):
        calls = []
        tuner = AutoTuner(lambda c, s: calls.append(1) or 1.0,
                          max_evaluations=5)
        tuner.tune()
        assert len(calls) <= 5

    def test_off_grid_start_rejected(self):
        tuner = AutoTuner(lambda c, s: 1.0)
        with pytest.raises(ValueError):
            tuner.tune(start_cache_kb=100, start_slices=1)


class TestCloudScheduler:
    def _scheduler(self):
        return CloudScheduler(
            hypervisor=Hypervisor(Fabric(width=16, height=8))
        )

    def test_submit_places_vm(self):
        sched = self._scheduler()
        placement = sched.submit(
            CustomerRequest("gcc", UTILITY2, budget=24.0)
        )
        assert placement is not None
        assert placement.vm_id in sched.hypervisor.active_vms()
        assert placement.revenue > 0

    def test_many_customers_fill_the_fabric(self):
        sched = self._scheduler()
        requests = [
            CustomerRequest(bench, utility, budget=24.0)
            for bench in ("gcc", "bzip", "omnetpp", "hmmer")
            for utility in (UTILITY1, UTILITY2, UTILITY3)
        ]
        placements = sched.submit_all(requests)
        assert placements
        assert sched.utilization() > 0
        assert sched.total_revenue() > 0
        assert sched.total_utility() > 0

    def test_prices_rise_with_demand(self):
        sched = self._scheduler()
        initial = sched.slice_price
        for _ in range(6):
            sched.submit(CustomerRequest("gcc", UTILITY3, budget=48.0))
        # Loaded fabric -> tatonnement raises at least one price.
        assert sched.slice_price != initial or sched.bank_price != 1.0

    def test_oversized_request_degrades_gracefully(self):
        sched = CloudScheduler(
            hypervisor=Hypervisor(Fabric(width=6, height=2))
        )
        placement = sched.submit(
            CustomerRequest("gcc", UTILITY1, budget=500.0)
        )
        # Either a shrunken placement or a clean rejection.
        if placement is None:
            assert sched.rejected
        else:
            assert placement.vcores >= 1

    def test_validation(self):
        with pytest.raises(ValueError):
            CustomerRequest("gcc", UTILITY1, budget=0)
        with pytest.raises(ValueError):
            CloudScheduler(slice_price=0)
