"""Coupled shard groups: price averaging, determinism, checkpoints."""

import json

import pytest

np = pytest.importorskip("numpy")

from repro.cloud.shards import CoupledShards
from repro.experiments.datacenter_stream import (
    build_coupled_group,
    build_service,
    drive_coupled_stream,
    resume_coupled_stream,
)

TIMING_KEYS = {"events_per_s", "wall_s", "latency_p50_ms",
               "latency_p99_ms"}


def drive_kwargs(**overrides):
    kw = dict(active_target=32, resize_fraction=0.3, reprice_every=25,
              collect_latencies=False, strict=True, readmit=False,
              audit_every=0, checkpoint_every=0, on_checkpoint=None)
    kw.update(overrides)
    return kw


class TestConstruction:
    def test_validation(self):
        with pytest.raises(ValueError):
            CoupledShards([])
        with pytest.raises(ValueError):
            CoupledShards([build_service()], sync_every=0)

    def test_build_shares_one_kernel(self):
        group = build_coupled_group(3, sync_every=100)
        kernels = {id(s.kernel) for s in group.services}
        assert len(kernels) == 1


class TestCoupling:
    def test_sync_broadcasts_mean(self):
        group = build_coupled_group(2, sync_every=100)
        a, b = group.services
        a._set_prices(0.4, 0.8)
        b._set_prices(0.2, 0.4)
        slice_price, bank_price = group.sync()
        assert slice_price == pytest.approx(0.3)
        assert bank_price == pytest.approx(0.6)
        assert a.slice_price == b.slice_price == slice_price
        assert a.bank_price == b.bank_price == bank_price
        assert group.n_syncs == 1

    def test_quiescent_sync_does_not_bump_epochs(self):
        group = build_coupled_group(2, sync_every=100)
        group.sync()
        epochs = [s._price_epoch for s in group.services]
        group.sync()
        assert [s._price_epoch for s in group.services] == epochs


class TestDeterminism:
    def test_same_seed_same_run(self):
        runs = []
        for _ in range(2):
            group = build_coupled_group(2, sync_every=100)
            stats, _ = drive_coupled_stream(group, 1200, seed=5,
                                            **drive_kwargs())
            runs.append((stats, group.snapshot()))
        (s1, snap1), (s2, snap2) = runs
        for key in s1:
            if key not in TIMING_KEYS:
                assert s1[key] == s2[key], key
        assert snap1 == snap2

    def test_events_split_across_shards(self):
        group = build_coupled_group(3, sync_every=50)
        stats, _ = drive_coupled_stream(group, 1000, seed=5,
                                        **drive_kwargs())
        assert stats["events"] == 1000.0
        assert stats["price_syncs"] >= 1


class TestCheckpointRestore:
    def test_snapshot_restore_round_trip(self):
        group = build_coupled_group(2, sync_every=100)
        drive_coupled_stream(group, 800, seed=3, **drive_kwargs())
        snap = json.loads(json.dumps(group.snapshot()))
        twin = build_coupled_group(2, sync_every=100)
        twin.restore(snap)
        assert twin.snapshot() == snap
        twin.verify_invariants()

    def test_restore_rejects_mismatched_group(self):
        group = build_coupled_group(2, sync_every=100)
        snap = group.snapshot()
        with pytest.raises(ValueError):
            build_coupled_group(3, sync_every=100).restore(snap)
        with pytest.raises(ValueError):
            build_coupled_group(2, sync_every=99).restore(snap)

    def test_resume_bit_equal_to_uninterrupted(self):
        full = build_coupled_group(2, sync_every=100)
        full_stats, _ = drive_coupled_stream(full, 2000, seed=7,
                                             **drive_kwargs())

        captured = []
        crash = build_coupled_group(2, sync_every=100)
        drive_coupled_stream(
            crash, 2000, seed=7,
            **drive_kwargs(
                checkpoint_every=1000,
                on_checkpoint=lambda done, cp: captured.append(cp)))
        assert captured

        checkpoint = json.loads(json.dumps(captured[0]))
        resumed = build_coupled_group(2, sync_every=100)
        stats, _ = resume_coupled_stream(resumed, checkpoint, 2000,
                                         **drive_kwargs())
        assert resumed.prices() == full.prices()
        assert (resumed.snapshot()["shards"]
                == full.snapshot()["shards"])
        for key in ("active_tenants", "slice_price", "bank_price",
                    "final_fragmentation"):
            assert stats[key] == full_stats[key], key


class TestSummary:
    def test_summary_totals_aggregates(self):
        group = build_coupled_group(2, sync_every=100)
        stats, _ = drive_coupled_stream(group, 600, seed=9,
                                        **drive_kwargs())
        totals = group.summary_totals()
        assert totals["admitted"] == stats["admitted"]
        assert totals["price_syncs"] == group.n_syncs
        assert totals["active_tenants"] == stats["active_tenants"]
