"""Tests for the manycore fabric."""

import pytest

from repro.cloud.fabric import AllocationError, Fabric, TileKind


class TestLayout:
    def test_default_alternating_columns(self):
        fabric = Fabric(width=4, height=2)
        assert fabric.num_slices == 4
        assert fabric.num_banks == 4

    def test_custom_bank_columns(self):
        fabric = Fabric(width=4, height=1, bank_columns=[3])
        assert fabric.num_slices == 3
        assert fabric.num_banks == 1

    def test_hundreds_of_tiles(self):
        """Paper: 'A full chip will have 100's of Slices and Cache
        Banks.'"""
        fabric = Fabric(width=32, height=16)
        assert fabric.num_slices >= 100
        assert fabric.num_banks >= 100


class TestAllocation:
    def test_contiguous_slice_run(self):
        fabric = Fabric(width=8, height=2)
        run = fabric.find_contiguous_slices(3)
        assert run is not None and len(run) == 3
        ys = {fabric.mesh.coords(n)[1] for n in run}
        assert len(ys) == 1  # single row

    def test_claim_and_release(self):
        fabric = Fabric(width=8, height=2)
        run = fabric.find_contiguous_slices(2)
        fabric.claim(run, owner="vm0")
        assert all(fabric.owner_of(n) == "vm0" for n in run)
        assert fabric.owned_by("vm0") == sorted(run)
        freed = fabric.release("vm0")
        assert sorted(freed) == sorted(run)
        assert all(fabric.is_free(n) for n in run)

    def test_double_claim_rejected(self):
        fabric = Fabric(width=8, height=2)
        run = fabric.find_contiguous_slices(2)
        fabric.claim(run, owner="vm0")
        with pytest.raises(AllocationError):
            fabric.claim(run, owner="vm1")

    def test_nearest_banks_sorted_by_distance(self):
        fabric = Fabric(width=8, height=4)
        anchor = fabric.tiles(TileKind.SLICE)[0]
        banks = fabric.find_nearest_banks(anchor, 4)
        distances = [fabric.mesh.distance(anchor, b) for b in banks]
        assert distances == sorted(distances)

    def test_nearest_banks_capacity_error(self):
        fabric = Fabric(width=4, height=1)
        anchor = fabric.tiles(TileKind.SLICE)[0]
        with pytest.raises(AllocationError):
            fabric.find_nearest_banks(anchor, 100)

    def test_no_contiguous_run_returns_none(self):
        fabric = Fabric(width=4, height=1)  # two slice tiles per row
        assert fabric.find_contiguous_slices(3) is None

    def test_utilization(self):
        fabric = Fabric(width=4, height=1)
        assert fabric.utilization() == 0.0
        run = fabric.find_contiguous_slices(1)
        fabric.claim(run, owner="x")
        assert fabric.utilization() == pytest.approx(0.25)

    def test_defragment_capacity_check(self):
        fabric = Fabric(width=4, height=1)
        assert fabric.defragment_candidates(2)
        assert not fabric.defragment_candidates(3)
