"""The typed service-error taxonomy and its backward compatibility."""

import pytest

from repro.cloud.errors import (
    DuplicateTenantError,
    EventValidationError,
    InvariantViolation,
    ServiceError,
    SimulatedCrash,
    UnknownTenantError,
)
from repro.cloud.service import AllocationService, Event, TenantRequest
from repro.economics.utility import UTILITY2


def tenant(name, budget=24.0):
    return TenantRequest(name=name, benchmark="gcc",
                         utility=UTILITY2, budget=budget)


def service():
    return AllocationService(slice_supply=64.0, bank_supply=64.0,
                             backend="python")


class TestTaxonomy:
    def test_reason_slugs(self):
        assert UnknownTenantError("x").reason == "unknown_tenant"
        assert DuplicateTenantError("x").reason == "duplicate_tenant"
        assert EventValidationError("x").reason == "invalid_event"
        assert InvariantViolation("x").reason == "invariant_violation"

    def test_all_are_service_errors(self):
        for cls in (UnknownTenantError, DuplicateTenantError,
                    EventValidationError, InvariantViolation):
            assert issubclass(cls, ServiceError)

    def test_simulated_crash_is_not_absorbed_as_service_error(self):
        # Lenient mode must never swallow a crash.
        assert not issubclass(SimulatedCrash, ServiceError)
        assert SimulatedCrash(42).index == 42

    def test_tenant_attribute(self):
        err = UnknownTenantError("no tenant 'bob'", tenant="bob")
        assert err.tenant == "bob"

    def test_str_is_prose_not_keyerror_repr(self):
        # Plain KeyError would render as "'no tenant bob'" (quoted).
        err = UnknownTenantError("no tenant 'bob' registered")
        assert str(err) == "no tenant 'bob' registered"


class TestBackwardCompat:
    """Old call sites catch KeyError/ValueError; they must keep working."""

    def test_unknown_tenant_is_keyerror(self):
        svc = service()
        with pytest.raises(KeyError):
            svc.depart("ghost")
        with pytest.raises(UnknownTenantError):
            svc.resize("ghost", 10.0)
        with pytest.raises(KeyError):
            svc.tenant("ghost")

    def test_duplicate_is_valueerror(self):
        svc = service()
        svc.submit(tenant("a"))
        with pytest.raises(ValueError):
            svc.submit(tenant("a"))
        with pytest.raises(DuplicateTenantError) as exc:
            svc.submit(tenant("a"))
        assert exc.value.tenant == "a"

    def test_bad_event_is_valueerror(self):
        with pytest.raises(ValueError):
            Event(kind="arrive")
        with pytest.raises(EventValidationError):
            Event(kind="submit")
        with pytest.raises(ValueError):
            TenantRequest(name="a", benchmark="gcc",
                          utility=UTILITY2, budget=-1.0)

    def test_bad_resize_is_valueerror(self):
        svc = service()
        svc.submit(tenant("a"))
        with pytest.raises(ValueError):
            svc.resize("a", -5.0)
        with pytest.raises(EventValidationError):
            svc.resize("a", 0.0)


class TestEventSubject:
    def test_subject_names_the_tenant(self):
        assert Event(kind="submit",
                     tenant=tenant("a")).subject == "a"
        assert Event(kind="depart", tenant_id="b").subject == "b"
        assert Event(kind="resize", tenant_id="c",
                     budget=10.0).subject == "c"
