"""Tests for hypervisor defragmentation (paper Section 3's claim)."""

import pytest

from repro.cloud.fabric import Fabric
from repro.cloud.hypervisor import Hypervisor
from repro.cloud.vm import VMSpec


def _fragmented_hypervisor():
    """Interleave placements and teardowns so free Slices are scattered."""
    hv = Hypervisor(Fabric(width=16, height=2))
    keep, drop = [], []
    for i in range(6):
        vm = hv.place(VMSpec.uniform(1, 2, 64))
        assert vm is not None
        (keep if i % 2 == 0 else drop).append(vm.vm_id)
    for vm_id in drop:
        hv.teardown(vm_id)
    return hv


class TestDefragmentation:
    def test_repack_enables_blocked_placement(self):
        """The paper's claim, end to end: a large VCore that cannot be
        placed on the fragmented fabric fits after rescheduling."""
        hv = _fragmented_hypervisor()
        big = VMSpec.uniform(1, 6, 0)
        if hv.place(big) is not None:
            pytest.skip("fabric was not fragmented enough to block")
        report = hv.defragment()
        assert report["moved"] >= 1
        assert hv.place(big) is not None

    def test_costs_charged_per_moved_vcore(self):
        hv = _fragmented_hypervisor()
        before = hv.stats.reconfiguration_cycles
        report = hv.defragment()
        assert hv.stats.reconfiguration_cycles == before + report["cycles"]
        # A moved VCore pays at least the register flush.
        if report["moved"]:
            assert report["cycles"] >= 500 * report["moved"]

    def test_noop_when_already_compact(self):
        hv = Hypervisor(Fabric(width=16, height=2))
        hv.place(VMSpec.uniform(1, 2, 64))
        report = hv.defragment()
        assert report["moved"] == 0
        assert report["cycles"] == 0

    def test_all_vms_survive_defragmentation(self):
        hv = _fragmented_hypervisor()
        vms_before = set(hv.active_vms())
        hv.defragment()
        assert set(hv.active_vms()) == vms_before
        for vm_id in vms_before:
            instance = hv.instance(vm_id)
            for idx, vcore in enumerate(instance.spec.vcores):
                slices, banks = instance.placements[idx]
                assert len(slices) == vcore.num_slices
                assert len(banks) == vcore.num_banks
                # Ownership is consistent on the fabric.
                tag = instance.vcore_owner_tag(idx)
                for node in slices + banks:
                    assert hv.fabric.owner_of(node) == tag
