"""Equivalence tests for the indexed fabric fast paths.

The fabric's placement queries were rewritten from linear tile scans to
indexed structures (per-row free-run lists + a row-max segment tree for
``find_contiguous_slices``, Manhattan ring expansion for
``find_nearest_banks``).  These tests pin the new code to brute-force
reference scans built on the public API only: over thousands of
randomized claim/release operations, every query must return the exact
node list the old linear scan would have, and the O(1) ``free_count``
bookkeeping must match a full recount.
"""

import random

import pytest

from repro.cloud.fabric import AllocationError, Fabric, TileKind


def ref_find_contiguous(fabric, count):
    """Reference: scan rows left-to-right in slice-column order."""
    slice_cols = sorted({fabric.mesh.coords(n)[0]
                         for n in fabric.tiles(TileKind.SLICE)})
    for y in range(fabric.mesh.height):
        run = []
        for x in slice_cols:
            node = fabric.mesh.node_at(x, y)
            if fabric.is_free(node):
                run.append(node)
                if len(run) == count:
                    return run
            else:
                run = []
    return None


def ref_nearest_banks(fabric, anchor, count):
    """Reference: sort every free bank by (distance, node id)."""
    free = [n for n in fabric.tiles(TileKind.BANK) if fabric.is_free(n)]
    if len(free) < count:
        return None
    free.sort(key=lambda n: (fabric.mesh.distance(anchor, n), n))
    return free[:count]


def ref_free_counts(fabric):
    return {
        kind: sum(1 for n in fabric.tiles(kind) if fabric.is_free(n))
        for kind in (TileKind.SLICE, TileKind.BANK)
    }


@pytest.mark.parametrize("width,height,seed", [
    (16, 8, 1),
    (32, 16, 2),
    (17, 5, 3),  # odd width: unbalanced slice/bank columns
])
def test_randomized_equivalence(width, height, seed):
    fabric = Fabric(width=width, height=height)
    rng = random.Random(seed)
    owners = []
    next_id = 0
    for step in range(600):
        op = rng.random()
        if op < 0.45:
            count = rng.randint(1, 6)
            got = fabric.find_contiguous_slices(count)
            assert got == ref_find_contiguous(fabric, count)
            if got is not None:
                owner = f"vm{next_id}"
                next_id += 1
                fabric.claim(got, owner)
                owners.append(owner)
        elif op < 0.75:
            anchor = rng.choice(fabric.tiles(TileKind.SLICE))
            count = rng.randint(1, 8)
            want = ref_nearest_banks(fabric, anchor, count)
            if want is None:
                with pytest.raises(AllocationError):
                    fabric.find_nearest_banks(anchor, count)
                continue
            got = fabric.find_nearest_banks(anchor, count)
            assert got == want
            if rng.random() < 0.5:
                owner = f"vm{next_id}"
                next_id += 1
                fabric.claim(got, owner)
                owners.append(owner)
        elif owners:
            owner = owners.pop(rng.randrange(len(owners)))
            fabric.release(owner)
        if step % 50 == 0:
            want = ref_free_counts(fabric)
            assert fabric.free_count(TileKind.SLICE) == want[TileKind.SLICE]
            assert fabric.free_count(TileKind.BANK) == want[TileKind.BANK]
    # Drain and verify the fabric returns to fully free.
    for owner in owners:
        fabric.release(owner)
    assert fabric.free_count(TileKind.SLICE) == fabric.num_slices
    assert fabric.free_count(TileKind.BANK) == fabric.num_banks
    assert fabric.utilization() == 0.0


def test_full_fabric_has_no_runs():
    fabric = Fabric(width=8, height=4)
    while (run := fabric.find_contiguous_slices(1)) is not None:
        fabric.claim(run, f"vm{fabric.mesh.coords(run[0])}")
    assert fabric.find_contiguous_slices(1) is None
    assert fabric.free_count(TileKind.SLICE) == 0


def test_free_count_tracks_claim_release():
    fabric = Fabric(width=8, height=4)
    run = fabric.find_contiguous_slices(3)
    banks = fabric.find_nearest_banks(run[0], 2)
    fabric.claim(run + banks, "vm0")
    assert fabric.free_count(TileKind.SLICE) == fabric.num_slices - 3
    assert fabric.free_count(TileKind.BANK) == fabric.num_banks - 2
    fabric.release("vm0")
    assert fabric.free_count(TileKind.SLICE) == fabric.num_slices
    assert fabric.free_count(TileKind.BANK) == fabric.num_banks
