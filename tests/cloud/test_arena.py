"""The incremental tensor arena: slots, active view, layout."""

import numpy as np
import pytest

from repro.cloud.arena import TensorArena


def row(seed, width=6):
    rng = np.random.default_rng(seed)
    return rng.random(width)


def fresh_stack(arena, rows):
    """What ``np.stack`` over the roster would build."""
    names = arena.order
    return (np.stack([rows[n][0] for n in names]),
            np.array([[rows[n][1]] for n in names]),
            np.array([[rows[n][2]] for n in names]))


def assert_view_matches(arena, rows):
    view = arena.active_view()
    if not arena.order:
        assert view["perf_k"].shape[0] == 0
        return
    perf, inv, budgets = fresh_stack(arena, rows)
    assert np.array_equal(view["perf_k"], perf)
    assert np.array_equal(view["inv_k"], inv)
    assert np.array_equal(view["budgets"], budgets)


class TestSubmitDepart:
    def test_view_tracks_roster_order(self):
        arena = TensorArena(6, capacity=2)
        rows = {}
        for i, name in enumerate("abcd"):
            rows[name] = (row(i), 1.0 + i, 10.0 * (i + 1))
            arena.submit(name, *rows[name])
            assert_view_matches(arena, rows)
        arena.depart("b", 1)
        del rows["b"]
        assert arena.order == ["a", "c", "d"]
        assert_view_matches(arena, rows)
        arena.depart("d", 2)
        del rows["d"]
        assert_view_matches(arena, rows)

    def test_duplicate_submit_raises(self):
        arena = TensorArena(4)
        arena.submit("a", row(0, 4), 1.0, 1.0)
        with pytest.raises(ValueError):
            arena.submit("a", row(1, 4), 1.0, 1.0)

    def test_depart_validates_position(self):
        arena = TensorArena(4)
        arena.submit("a", row(0, 4), 1.0, 1.0)
        arena.submit("b", row(1, 4), 1.0, 1.0)
        with pytest.raises(ValueError):
            arena.depart("a", 1)
        with pytest.raises(ValueError):
            arena.depart("ghost", 0)

    def test_slot_reuse_is_lifo(self):
        arena = TensorArena(4)
        for name in "abc":
            arena.submit(name, row(ord(name), 4), 1.0, 1.0)
        arena.depart("a", 0)
        arena.depart("c", 1)
        assert arena.free_slots == [0, 2]
        assert arena.submit("d", row(5, 4), 1.0, 1.0) == 2
        assert arena.submit("e", row(6, 4), 1.0, 1.0) == 0
        assert arena.n_slot_reuse == 2

    def test_grow_doubles(self):
        arena = TensorArena(3, capacity=2)
        for i in range(5):
            arena.submit(f"t{i}", row(i, 3), 1.0, 1.0)
        assert arena.capacity == 8
        assert arena.n_grows >= 1
        rows = {f"t{i}": (row(i, 3), 1.0, 1.0) for i in range(5)}
        assert_view_matches(arena, rows)


class TestResize:
    def test_budget_write_in_place(self):
        arena = TensorArena(4)
        arena.submit("a", row(0, 4), 1.0, 5.0)
        arena.submit("b", row(1, 4), 1.0, 6.0)
        arena.set_budget("b", 1, 60.0)
        assert arena.active_view()["budgets"][1, 0] == 60.0
        assert arena.budgets[arena.slot_of["b"]] == 60.0
        with pytest.raises(ValueError):
            arena.set_budget("b", 0, 1.0)


class TestMaintenance:
    def make_fragmented(self):
        arena = TensorArena(4)
        rows = {}
        for i, name in enumerate("abcde"):
            rows[name] = (row(i, 4), 1.0 + i, float(i))
            arena.submit(name, *rows[name])
        arena.depart("b", 1)
        arena.depart("d", 2)
        del rows["b"], rows["d"]
        return arena, rows

    def test_compact_packs_roster_order(self):
        arena, rows = self.make_fragmented()
        arena.compact()
        assert arena.free_slots == []
        assert [arena.slot_of[n] for n in arena.order] == [0, 1, 2]
        assert_view_matches(arena, rows)
        # Slot storage now mirrors the view.
        for index, name in enumerate(arena.order):
            assert np.array_equal(arena.perf_k[index], rows[name][0])

    def test_layout_round_trip(self):
        arena, rows = self.make_fragmented()
        layout = arena.layout()
        twin = TensorArena(4)
        for name in arena.order:
            twin.submit(name, *rows[name])
        twin.adopt_layout(layout)
        assert twin.slot_of == arena.slot_of
        assert twin.free_slots == arena.free_slots
        assert twin._next_slot == arena._next_slot
        assert twin.capacity >= arena.capacity
        assert_view_matches(twin, rows)
        # The restored arena recycles the same slots the original would.
        arena.submit("x", row(9, 4), 1.0, 1.0)
        twin.submit("x", row(9, 4), 1.0, 1.0)
        assert arena.slot_of["x"] == twin.slot_of["x"]

    def test_adopt_layout_rejects_wrong_names(self):
        arena, rows = self.make_fragmented()
        layout = arena.layout()
        twin = TensorArena(4)
        twin.submit("zz", row(1, 4), 1.0, 1.0)
        with pytest.raises(ValueError):
            twin.adopt_layout(layout)

    def test_clear(self):
        arena, _ = self.make_fragmented()
        arena.clear()
        assert arena.order == [] and arena.n_active == 0
        assert arena.slot_of == {} and arena.free_slots == []
        assert arena.active_view()["perf_k"].shape[0] == 0
