"""The streaming allocation service: events, admission, placement."""

import pytest

from repro.cloud.fabric import Fabric, TileKind
from repro.cloud.service import (
    AllocationService,
    Event,
    StreamSummary,
    TenantRequest,
)
from repro.economics.utility import UTILITY1, UTILITY2, UTILITY3


def tenant(name, benchmark="gcc", utility=UTILITY2, budget=24.0):
    return TenantRequest(name=name, benchmark=benchmark,
                         utility=utility, budget=budget)


def economics_service(**kwargs):
    kwargs.setdefault("slice_supply", 64.0)
    kwargs.setdefault("bank_supply", 64.0)
    kwargs.setdefault("backend", "python")
    return AllocationService(**kwargs)


class TestConstruction:
    def test_needs_fabric_or_supplies(self):
        with pytest.raises(ValueError):
            AllocationService()

    def test_supplies_default_from_fabric(self):
        fabric = Fabric(16, 8)
        service = AllocationService(fabric=fabric, backend="python")
        assert service.slice_supply == fabric.num_slices
        assert service.bank_supply == fabric.num_banks

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            economics_service(admission_floor=-0.1)
        with pytest.raises(ValueError):
            economics_service(max_vcores=0)
        with pytest.raises(ValueError):
            AllocationService(slice_supply=-1.0, bank_supply=1.0)


class TestEvents:
    def test_event_validation(self):
        with pytest.raises(ValueError):
            Event(kind="arrive")
        with pytest.raises(ValueError):
            Event(kind="submit")
        with pytest.raises(ValueError):
            Event(kind="depart")
        with pytest.raises(ValueError):
            Event(kind="resize")

    def test_apply_dispatches(self):
        service = economics_service()
        result = service.apply(Event(kind="submit", tenant=tenant("a")))
        assert result.admitted
        service.apply(Event(kind="resize", tenant_id="a", budget=30.0))
        assert service.tenant("a").budget == 30.0
        service.apply(Event(kind="depart", tenant_id="a"))
        assert service.active_tenants == []


class TestSubmit:
    def test_admits_and_tracks(self):
        service = economics_service()
        result = service.submit(tenant("a"))
        assert result.admitted and result.reason == "admitted"
        assert result.vcores >= 1
        assert result.utility > 0
        assert result.marginal_utility == pytest.approx(
            result.utility / 24.0)
        assert service.active_tenants == ["a"]

    def test_duplicate_name_raises(self):
        service = economics_service()
        service.submit(tenant("a"))
        with pytest.raises(ValueError):
            service.submit(tenant("a"))

    def test_admission_floor_rejects(self):
        service = economics_service(admission_floor=1e9)
        result = service.submit(tenant("a"))
        assert not result.admitted
        assert result.reason == "rejected_price"
        assert service.active_tenants == []

    def test_capacity_rejection_on_full_fabric(self):
        service = AllocationService(fabric=Fabric(4, 1),
                                    backend="python")
        results = [service.submit(tenant(f"t{i}")) for i in range(8)]
        assert any(r.reason == "rejected_capacity" for r in results)
        # A rejected tenant holds no tiles and is not in the market.
        rejected = next(r for r in results
                        if r.reason == "rejected_capacity")
        assert service.fabric.owned_by(rejected.tenant) == []
        assert rejected.tenant not in service.active_tenants


class TestDepart:
    def test_depart_releases_tiles(self):
        fabric = Fabric(16, 8)
        service = AllocationService(fabric=fabric, backend="python")
        service.submit(tenant("a"))
        assert fabric.owned_by("a")
        service.depart("a")
        assert fabric.owned_by("a") == []
        assert fabric.free_count(TileKind.SLICE) == fabric.num_slices

    def test_depart_unknown_raises(self):
        service = economics_service()
        with pytest.raises(KeyError):
            service.depart("ghost")

    def test_submit_depart_restores_empty_market(self):
        service = economics_service()
        service.submit(tenant("a"))
        service.depart("a")
        assert service.active_tenants == []
        summary = service.summary()
        assert summary.admitted == 1
        assert summary.departures == 1


class TestResize:
    def test_resize_keeps_configuration(self):
        service = economics_service()
        before = service.submit(tenant("a", budget=24.0))
        after = service.resize("a", 48.0)
        # Optimal (cache, slices) is budget-independent; only the
        # replication factor may move.
        assert after.cache_kb == before.cache_kb
        assert after.slices == before.slices
        assert after.vcores >= before.vcores
        assert service.tenant("a").budget == 48.0

    def test_resize_unknown_raises(self):
        service = economics_service()
        with pytest.raises(KeyError):
            service.resize("ghost", 10.0)
        with pytest.raises(ValueError):
            service.submit(tenant("a"))
            service.resize("a", -1.0)

    def test_unabsorbable_resize_restores_placement(self):
        fabric = Fabric(32, 2)
        service = AllocationService(fabric=fabric, backend="python",
                                    max_vcores=8)
        first = service.submit(tenant("a", budget=24.0))
        assert first.admitted
        # Fill the rest of the fabric so growth has nowhere to go.
        filler = 0
        while True:
            result = service.submit(tenant(f"f{filler}", budget=24.0))
            filler += 1
            if not result.admitted:
                break
        before_nodes = fabric.owned_by("a")
        result = service.resize("a", 2000.0)
        if not result.admitted:
            assert result.reason == "rejected_capacity"
            assert fabric.owned_by("a") == before_nodes
            # The budget change was rejected wholesale.
            assert service.tenant("a").budget == 24.0


class TestStep:
    def test_empty_market_step_is_identity(self):
        service = economics_service(initial_slice_price=3.3,
                                    initial_bank_price=1.7)
        result = service.step()
        assert result.rounds == 0 and result.converged
        assert service.prices() == (3.3, 1.7)

    def test_step_moves_prices_under_overdemand(self):
        service = economics_service(slice_supply=4.0, bank_supply=4.0)
        for i in range(6):
            service.submit(tenant(f"t{i}", budget=50.0))
        p0 = service.prices()
        result = service.step()
        assert result.rounds >= 1
        assert service.prices() != p0

    def test_quiescent_market_reprices_in_one_round(self):
        service = economics_service(slice_supply=512.0,
                                    bank_supply=512.0)
        for i, u in enumerate((UTILITY1, UTILITY2, UTILITY3)):
            service.submit(tenant(f"t{i}", utility=u))
        service.step()
        prices = service.prices()
        again = service.step()
        # Warm start at a fixed point: one round, zero movement.
        assert again.rounds == 1 and again.converged
        assert service.prices() == prices


class TestRunAndSummary:
    def test_run_stream(self):
        service = economics_service()
        events = [
            Event(kind="submit", tenant=tenant("a")),
            Event(kind="submit", tenant=tenant("b", benchmark="mcf")),
            Event(kind="resize", tenant_id="a", budget=30.0),
            Event(kind="depart", tenant_id="b"),
        ]
        summary = service.run(events, reprice_every=2)
        assert isinstance(summary, StreamSummary)
        assert summary.events == 4
        assert summary.admitted == 2
        assert summary.resizes == 1
        assert summary.departures == 1
        assert summary.active_tenants == 1
        assert summary.reprice_rounds >= 1

    def test_run_without_repricing_keeps_prices(self):
        service = economics_service()
        p0 = service.prices()
        service.run([Event(kind="submit", tenant=tenant("a"))],
                    reprice_every=0)
        assert service.prices() == p0


class TestCompaction:
    def test_compaction_preserves_tenant_holdings(self):
        fabric = Fabric(16, 4)
        # threshold 0.0: every departure that leaves any fragmentation
        # compacts, exercising the lift-and-repack path aggressively.
        service = AllocationService(fabric=fabric, backend="python",
                                    compaction_threshold=0.0)
        admitted = []
        for i in range(10):
            if service.submit(tenant(f"t{i}")).admitted:
                admitted.append(f"t{i}")
        holdings = {
            name: {
                kind: sum(1 for n in fabric.owned_by(name)
                          if fabric.kind(n) is kind)
                for kind in TileKind
            }
            for name in admitted
        }
        for name in admitted[::2]:
            service.depart(name)
            for survivor in service.active_tenants:
                counts = {
                    kind: sum(1 for n in fabric.owned_by(survivor)
                              if fabric.kind(n) is kind)
                    for kind in TileKind
                }
                # Compaction moves tiles but never changes what a
                # surviving tenant holds.
                assert counts == holdings[survivor]
        # Free-count bookkeeping survived all the lift-and-repack.
        occupied = sum(len(fabric.owned_by(n))
                       for n in service.active_tenants)
        free = (fabric.free_count(TileKind.SLICE)
                + fabric.free_count(TileKind.BANK))
        assert occupied + free == fabric.mesh.num_nodes

    def test_compaction_counter_in_summary(self):
        service = economics_service()
        assert service.summary().compactions == 0


class TestObsCounters:
    def test_service_counters_register(self):
        from repro.obs import Observability

        obs = Observability()
        service = economics_service(obs=obs, admission_floor=1e9)
        service.submit(tenant("a"))  # rejected by the floor
        snapshot = obs.snapshot()
        assert snapshot["cloud.service.rejected_price"]["value"] == 1
