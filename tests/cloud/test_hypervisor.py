"""Tests for VM specs and the hypervisor."""

import pytest

from repro.cloud.fabric import AllocationError, Fabric
from repro.cloud.hypervisor import Hypervisor
from repro.cloud.vm import VCoreSpec, VMSpec


class TestVMSpec:
    def test_uniform_builder(self):
        spec = VMSpec.uniform(num_vcores=2, slices_per_vcore=3,
                              cache_kb_per_vcore=256)
        assert spec.total_slices == 6
        assert spec.total_banks == 8

    def test_equation3_enforced(self):
        with pytest.raises(ValueError):
            VCoreSpec(num_slices=9, l2_cache_kb=0)
        with pytest.raises(ValueError):
            VCoreSpec(num_slices=1, l2_cache_kb=10_000)

    def test_empty_vm_rejected(self):
        with pytest.raises(ValueError):
            VMSpec(vcores=())


class TestHypervisor:
    def test_claims_home_slice(self):
        hv = Hypervisor(Fabric(width=8, height=4))
        assert hv.fabric.owner_of(hv.home_slice) == "hypervisor"

    def test_place_and_teardown(self):
        hv = Hypervisor(Fabric(width=16, height=4))
        spec = VMSpec.uniform(2, 2, 128)
        instance = hv.place(spec)
        assert instance is not None
        assert len(instance.placements) == 2
        for slices, banks in instance.placements:
            assert len(slices) == 2
            assert len(banks) == 2
        occupied = hv.fabric.utilization()
        hv.teardown(instance.vm_id)
        assert hv.fabric.utilization() < occupied
        assert hv.stats.vms_placed == 1
        assert hv.stats.vms_torn_down == 1

    def test_rejection_rolls_back(self):
        hv = Hypervisor(Fabric(width=4, height=1))
        big = VMSpec.uniform(4, 1, 0)
        assert hv.place(big) is None
        assert hv.stats.vms_rejected == 1
        # Nothing leaked: a small VM still fits.
        assert hv.place(VMSpec.uniform(1, 1, 64)) is not None

    def test_bank_distances_reported(self):
        hv = Hypervisor(Fabric(width=16, height=4))
        instance = hv.place(VMSpec.uniform(1, 2, 256))
        distances = hv.bank_distances(instance, 0)
        assert len(distances) == 4
        assert all(d >= 1 for d in distances)

    def test_resize_vcore_charges_costs(self):
        hv = Hypervisor(Fabric(width=16, height=4))
        instance = hv.place(VMSpec.uniform(1, 2, 128))
        cost = hv.resize_vcore(instance.vm_id, 0,
                               VCoreSpec(num_slices=4, l2_cache_kb=128))
        assert cost.cycles == 500  # Slice-only change
        cost = hv.resize_vcore(instance.vm_id, 0,
                               VCoreSpec(num_slices=4, l2_cache_kb=512))
        assert cost.cycles == 10_000  # cache change
        assert instance.spec.vcores[0].num_slices == 4
        assert hv.stats.reconfigurations == 2

    def test_resize_unknown_vm(self):
        hv = Hypervisor(Fabric(width=8, height=2))
        with pytest.raises(KeyError):
            hv.resize_vcore("vm99", 0, VCoreSpec(1, 0))

    def test_teardown_unknown_vm(self):
        hv = Hypervisor(Fabric(width=8, height=2))
        with pytest.raises(KeyError):
            hv.teardown("vm99")

    def test_free_capacity_accounting(self):
        hv = Hypervisor(Fabric(width=8, height=2))
        before = hv.free_capacity()
        hv.place(VMSpec.uniform(1, 2, 64))
        after = hv.free_capacity()
        assert after["slices"] == before["slices"] - 2
        assert after["banks"] == before["banks"] - 1
