"""Tests for opcode and operation-class definitions."""

import pytest

from repro.isa.opcodes import (
    CLASS_OPCODES,
    EXEC_LATENCY,
    OPCODE_CLASS,
    OpClass,
    Opcode,
)


class TestOpClass:
    def test_memory_classes(self):
        assert OpClass.LOAD.is_memory
        assert OpClass.STORE.is_memory

    def test_non_memory_classes(self):
        for cls in (OpClass.ALU, OpClass.MUL, OpClass.BRANCH, OpClass.NOP):
            assert not cls.is_memory

    def test_alu_port_users(self):
        assert OpClass.ALU.uses_alu
        assert OpClass.MUL.uses_alu
        assert OpClass.BRANCH.uses_alu
        assert not OpClass.LOAD.uses_alu
        assert not OpClass.STORE.uses_alu


class TestOpcodeTables:
    def test_every_opcode_has_a_class(self):
        for opcode in Opcode:
            assert opcode in OPCODE_CLASS

    def test_every_class_has_a_latency(self):
        for cls in OpClass:
            assert EXEC_LATENCY[cls] >= 1

    def test_mul_is_multicycle(self):
        assert EXEC_LATENCY[OpClass.MUL] > EXEC_LATENCY[OpClass.ALU]

    def test_class_opcodes_cover_all_opcodes(self):
        listed = {op for ops in CLASS_OPCODES.values() for op in ops}
        # JMP is a branch but only conditional branches are generated.
        assert listed | {Opcode.JMP} == set(Opcode)

    def test_class_opcodes_consistent_with_opcode_class(self):
        for cls, opcodes in CLASS_OPCODES.items():
            for opcode in opcodes:
                assert OPCODE_CLASS[opcode] is cls
