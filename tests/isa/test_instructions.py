"""Tests for dynamic instruction records."""

import pytest

from repro.isa import Instruction, MemAccess, OpClass, Opcode, ZERO_REG, nop


class TestMemAccess:
    def test_cache_line(self):
        assert MemAccess(address=0).cache_line() == 0
        assert MemAccess(address=63).cache_line() == 0
        assert MemAccess(address=64).cache_line() == 1
        assert MemAccess(address=130).cache_line(line_size=128) == 1

    def test_rejects_negative_address(self):
        with pytest.raises(ValueError):
            MemAccess(address=-1)

    def test_rejects_zero_size(self):
        with pytest.raises(ValueError):
            MemAccess(address=0, size=0)


class TestInstruction:
    def test_load_requires_memory(self):
        with pytest.raises(ValueError):
            Instruction(seq=0, pc=0, opcode=Opcode.LD, srcs=(1,), dst=2)

    def test_alu_rejects_memory(self):
        with pytest.raises(ValueError):
            Instruction(
                seq=0, pc=0, opcode=Opcode.ADD, srcs=(1,), dst=2,
                mem=MemAccess(address=64),
            )

    def test_taken_branch_requires_target(self):
        with pytest.raises(ValueError):
            Instruction(seq=0, pc=0, opcode=Opcode.BEQ, srcs=(1,),
                        taken=True)

    def test_not_taken_branch_needs_no_target(self):
        inst = Instruction(seq=0, pc=5, opcode=Opcode.BNE, srcs=(1,))
        assert inst.next_pc() == 6

    def test_taken_branch_next_pc(self):
        inst = Instruction(seq=0, pc=5, opcode=Opcode.BNE, srcs=(1,),
                           taken=True, target=42)
        assert inst.next_pc() == 42

    def test_live_srcs_drops_zero_register(self):
        inst = Instruction(seq=0, pc=0, opcode=Opcode.ADD,
                           srcs=(ZERO_REG, 3), dst=4)
        assert inst.live_srcs() == (3,)

    def test_writes_register(self):
        writes = Instruction(seq=0, pc=0, opcode=Opcode.ADD, srcs=(1,), dst=2)
        zero_dst = Instruction(seq=0, pc=0, opcode=Opcode.ADD, srcs=(1,),
                               dst=ZERO_REG)
        assert writes.writes_register
        assert not zero_dst.writes_register

    def test_classification_properties(self):
        load = Instruction(seq=0, pc=0, opcode=Opcode.LD, srcs=(1,), dst=2,
                           mem=MemAccess(address=64))
        store = Instruction(seq=1, pc=1, opcode=Opcode.ST, srcs=(1, 2),
                            mem=MemAccess(address=64))
        assert load.is_load and load.is_mem and not load.is_store
        assert store.is_store and store.is_mem and not store.is_load
        assert load.op_class is OpClass.LOAD

    def test_nop_helper(self):
        filler = nop(seq=7, pc=9)
        assert filler.seq == 7
        assert filler.op_class is OpClass.NOP
        assert not filler.writes_register

    def test_rejects_negative_registers(self):
        with pytest.raises(ValueError):
            Instruction(seq=0, pc=0, opcode=Opcode.ADD, srcs=(-1,), dst=2)
        with pytest.raises(ValueError):
            Instruction(seq=0, pc=0, opcode=Opcode.ADD, srcs=(1,), dst=-2)
