"""Tests for the register-file specification."""

import pytest

from repro.isa import RegisterFileSpec


class TestRegisterFileSpec:
    def test_defaults_match_table2(self):
        spec = RegisterFileSpec()
        assert spec.num_arch == 32
        assert spec.num_global_logical == 128
        assert spec.num_local_per_slice == 64

    def test_local_capacity_scales_with_slices(self):
        spec = RegisterFileSpec()
        assert spec.total_local(1) == 64
        assert spec.total_local(8) == 512

    def test_rejects_global_smaller_than_arch(self):
        with pytest.raises(ValueError):
            RegisterFileSpec(num_arch=32, num_global_logical=16)

    def test_rejects_zero_slices(self):
        with pytest.raises(ValueError):
            RegisterFileSpec().total_local(0)

    def test_rejects_empty_arch_space(self):
        with pytest.raises(ValueError):
            RegisterFileSpec(num_arch=0)
