"""Tests for the area model (Figures 10-11)."""

import pytest

from repro.area.cacti import CactiLite
from repro.area.components import (
    FIG10_PERCENTAGES,
    SHARING_OVERHEAD_COMPONENTS,
    SliceComponent,
    normalized_fractions,
    sharing_overhead_fraction,
)
from repro.area.model import AreaModel


class TestComponents:
    def test_fig10_caches_dominate(self):
        """Figure 10: L1I and L1D are 24% each of the Slice."""
        assert FIG10_PERCENTAGES[SliceComponent.L1_ICACHE] == 24.0
        assert FIG10_PERCENTAGES[SliceComponent.L1_DCACHE] == 24.0

    def test_normalized_fractions_sum_to_one(self):
        assert abs(sum(normalized_fractions().values()) - 1.0) < 1e-12

    def test_sharing_overhead_near_published_8pct(self):
        """Paper Figure 10 calls out ~8% Sharing overhead."""
        assert 0.07 <= sharing_overhead_fraction() <= 0.09

    def test_overhead_components_are_composition_logic(self):
        assert SliceComponent.ROUTERS in SHARING_OVERHEAD_COMPONENTS
        assert SliceComponent.GLOBAL_RENAME in SHARING_OVERHEAD_COMPONENTS
        assert SliceComponent.L1_DCACHE not in SHARING_OVERHEAD_COMPONENTS


class TestCactiLite:
    def test_area_scales_with_capacity(self):
        cacti = CactiLite()
        assert cacti.area_mm2(128) > cacti.area_mm2(64) > cacti.area_mm2(16)

    def test_zero_size_is_zero_area(self):
        assert CactiLite().area_mm2(0) == 0.0

    def test_64kb_bank_near_fig11_ratio(self):
        """Figure 11: a 64 KB bank is ~35% of a Slice+bank tile."""
        model = AreaModel()
        bank = model.cacti.area_mm2(64, assoc=4)
        ratio = bank / (model.slice_area_mm2 + bank)
        assert 0.30 <= ratio <= 0.40

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            CactiLite().area_mm2(-1)

    def test_access_energy_monotone(self):
        cacti = CactiLite()
        assert cacti.access_energy_nj(1024) > cacti.access_energy_nj(64)


class TestAreaModel:
    def test_market_equivalence(self):
        """Section 5.7: 1 Slice costs the same as 128 KB cache."""
        model = AreaModel()
        assert 2 * model.l2_bank_area_mm2 == pytest.approx(
            model.slice_area_mm2
        )

    def test_vcore_area_composition(self):
        model = AreaModel()
        base = model.vcore_area(0, 1)
        assert model.vcore_area(128, 1) == pytest.approx(2 * base)
        assert model.vcore_area(0, 2) == pytest.approx(2 * base)

    def test_uncore_is_optional(self):
        model = AreaModel()
        assert (model.vcore_area(0, 1, include_uncore=True)
                > model.vcore_area(0, 1))

    def test_decomposition_without_l2_sums_to_100(self):
        shares = AreaModel().decomposition_without_l2()
        assert abs(sum(shares.values()) - 100.0) < 1e-9

    def test_decomposition_with_l2_sums_to_100(self):
        shares = AreaModel().decomposition_with_l2()
        assert abs(sum(shares.values()) - 100.0) < 1e-9
        assert 30 <= shares["l2_dcache_64kb"] <= 40

    def test_sharing_overhead_shrinks_with_l2(self):
        """Figure 11: overhead drops to ~5% once the bank is counted."""
        model = AreaModel()
        assert (model.sharing_overhead_pct_with_l2()
                < model.sharing_overhead_pct_without_l2())
        assert 4.0 <= model.sharing_overhead_pct_with_l2() <= 7.0

    def test_chip_area(self):
        model = AreaModel()
        assert model.chip_area(100, 200) == pytest.approx(
            100 * model.slice_area_mm2 + 200 * model.l2_bank_area_mm2
        )

    def test_validation(self):
        model = AreaModel()
        with pytest.raises(ValueError):
            model.vcore_area(-1, 1)
        with pytest.raises(ValueError):
            model.vcore_area(0, 0)
        with pytest.raises(ValueError):
            model.chip_area(-1, 0)
