"""Tests for the energy model."""

import pytest

from repro.area.energy import EnergyModel, EnergyParameters
from repro.perfmodel.model import CACHE_GRID_KB, SLICE_GRID
from repro.trace import all_benchmarks


@pytest.fixture(scope="module")
def model():
    return EnergyModel()


class TestEnergyPerInstruction:
    def test_positive_everywhere(self, model):
        for bench in ("gcc", "mcf", "swaptions"):
            for cache_kb in (0, 256, 4096):
                for slices in (1, 4, 8):
                    b = model.energy_per_instruction(bench, cache_kb, slices)
                    assert b.total > 0
                    assert all(v >= 0 for v in b.as_dict().values())

    def test_total_is_component_sum(self, model):
        b = model.energy_per_instruction("gcc", 512, 4)
        assert b.total == pytest.approx(sum(b.as_dict().values()))

    def test_memory_energy_falls_with_cache(self, model):
        """A hit in a nearby bank is far cheaper than a DRAM trip."""
        none = model.energy_per_instruction("omnetpp", 0, 2)
        big = model.energy_per_instruction("omnetpp", 2048, 2)
        assert big.memory < none.memory

    def test_network_energy_grows_with_slices(self, model):
        one = model.energy_per_instruction("gcc", 256, 1)
        eight = model.energy_per_instruction("gcc", 256, 8)
        assert one.network == 0.0
        assert eight.network > 0.0

    def test_leakage_grows_with_area(self, model):
        small = model.energy_per_instruction("gcc", 0, 1)
        # Same performance-ish, much more area: leakage dominates more.
        large = model.energy_per_instruction("gcc", 8192, 1)
        assert large.leakage > small.leakage

    def test_memory_bound_benchmark_spends_more_on_memory(self, model):
        mcf = model.energy_per_instruction("mcf", 128, 2)
        sjeng = model.energy_per_instruction("sjeng", 128, 2)
        assert mcf.memory > sjeng.memory

    def test_validation(self, model):
        with pytest.raises(ValueError):
            model.energy_per_instruction("gcc", -1, 1)
        with pytest.raises(ValueError):
            model.energy_per_instruction("gcc", 0, 0)


class TestEnergyDelay:
    def test_ed2_prefers_bigger_cores_than_ed0(self, model):
        """Weighting delay more buys performance with energy - the same
        drift as the paper's perf^k/area metrics."""
        e_only = model.best_config("gcc", delay_exponent=0)
        ed3 = model.best_config("gcc", delay_exponent=3)
        assert ed3[1] >= e_only[1]

    def test_best_config_is_grid_minimum(self, model):
        best = model.best_config("hmmer", delay_exponent=2)
        best_value = model.energy_delay("hmmer", best[0], best[1], 2)
        for c in CACHE_GRID_KB:
            for s in SLICE_GRID:
                assert model.energy_delay("hmmer", c, s, 2) >= (
                    best_value - 1e-12
                )

    def test_optima_vary_across_benchmarks(self, model):
        configs = {
            model.best_config(bench, delay_exponent=2)
            for bench in ("gcc", "hmmer", "omnetpp", "libquantum")
        }
        assert len(configs) >= 2

    def test_validation(self, model):
        with pytest.raises(ValueError):
            model.energy_delay("gcc", 128, 1, delay_exponent=-1)
