"""Tests for the composed cache hierarchy, store buffer, and MSHRs."""

import pytest

from repro.cache.hierarchy import MEMORY_LATENCY, CacheHierarchy
from repro.cache.l1 import L1_HIT_LATENCY, L1Cache
from repro.cache.l2 import BankedL2
from repro.cache.mshr import MSHRFile
from repro.cache.storebuffer import StoreBuffer


def _hier(banks=2, mshr=8):
    return CacheHierarchy(
        l2=BankedL2(num_banks=banks), mshr=MSHRFile(capacity=mshr)
    )


class TestAccessPath:
    def test_l1_hit_latency(self):
        h = _hier()
        h.access(0, is_write=False, now=0)  # fill
        h.tick(200)  # retire the outstanding miss
        outcome = h.access(0, is_write=False, now=200)
        assert outcome.l1_hit
        assert outcome.complete_cycle == 200 + L1_HIT_LATENCY

    def test_l2_hit_latency(self):
        h = _hier()
        h.access(0, is_write=False, now=0)
        # Evict line 0 from L1 only: touch conflicting lines.
        sets = h.l1d.num_sets
        h.access(sets * 64, is_write=False, now=1)
        h.access(2 * sets * 64, is_write=False, now=2)
        h.tick(300)
        outcome = h.access(0, is_write=False, now=300)
        assert not outcome.l1_hit
        assert outcome.l2_hit
        assert outcome.complete_cycle > 300 + L1_HIT_LATENCY
        assert outcome.complete_cycle < 300 + MEMORY_LATENCY

    def test_memory_miss_latency(self):
        h = _hier()
        outcome = h.access(0, is_write=False, now=0)
        assert outcome.latency_class == "memory"
        assert outcome.complete_cycle >= MEMORY_LATENCY

    def test_zero_l2_goes_straight_to_memory(self):
        h = _hier(banks=0)
        outcome = h.access(0, is_write=False, now=0)
        assert outcome.complete_cycle == L1_HIT_LATENCY + MEMORY_LATENCY


class TestStoreForwarding:
    def test_load_forwards_from_store_buffer(self):
        h = _hier()
        assert h.commit_store(0x100, now=5)
        outcome = h.access(0x100, is_write=False, now=6)
        assert outcome.from_store_buffer
        assert outcome.latency_class == "store_forward"

    def test_store_buffer_capacity(self):
        h = CacheHierarchy(store_buffer=StoreBuffer(capacity=2),
                           l2=BankedL2(num_banks=1))
        assert h.commit_store(0, now=0)
        assert h.commit_store(64, now=0)
        assert not h.commit_store(128, now=0)  # full

    def test_tick_drains_stores(self):
        h = CacheHierarchy(store_buffer=StoreBuffer(capacity=2),
                           l2=BankedL2(num_banks=1))
        h.commit_store(0, now=0)
        h.commit_store(64, now=0)
        h.tick(2)
        assert h.commit_store(128, now=3)  # space freed


class TestMSHRBehaviour:
    def test_secondary_miss_merges(self):
        h = _hier()
        first = h.access(0, is_write=False, now=0)
        second = h.access(8, is_write=False, now=1)  # same line, in flight
        assert second.mshr_merged
        assert second.complete_cycle <= first.complete_cycle

    def test_mshr_full_delays(self):
        h = _hier(mshr=1)
        h.access(0, is_write=False, now=0)
        outcome = h.access(64, is_write=False, now=0)  # different line
        assert outcome.mshr_stalled

    def test_tick_retires_filled_mshrs(self):
        h = _hier(mshr=1)
        first = h.access(0, is_write=False, now=0)
        h.tick(first.complete_cycle + 1)
        outcome = h.access(64, is_write=False,
                           now=first.complete_cycle + 2)
        assert not outcome.mshr_stalled


class TestFlush:
    def test_flush_all_clears_everything(self):
        h = _hier()
        h.access(0, is_write=True, now=0)
        h.commit_store(64, now=0)
        dirty = h.flush_all()
        assert dirty >= 0
        assert len(h.store_buffer) == 0
        outcome = h.access(0, is_write=False, now=100)
        assert not outcome.l1_hit
