"""Tests for the MSI directory (inter-VCore coherence)."""

import pytest

from repro.cache.coherence import CoherenceState, Directory


class TestReadPaths:
    def test_cold_read_goes_shared(self):
        d = Directory()
        outcome = d.read(line=1, vcore=0)
        assert outcome.extra_latency == 0
        assert d.state_of(1) is CoherenceState.SHARED
        assert d.sharers_of(1) == {0}

    def test_multiple_readers_share(self):
        d = Directory()
        d.read(1, 0)
        d.read(1, 1)
        assert d.sharers_of(1) == {0, 1}
        assert d.state_of(1) is CoherenceState.SHARED

    def test_read_after_remote_write_downgrades(self):
        d = Directory()
        d.write(1, 0)
        outcome = d.read(1, 1)
        assert outcome.extra_latency > 0
        assert d.state_of(1) is CoherenceState.SHARED
        assert d.stats.downgrades == 1

    def test_owner_rereads_for_free(self):
        d = Directory()
        d.write(1, 0)
        outcome = d.read(1, 0)
        assert outcome.extra_latency == 0
        assert d.state_of(1) is CoherenceState.MODIFIED


class TestWritePaths:
    def test_cold_write_goes_modified(self):
        d = Directory()
        outcome = d.write(1, 0)
        assert outcome.extra_latency == 0
        assert d.state_of(1) is CoherenceState.MODIFIED

    def test_write_invalidates_sharers(self):
        d = Directory()
        d.read(1, 0)
        d.read(1, 1)
        outcome = d.write(1, 2)
        assert set(outcome.invalidated_vcores) == {0, 1}
        assert d.sharers_of(1) == {2}
        assert d.stats.invalidations_sent == 2

    def test_write_steals_ownership(self):
        d = Directory()
        d.write(1, 0)
        outcome = d.write(1, 1)
        assert 0 in outcome.invalidated_vcores
        assert d.state_of(1) is CoherenceState.MODIFIED
        assert d.sharers_of(1) == {1}

    def test_invalidation_latency_scales_with_distance(self):
        near = Directory(distance_fn=lambda a, b: 1)
        far = Directory(distance_fn=lambda a, b: 6)
        near.read(1, 0)
        far.read(1, 0)
        assert (far.write(1, 1).extra_latency
                > near.write(1, 1).extra_latency)


class TestEviction:
    def test_evict_last_sharer_invalidates_line(self):
        d = Directory()
        d.read(1, 0)
        d.evict(1, 0)
        assert d.state_of(1) is CoherenceState.INVALID
        assert d.num_tracked_lines() == 0

    def test_evict_owner_downgrades(self):
        d = Directory()
        d.write(1, 0)
        d.evict(1, 0)
        assert d.state_of(1) is CoherenceState.INVALID

    def test_evict_one_of_many_keeps_shared(self):
        d = Directory()
        d.read(1, 0)
        d.read(1, 1)
        d.evict(1, 0)
        assert d.state_of(1) is CoherenceState.SHARED
        assert d.sharers_of(1) == {1}

    def test_evict_untracked_line_is_noop(self):
        d = Directory()
        d.evict(99, 0)
        assert d.num_tracked_lines() == 0
