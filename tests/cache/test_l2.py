"""Tests for the banked, distance-priced L2."""

import pytest

from repro.cache.l2 import (
    BankedL2,
    L2Bank,
    default_bank_distances,
    l2_hit_latency,
)


class TestLatencyModel:
    def test_paper_table3_formula(self):
        """Table 3: L2 hit delay is distance * 2 + 4."""
        assert l2_hit_latency(0) == 4
        assert l2_hit_latency(1) == 6
        assert l2_hit_latency(5) == 14

    def test_rejects_negative_distance(self):
        with pytest.raises(ValueError):
            l2_hit_latency(-1)

    def test_ring_packing(self):
        """4r banks fit at Manhattan distance r on a 2-D fabric."""
        assert default_bank_distances(4) == [1, 1, 1, 1]
        assert default_bank_distances(6) == [1, 1, 1, 1, 2, 2]
        dists = default_bank_distances(12)
        assert dists.count(1) == 4
        assert dists.count(2) == 8

    def test_mean_latency_grows_with_capacity(self):
        small = BankedL2(num_banks=4)
        large = BankedL2(num_banks=64)
        assert large.mean_hit_latency() > small.mean_hit_latency()


class TestInterleaving:
    def test_lines_spread_across_banks(self):
        l2 = BankedL2(num_banks=4)
        homes = {l2.bank_for(line * 64).bank_id for line in range(8)}
        assert homes == {0, 1, 2, 3}

    def test_same_line_same_bank(self):
        l2 = BankedL2(num_banks=4)
        assert l2.bank_for(100).bank_id == l2.bank_for(120).bank_id

    def test_bank_internal_indexing_uses_high_bits(self):
        """Lines of one bank must spread over that bank's sets.

        Regression test: with naive indexing every line of bank b maps to
        a handful of sets and the L2 thrashes regardless of capacity.
        """
        l2 = BankedL2(num_banks=64)
        # 2048 distinct lines homed at bank 0 easily fit in its 1024
        # lines? No - but 512 do, and must not conflict-evict.
        lines = [i * 64 for i in range(512)]  # every 64th line -> bank 0
        for line in lines:
            l2.access(line * 64)
        hits_before = l2.hits
        for line in lines:
            l2.access(line * 64)
        assert l2.hits - hits_before >= len(lines) * 0.9

    def test_zero_banks_always_miss(self):
        l2 = BankedL2(num_banks=0)
        result, latency = l2.access(0x1234)
        assert result.miss
        assert latency == 0
        assert l2.size_kb == 0


class TestBankedL2:
    def test_size_accounting(self):
        assert BankedL2(num_banks=8).size_kb == 512

    def test_hit_after_fill(self):
        l2 = BankedL2(num_banks=2)
        l2.access(0)
        result, latency = l2.access(0)
        assert result.hit
        assert latency == l2_hit_latency(1)

    def test_flush_reports_dirty(self):
        l2 = BankedL2(num_banks=2)
        l2.access(0, is_write=True)
        l2.access(64, is_write=True)
        l2.access(128)
        assert l2.flush() == 2

    def test_distances_must_match_banks(self):
        with pytest.raises(ValueError):
            BankedL2(num_banks=2, distances=[1])

    def test_miss_rate_aggregation(self):
        l2 = BankedL2(num_banks=2)
        l2.access(0)
        l2.access(0)
        assert l2.miss_rate == 0.5
