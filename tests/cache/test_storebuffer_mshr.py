"""Tests for the store buffer and MSHR file."""

import pytest

from repro.cache.mshr import MSHRFile
from repro.cache.storebuffer import StoreBuffer


class TestStoreBuffer:
    def test_fifo_drain_order(self):
        buf = StoreBuffer(capacity=4)
        buf.push(0x100, commit_cycle=0)
        buf.push(0x200, commit_cycle=1)
        assert buf.drain_one(now=2).address == 0x100
        assert buf.drain_one(now=3).address == 0x200
        assert buf.drain_one(now=4) is None

    def test_drain_waits_a_cycle(self):
        buf = StoreBuffer()
        buf.push(0x100, commit_cycle=5)
        assert buf.drain_one(now=5) is None  # same cycle: not yet
        assert buf.drain_one(now=6) is not None

    def test_capacity_stall(self):
        buf = StoreBuffer(capacity=2)
        assert buf.push(0, 0) and buf.push(64, 0)
        assert not buf.push(128, 0)
        assert buf.full_stalls == 1

    def test_forwarding_matches_line(self):
        buf = StoreBuffer()
        buf.push(0x100, 0)
        assert buf.forwards(0x100)
        assert buf.forwards(0x108)  # same 64B line
        assert not buf.forwards(0x200)

    def test_flush(self):
        buf = StoreBuffer()
        buf.push(0, 0)
        buf.push(64, 0)
        assert buf.flush() == 2
        assert len(buf) == 0

    def test_paper_default_capacity(self):
        assert StoreBuffer().capacity == 8  # Table 2


class TestMSHRFile:
    def test_primary_then_secondary(self):
        mshr = MSHRFile(capacity=2)
        entry = mshr.allocate(0x100, fill_cycle=50, waiter_seq=1)
        merged = mshr.allocate(0x108, fill_cycle=99, waiter_seq=2)
        assert merged is entry  # same line merges
        assert merged.fill_cycle == 50  # inherits first fill
        assert mshr.primary_misses == 1
        assert mshr.secondary_merges == 1

    def test_capacity_refusal(self):
        mshr = MSHRFile(capacity=1)
        mshr.allocate(0x100, fill_cycle=50, waiter_seq=1)
        assert mshr.allocate(0x200, fill_cycle=50, waiter_seq=2) is None
        assert mshr.full_stalls == 1

    def test_retire_filled(self):
        mshr = MSHRFile(capacity=4)
        mshr.allocate(0x100, fill_cycle=10, waiter_seq=1)
        mshr.allocate(0x200, fill_cycle=20, waiter_seq=2)
        done = mshr.retire_filled(now=15)
        assert len(done) == 1
        assert done[0].line == 0x100 // 64
        assert len(mshr) == 1

    def test_earliest_fill(self):
        mshr = MSHRFile(capacity=4)
        assert mshr.earliest_fill() is None
        mshr.allocate(0x100, fill_cycle=30, waiter_seq=1)
        mshr.allocate(0x200, fill_cycle=10, waiter_seq=2)
        assert mshr.earliest_fill() == 10

    def test_lookup(self):
        mshr = MSHRFile(capacity=4)
        mshr.allocate(0x100, fill_cycle=10, waiter_seq=1)
        assert mshr.lookup(0x108) is not None
        assert mshr.lookup(0x200) is None

    def test_paper_default_capacity(self):
        assert MSHRFile().capacity == 8  # Table 2: max in-flight loads
