"""Tests for the generic set-associative cache."""

import pytest

from repro.cache.setassoc import SetAssociativeCache


def _cache(size=1024, line=64, assoc=2):
    return SetAssociativeCache(size_bytes=size, line_size=line, assoc=assoc)


class TestBasicBehaviour:
    def test_cold_miss_then_hit(self):
        cache = _cache()
        assert cache.access(0).miss
        assert cache.access(0).hit
        assert cache.access(32).hit  # same line

    def test_distinct_lines_miss(self):
        cache = _cache()
        cache.access(0)
        assert cache.access(64).miss

    def test_miss_rate(self):
        cache = _cache()
        cache.access(0)
        cache.access(0)
        assert cache.miss_rate == 0.5

    def test_probe_does_not_disturb(self):
        cache = _cache()
        cache.access(0)
        hits_before = cache.hits
        assert cache.probe(0)
        assert not cache.probe(64)
        assert cache.hits == hits_before


class TestReplacement:
    def test_lru_eviction(self):
        # 2-way, set count = 1024/64/2 = 8 sets; lines 0, 8, 16 share set 0.
        cache = _cache()
        cache.access(0 * 64)
        cache.access(8 * 64)
        cache.access(0 * 64)       # line 0 is now MRU
        result = cache.access(16 * 64)
        assert result.evicted_line == 8  # LRU way evicted

    def test_dirty_eviction_writes_back(self):
        cache = _cache()
        cache.access(0 * 64, is_write=True)
        cache.access(8 * 64)
        result = cache.access(16 * 64)
        assert result.evicted_line == 0
        assert result.writeback
        assert cache.writebacks == 1

    def test_write_hit_marks_dirty(self):
        cache = _cache()
        cache.access(0)
        cache.access(0, is_write=True)
        cache.access(8 * 64)
        result = cache.access(16 * 64)
        assert result.evicted_dirty


class TestMaintenanceOps:
    def test_invalidate(self):
        cache = _cache()
        cache.access(0, is_write=True)
        assert cache.invalidate(0) is True  # was dirty
        assert not cache.probe(0)
        assert cache.invalidate(0) is False

    def test_flush_counts_dirty_lines(self):
        cache = _cache()
        cache.access(0, is_write=True)
        cache.access(64, is_write=True)
        cache.access(128)
        assert cache.flush() == 2
        assert cache.occupancy() == 0

    def test_prefetch_installs_without_stats(self):
        cache = _cache()
        cache.prefetch(0)
        assert cache.misses == 0
        assert cache.access(0).hit

    def test_prefetch_respects_capacity(self):
        cache = _cache()
        for i in range(4):
            cache.prefetch(i * 8 * 64)  # all map to set 0
        assert cache.occupancy() <= 2

    def test_reset_counters_keeps_content(self):
        cache = _cache()
        cache.access(0)
        cache.reset_counters()
        assert cache.misses == 0
        assert cache.access(0).hit


class TestValidation:
    def test_rejects_non_power_of_two_line(self):
        with pytest.raises(ValueError):
            _cache(line=60)

    def test_rejects_cache_smaller_than_ways(self):
        with pytest.raises(ValueError):
            SetAssociativeCache(size_bytes=64, line_size=64, assoc=2)

    def test_rejects_zero_size(self):
        with pytest.raises(ValueError):
            _cache(size=0)
