"""End-to-end flows across the whole stack."""

import pytest

from repro import (
    MARKET2,
    UTILITY1,
    UTILITY2,
    UTILITY3,
    AnalyticModel,
    UtilityOptimizer,
    all_benchmarks,
    simulate,
)
from repro.cloud import (
    CloudScheduler,
    CustomerRequest,
    Fabric,
    Hypervisor,
    MetaProgram,
    PriceQuote,
)
from repro.trace.generator import make_workload


class TestCustomerJourney:
    """A customer profiles, decides via meta-program, and is placed."""

    def test_full_flow(self):
        # 1. The customer's meta-program decides at quoted prices.
        meta = MetaProgram("gcc", UTILITY2, budget=24.0)
        decision = meta.decide(PriceQuote(slice_price=2.0, bank_price=1.0))

        # 2. The provider's scheduler places the VM on the fabric.
        scheduler = CloudScheduler(
            hypervisor=Hypervisor(Fabric(width=16, height=8))
        )
        placement = scheduler.submit(
            CustomerRequest("gcc", UTILITY2, budget=24.0)
        )
        assert placement is not None
        assert placement.slices == decision.slices
        assert placement.cache_kb == decision.cache_kb

        # 3. The placed configuration actually runs on the simulator.
        warmup, trace = make_workload("gcc", 1200, seed=9)
        result = simulate(trace, num_slices=placement.slices,
                          l2_cache_kb=placement.cache_kb,
                          warmup_addresses=warmup)
        assert result.stats.committed == 1200

    def test_reconfiguration_journey(self):
        """Prices move; the meta-program reconfigures through the
        hypervisor at the paper's costs."""
        hv = Hypervisor(Fabric(width=16, height=8))
        scheduler = CloudScheduler(hypervisor=hv)
        placement = scheduler.submit(
            CustomerRequest("gcc", UTILITY3, budget=24.0)
        )
        assert placement is not None
        meta = MetaProgram("gcc", UTILITY3, budget=24.0)
        spike = PriceQuote(slice_price=16.0, bank_price=1.0)
        if meta.would_reconfigure(
            (placement.cache_kb, placement.slices), spike
        ):
            new = meta.decide(spike)
            from repro.cloud.vm import VCoreSpec
            cost = hv.resize_vcore(
                placement.vm_id, 0,
                VCoreSpec(num_slices=new.slices,
                          l2_cache_kb=new.cache_kb),
            )
            assert cost.cycles in (0, 500, 10_000)


class TestProviderEconomics:
    def test_sharing_revenue_with_mixed_customers(self):
        scheduler = CloudScheduler(
            hypervisor=Hypervisor(Fabric(width=24, height=8))
        )
        requests = [
            CustomerRequest(bench, utility, budget=24.0)
            for bench in all_benchmarks()[:6]
            for utility in (UTILITY1, UTILITY3)
        ]
        placements = scheduler.submit_all(requests)
        assert len(placements) >= 6
        # Different customers received different shapes.
        shapes = {(p.cache_kb, p.slices) for p in placements}
        assert len(shapes) >= 2


class TestModelConsistency:
    def test_optimizer_uses_model_performance(self):
        model = AnalyticModel()
        optimizer = UtilityOptimizer(model=model)
        choice = optimizer.best("omnetpp", UTILITY3, MARKET2)
        assert choice.performance == pytest.approx(
            model.performance("omnetpp", choice.cache_kb, choice.slices)
        )
