"""Cross-validation: analytic model vs cycle-level simulator.

The analytic model drives the evaluation sweeps, so its *shapes* must
agree with SSim on anchor configurations: which benchmark scales better
with Slices, which is more cache-sensitive, and the direction of each
trend.  Absolute IPC is not expected to match (the analytic model is
first-order), only orderings.
"""

import pytest

from repro.core.simulator import simulate
from repro.perfmodel.model import AnalyticModel
from repro.trace.generator import make_workload

TRACE_LEN = 3000


@pytest.fixture(scope="module")
def model():
    return AnalyticModel()


def _sim_cycles(bench, slices, cache_kb, seed=1):
    warmup, trace = make_workload(bench, TRACE_LEN, seed=seed)
    return simulate(trace, num_slices=slices, l2_cache_kb=cache_kb,
                    warmup_addresses=warmup).cycles


class TestSliceScalingAgreement:
    def test_strong_scaler_gains_in_both(self, model):
        """libquantum speeds up 1 -> 4 Slices in model and simulator."""
        sim_speedup = (_sim_cycles("libquantum", 1, 256)
                       / _sim_cycles("libquantum", 4, 256))
        model_speedup = model.speedup("libquantum", 256, 4,
                                      baseline_cache_kb=256)
        assert sim_speedup > 1.15
        assert model_speedup > 1.15

    def test_weak_scaler_ordering(self, model):
        """hmmer scales worse than libquantum in both."""
        sim_lib = (_sim_cycles("libquantum", 1, 256)
                   / _sim_cycles("libquantum", 4, 256))
        sim_hmm = (_sim_cycles("hmmer", 1, 256)
                   / _sim_cycles("hmmer", 4, 256))
        model_lib = model.speedup("libquantum", 256, 4,
                                  baseline_cache_kb=256)
        model_hmm = model.speedup("hmmer", 256, 4, baseline_cache_kb=256)
        assert sim_lib > sim_hmm
        assert model_lib > model_hmm


class TestCacheSensitivityAgreement:
    def test_omnetpp_gains_from_cache_in_both(self, model):
        sim_gain = (_sim_cycles("omnetpp", 2, 0)
                    / _sim_cycles("omnetpp", 2, 1024))
        model_gain = (model.performance("omnetpp", 1024, 2)
                      / model.performance("omnetpp", 0, 2))
        assert sim_gain > 1.2
        assert model_gain > 1.2

    def test_insensitive_benchmark_in_both(self, model):
        """astar barely responds to L2 capacity in either view."""
        sim_gain = (_sim_cycles("astar", 2, 0)
                    / _sim_cycles("astar", 2, 1024))
        model_gain = (model.performance("astar", 1024, 2)
                      / model.performance("astar", 0, 2))
        assert sim_gain < 1.4
        assert model_gain < 1.4

    def test_sensitivity_ordering_matches(self, model):
        sim_omnetpp = (_sim_cycles("omnetpp", 2, 0)
                       / _sim_cycles("omnetpp", 2, 1024))
        sim_astar = (_sim_cycles("astar", 2, 0)
                     / _sim_cycles("astar", 2, 1024))
        assert sim_omnetpp > sim_astar
