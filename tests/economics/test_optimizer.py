"""Tests for the utility optimiser (Table 6 machinery)."""

import pytest

from repro.economics.market import MARKET1, MARKET2, MARKET3
from repro.economics.optimizer import UtilityOptimizer
from repro.economics.utility import STANDARD_UTILITIES, UTILITY1, UTILITY3


@pytest.fixture(scope="module")
def optimizer():
    return UtilityOptimizer()


class TestBestChoice:
    def test_best_is_grid_maximum(self, optimizer):
        choice = optimizer.best("gcc", UTILITY3, MARKET2)
        for cache_kb in optimizer.cache_grid:
            for slices in optimizer.slice_grid:
                value = optimizer.utility_at("gcc", UTILITY3, MARKET2,
                                             cache_kb, slices)
                assert value <= choice.utility + 1e-12

    def test_choice_metadata(self, optimizer):
        choice = optimizer.best("bzip", UTILITY1, MARKET1)
        assert choice.benchmark == "bzip"
        assert choice.utility_name == "Utility1"
        assert choice.market_name == "Market1"
        assert choice.vcores > 0

    def test_throughput_customers_buy_smaller_cores(self, optimizer):
        """Utility1 favours replication; Utility3 favours big VCores."""
        small = optimizer.best("gcc", UTILITY1, MARKET2)
        big = optimizer.best("gcc", UTILITY3, MARKET2)
        assert small.slices <= big.slices
        assert small.cache_kb <= big.cache_kb
        assert small.vcores >= big.vcores

    def test_paper_section56_bzip_vs_gcc_under_utility2(self, optimizer):
        """Section 5.6: under Utility2 gcc favours more Slices than bzip."""
        from repro.economics.utility import UTILITY2
        gcc = optimizer.best("gcc", UTILITY2, MARKET2)
        bzip = optimizer.best("bzip", UTILITY2, MARKET2)
        assert gcc.slices > bzip.slices

    def test_market_prices_move_optima(self, optimizer):
        """Section 5.7: expensive Slices push customers toward cache."""
        cheap_slices = optimizer.best("gcc", UTILITY3, MARKET3)
        dear_slices = optimizer.best("gcc", UTILITY3, MARKET1)
        assert dear_slices.slices <= cheap_slices.slices


class TestTable6:
    def test_full_table_shape(self, optimizer):
        table = optimizer.table6(["gcc", "bzip"], STANDARD_UTILITIES,
                                 (MARKET1, MARKET2, MARKET3))
        assert len(table) == 2 * 3 * 3
        assert ("Market2", "Utility1", "gcc") in table

    def test_optima_vary_across_benchmarks(self, optimizer):
        """The paper's core observation: no one-size-fits-all config."""
        table = optimizer.table6(
            ["gcc", "bzip", "hmmer", "omnetpp", "libquantum"],
            STANDARD_UTILITIES, (MARKET2,),
        )
        configs = {
            (c.cache_kb, c.slices) for c in table.values()
        }
        assert len(configs) >= 4


class TestUtilitySurface:
    def test_surface_covers_grid(self, optimizer):
        surface = optimizer.utility_surface("gcc", UTILITY1, MARKET2)
        assert len(surface) == (len(optimizer.cache_grid)
                                * len(optimizer.slice_grid))
        assert all(v > 0 for v in surface.values())

    def test_validation(self):
        with pytest.raises(ValueError):
            UtilityOptimizer(budget=0)
