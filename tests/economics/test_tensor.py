"""Tests for the vectorized market kernel (repro.economics.tensor)."""

import math

import pytest

np = pytest.importorskip("numpy")

from repro.economics.market import MARKET1, MARKET2, MARKET3
from repro.economics.tensor import (
    BACKENDS,
    DEFAULT_BACKEND,
    MarketKernel,
    cost_matrix,
    geometric_mean_vector,
    pair_gain_summary,
    performance_tensor,
    resolve_backend,
    utility_matrix,
    vcores_matrix,
)
from repro.economics.utility import STANDARD_UTILITIES, UTILITY2
from repro.obs import Observability
from repro.perfmodel.model import (
    AnalyticModel,
    CACHE_GRID_KB,
    SLICE_GRID,
)
from repro.trace.profiles import PROFILES, get_profile

BENCHES = sorted(PROFILES)


class TestBackendSelection:
    def test_default_is_numpy_when_available(self):
        assert DEFAULT_BACKEND == "numpy"
        assert resolve_backend(None) == "numpy"

    def test_explicit_backends_pass_through(self):
        for b in BACKENDS:
            assert resolve_backend(b) == b

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="backend"):
            resolve_backend("fortran")


class TestPerformanceTensor:
    def test_matches_scalar_model_to_fp_noise(self):
        model = AnalyticModel()
        tensor = performance_tensor(BENCHES, CACHE_GRID_KB, SLICE_GRID,
                                    model=model)
        assert tensor.shape == (len(BENCHES), len(CACHE_GRID_KB),
                                len(SLICE_GRID))
        worst = 0.0
        for bi, bench in enumerate(BENCHES):
            for ci, c in enumerate(CACHE_GRID_KB):
                for si, s in enumerate(SLICE_GRID):
                    want = model.performance(bench, c, s)
                    got = float(tensor[bi, ci, si])
                    worst = max(worst, abs(got - want) / want)
        assert worst < 1e-12

    def test_thread_cap_respected(self):
        # dedup has thread_cap 4: multi-slice perf is capped.
        model = AnalyticModel()
        tensor = performance_tensor(["dedup"], CACHE_GRID_KB, SLICE_GRID,
                                    model=model)[0]
        prof = get_profile("dedup")
        assert prof.thread_cap > 0
        for ci, c in enumerate(CACHE_GRID_KB):
            for si, s in enumerate(SLICE_GRID):
                assert float(tensor[ci, si]) == pytest.approx(
                    model.performance(prof, c, s), rel=1e-12
                )


class TestMarketMatrices:
    @pytest.mark.parametrize("market", [MARKET1, MARKET2, MARKET3])
    def test_cost_matrix_matches_market_cost(self, market):
        cm = cost_matrix(market)
        for ci, c in enumerate(CACHE_GRID_KB):
            for si, s in enumerate(SLICE_GRID):
                assert float(cm[ci, si]) == market.cost(c, s)

    def test_vcores_matrix_is_equation_2(self):
        vm = vcores_matrix(MARKET2, 24.0)
        for ci, c in enumerate(CACHE_GRID_KB):
            for si, s in enumerate(SLICE_GRID):
                assert float(vm[ci, si]) == pytest.approx(
                    MARKET2.vcores_affordable(24.0, c, s), rel=0
                )

    def test_utility_matrix_matches_scalar_value(self):
        perf = performance_tensor(["gcc"], CACHE_GRID_KB, SLICE_GRID)[0]
        vm = vcores_matrix(MARKET2, 24.0)
        um = utility_matrix(perf, vm, UTILITY2)
        for ci in range(len(CACHE_GRID_KB)):
            for si in range(len(SLICE_GRID)):
                want = UTILITY2.value(float(perf[ci, si]),
                                      float(vm[ci, si]))
                assert float(um[ci, si]) == want


class TestMarketKernel:
    def test_best_matches_masked_argmax_contract(self):
        kernel = MarketKernel()
        grid = kernel.utility_grid("gcc", UTILITY2, MARKET2, 24.0)
        cache_kb, slices, vcores, perf, value = kernel.best(
            "gcc", UTILITY2, MARKET2, 24.0
        )
        assert value == pytest.approx(float(grid.max()), rel=0)
        ci = list(kernel.cache_grid).index(cache_kb)
        si = list(kernel.slice_grid).index(slices)
        assert float(grid[ci, si]) == value

    def test_feasibility_mask_min_vcores(self):
        kernel = MarketKernel()
        mask = kernel.feasibility_mask(MARKET2, 24.0, min_vcores=0.5)
        vm = vcores_matrix(MARKET2, 24.0, kernel.cache_grid,
                           kernel.slice_grid)
        assert (mask == (vm >= 0.5)).all()

    def test_infeasible_budget_raises(self):
        kernel = MarketKernel()
        with pytest.raises(ValueError, match="feasible"):
            kernel.best("gcc", UTILITY2, MARKET2, 24.0, min_vcores=1e9)

    def test_perf_rows_shared_and_counted(self):
        obs = Observability()
        kernel = MarketKernel(obs=obs)
        kernel.prime(BENCHES)
        for u in STANDARD_UTILITIES:
            for m in (MARKET1, MARKET2, MARKET3):
                kernel.best("gcc", u, m, 24.0)
        snap = obs.snapshot()
        misses = snap["economics.kernel.perf_rows.misses"]["value"]
        hits = snap["economics.kernel.perf_rows.hits"]["value"]
        assert misses == len(BENCHES)
        assert hits >= 9


class TestPairSummary:
    def test_matches_object_path(self):
        rng = np.random.default_rng(11)
        sharing = rng.uniform(1.0, 5.0, size=20)
        fixed = rng.uniform(0.5, 2.0, size=20)
        summary = pair_gain_summary(sharing, fixed)
        gains = sorted(
            (sharing[i] + sharing[j]) / (fixed[i] + fixed[j])
            for i in range(20)
            for j in range(i + 1, 20)
        )
        assert summary["pairs"] == len(gains) == 190
        assert summary["min"] == pytest.approx(gains[0], rel=1e-12)
        assert summary["median"] == pytest.approx(
            gains[len(gains) // 2], rel=1e-12
        )
        assert summary["mean"] == pytest.approx(
            sum(gains) / len(gains), rel=1e-12
        )
        assert summary["max"] == pytest.approx(gains[-1], rel=1e-12)

    def test_nonpositive_fixed_is_infinite_gain(self):
        summary = pair_gain_summary([1.0, 1.0], [0.0, 0.0])
        assert summary["max"] == math.inf


class TestGeometricMeanVector:
    def test_matches_fsum_reference(self):
        rng = np.random.default_rng(5)
        utils = rng.uniform(0.1, 9.0, size=(7, 13))
        got = geometric_mean_vector(utils)
        for col in range(13):
            want = math.exp(
                math.fsum(math.log(v) for v in utils[:, col]) / 7
            )
            assert float(got[col]) == pytest.approx(want, rel=1e-12)
