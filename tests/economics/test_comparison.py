"""Tests for the market-efficiency comparisons (Figures 15-16)."""

import pytest

from repro.economics.comparison import MarketEfficiencyComparison
from repro.trace import all_benchmarks


@pytest.fixture(scope="module")
def comparison():
    return MarketEfficiencyComparison(all_benchmarks())


class TestPairEnumeration:
    def test_paper_pair_count(self, comparison):
        """15 benchmarks x 3 utilities -> C(45, 2) = 990 pairs (the
        paper's ~1000 permutations)."""
        gains = comparison.gains_vs_static()
        assert len(gains) == 990

    def test_customers_enumerated(self, comparison):
        assert len(comparison.customers) == 45


class TestStaticComparison:
    def test_sharing_never_loses(self, comparison):
        """The Sharing Architecture can always mimic the static config,
        so every pairwise gain is >= 1."""
        for gain in comparison.gains_vs_static():
            assert gain.gain >= 1.0 - 1e-9

    def test_headline_gain_band(self, comparison):
        """Paper: 'up to 5x' market-efficiency gain vs static fixed."""
        summary = comparison.summarize(comparison.gains_vs_static())
        assert 2.0 <= summary["max"] <= 8.0
        assert summary["mean"] > 1.1

    def test_static_config_is_reasonable(self, comparison):
        cache_kb, slices = comparison.best_static_config()
        assert cache_kb in comparison.optimizer.cache_grid
        assert slices in comparison.optimizer.slice_grid


class TestHeterogeneousComparison:
    def test_sharing_never_loses(self, comparison):
        for gain in comparison.gains_vs_heterogeneous():
            assert gain.gain >= 1.0 - 1e-9

    def test_hetero_beats_static_baseline(self, comparison):
        """Per-utility tuned cores serve customers better than one fixed
        config, so gains over heterogeneous are smaller."""
        static = comparison.summarize(comparison.gains_vs_static())
        hetero = comparison.summarize(comparison.gains_vs_heterogeneous())
        assert hetero["mean"] <= static["mean"]

    def test_still_substantial_gains(self, comparison):
        """Paper: 'Over 3x market efficiency gains can be achieved.'"""
        summary = comparison.summarize(comparison.gains_vs_heterogeneous())
        assert summary["max"] >= 1.5

    def test_per_utility_configs_differ(self, comparison):
        configs = {
            comparison.best_config_for_utility(u)
            for u in comparison.utilities
        }
        assert len(configs) >= 2


class TestValidation:
    def test_empty_benchmarks_rejected(self):
        with pytest.raises(ValueError):
            MarketEfficiencyComparison([])

    def test_summary_fields(self, comparison):
        summary = comparison.summarize(comparison.gains_vs_static())
        assert {"pairs", "min", "median", "mean", "max"} <= set(summary)
        assert summary["min"] <= summary["median"] <= summary["max"]
