"""Tests for the spot-market auction."""

import random

import pytest

from repro.economics.auction import Allocation, Bidder, SpotMarket
from repro.economics.utility import UTILITY1, UTILITY2, UTILITY3
from repro.trace import all_benchmarks


def _mixed_bidders(n=16, seed=3):
    rng = random.Random(seed)
    return [
        Bidder(
            name=f"c{i}",
            benchmark=rng.choice(all_benchmarks()),
            utility=rng.choice([UTILITY1, UTILITY2, UTILITY3]),
            budget=rng.choice([12.0, 24.0, 48.0]),
        )
        for i in range(n)
    ]


class TestAllocation:
    def test_resource_demands(self):
        alloc = Allocation(bidder="c0", cache_kb=256, slices=3, vcores=2.0,
                           utility=1.0)
        assert alloc.slices_demanded == 6.0
        assert alloc.banks_demanded == 8.0


class TestClearing:
    def test_mixed_population_clears(self):
        market = SpotMarket(slice_supply=60, bank_supply=120)
        result = market.clear(_mixed_bidders())
        assert result.converged
        assert result.slice_demand <= result.slice_supply * 1.1
        assert result.bank_demand <= result.bank_supply * 1.1
        assert result.total_welfare > 0
        assert result.provider_revenue > 0

    def test_scarcity_raises_prices(self):
        bidders = _mixed_bidders()
        loose = SpotMarket(slice_supply=500, bank_supply=1000).clear(bidders)
        tight = SpotMarket(slice_supply=20, bank_supply=40).clear(bidders)
        assert tight.slice_price > loose.slice_price
        assert tight.bank_price > loose.bank_price

    def test_abundance_drives_prices_to_floor(self):
        market = SpotMarket(slice_supply=10_000, bank_supply=10_000)
        result = market.clear(_mixed_bidders(n=2))
        assert result.converged
        assert result.slice_price <= 0.2
        assert result.bank_price <= 0.2

    def test_identical_bidders_may_not_clear(self):
        """Lumpy demand: identical bidders under scarcity can cycle; the
        market reports this honestly rather than fabricating a price."""
        market = SpotMarket(slice_supply=10, bank_supply=10, max_rounds=40)
        result = market.clear(
            [Bidder(f"c{i}", "gcc", UTILITY2, 48.0) for i in range(8)]
        )
        # Either it found a rationing point or it reports non-convergence;
        # in both cases prices moved up from their initial values.
        assert result.slice_price > 2.0 or result.bank_price > 1.0

    def test_allocations_cover_every_bidder(self):
        bidders = _mixed_bidders(n=6)
        result = SpotMarket(slice_supply=60, bank_supply=120).clear(bidders)
        assert {a.bidder for a in result.allocations} == {
            b.name for b in bidders
        }

    def test_welfare_beats_forced_uniform_bundle(self):
        """Market allocation dominates forcing one bundle on everyone at
        the same prices - the paper's efficiency argument."""
        from repro.economics.market import Market
        from repro.economics.optimizer import UtilityOptimizer
        bidders = _mixed_bidders(n=10)
        result = SpotMarket(slice_supply=80, bank_supply=160).clear(bidders)
        market = Market(name="clearing",
                        slice_price=result.slice_price,
                        bank_price=result.bank_price)
        forced = 0.0
        for bidder in bidders:
            optimizer = UtilityOptimizer(budget=bidder.budget)
            forced += optimizer.utility_at(
                bidder.benchmark, bidder.utility, market, 256.0, 2
            )
        assert result.total_welfare >= forced

    def test_validation(self):
        with pytest.raises(ValueError):
            SpotMarket(slice_supply=0, bank_supply=10)
        with pytest.raises(ValueError):
            SpotMarket(slice_supply=1, bank_supply=1).clear([])
        with pytest.raises(ValueError):
            Bidder("x", "gcc", UTILITY1, budget=0)
