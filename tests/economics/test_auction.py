"""Tests for the spot-market auction."""

import math
import random

import pytest

from repro.economics.auction import Allocation, Bidder, SpotMarket
from repro.economics.tensor import HAVE_NUMPY
from repro.economics.utility import UTILITY1, UTILITY2, UTILITY3
from repro.obs import Observability
from repro.perfmodel.model import AnalyticModel
from repro.trace import all_benchmarks


def _mixed_bidders(n=16, seed=3):
    rng = random.Random(seed)
    return [
        Bidder(
            name=f"c{i}",
            benchmark=rng.choice(all_benchmarks()),
            utility=rng.choice([UTILITY1, UTILITY2, UTILITY3]),
            budget=rng.choice([12.0, 24.0, 48.0]),
        )
        for i in range(n)
    ]


class TestAllocation:
    def test_resource_demands(self):
        alloc = Allocation(bidder="c0", cache_kb=256, slices=3, vcores=2.0,
                           utility=1.0)
        assert alloc.slices_demanded == 6.0
        assert alloc.banks_demanded == 8.0


class TestClearing:
    def test_mixed_population_clears(self):
        market = SpotMarket(slice_supply=60, bank_supply=120)
        result = market.clear(_mixed_bidders())
        assert result.converged
        assert result.slice_demand <= result.slice_supply * 1.1
        assert result.bank_demand <= result.bank_supply * 1.1
        assert result.total_welfare > 0
        assert result.provider_revenue > 0

    def test_scarcity_raises_prices(self):
        bidders = _mixed_bidders()
        loose = SpotMarket(slice_supply=500, bank_supply=1000).clear(bidders)
        tight = SpotMarket(slice_supply=20, bank_supply=40).clear(bidders)
        assert tight.slice_price > loose.slice_price
        assert tight.bank_price > loose.bank_price

    def test_abundance_drives_prices_to_floor(self):
        market = SpotMarket(slice_supply=10_000, bank_supply=10_000)
        result = market.clear(_mixed_bidders(n=2))
        assert result.converged
        assert result.slice_price <= 0.2
        assert result.bank_price <= 0.2

    def test_identical_bidders_may_not_clear(self):
        """Lumpy demand: identical bidders under scarcity can cycle; the
        market reports this honestly rather than fabricating a price."""
        market = SpotMarket(slice_supply=10, bank_supply=10, max_rounds=40)
        result = market.clear(
            [Bidder(f"c{i}", "gcc", UTILITY2, 48.0) for i in range(8)]
        )
        # Either it found a rationing point or it reports non-convergence;
        # in both cases prices moved up from their initial values.
        assert result.slice_price > 2.0 or result.bank_price > 1.0

    def test_allocations_cover_every_bidder(self):
        bidders = _mixed_bidders(n=6)
        result = SpotMarket(slice_supply=60, bank_supply=120).clear(bidders)
        assert {a.bidder for a in result.allocations} == {
            b.name for b in bidders
        }

    def test_welfare_beats_forced_uniform_bundle(self):
        """Market allocation dominates forcing one bundle on everyone at
        the same prices - the paper's efficiency argument."""
        from repro.economics.market import Market
        from repro.economics.optimizer import UtilityOptimizer
        bidders = _mixed_bidders(n=10)
        result = SpotMarket(slice_supply=80, bank_supply=160).clear(bidders)
        market = Market(name="clearing",
                        slice_price=result.slice_price,
                        bank_price=result.bank_price)
        forced = 0.0
        for bidder in bidders:
            optimizer = UtilityOptimizer(budget=bidder.budget)
            forced += optimizer.utility_at(
                bidder.benchmark, bidder.utility, market, 256.0, 2
            )
        assert result.total_welfare >= forced

    def test_validation(self):
        with pytest.raises(ValueError):
            SpotMarket(slice_supply=0, bank_supply=10)
        with pytest.raises(ValueError):
            SpotMarket(slice_supply=1, bank_supply=1).clear([])
        with pytest.raises(ValueError):
            Bidder("x", "gcc", UTILITY1, budget=0)


class _CacheBlindModel(AnalyticModel):
    """Performance independent of cache: every optimum buys 0 banks."""

    def performance(self, benchmark, cache_kb, slices):
        return super().performance(benchmark, 0.0, slices)


BACKENDS = ("python", "numpy") if HAVE_NUMPY else ("python",)


class TestEdgeCases:
    """Convergence corner cases: zero-demand goods, exhausted budgets,
    and the seeded oscillation that only damping keeps bounded."""

    def test_zero_demand_good_price_decays(self):
        """Nobody wants banks: the auction must still clear on the
        slice market while the bank price falls, not divide by zero or
        chase phantom demand.  (python backend: the vectorized kernel
        mirrors the stock model's arithmetic, so a subclassed
        ``performance`` only affects the scalar path.)"""
        market = SpotMarket(60, 80, model=_CacheBlindModel(),
                            backend="python")
        result = market.clear(_mixed_bidders(n=10, seed=0))
        assert result.converged
        assert result.bank_demand == 0.0
        assert result.bank_price < 1.0  # decayed from its initial value
        assert all(a.cache_kb == 0 for a in result.allocations)

    def test_zero_demand_good_reaches_floor(self):
        """Started near the floor, a good nobody demands is pinned
        there instead of drifting negative."""
        market = SpotMarket(60, 80, model=_CacheBlindModel(),
                            backend="python")
        result = market.clear(_mixed_bidders(n=10, seed=0),
                              initial_bank_price=0.011)
        assert result.converged
        assert result.bank_price >= 0.01  # never below the floor
        assert result.bank_price <= 0.011

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_budget_exhausted_bidders_converge(self, backend):
        """Near-zero budgets mean near-zero demand on both goods; the
        stability rule accepts the settled prices instead of spinning
        for the full round cap."""
        market = SpotMarket(100, 200, backend=backend)
        bidders = [Bidder(f"t{i}", "bzip", UTILITY1, 1e-6)
                   for i in range(4)]
        result = market.clear(bidders)
        assert result.converged
        assert not result.rationed
        assert result.rounds < market.max_rounds
        assert result.slice_price <= 2.0
        assert result.bank_price <= 1.0
        assert len(result.allocations) == len(bidders)
        assert all(0 < a.vcores < 1e-3 for a in result.allocations)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_mixed_rich_and_exhausted_bidders(self, backend):
        """Budget-exhausted bidders ride along without distorting the
        clearing driven by the funded population."""
        bidders = _mixed_bidders(n=8) + [
            Bidder(f"poor{i}", "gcc", UTILITY2, 1e-6) for i in range(4)
        ]
        result = SpotMarket(60, 120, backend=backend).clear(bidders)
        assert result.converged
        assert {a.bidder for a in result.allocations} == {
            b.name for b in bidders
        }
        rich_only = SpotMarket(60, 120, backend=backend).clear(
            _mixed_bidders(n=8))
        assert result.slice_price == pytest.approx(rich_only.slice_price,
                                                   rel=1e-6)
        assert result.bank_price == pytest.approx(rich_only.bank_price,
                                                  rel=1e-6)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_seeded_oscillation_terminates_under_damping(self, backend):
        """The canonical non-existence case: identical bidders, scarce
        supply.  Demand flips between two grid bundles forever; damping
        must keep prices bounded and the loop must stop at the round
        cap with an honest ``converged=False``."""
        market = SpotMarket(10, 10, max_rounds=60, backend=backend)
        result = market.clear(
            [Bidder(f"c{i}", "gcc", UTILITY2, 48.0) for i in range(8)]
        )
        assert result.rounds == market.max_rounds
        assert not result.converged
        # Damping bound: each round multiplies a price by at most
        # exp(k * 2) with k <= 0.3, and the oscillation alternates sign,
        # so prices stay within a sane envelope rather than diverging.
        assert 0.01 <= result.slice_price < 1e3
        assert 0.01 <= result.bank_price < 1e3
        assert math.isfinite(result.total_welfare)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_obs_counts_rounds_and_bids(self, backend):
        obs = Observability()
        market = SpotMarket(60, 120, backend=backend, obs=obs)
        bidders = _mixed_bidders(n=6)
        result = market.clear(bidders)
        snap = obs.snapshot()
        assert (snap["economics.auction.rounds"]["value"]
                == result.rounds)
        assert (snap["economics.auction.bid_evaluations"]["value"]
                == result.rounds * len(bidders))
        assert snap["economics.auction.clear_s"]["total_s"] > 0
