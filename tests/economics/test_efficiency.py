"""Tests for efficiency metrics and optimal-configuration search."""

import pytest

from repro.economics.efficiency import (
    PERF2_PER_AREA,
    PERF3_PER_AREA,
    PERF_PER_AREA,
    STANDARD_METRICS,
    EfficiencyMetric,
    efficiency_table,
    optimal_configuration,
)


class TestMetrics:
    def test_three_standard_metrics(self):
        assert len(STANDARD_METRICS) == 3
        assert PERF_PER_AREA.perf_exponent == 1
        assert PERF3_PER_AREA.perf_exponent == 3

    def test_metric_value(self):
        assert PERF2_PER_AREA.value(2.0, 4.0) == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            EfficiencyMetric("bad", 0)
        with pytest.raises(ValueError):
            PERF_PER_AREA.value(1.0, 0.0)


class TestOptimalConfiguration:
    def test_is_grid_maximum(self):
        best = optimal_configuration("gcc", PERF2_PER_AREA)
        assert best.score > 0
        assert best.performance > 0
        assert best.area > 0

    def test_higher_exponent_buys_bigger_cores(self):
        """Table 4: perf^3/area optima are larger than perf/area optima."""
        for bench in ("gcc", "gobmk", "omnetpp"):
            lo = optimal_configuration(bench, PERF_PER_AREA)
            hi = optimal_configuration(bench, PERF3_PER_AREA)
            assert (hi.slices, hi.cache_kb) >= (lo.slices, lo.cache_kb)
            assert hi.area >= lo.area

    def test_paper_gobmk_perf2_favors_big_core(self):
        """Table 4: gobmk's perf^2/area optimum is a multi-Slice core
        with substantial cache (paper: 5 Slices, 1 MB)."""
        best = optimal_configuration("gobmk", PERF2_PER_AREA)
        assert best.slices >= 3
        assert best.cache_kb >= 256

    def test_paper_hmmer_prefers_small(self):
        """Table 4: hmmer prefers minimal configurations."""
        hmmer = optimal_configuration("hmmer", PERF2_PER_AREA)
        gobmk = optimal_configuration("gobmk", PERF2_PER_AREA)
        assert hmmer.slices < gobmk.slices
        assert hmmer.cache_kb <= 256


class TestEfficiencyTable:
    def test_table_shape(self):
        table = efficiency_table(["gcc", "bzip"])
        assert set(table) == {m.name for m in STANDARD_METRICS}
        assert set(table["performance/area"]) == {"gcc", "bzip"}

    def test_optima_vary_across_benchmarks(self):
        """Section 5.5: 'The non-uniformity of optimal configurations
        ... shows that benefits can be achieved.'"""
        table = efficiency_table(
            ["gcc", "hmmer", "omnetpp", "libquantum", "gobmk"]
        )
        for metric_name in ("performance^2/area", "performance^3/area"):
            configs = {
                (sc.cache_kb, sc.slices)
                for sc in table[metric_name].values()
            }
            assert len(configs) >= 3
