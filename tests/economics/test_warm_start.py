"""Warm-started tatonnement: fixed-point stability and round savings.

The streaming service reprices from the previous price vector
(``min_rounds=1``) instead of from scratch (``min_rounds=2`` with
arbitrary initial prices).  These tests pin the two contracts the
redesign rests on:

* **exactness** - at a fixed point a warm step converges in one round
  with zero price movement, so submit+depart of the same tenant
  returns the market to its pre-submit prices, and the allocations a
  warm restart produces are bit-equal to the cold-start clearing's;
* **economy** - warm steps over a seeded stream never spend more
  rounds than cold-clearing the same roster from scratch.
"""

import random

import pytest

from repro.cloud.service import AllocationService, TenantRequest
from repro.economics.backend import HAVE_NUMPY
from repro.economics.utility import STANDARD_UTILITIES
from repro.trace.profiles import PROFILES

BACKENDS = ("numpy", "python") if HAVE_NUMPY else ("python",)

SLICE_SUPPLY = 48.0
BANK_SUPPLY = 48.0


def make_service(backend, **kwargs):
    kwargs.setdefault("slice_supply", SLICE_SUPPLY)
    kwargs.setdefault("bank_supply", BANK_SUPPLY)
    return AllocationService(backend=backend, **kwargs)


def population(count, seed=3):
    rng = random.Random(seed)
    benchmarks = sorted(PROFILES)
    return [
        TenantRequest(
            name=f"t{i}",
            benchmark=benchmarks[rng.randrange(len(benchmarks))],
            utility=STANDARD_UTILITIES[
                rng.randrange(len(STANDARD_UTILITIES))],
            budget=rng.uniform(12.0, 48.0),
        )
        for i in range(count)
    ]


@pytest.mark.parametrize("backend", BACKENDS)
class TestFixedPointExactness:
    def test_submit_depart_returns_to_fixed_point(self, backend):
        service = make_service(backend)
        for request in population(8):
            service.register(request)
        service.clear_batch()
        before = service.prices()
        extra = TenantRequest(name="extra", benchmark="gcc",
                              utility=STANDARD_UTILITIES[1], budget=30.0)
        service.submit(extra)
        service.depart("extra")
        result = service.step()
        assert result.converged
        assert service.prices()[0] == pytest.approx(before[0], rel=1e-9)
        assert service.prices()[1] == pytest.approx(before[1], rel=1e-9)

    def test_step_at_fixed_point_is_one_round_zero_movement(
            self, backend):
        service = make_service(backend)
        for request in population(8):
            service.register(request)
        batch = service.clear_batch()
        if not batch.converged:
            pytest.skip("population did not clear")
        result = service.step()
        assert result.rounds == 1
        assert result.converged
        # Exact equality, not approx: a converged warm round never
        # touches the prices at all.
        assert (result.slice_price, result.bank_price) == (
            batch.slice_price, batch.bank_price)

    def test_warm_restart_allocations_bit_equal_cold(self, backend):
        service = make_service(backend)
        for request in population(10, seed=5):
            service.register(request)
        cold = service.clear_batch()
        warm = service._tatonnement(cold.slice_price, cold.bank_price,
                                    min_rounds=1)
        assert warm["rounds"] == 1
        assert warm["slice_price"] == cold.slice_price
        assert warm["bank_price"] == cold.bank_price
        assert len(warm["allocations"]) == len(cold.allocations)
        for a, b in zip(warm["allocations"], cold.allocations):
            assert a.bidder == b.bidder
            assert a.cache_kb == b.cache_kb
            assert a.slices == b.slices
            assert a.vcores == b.vcores
            assert a.utility == b.utility


@pytest.mark.parametrize("backend", BACKENDS)
class TestWarmRoundEconomy:
    def test_warm_rounds_never_exceed_cold(self, backend):
        """Stream checkpoint: repricing warm from the previous fixed
        point costs no more rounds than cold-clearing the roster."""
        rng = random.Random(17)
        service = make_service(backend)
        requests = population(12, seed=17)
        for request in requests[:6]:
            service.register(request)
        service.clear_batch()
        warm_total = 0
        cold_total = 0
        roster = list(requests[:6])
        for request in requests[6:]:
            # Mutate the market: one arrival, sometimes one departure.
            service.submit(request)
            roster.append(request)
            if len(roster) > 6 and rng.random() < 0.5:
                victim = roster.pop(rng.randrange(len(roster)))
                service.depart(victim.name)
            warm = service.step()
            warm_total += warm.rounds
            cold = make_service(backend)
            for standing in roster:
                cold.register(standing)
            cold_total += cold.clear_batch().rounds
        assert warm_total <= cold_total
