"""Tests for the dynamic-phase analysis (Table 7 machinery)."""

import pytest

from repro.economics.efficiency import (
    PERF2_PER_AREA,
    PERF3_PER_AREA,
    PERF_PER_AREA,
)
from repro.economics.phases_analysis import analyze_phases
from repro.trace.phases import gcc_phases


@pytest.fixture(scope="module")
def phased():
    return gcc_phases()


class TestPhaseAnalysis:
    def test_dynamic_never_loses_before_overhead(self, phased):
        """Per-phase optima dominate any static config pointwise; only
        reconfiguration overhead can eat the gain."""
        result = analyze_phases(phased, PERF2_PER_AREA)
        gross = result.dynamic_score
        # Undo the overhead discount to check the pointwise dominance.
        assert gross * (1 + 1e-9) >= 0  # sanity
        assert result.gain >= -0.05  # overhead never catastrophic here

    def test_gain_grows_with_performance_preference(self, phased):
        """Table 7: 9.1% -> 15.1% -> 19.4% across the three metrics; the
        reproduction preserves the ordering and the band."""
        g1 = analyze_phases(phased, PERF_PER_AREA).gain
        g2 = analyze_phases(phased, PERF2_PER_AREA).gain
        g3 = analyze_phases(phased, PERF3_PER_AREA).gain
        assert g1 <= g2 <= g3
        assert 0.03 <= g2 <= 0.30
        assert 0.08 <= g3 <= 0.35

    def test_per_phase_configs_vary(self, phased):
        """Table 7: 'Even within a single program and a single metric,
        optimal VCore configurations change with phase.'"""
        result = analyze_phases(phased, PERF3_PER_AREA)
        assert len(set(result.per_phase_configs)) >= 3

    def test_reconfiguration_cycles_counted(self, phased):
        result = analyze_phases(phased, PERF3_PER_AREA)
        changes = sum(
            1
            for a, b in zip(result.per_phase_configs,
                            result.per_phase_configs[1:])
            if a != b
        )
        if changes:
            assert result.reconfig_cycles > 0
        assert result.reconfig_cycles <= changes * 10_000

    def test_static_config_recorded(self, phased):
        result = analyze_phases(phased, PERF2_PER_AREA)
        cache_kb, slices = result.static_config
        assert 0 <= cache_kb <= 8192
        assert 1 <= slices <= 8
