"""Scalar/vector equivalence suite (the ISSUE's acceptance contract).

* tab4/tab6 optimal *configurations* must be bit-identical between
  ``backend="python"`` and ``backend="numpy"`` - both search the grid
  in (cache outer, slice inner) order and keep the first strict
  maximum, so the winners agree exactly;
* fig14/fig15/fig16 utility *values* agree within the documented fp
  tolerance (DESIGN.md "Vectorized market kernel"): the numpy kernel
  mirrors the scalar arithmetic op for op, so differences are a few
  ulps;
* the auction must take the same rounds to the same prices.

``REPRO_EQUIV_SEED`` varies the randomized populations; CI runs this
module under two seeds.
"""

import itertools
import os
import random

import pytest

pytest.importorskip("numpy")

from repro.economics.auction import Bidder, SpotMarket
from repro.economics.comparison import MarketEfficiencyComparison
from repro.economics.efficiency import efficiency_table
from repro.economics.market import STANDARD_MARKETS, MARKET2
from repro.economics.optimizer import UtilityOptimizer
from repro.economics.utility import STANDARD_UTILITIES
from repro.trace.profiles import PROFILES

#: fp tolerance for utility values between backends (see DESIGN.md):
#: both paths use the same op order, so agreement is ulp-level; 1e-9
#: leaves five orders of magnitude of headroom over observed 1e-15.
VALUE_RTOL = 1e-9

SEED = int(os.environ.get("REPRO_EQUIV_SEED", "0"))
BENCHES = sorted(PROFILES)


class TestTable6:
    def test_configs_bit_identical(self):
        t_py = UtilityOptimizer(backend="python").table6(
            BENCHES, STANDARD_UTILITIES, STANDARD_MARKETS
        )
        t_np = UtilityOptimizer(backend="numpy").table6(
            BENCHES, STANDARD_UTILITIES, STANDARD_MARKETS
        )
        assert t_py.keys() == t_np.keys()
        for key in t_py:
            a, b = t_py[key], t_np[key]
            assert (a.cache_kb, a.slices) == (b.cache_kb, b.slices), key
            assert b.utility == pytest.approx(a.utility, rel=VALUE_RTOL)
            assert b.vcores == pytest.approx(a.vcores, rel=VALUE_RTOL)


class TestTable4:
    def test_configs_bit_identical(self):
        t_py = efficiency_table(BENCHES, backend="python")
        t_np = efficiency_table(BENCHES, backend="numpy")
        for metric in t_py:
            for bench in t_py[metric]:
                a, b = t_py[metric][bench], t_np[metric][bench]
                assert (a.cache_kb, a.slices) == (b.cache_kb, b.slices)
                assert b.score == pytest.approx(a.score, rel=VALUE_RTOL)


class TestFig14:
    def test_surfaces_within_tolerance(self):
        opt_py = UtilityOptimizer(backend="python")
        opt_np = UtilityOptimizer(backend="numpy")
        for bench, utility in (("gcc", STANDARD_UTILITIES[0]),
                               ("bzip", STANDARD_UTILITIES[1])):
            s_py = opt_py.utility_surface(bench, utility, MARKET2)
            s_np = opt_np.utility_surface(bench, utility, MARKET2)
            assert s_py.keys() == s_np.keys()
            for cfg, want in s_py.items():
                assert s_np[cfg] == pytest.approx(want, rel=VALUE_RTOL)
            assert (max(s_py, key=s_py.get)
                    == max(s_np, key=s_np.get))


class TestFig15Fig16:
    @pytest.fixture(scope="class")
    def comparisons(self):
        rng = random.Random(SEED)
        benches = rng.sample(BENCHES, k=10)
        return (
            MarketEfficiencyComparison(benches, backend="python"),
            MarketEfficiencyComparison(benches, backend="numpy"),
        )

    def test_reference_configs_identical(self, comparisons):
        c_py, c_np = comparisons
        assert c_py.best_static_config() == c_np.best_static_config()
        for u in c_py.utilities:
            assert (c_py.best_config_for_utility(u)
                    == c_np.best_config_for_utility(u))

    def test_pair_gains_within_tolerance(self, comparisons):
        c_py, c_np = comparisons
        for method in ("gains_vs_static", "gains_vs_heterogeneous"):
            g_py = getattr(c_py, method)()
            g_np = getattr(c_np, method)()
            assert len(g_py) == len(g_np)
            for a, b in zip(g_py, g_np):
                assert (a.customer_a, a.customer_b) == (b.customer_a,
                                                        b.customer_b)
                assert b.gain == pytest.approx(a.gain, rel=VALUE_RTOL)

    def test_summaries_within_tolerance(self, comparisons):
        c_py, c_np = comparisons
        for method in ("summary_vs_static", "summary_vs_heterogeneous"):
            s_py = getattr(c_py, method)()
            s_np = getattr(c_np, method)()
            assert s_py["pairs"] == s_np["pairs"]
            for k in ("min", "median", "mean", "max"):
                assert s_np[k] == pytest.approx(s_py[k], rel=VALUE_RTOL)


class TestAuction:
    def test_same_rounds_same_prices(self):
        rng = random.Random(SEED + 100)
        bidders = [
            Bidder(name=f"b{i}", benchmark=rng.choice(BENCHES),
                   utility=rng.choice(STANDARD_UTILITIES),
                   budget=rng.choice([12.0, 24.0, 48.0]))
            for i in range(12)
        ]
        r_py = SpotMarket(80, 160, backend="python").clear(bidders)
        r_np = SpotMarket(80, 160, backend="numpy").clear(bidders)
        assert r_py.rounds == r_np.rounds
        assert r_py.converged == r_np.converged
        assert r_py.rationed == r_np.rationed
        assert r_np.slice_price == pytest.approx(r_py.slice_price,
                                                 rel=VALUE_RTOL)
        assert r_np.bank_price == pytest.approx(r_py.bank_price,
                                                rel=VALUE_RTOL)
        for a, b in zip(r_py.allocations, r_np.allocations):
            assert (a.bidder, a.cache_kb, a.slices) == (
                b.bidder, b.cache_kb, b.slices)
            assert b.vcores == pytest.approx(a.vcores, rel=VALUE_RTOL)
            assert b.utility == pytest.approx(a.utility, rel=VALUE_RTOL)


class TestEngineStamping:
    def test_backend_in_cache_key(self):
        from repro.engine.core import SweepSpec

        spec = SweepSpec(benchmarks=("gcc",),
                         utilities=(STANDARD_UTILITIES[0],),
                         markets=(MARKET2,), budget=24.0)
        u_py = SweepSpec(**{**spec.__dict__, "backend": "python"}).expand()
        u_np = SweepSpec(**{**spec.__dict__, "backend": "numpy"}).expand()
        assert u_py[0].backend == "python"
        assert u_np[0].backend == "numpy"
        assert u_py[0].cache_key() != u_np[0].cache_key()

    def test_performance_units_never_stamped(self):
        from repro.engine.core import SweepSpec

        units = SweepSpec(benchmarks=("gcc",), backend="numpy").expand()
        assert all(u.backend == "python" for u in units)

    def test_engine_utility_map_values_equivalent(self, tmp_path):
        from repro.engine import ResultCache, SweepEngine

        def values(backend):
            engine = SweepEngine(
                jobs=1,
                cache=ResultCache(root=str(tmp_path / backend)),
                backend=backend,
            )
            result = engine.utility_map(
                ["gcc", "bzip"], STANDARD_UTILITIES[:2], [MARKET2], 24.0
            )
            return result.values

        g_py = values("python")
        g_np = values("numpy")
        assert g_py.keys() == g_np.keys()
        for key in g_py:
            for cfg, want in g_py[key].items():
                assert g_np[key][cfg] == pytest.approx(want,
                                                       rel=VALUE_RTOL)
