"""Deprecated entry points: old import paths and kernel signatures.

The backend helpers moved to :mod:`repro.economics.backend` and the
:class:`~repro.economics.tensor.MarketKernel` now binds its market at
construction (or via ``for_market``); the old spellings must keep
working - with a :class:`DeprecationWarning` - and produce identical
results to the new API.
"""

import warnings

import pytest

np = pytest.importorskip("numpy")

from repro.economics import backend as backend_module
from repro.economics.market import MARKET2
from repro.economics.tensor import MarketKernel
from repro.economics.utility import UTILITY2


class TestBackendImportShim:
    def test_tensor_resolve_backend_warns(self):
        import repro.economics.tensor as tensor

        with pytest.warns(DeprecationWarning,
                          match="repro.economics.backend"):
            resolved = tensor.__getattr__("resolve_backend")
        assert resolved is backend_module.resolve_backend

    def test_reexported_constants_do_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            from repro.economics.tensor import (  # noqa: F401
                BACKENDS,
                DEFAULT_BACKEND,
                HAVE_NUMPY,
            )
        assert "numpy" in BACKENDS and "python" in BACKENDS

    def test_canonical_module_is_warning_free(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            assert backend_module.resolve_backend(None) in (
                "numpy", "python")


class TestKernelMarketBinding:
    def test_old_signatures_warn_and_match_bound(self):
        kernel = MarketKernel()
        bound = kernel.for_market(MARKET2)
        with pytest.warns(DeprecationWarning, match="for_market"):
            old = kernel.vcores(MARKET2, 24.0)
        new = bound.vcores(24.0)
        assert np.array_equal(old, new)

        with pytest.warns(DeprecationWarning, match="for_market"):
            old_grid = kernel.utility_grid("gcc", UTILITY2, MARKET2, 24.0)
        new_grid = bound.utility_grid("gcc", UTILITY2, 24.0)
        assert np.array_equal(old_grid, new_grid)

        with pytest.warns(DeprecationWarning, match="for_market"):
            old_best = kernel.best("gcc", UTILITY2, MARKET2, 24.0)
        assert old_best == bound.best("gcc", UTILITY2, 24.0)

    def test_bound_kernel_does_not_warn(self):
        kernel = MarketKernel(market=MARKET2)
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            kernel.vcores(24.0)
            kernel.utility_grid("gcc", UTILITY2, 24.0)
            kernel.best("gcc", UTILITY2, 24.0)

    def test_unbound_kernel_without_market_raises(self):
        kernel = MarketKernel()
        with pytest.raises(TypeError):
            kernel.vcores(24.0)

    def test_for_market_views_share_performance_rows(self):
        kernel = MarketKernel(market=MARKET2)
        kernel.perf_row("gcc")
        view = kernel.for_market(MARKET2)
        assert view is kernel
