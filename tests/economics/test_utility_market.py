"""Tests for utility functions and markets."""

import pytest

from repro.economics.market import (
    MARKET1,
    MARKET2,
    MARKET3,
    STANDARD_MARKETS,
    Market,
)
from repro.economics.utility import (
    STANDARD_UTILITIES,
    UTILITY1,
    UTILITY2,
    UTILITY3,
    UtilityFunction,
)


class TestUtilityFunctions:
    def test_three_standard_utilities(self):
        """Table 5: three example customers."""
        assert len(STANDARD_UTILITIES) == 3

    def test_sorted_by_performance_preference(self):
        """Sorted from throughput-favouring to latency-favouring."""
        exps = [u.perf_exponent for u in STANDARD_UTILITIES]
        assert exps == sorted(exps)
        assert UTILITY1.favors_throughput()
        assert not UTILITY3.favors_throughput()

    def test_utility1_is_linear(self):
        """Equation 4: U_LT = v * P."""
        assert UTILITY1.value(2.0, 3.0) == pytest.approx(6.0)

    def test_utility3_is_oldi(self):
        """Equation 1: U_OLDI = cbrt(v) * P^3."""
        assert UTILITY3.value(2.0, 8.0) == pytest.approx(2.0 * 8.0)

    def test_all_agree_at_single_vcore(self):
        for u in STANDARD_UTILITIES:
            assert u.value(1.0, 1.0) == pytest.approx(1.0)

    def test_more_performance_more_utility(self):
        for u in STANDARD_UTILITIES:
            assert u.value(2.0, 1.0) > u.value(1.0, 1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            UtilityFunction(name="bad", perf_exponent=0)
        with pytest.raises(ValueError):
            UTILITY1.value(-1.0, 1.0)


class TestMarkets:
    def test_market2_prices_track_area(self):
        """Section 5.7: 1 Slice costs the same as 128 KB (two banks)."""
        assert MARKET2.relative_slice_premium() == pytest.approx(1.0)

    def test_market1_slice_premium(self):
        assert MARKET1.relative_slice_premium() == pytest.approx(4.0)

    def test_market3_cache_premium(self):
        assert MARKET3.relative_slice_premium() == pytest.approx(0.25)

    def test_cost_composition(self):
        market = Market(name="m", slice_price=2, bank_price=1, fixed_cost=0)
        # 256 KB = 4 banks.
        assert market.cost(256, 3) == pytest.approx(4 * 1 + 3 * 2)

    def test_fixed_cost_included(self):
        market = Market(name="m", slice_price=2, bank_price=1, fixed_cost=5)
        assert market.cost(0, 1) == pytest.approx(7)

    def test_equation2_budget_constraint(self):
        market = Market(name="m", slice_price=2, bank_price=1, fixed_cost=0)
        assert market.vcores_affordable(24, 256, 3) == pytest.approx(2.4)

    def test_bigger_configs_fewer_vcores(self):
        for market in STANDARD_MARKETS:
            assert (market.vcores_affordable(24, 0, 1)
                    > market.vcores_affordable(24, 1024, 8))

    def test_validation(self):
        with pytest.raises(ValueError):
            Market(name="bad", slice_price=0, bank_price=1)
        with pytest.raises(ValueError):
            MARKET2.cost(-1, 1)
        with pytest.raises(ValueError):
            MARKET2.vcores_affordable(-1, 0, 1)
