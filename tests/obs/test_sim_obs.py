"""Simulator observability: attachment, event coverage, bit-identity."""

import pytest

from repro.core.simulator import simulate
from repro.obs import OBS_OFF, Observability
from repro.trace.generator import make_workload


@pytest.fixture(scope="module")
def workload():
    return make_workload("gcc", 1500, seed=3)


def _stats_dict(result):
    return result.stats.summary()


class TestAttachment:
    def test_registry_covers_core_cache_network(self, workload):
        warmup, trace = workload
        obs = Observability()
        simulate(trace, num_slices=2, warmup_addresses=warmup, obs=obs)
        names = set(obs.snapshot())
        assert any(n.startswith("sim.core.rob.") for n in names)
        assert any(n.startswith("sim.core.slice0.l1d.") for n in names)
        assert any(n.startswith("sim.cache.l2.") for n in names)
        assert any(n.startswith("sim.network.son.") for n in names)

    def test_counters_agree_with_sim_stats(self, workload):
        warmup, trace = workload
        obs = Observability()
        result = simulate(trace, num_slices=2, warmup_addresses=warmup,
                          obs=obs)
        snap = obs.snapshot()
        l1d_misses = sum(
            snap[f"sim.core.slice{s}.l1d.misses"]["value"] for s in (0, 1)
        )
        assert l1d_misses == result.stats.l1d_misses

    def test_trace_covers_core_cache_network(self, workload):
        warmup, trace = workload
        obs = Observability(trace=True)
        simulate(trace, num_slices=2, warmup_addresses=warmup, obs=obs)
        cats = set(obs.tracer.categories())
        assert {"core", "cache", "network"} <= cats
        assert obs.tracer.dropped + len(obs.tracer) == obs.tracer.emitted


class TestBitIdentity:
    def test_obs_off_and_on_are_bit_identical(self, workload):
        warmup, trace = workload
        base = simulate(trace, num_slices=2, warmup_addresses=warmup)
        off = simulate(trace, num_slices=2, warmup_addresses=warmup,
                       obs=OBS_OFF)
        on = simulate(trace, num_slices=2, warmup_addresses=warmup,
                      obs=Observability(trace=True))
        assert _stats_dict(base) == _stats_dict(off) == _stats_dict(on)

    def test_default_run_attaches_nothing(self, workload):
        warmup, trace = workload
        result = simulate(trace, num_slices=2, warmup_addresses=warmup)
        assert result.stats.committed > 0
