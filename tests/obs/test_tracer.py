"""Unit tests for the bounded event tracer (repro.obs.tracer)."""

import json

from repro.obs.tracer import EventTracer, NULL_TRACER


class TestEmission:
    def test_event_dicts_follow_trace_event_schema(self):
        t = EventTracer(pid=7)
        t.instant("branch", ts=10.0, cat="core", tid=1, args={"pc": 4})
        t.complete("msg", ts=5.0, dur=3.0, cat="network", tid=0)
        t.counter("occupancy", ts=8.0, values={"rob": 12})
        events = t.events()
        assert [e["ph"] for e in events] == ["i", "X", "C"]
        for event in events:
            assert event["pid"] == 7
            assert {"name", "ph", "ts", "tid"} <= set(event)
        assert events[0]["s"] == "t"  # instants carry a scope
        assert events[1]["dur"] == 3.0
        assert events[2]["args"] == {"rob": 12}

    def test_categories_sorted_unique(self):
        t = EventTracer()
        t.instant("a", ts=0, cat="network")
        t.instant("b", ts=1, cat="core")
        t.instant("c", ts=2, cat="core")
        assert t.categories() == ["core", "network"]


class TestRingBuffer:
    def test_oldest_events_dropped_at_capacity(self):
        t = EventTracer(capacity=4)
        for i in range(10):
            t.instant(f"e{i}", ts=float(i))
        assert len(t) == 4
        assert t.emitted == 10
        assert t.dropped == 6
        assert [e["name"] for e in t.events()] == ["e6", "e7", "e8", "e9"]

    def test_clear_resets_counts(self):
        t = EventTracer(capacity=4)
        t.instant("x", ts=0)
        t.clear()
        assert len(t) == 0
        assert t.emitted == 0
        assert t.dropped == 0


class TestChromeExport:
    def test_export_is_loadable_chrome_trace(self, tmp_path):
        t = EventTracer(pid=3)
        t.set_thread_name(0, "slice0")
        t.complete("op", ts=1.0, dur=2.0, cat="core")
        path = tmp_path / "out.trace.json"
        t.export(path, process_name="unit-test")
        doc = json.load(open(path))
        assert isinstance(doc["traceEvents"], list)
        metas = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        names = {(e["name"], e["args"]["name"]) for e in metas}
        assert ("process_name", "unit-test") in names
        assert ("thread_name", "slice0") in names
        assert doc["otherData"]["emitted"] == 1
        assert doc["otherData"]["dropped"] == 0

    def test_drop_accounting_reaches_export(self):
        t = EventTracer(capacity=2)
        for i in range(5):
            t.instant(f"e{i}", ts=float(i))
        doc = t.chrome_trace()
        assert doc["otherData"]["dropped"] == 3


class TestNullTracer:
    def test_null_tracer_is_inert(self, tmp_path):
        NULL_TRACER.instant("x", ts=0)
        NULL_TRACER.complete("y", ts=0, dur=1)
        NULL_TRACER.counter("z", ts=0, values={})
        assert len(NULL_TRACER) == 0
        assert NULL_TRACER.events() == []
        assert not NULL_TRACER.enabled
        # export is a no-op: no file created
        path = tmp_path / "never.json"
        NULL_TRACER.export(path)
        assert not path.exists()
