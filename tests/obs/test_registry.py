"""Unit tests for the instrument registry (repro.obs.registry)."""

import pytest

from repro.obs.registry import (
    Counter,
    Histogram,
    NULL_REGISTRY,
    NULL_SCOPE,
    Registry,
    summarize,
)


class TestCounterTimerGauge:
    def test_counter_increments(self):
        reg = Registry()
        c = reg.counter("a.b.c")
        c.inc()
        c.inc(4)
        assert c.value == 5
        assert reg.snapshot()["a.b.c"]["value"] == 5

    def test_same_path_returns_same_instrument(self):
        reg = Registry()
        assert reg.counter("x") is reg.counter("x")

    def test_path_kind_conflict_raises(self):
        reg = Registry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.timer("x")

    def test_gauge_samples_lazily(self):
        reg = Registry()
        state = {"v": 1}
        reg.gauge("g", lambda: state["v"])
        state["v"] = 42
        assert reg.snapshot()["g"]["value"] == 42

    def test_timer_context_manager(self):
        reg = Registry()
        t = reg.timer("t")
        with t:
            pass
        t.add(0.5)
        snap = reg.snapshot()["t"]
        assert snap["count"] == 2
        assert snap["total_s"] >= 0.5


class TestScope:
    def test_nested_scopes_build_dotted_paths(self):
        reg = Registry()
        reg.scope("sim").scope("core").counter("rob").inc()
        assert "sim.core.rob" in reg.snapshot()

    def test_as_tree_nests_by_dots(self):
        reg = Registry()
        reg.counter("a.b").inc(2)
        reg.counter("a.c").inc(3)
        tree = reg.as_tree()
        assert tree["a"]["b"]["value"] == 2
        assert tree["a"]["c"]["value"] == 3

    def test_info_is_static_metadata(self):
        reg = Registry()
        reg.scope("x").info("capacity", 8)
        assert reg.snapshot()["info"]["x.capacity"] == 8


class TestHistogram:
    def test_exact_moments_survive_thinning(self):
        h = Histogram("h", max_samples=64)
        for i in range(10_000):
            h.observe(float(i))
        snap = h.snapshot()
        assert snap["count"] == 10_000
        assert snap["min"] == 0.0
        assert snap["max"] == 9999.0
        assert snap["mean"] == pytest.approx(4999.5)
        # retained sample list stays bounded
        assert len(h._samples) <= 64

    def test_thinning_is_deterministic(self):
        def build():
            h = Histogram("h", max_samples=32)
            for i in range(1000):
                h.observe(float(i))
            return h._samples

        assert build() == build()

    def test_percentiles_monotone(self):
        h = Histogram("h")
        for i in range(100):
            h.observe(float(i))
        assert h.percentile(0.5) <= h.percentile(0.9) <= h.percentile(0.99)


class TestSummarize:
    def test_empty(self):
        assert summarize([])["count"] == 0

    def test_basic_stats(self):
        s = summarize([1.0, 2.0, 3.0, 4.0])
        assert s["count"] == 4
        assert s["mean"] == 2.5
        assert s["min"] == 1.0
        assert s["max"] == 4.0


class TestNullObjects:
    def test_null_scope_is_free_and_inert(self):
        c = NULL_SCOPE.counter("x")
        c.inc()
        t = NULL_SCOPE.timer("t")
        with t:
            pass
        NULL_SCOPE.histogram("h").observe(1.0)
        NULL_SCOPE.gauge("g", lambda: 1 / 0)  # callable never sampled
        NULL_SCOPE.info("i", object())
        assert NULL_REGISTRY.snapshot() == {}

    def test_null_scope_children_are_shared_singletons(self):
        assert NULL_SCOPE.scope("a") is NULL_SCOPE.scope("b")

    def test_null_counter_is_shared(self):
        a = NULL_SCOPE.counter("a")
        b = NULL_SCOPE.counter("b")
        a.inc(100)
        assert a is b


def test_counter_slots_block_stray_attributes():
    c = Counter("c")
    with pytest.raises(AttributeError):
        c.typo = 1
