"""The datacenter_stream experiment: seeded streams, shards, CLI."""

import pytest

from repro.experiments import datacenter_stream as ds


class TestDriveStream:
    def test_seeded_stream_is_deterministic(self):
        a = ds.drive_stream(ds.build_service(backend="python"),
                            120, seed=5)[0]
        b = ds.drive_stream(ds.build_service(backend="python"),
                            120, seed=5)[0]
        timing = {"events_per_s", "wall_s", "latency_p50_ms",
                  "latency_p99_ms"}
        for key, value in a.items():
            if key in timing:
                continue
            assert b[key] == value, key

    def test_event_accounting_balances(self):
        stats, _, _ = ds.drive_stream(ds.build_service(backend="python"),
                                      150, seed=2)
        handled = (stats["admitted"] + stats["rejected_price"]
                   + stats["rejected_capacity"] + stats["departures"]
                   + stats["resizes"])
        # Every event lands in exactly one bucket, except capacity
        # rejections raised by resizes (counted under both).
        assert handled >= stats["events"]
        assert stats["active_tenants"] == \
            stats["admitted"] - stats["departures"]

    def test_segments_chain_into_one_stream(self):
        service = ds.build_service(backend="python")
        active = []
        _, _, serial = ds.drive_stream(service, 60, seed=1,
                                       active=active, serial0=0)
        stats, _, serial2 = ds.drive_stream(service, 60, seed=2,
                                            active=active,
                                            serial0=serial)
        assert serial2 > serial > 0
        assert stats["active_tenants"] == len(active)


class TestRun:
    def test_run_aggregates_segments(self):
        result = ds.run(num_events=200, seed=4, backend="python",
                        segments=2)
        assert result.name == ds.NAME
        assert result.num_events == 200
        assert len(result.rows) == 2
        assert result.events_per_s > 0
        assert 0.0 <= result.rejection_rate <= 1.0
        assert result.latency_p99_ms >= result.latency_p50_ms >= 0.0

    def test_rejection_rate_reflects_floor(self):
        open_door = ds.run(num_events=150, seed=4, backend="python",
                           segments=1, admission_floor=0.0)
        closed = ds.run(num_events=150, seed=4, backend="python",
                        segments=1, admission_floor=1e9)
        assert closed.rejection_rate > open_door.rejection_rate
        assert closed.rejection_rate == 1.0

    def test_render_smoke(self, capsys):
        result = ds.run(num_events=100, seed=4, backend="python",
                        segments=1)
        ds.render(result)
        out = capsys.readouterr().out
        assert "Streaming datacenter service" in out
        assert "rejection rate" in out


class TestShardedRun:
    def test_sharded_run_uses_engine(self, tmp_path):
        pytest.importorskip("numpy")
        from repro.engine import ResultCache, SweepEngine

        engine = SweepEngine(jobs=1,
                             cache=ResultCache(root=str(tmp_path)))
        result = ds.run(num_events=200, seed=4, shards=2,
                        engine=engine, reprice_every=20)
        assert len(result.rows) == 2
        assert {row["segment"] for row in result.rows} == \
            {"shard0", "shard1"}
        assert result.num_events == 200


class TestCli:
    def test_datacenter_stream_subcommand(self, capsys):
        from repro.__main__ import main

        assert main(["datacenter-stream", "--events", "80",
                     "--backend", "python",
                     "--reprice-every", "20"]) == 0
        out = capsys.readouterr().out
        assert "Streaming datacenter service" in out

    def test_json_export(self, tmp_path, capsys):
        import json

        from repro.__main__ import main

        path = tmp_path / "stream.json"
        assert main(["datacenter-stream", "--events", "60",
                     "--backend", "python", "--reprice-every", "0",
                     "--json", str(path)]) == 0
        payload = json.loads(path.read_text())
        assert payload["name"] == "datacenter_stream"
        assert payload["rows"]


class TestCoupledRun:
    def test_in_process_coupled_run(self):
        pytest.importorskip("numpy")
        result = ds.run(num_events=600, seed=4, couple=2,
                        sync_every=100, reprice_every=50)
        assert len(result.rows) == 1
        row = result.rows[0]
        assert row["segment"] == "coupled"
        assert row["events"] == 600.0
        assert row["price_syncs"] >= 1
        assert result.params["couple"] == 2
        assert result.params["sync_every"] == 100

    def test_coupled_run_is_deterministic(self):
        pytest.importorskip("numpy")
        skip = {"events_per_s", "wall_s", "latency_p50_ms",
                "latency_p99_ms"}
        rows = [ds.run(num_events=400, seed=9, couple=2,
                       sync_every=100, reprice_every=50).rows[0]
                for _ in range(2)]
        for key, value in rows[0].items():
            if key not in skip:
                assert rows[1][key] == value, key

    def test_engine_shards_of_coupled_groups(self, tmp_path):
        pytest.importorskip("numpy")
        from repro.engine import ResultCache, SweepEngine

        engine = SweepEngine(jobs=1,
                             cache=ResultCache(root=str(tmp_path)))
        result = ds.run(num_events=400, seed=4, shards=2, couple=2,
                        sync_every=100, engine=engine,
                        reprice_every=50)
        assert len(result.rows) == 2
        assert sum(row["price_syncs"] for row in result.rows) >= 2

    def test_cli_couple_flag(self, capsys):
        pytest.importorskip("numpy")
        from repro.__main__ import main

        assert main(["datacenter-stream", "--events", "400",
                     "--couple", "2", "--sync-every", "100",
                     "--reprice-every", "50"]) == 0
        out = capsys.readouterr().out
        assert "global price syncs" in out

    def test_cli_profile_flag(self, tmp_path, capsys):
        from repro.__main__ import main

        path = tmp_path / "stream.pstats"
        assert main(["datacenter-stream", "--events", "60",
                     "--backend", "python", "--reprice-every", "0",
                     "--profile", str(path)]) == 0
        assert path.exists()
        import pstats

        assert pstats.Stats(str(path)).total_calls > 0


class TestStreamFullAcceptance:
    @pytest.mark.skipif(
        not __import__("os").environ.get("REPRO_STREAM_FULL"),
        reason="set REPRO_STREAM_FULL=1 for the 1M-event sharded "
               "acceptance run")
    def test_1m_event_coupled_sharded_run(self):
        """The ISSUE acceptance run: 1M events across a coupled shard
        group - completes, audits clean, accounts for every event."""
        pytest.importorskip("numpy")
        group = ds.build_coupled_group(4, sync_every=ds.SYNC_EVERY)
        stats, _ = ds.drive_coupled_stream(
            group, 1_000_000, seed=7, reprice_every=250,
            strict=True, readmit=False, audit_every=100_000)
        assert stats["events"] == 1_000_000.0
        group.verify_invariants()
        assert stats["price_syncs"] > 0
        assert stats["dead_letters"] == 0.0
