"""The datacenter_stream experiment: seeded streams, shards, CLI."""

import pytest

from repro.experiments import datacenter_stream as ds


class TestDriveStream:
    def test_seeded_stream_is_deterministic(self):
        a = ds.drive_stream(ds.build_service(backend="python"),
                            120, seed=5)[0]
        b = ds.drive_stream(ds.build_service(backend="python"),
                            120, seed=5)[0]
        for key, value in a.items():
            if key == "events_per_s":
                continue
            assert b[key] == value, key

    def test_event_accounting_balances(self):
        stats, _, _ = ds.drive_stream(ds.build_service(backend="python"),
                                      150, seed=2)
        handled = (stats["admitted"] + stats["rejected_price"]
                   + stats["rejected_capacity"] + stats["departures"]
                   + stats["resizes"])
        # Every event lands in exactly one bucket, except capacity
        # rejections raised by resizes (counted under both).
        assert handled >= stats["events"]
        assert stats["active_tenants"] == \
            stats["admitted"] - stats["departures"]

    def test_segments_chain_into_one_stream(self):
        service = ds.build_service(backend="python")
        active = []
        _, _, serial = ds.drive_stream(service, 60, seed=1,
                                       active=active, serial0=0)
        stats, _, serial2 = ds.drive_stream(service, 60, seed=2,
                                            active=active,
                                            serial0=serial)
        assert serial2 > serial > 0
        assert stats["active_tenants"] == len(active)


class TestRun:
    def test_run_aggregates_segments(self):
        result = ds.run(num_events=200, seed=4, backend="python",
                        segments=2)
        assert result.name == ds.NAME
        assert result.num_events == 200
        assert len(result.rows) == 2
        assert result.events_per_s > 0
        assert 0.0 <= result.rejection_rate <= 1.0
        assert result.latency_p99_ms >= result.latency_p50_ms >= 0.0

    def test_rejection_rate_reflects_floor(self):
        open_door = ds.run(num_events=150, seed=4, backend="python",
                           segments=1, admission_floor=0.0)
        closed = ds.run(num_events=150, seed=4, backend="python",
                        segments=1, admission_floor=1e9)
        assert closed.rejection_rate > open_door.rejection_rate
        assert closed.rejection_rate == 1.0

    def test_render_smoke(self, capsys):
        result = ds.run(num_events=100, seed=4, backend="python",
                        segments=1)
        ds.render(result)
        out = capsys.readouterr().out
        assert "Streaming datacenter service" in out
        assert "rejection rate" in out


class TestShardedRun:
    def test_sharded_run_uses_engine(self, tmp_path):
        pytest.importorskip("numpy")
        from repro.engine import ResultCache, SweepEngine

        engine = SweepEngine(jobs=1,
                             cache=ResultCache(root=str(tmp_path)))
        result = ds.run(num_events=200, seed=4, shards=2,
                        engine=engine, reprice_every=20)
        assert len(result.rows) == 2
        assert {row["segment"] for row in result.rows} == \
            {"shard0", "shard1"}
        assert result.num_events == 200


class TestCli:
    def test_datacenter_stream_subcommand(self, capsys):
        from repro.__main__ import main

        assert main(["datacenter-stream", "--events", "80",
                     "--backend", "python",
                     "--reprice-every", "20"]) == 0
        out = capsys.readouterr().out
        assert "Streaming datacenter service" in out

    def test_json_export(self, tmp_path, capsys):
        import json

        from repro.__main__ import main

        path = tmp_path / "stream.json"
        assert main(["datacenter-stream", "--events", "60",
                     "--backend", "python", "--reprice-every", "0",
                     "--json", str(path)]) == 0
        payload = json.loads(path.read_text())
        assert payload["name"] == "datacenter_stream"
        assert payload["rows"]
