"""Smoke tests for the command-line interface."""

import pytest

from repro.__main__ import build_parser, main


class TestCLI:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "gcc" in out and "Utility2" in out and "Market2" in out

    def test_optimize(self, capsys):
        assert main(["optimize", "--benchmark", "gcc",
                     "--utility", "Utility3", "--market", "Market1"]) == 0
        out = capsys.readouterr().out
        assert "VCores" in out and "utility" in out

    def test_simulate(self, capsys):
        assert main(["simulate", "--benchmark", "astar", "--slices", "2",
                     "--cache-kb", "128", "--length", "400"]) == 0
        out = capsys.readouterr().out
        assert "ipc" in out

    def test_single_experiment(self, capsys):
        assert main(["experiment", "tab8"]) == 0
        out = capsys.readouterr().out
        assert "taxonomy" in out.lower()

    def test_unknown_experiment(self, capsys):
        assert main(["experiment", "fig99"]) == 2

    def test_parser_rejects_bad_benchmark(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--benchmark", "doom"])
