"""Runner/CLI flags added with sampled simulation: --sampling, --exact,
--profile."""

import pstats

import pytest

from repro.experiments import runner


class TestParser:
    def test_sampling_and_exact_are_exclusive(self):
        parser = runner.build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["--sampling", "--exact"])

    def test_exact_is_the_default(self):
        args = runner.build_parser().parse_args([])
        assert not args.sampling
        assert not args.profile


class TestProfileDumpPath:
    def test_lands_next_to_metrics_out(self, tmp_path):
        out = str(tmp_path / "metrics.json")
        assert runner.profile_dump_path(out) == str(tmp_path
                                                    / "metrics.pstats")

    def test_default_without_metrics_out(self):
        assert runner.profile_dump_path(None) == "runner_profile.pstats"


class TestProfileRun:
    def test_profile_writes_loadable_pstats(self, tmp_path, capsys,
                                            monkeypatch):
        monkeypatch.chdir(tmp_path)
        metrics = tmp_path / "metrics.json"
        assert runner.main(["--only", "taxonomy", "--no-cache",
                            "--cache-dir", str(tmp_path / "cache"),
                            "--metrics-out", str(metrics),
                            "--profile"]) == 0
        out = capsys.readouterr().out
        dump = tmp_path / "metrics.pstats"
        assert dump.exists()
        assert "metrics.pstats" in out
        stats = pstats.Stats(str(dump))  # must parse as a pstats dump
        assert stats.total_calls > 0


class TestCliPassthrough:
    def test_simulate_sampling_reports_ci(self, capsys):
        from repro import __main__ as cli

        assert cli.main(["simulate", "--benchmark", "gcc",
                         "--length", "12000", "--seed", "1",
                         "--slices", "2", "--sampling"]) == 0
        out = capsys.readouterr().out
        assert "ipc_ci" in out
        assert "detail_frac" in out

    def test_simulate_exact_has_no_ci(self, capsys):
        from repro import __main__ as cli

        assert cli.main(["simulate", "--benchmark", "gcc",
                         "--length", "3000", "--exact"]) == 0
        out = capsys.readouterr().out
        assert "ipc_ci" not in out

    def test_experiments_forwards_flags(self, monkeypatch):
        from repro import __main__ as cli

        seen = {}

        def fake_main(argv):
            seen["argv"] = list(argv)
            return 0

        monkeypatch.setattr(runner, "main", fake_main)
        assert cli.main(["experiments", "--sampling", "--profile"]) == 0
        assert "--sampling" in seen["argv"]
        assert "--profile" in seen["argv"]
