"""Tests for the engine-backed experiment runner CLI."""

import json

import pytest

from repro.experiments import runner


class TestSelection:
    def test_names_cover_all_experiments(self):
        assert len(runner.NAMES) == 14
        assert len(set(runner.NAMES)) == 14
        assert "datacenter_scale" in runner.NAMES
        assert "datacenter_stream" in runner.NAMES

    def test_unknown_only_rejected(self, capsys):
        with pytest.raises(SystemExit):
            runner.main(["--only", "nonsense"])


class TestRun:
    def test_only_runs_one_experiment(self, tmp_path, capsys):
        assert runner.main(["--only", "taxonomy", "--no-cache",
                            "--cache-dir", str(tmp_path / "c")]) == 0
        out = capsys.readouterr().out
        assert "Table 8" in out
        assert "Figure 12" not in out

    def test_json_export_shape(self, tmp_path, capsys):
        path = tmp_path / "out.json"
        runner.main(["--only", "scalability", "--only", "taxonomy",
                     "--jobs", "1", "--json", str(path),
                     "--cache-dir", str(tmp_path / "cache")])
        capsys.readouterr()
        payload = json.loads(path.read_text())
        assert payload["schema"] == runner.EXPORT_SCHEMA
        names = [r["name"] for r in payload["results"]]
        assert names == ["scalability", "taxonomy"]
        for result in payload["results"]:
            assert "elapsed" not in result  # timing lives in metrics
        metrics = payload["metrics"]
        assert [e["name"] for e in metrics["experiments"]] == names
        assert metrics["engine"]["cache_dir"] == str(tmp_path / "cache")

    def test_warm_rerun_identical_results(self, tmp_path, capsys):
        argv = ["--only", "scalability", "--cache-dir",
                str(tmp_path / "cache")]
        cold_path, warm_path = tmp_path / "cold.json", tmp_path / "warm.json"
        runner.main(argv + ["--json", str(cold_path)])
        runner.main(argv + ["--json", str(warm_path)])
        capsys.readouterr()
        cold = json.loads(cold_path.read_text())
        warm = json.loads(warm_path.read_text())
        assert cold["results"] == warm["results"]
        assert warm["metrics"]["engine"]["cache"]["hits"] > 0
        assert cold["metrics"]["engine"]["cache"]["hits"] == 0
