"""Smoke tests for the observability CLI flags.

Covers both entry points (``python -m repro`` and the experiments
runner): ``--trace`` must emit loadable Chrome trace_event JSON,
``--metrics-out`` must keep its schema, and obs-disabled runs must be
bit-identical to runs that never heard of observability.
"""

import json

import pytest

from repro.__main__ import main as repro_main
from repro.core.simulator import simulate
from repro.experiments.runner import EXPORT_SCHEMA, main as runner_main
from repro.obs import Observability
from repro.trace.generator import make_workload

SIM_ARGS = ["simulate", "--benchmark", "gcc", "--slices", "2",
            "--cache-kb", "128", "--length", "600"]


def _runner_args(tmp_path, *extra):
    return ["--only", "scalability",
            "--cache-dir", str(tmp_path / "cache"), *extra]


class TestSimulateFlags:
    def test_trace_writes_valid_chrome_trace(self, tmp_path, capsys):
        out = tmp_path / "sim.trace.json"
        assert repro_main(SIM_ARGS + ["--trace", str(out)]) == 0
        doc = json.load(open(out))
        events = doc["traceEvents"]
        assert events, "trace must not be empty"
        for event in events:
            assert "ph" in event and "name" in event
            if event["ph"] != "M":
                assert "ts" in event
        cats = {e.get("cat") for e in events}
        assert {"core", "cache", "network"} <= cats

    def test_metrics_out_schema(self, tmp_path, capsys):
        out = tmp_path / "sim.metrics.json"
        assert repro_main(SIM_ARGS + ["--metrics-out", str(out)]) == 0
        doc = json.load(open(out))
        assert set(doc) == {"benchmark", "slices", "cache_kb", "stats",
                            "obs"}
        assert doc["benchmark"] == "gcc"
        assert doc["stats"]["committed"] > 0
        assert any(k.startswith("sim.") for k in doc["obs"])

    def test_obs_flag_alone_prints_normal_summary(self, capsys):
        assert repro_main(SIM_ARGS + ["--obs"]) == 0
        assert "ipc" in capsys.readouterr().out

    def test_obs_disabled_run_bit_identical(self):
        warmup, trace = make_workload("gcc", 600, seed=0)
        plain = simulate(trace, num_slices=2, l2_cache_kb=128.0,
                         warmup_addresses=warmup)
        obs = Observability(trace=True)
        traced = simulate(trace, num_slices=2, l2_cache_kb=128.0,
                          warmup_addresses=warmup, obs=obs)
        assert plain.stats.summary() == traced.stats.summary()


class TestRunnerFlags:
    def test_trace_and_metrics_out(self, tmp_path, capsys):
        trace_path = tmp_path / "run.trace.json"
        metrics_path = tmp_path / "run.metrics.json"
        assert runner_main(_runner_args(
            tmp_path, "--trace", str(trace_path),
            "--metrics-out", str(metrics_path))) == 0

        doc = json.load(open(trace_path))
        cats = {e.get("cat") for e in doc["traceEvents"]
                if e.get("ph") != "M"}
        assert {"engine", "runner"} <= cats

        metrics = json.load(open(metrics_path))
        assert metrics["schema"] == EXPORT_SCHEMA
        inner = metrics["metrics"]
        assert set(inner) >= {"total_wall_s", "experiments", "engine",
                              "obs"}
        dist = inner["engine"]["unit_distributions"]
        assert dist["evaluated_units"] + dist["cached_units"] > 0
        assert set(dist["eval_s"]) == {"count", "mean", "min", "p50",
                                       "p90", "p99", "max"}

    def test_metrics_out_without_obs_omits_snapshot(self, tmp_path,
                                                    capsys):
        metrics_path = tmp_path / "plain.metrics.json"
        assert runner_main(_runner_args(
            tmp_path, "--metrics-out", str(metrics_path))) == 0
        metrics = json.load(open(metrics_path))
        assert "obs" not in metrics["metrics"]

    def test_obs_disabled_results_identical(self, tmp_path, capsys):
        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        assert runner_main(_runner_args(tmp_path, "--json", str(a),
                                        "--no-cache")) == 0
        assert runner_main(_runner_args(tmp_path, "--json", str(b),
                                        "--no-cache", "--obs")) == 0
        results_a = json.load(open(a))["results"]
        results_b = json.load(open(b))["results"]
        assert results_a == results_b

    def test_timeout_flag_roundtrip(self, tmp_path, capsys):
        # generous timeout: must not trip on a healthy sweep
        assert runner_main(_runner_args(tmp_path, "--timeout", "300")) == 0


def test_experiments_subcommand_forwards_flags(tmp_path, capsys,
                                               monkeypatch):
    import repro.__main__ as cli

    captured = {}

    def fake_main(argv):
        captured["argv"] = argv
        return 0

    monkeypatch.setattr("repro.experiments.runner.main", fake_main)
    assert cli.main(["experiments", "--obs", "--trace", "t.json",
                     "--metrics-out", "m.json", "--timeout", "5"]) == 0
    argv = captured["argv"]
    assert "--obs" in argv
    assert ["--trace", "t.json"] == argv[argv.index("--trace"):
                                         argv.index("--trace") + 2]
    assert "--metrics-out" in argv and "--timeout" in argv
