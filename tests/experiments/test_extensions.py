"""Tests for the extension experiments (PARSEC multi-VCore, energy)."""

import pytest

from repro.experiments import energy_delay, parsec_multivcore


class TestParsecExperiment:
    def test_runs_all_parsec_workloads(self):
        results = parsec_multivcore.run(trace_length=300)
        assert set(results) == {"dedup", "swaptions", "ferret"}
        for row in results.values():
            assert row["aggregate_ipc"] > 0
            assert row["vm_cycles_shared"] >= row["vm_cycles_private"]

    def test_subset_selection(self):
        results = parsec_multivcore.run(benchmarks=["dedup"],
                                        trace_length=300)
        assert set(results) == {"dedup"}


class TestEnergyExperiment:
    def test_table_shape(self):
        table = energy_delay.run(benchmarks=["gcc", "hmmer", "omnetpp"]).table
        assert set(table) == {1, 2, 3}
        for row in table.values():
            assert set(row) == {"gcc", "hmmer", "omnetpp"}

    def test_higher_exponent_bigger_cores(self):
        table = energy_delay.run(benchmarks=["gcc"]).table
        ed1 = table[1]["gcc"]
        ed3 = table[3]["gcc"]
        assert ed3[1] >= ed1[1]


class TestExampleSmoke:
    def test_quickstart_runs(self, capsys):
        import importlib.util
        import pathlib
        path = (pathlib.Path(__file__).resolve().parents[2]
                / "examples" / "quickstart.py")
        spec = importlib.util.spec_from_file_location("quickstart", path)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        module.main()
        out = capsys.readouterr().out
        assert "SSim" in out and "IPC" in out
