"""Tests for the datacenter-scale allocation experiment."""

import pytest

from repro.economics.market import MARKET2
from repro.experiments import datacenter_scale
from repro.obs import Observability


class TestSynthesize:
    def test_deterministic_under_seed(self):
        a = datacenter_scale._synthesize(100, seed=5)
        b = datacenter_scale._synthesize(100, seed=5)
        assert a == b
        c = datacenter_scale._synthesize(100, seed=6)
        assert a != c

    def test_budgets_within_span(self):
        lo, hi = datacenter_scale.BUDGET_SPAN
        for t in datacenter_scale._synthesize(200, seed=1):
            assert lo <= t.budget <= hi


class TestRun:
    @pytest.fixture(scope="class")
    def result(self):
        return datacenter_scale.run(num_tenants=200, seed=11)

    def test_every_tenant_accounted_for(self, result):
        assert result.num_tenants == 200
        for row in result.rows:
            assert row["tenants"] == 200
            assert row["placed"] + row["rejected"] == 200
            assert row["racks"] >= 1
            assert 0.0 <= row["mean_utilization"] <= 1.0
            assert row["total_welfare"] > 0

    def test_one_row_per_market(self, result):
        assert [row["market"] for row in result.rows] == [
            "Market1", "Market2", "Market3"
        ]

    def test_phase_timers_present(self, result):
        assert set(result.phase_seconds) == {
            "optimize", "synthesize", "allocate"
        }
        assert all(v >= 0 for v in result.phase_seconds.values())

    def test_backend_stamped(self, result):
        assert result.backend in ("numpy", "python")
        assert result.params["backend"] == result.backend

    def test_deterministic_across_runs(self, result):
        again = datacenter_scale.run(num_tenants=200, seed=11)
        assert again.rows == result.rows

    def test_python_backend_same_placements(self, result):
        scalar = datacenter_scale.run(num_tenants=200, seed=11,
                                      backend="python")
        assert scalar.backend == "python"
        for a, b in zip(result.rows, scalar.rows):
            assert a["placed"] == b["placed"]
            assert a["racks"] == b["racks"]
            assert a["total_welfare"] == pytest.approx(
                b["total_welfare"], rel=1e-9
            )

    def test_obs_phase_instrumentation(self):
        obs = Observability()
        result = datacenter_scale.run(num_tenants=50, seed=3,
                                      markets=[MARKET2], obs=obs)
        snap = obs.snapshot()
        prefix = "experiments.datacenter_scale"
        placed = snap[f"{prefix}.tenants_placed"]["value"]
        rejected = snap[f"{prefix}.tenants_rejected"]["value"]
        assert placed == result.rows[0]["placed"]
        assert placed + rejected == 50
        for timer in ("optimize_s", "synthesize_s", "allocate_s"):
            assert f"{prefix}.{timer}" in snap

    def test_render_prints_summary(self, result, capsys):
        datacenter_scale.render(result)
        out = capsys.readouterr().out
        assert "200 tenants" in out
        assert "Market3" in out
        assert "phases:" in out
