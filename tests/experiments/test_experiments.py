"""Tests for the experiment runners (paper artefact regeneration)."""

import pytest

from repro.experiments import (
    area_decomposition,
    cache_sensitivity,
    datacenter_mix,
    hetero_comparison,
    markets,
    optima,
    phases,
    scalability,
    static_comparison,
    taxonomy,
    utility_surfaces,
)
from repro.experiments.base import Experiment, ExperimentResult
from repro.perfmodel.model import CACHE_GRID_KB, SLICE_GRID


class TestProtocol:
    MODULES = (
        area_decomposition, cache_sensitivity, datacenter_mix,
        hetero_comparison, markets, optima, phases, scalability,
        static_comparison, taxonomy, utility_surfaces,
    )

    def test_modules_satisfy_protocol(self):
        for module in self.MODULES:
            assert isinstance(module, Experiment)
            assert isinstance(module.NAME, str)

    def test_result_surface(self):
        result = taxonomy.run()
        assert isinstance(result, ExperimentResult)
        assert result.name == taxonomy.NAME
        assert result.rows
        exported = result.to_dict(include_elapsed=False)
        assert "elapsed" not in exported
        assert result.to_json()  # serialisable


class TestAreaExperiment:
    def test_fig10_fig11_shapes(self):
        result = area_decomposition.run()
        assert abs(sum(result.fig10_without_l2.values()) - 100) < 1e-9
        assert abs(sum(result.fig11_with_l2.values()) - 100) < 1e-9
        overhead = result.sharing_overhead_pct
        assert 7 <= overhead["without_l2"] <= 9
        assert 4 <= overhead["with_l2"] <= 7


class TestScalabilityExperiment:
    def test_fig12_series(self):
        series = scalability.run().series
        assert len(series) == 15
        for values in series.values():
            assert len(values) == len(SLICE_GRID)
            assert values[0] == pytest.approx(1.0)

    def test_paper_band(self):
        """Figure 12's curves span roughly 1x to 5x at 8 Slices."""
        series = scalability.run().series
        finals = [v[-1] for v in series.values()]
        assert max(finals) >= 3.0
        assert min(finals) >= 1.0


class TestCacheSensitivityExperiment:
    def test_fig13_series(self):
        series = cache_sensitivity.run().series
        for values in series.values():
            assert len(values) == len(CACHE_GRID_KB)
            assert values[0] == pytest.approx(1.0)

    def test_omnetpp_most_sensitive(self):
        series = cache_sensitivity.run().series
        assert max(series["omnetpp"]) == max(
            max(v) for v in series.values()
        )


class TestOptimaExperiment:
    def test_tab4_shape_and_diversity(self):
        result = optima.run()
        assert len(result.table) == 3
        diversity = optima.configuration_diversity(result.table)
        assert diversity == result.diversity
        assert all(count >= 2 for count in diversity.values())


class TestUtilitySurfaceExperiment:
    def test_fig14_peaks_differ(self):
        peaks = utility_surfaces.run().peaks
        # Changing the utility function moves the peak (paper 14a vs 14b).
        assert peaks[("gcc", "Utility1")] != peaks[("gcc", "Utility2")]
        # Changing the workload moves the peak (paper 14b vs 14d).
        assert peaks[("gcc", "Utility2")] != peaks[("bzip", "Utility2")]


class TestMarketExperiment:
    def test_tab6_shape(self):
        table = markets.run(benchmarks=["gcc", "bzip", "hmmer"]).table
        assert len(table) == 3 * 3 * 3

    def test_prices_move_allocations(self):
        result = markets.run()
        shifts = markets.market_shift_summary(result.table)
        assert shifts == result.shifts
        assert any(fraction > 0.3 for fraction in shifts.values())


class TestComparisonExperiments:
    def test_fig15_headline(self):
        result = static_comparison.run()
        assert result.summary["pairs"] == 990
        assert result.summary["max"] >= 2.0

    def test_fig16_headline(self):
        result = hetero_comparison.run()
        assert result.summary["max"] >= 1.5
        assert len(result.per_utility_configs) == 3


class TestDatacenterExperiment:
    def test_fig17_mix_diverges(self):
        result = datacenter_mix.run()
        assert len(set(result.optimal_big_fraction.values())) >= 2


class TestPhasesExperiment:
    def test_tab7_gains(self):
        schedules = phases.run().schedules
        gains = [r.gain for r in schedules.values()]
        assert gains == sorted(gains)
        assert gains[-1] > 0.05


class TestTaxonomyExperiment:
    def test_tab8_sharing_dominates(self):
        table = taxonomy.run().table
        sharing = table["sharing"]
        assert all(v is True for v in sharing.values())
        assert taxonomy.unique_advantages() == []  # no single unique row...

    def test_sharing_is_only_all_yes_column(self):
        table = taxonomy.run().table
        all_yes = [
            name
            for name, row in table.items()
            if all(v is True for v in row.values())
        ]
        assert all_yes == ["sharing"]
