"""Tests for the analytic performance model."""

import pytest

from repro.perfmodel.model import (
    AnalyticModel,
    CACHE_GRID_KB,
    SLICE_GRID,
    l2_mean_latency,
    performance,
    performance_grid,
)
from repro.trace import all_benchmarks, get_profile


@pytest.fixture(scope="module")
def model():
    return AnalyticModel()


class TestL2LatencyModel:
    def test_zero_cache_zero_latency(self):
        assert l2_mean_latency(0) == 0.0

    def test_latency_grows_with_capacity(self):
        sizes = [64, 256, 1024, 4096, 8192]
        latencies = [l2_mean_latency(c) for c in sizes]
        assert latencies == sorted(latencies)

    def test_first_ring_latency(self):
        """4 banks at distance 1: Table 3 gives 1*2+4 = 6 cycles."""
        assert l2_mean_latency(256) == 6.0

    def test_single_bank(self):
        """One 64 KB bank sits at distance 1: 1*2+4 = 6 cycles."""
        assert l2_mean_latency(64) == 6.0

    def test_full_rings_boundary(self):
        """64 banks fill rings 1-5 (60 banks) plus 4 at ring 6."""
        total = 4 * 1 + 8 * 2 + 12 * 3 + 16 * 4 + 20 * 5 + 4 * 6
        assert l2_mean_latency(64 * 64) == pytest.approx(
            4.0 + 2.0 * total / 64
        )

    def test_ring_spill_boundary(self):
        """65 banks spill one more bank onto ring 6."""
        total = 4 * 1 + 8 * 2 + 12 * 3 + 16 * 4 + 20 * 5 + 5 * 6
        assert l2_mean_latency(65 * 64) == pytest.approx(
            4.0 + 2.0 * total / 65
        )

    def test_sub_bank_capacity_rounds(self):
        """Capacities round to whole 64 KB banks, minimum one."""
        assert l2_mean_latency(1) == l2_mean_latency(64)
        assert l2_mean_latency(96) == l2_mean_latency(128)


class TestPerformanceShapes:
    def test_positive_everywhere(self, model):
        for bench in all_benchmarks():
            for c in CACHE_GRID_KB:
                for s in SLICE_GRID:
                    assert model.performance(bench, c, s) > 0

    def test_fig12_slice_scaling_monotone(self, model):
        """Adding Slices never hurts at fixed cache (operand costs are
        amortised by the issue window in the analytic model)."""
        for bench in ("gcc", "libquantum", "h264ref"):
            perfs = [model.performance(bench, 128, s) for s in SLICE_GRID]
            assert all(b >= a * 0.98 for a, b in zip(perfs, perfs[1:]))

    def test_fig12_scaling_order(self, model):
        """Figure 12: libquantum scales best; hmmer/astar poorly."""
        assert (model.speedup("libquantum", 128, 8)
                > model.speedup("gcc", 128, 8)
                > model.speedup("hmmer", 128, 8))

    def test_parsec_speedup_bounded_by_two(self, model):
        """Paper Section 5.3."""
        for bench in ("dedup", "swaptions", "ferret"):
            for s in SLICE_GRID:
                assert model.speedup(bench, 128, s) <= 2.0 + 1e-9

    def test_fig13_omnetpp_peaks_then_declines(self, model):
        """Figure 13: large caches eventually lose to added latency."""
        curve = [
            model.performance("omnetpp", c, 2) for c in CACHE_GRID_KB
        ]
        peak_idx = curve.index(max(curve))
        assert 0 < peak_idx < len(curve) - 1
        assert curve[-1] < curve[peak_idx]

    def test_fig13_libquantum_prefers_no_cache(self, model):
        """Figure 13: streaming workloads lose from any added latency."""
        assert (model.performance("libquantum", 0, 2)
                >= model.performance("libquantum", 4096, 2))

    def test_cache_sensitivity_order(self, model):
        def sensitivity(bench):
            return (max(model.performance(bench, c, 2)
                        for c in CACHE_GRID_KB)
                    / model.performance(bench, 0, 2))
        assert sensitivity("omnetpp") > sensitivity("gcc") > sensitivity("astar")


class TestBreakdown:
    def test_components_positive(self, model):
        b = model.breakdown("gcc", 256, 4)
        assert b.core > 0 and b.branch > 0 and b.memory > 0
        assert b.total == pytest.approx(b.core + b.branch + b.memory)
        assert b.ipc == pytest.approx(1 / b.total)

    def test_memory_component_shrinks_with_cache(self, model):
        small = model.breakdown("omnetpp", 64, 2)
        large = model.breakdown("omnetpp", 2048, 2)
        assert large.memory < small.memory

    def test_validation(self, model):
        with pytest.raises(ValueError):
            model.breakdown("gcc", -1, 2)
        with pytest.raises(ValueError):
            model.breakdown("gcc", 128, 0)
        with pytest.raises(ValueError):
            AnalyticModel(comm_tolerance=0)


class TestMemoisedHelpers:
    def test_performance_function_matches_model(self, model):
        assert performance("gcc", 256, 4) == pytest.approx(
            model.performance("gcc", 256, 4)
        )

    def test_grid_covers_full_space(self):
        grid = performance_grid("gcc")
        assert len(grid) == len(CACHE_GRID_KB) * len(SLICE_GRID)

    def test_profile_object_accepted(self, model):
        profile = get_profile("gcc")
        assert model.performance(profile, 128, 2) == pytest.approx(
            model.performance("gcc", 128, 2)
        )
