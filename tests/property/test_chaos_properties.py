"""Chaos properties of the self-healing allocation service.

Three guarantees, each checked over seeded random interleavings:

* every cross-layer invariant holds after *every* event of a faulty
  lenient stream (``audit_every=1``);
* a lenient run carrying only state-neutral faults finishes with the
  exact service state (prices, roster, fabric) of a strict clean run
  over the same event stream;
* a run crashed at any checkpoint and restored produces the
  bit-identical final snapshot of the run that never crashed.

``REPRO_EQUIV_SEED`` offsets every seed, so CI can sweep independent
chaos universes without touching the code.
"""

import json
import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cloud.errors import SimulatedCrash
from repro.cloud.resilience import (
    STATE_NEUTRAL_KINDS,
    FaultEvent,
    FaultInjector,
    FaultPlan,
)
from repro.experiments.datacenter_stream import (
    build_service,
    drive_stream,
    resume_stream,
)

EQUIV_SEED = int(os.environ.get("REPRO_EQUIV_SEED", "0"))

NUM_EVENTS = 80


def fingerprint(service):
    """The state a fault must not corrupt: prices, roster, fabric."""
    snap = service.snapshot()
    return {"prices": snap["prices"], "roster": snap["roster"],
            "fabric": snap["fabric"]}


def chaos_injector(seed, rate=0.1, kinds=STATE_NEUTRAL_KINDS,
                   num_events=NUM_EVENTS):
    return FaultInjector(
        FaultPlan.seeded(num_events, rate, seed, kinds=kinds),
        seed=seed)


class TestInvariantsUnderChaos:
    @given(seed=st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=8, deadline=None)
    def test_invariants_hold_after_every_event(self, seed):
        seed += EQUIV_SEED
        service = build_service(backend="python",
                                degrade_on_divergence=True)
        injector = chaos_injector(
            seed, kinds=STATE_NEUTRAL_KINDS + ("nonconverge",))
        # audit_every=1 raises InvariantViolation on the first broken
        # event, so simply finishing is the assertion.
        stats, _, _ = drive_stream(
            service, NUM_EVENTS, seed, strict=False, readmit=True,
            injector=injector, audit_every=1)
        assert stats["events"] == NUM_EVENTS
        service.verify_invariants()


class TestFaultyEqualsClean:
    @given(seed=st.integers(min_value=0, max_value=2**16),
           rate=st.sampled_from([0.05, 0.15, 0.3]))
    @settings(max_examples=8, deadline=None)
    def test_state_neutral_faults_do_not_change_the_outcome(
            self, seed, rate):
        seed += EQUIV_SEED
        clean = build_service(backend="python")
        drive_stream(clean, NUM_EVENTS, seed)

        faulty = build_service(backend="python")
        injector = chaos_injector(seed, rate=rate)
        drive_stream(faulty, NUM_EVENTS, seed, strict=False,
                     injector=injector, audit_every=20)

        assert fingerprint(faulty) == fingerprint(clean)
        # The faults really fired and really were absorbed.
        if len(injector.plan):
            assert injector.counts
            summary = faulty.summary()
            assert (summary.dead_letters > 0
                    or summary.departures > clean.summary().departures)


class TestFaultAccounting:
    def test_every_injected_fault_is_accounted(self):
        """Dead-lettering faults land in the per-reason counters one
        for one; nonconverge faults are either consumed as degraded
        steps or still pending — nothing is silently dropped."""
        seed = 21 + EQUIV_SEED
        # degrade_on_divergence stays off so degraded_steps counts
        # *only* injected nonconvergence, not organic divergence.
        service = build_service(backend="python")
        injector = chaos_injector(
            seed, rate=0.2,
            kinds=("malformed", "duplicate", "unknown", "nonconverge"),
            num_events=200)
        drive_stream(service, 200, seed, strict=False,
                     injector=injector)
        counts = injector.counts
        assert counts  # 0.2 * 200 draws: the plan cannot be empty
        summary = service.summary()
        assert summary.dead_letters == sum(
            counts.get(k, 0)
            for k in ("malformed", "duplicate", "unknown"))
        assert (summary.degraded_steps + service.force_nonconverge
                == counts.get("nonconverge", 0))

    @pytest.mark.skipif(
        not os.environ.get("REPRO_CHAOS_FULL"),
        reason="set REPRO_CHAOS_FULL=1 for the 100k-event "
               "acceptance run")
    def test_100k_event_faulty_run_completes(self):
        """The ISSUE acceptance run: 100k events, 5% injected faults,
        lenient mode — finishes, audits clean, accounts for every
        fault."""
        pytest.importorskip("numpy")
        seed = 5 + EQUIV_SEED
        num_events = 100_000
        service = build_service(backend="numpy",
                                degrade_on_divergence=True)
        injector = chaos_injector(
            seed, rate=0.05,
            kinds=STATE_NEUTRAL_KINDS + ("nonconverge",),
            num_events=num_events)
        stats, _, _ = drive_stream(
            service, num_events, seed, reprice_every=250,
            strict=False, readmit=True, injector=injector,
            audit_every=10_000)
        assert stats["events"] == num_events
        service.verify_invariants()
        summary = service.summary()
        assert summary.dead_letters == sum(
            injector.counts.get(k, 0)
            for k in ("malformed", "duplicate", "unknown"))


class TestCrashResume:
    CHECKPOINT_EVERY = 20

    def reference_run(self, seed, injector=None):
        service = build_service(backend="python",
                                degrade_on_divergence=True)
        checkpoints = {}

        def keep(count, payload):
            checkpoints[count] = json.loads(json.dumps(payload))

        drive_stream(service, NUM_EVENTS, seed, strict=False,
                     injector=injector,
                     checkpoint_every=self.CHECKPOINT_EVERY,
                     on_checkpoint=keep)
        return service.snapshot(), checkpoints

    @given(seed=st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=6, deadline=None)
    def test_resume_from_every_checkpoint_is_bit_equal(self, seed):
        seed += EQUIV_SEED
        final, checkpoints = self.reference_run(seed)
        assert checkpoints  # NUM_EVENTS // CHECKPOINT_EVERY of them
        for count, checkpoint in checkpoints.items():
            if count == NUM_EVENTS:
                continue
            resumed = build_service(backend="python",
                                    degrade_on_divergence=True)
            resume_stream(resumed, checkpoint, NUM_EVENTS,
                          strict=False)
            assert resumed.snapshot() == final, count

    @given(seed=st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=4, deadline=None)
    def test_resume_with_faults_replays_the_injector_too(self, seed):
        seed += EQUIV_SEED
        plan = FaultPlan.seeded(
            NUM_EVENTS, 0.15, seed,
            kinds=STATE_NEUTRAL_KINDS + ("nonconverge",))
        final, checkpoints = self.reference_run(
            seed, injector=FaultInjector(plan, seed=seed))
        for count, checkpoint in checkpoints.items():
            if count == NUM_EVENTS:
                continue
            resumed = build_service(backend="python",
                                    degrade_on_divergence=True)
            resume_stream(resumed, checkpoint, NUM_EVENTS,
                          strict=False,
                          injector=FaultInjector(plan, seed=seed))
            assert resumed.snapshot() == final, count

    def test_simulated_crash_then_restore(self):
        """The full kill/restore story: a crash fault aborts the run
        mid-stream; restoring the last checkpoint and disarming the
        fired crash finishes bit-equal to a run that never died."""
        seed = 13 + EQUIV_SEED
        crash_at = 50
        plan = FaultPlan.seeded(
            NUM_EVENTS, 0.1, seed, kinds=STATE_NEUTRAL_KINDS)
        armed = FaultPlan(list(plan) + [FaultEvent(crash_at, "crash")])

        reference, _ = self.reference_run(
            seed, injector=FaultInjector(plan, seed=seed))

        service = build_service(backend="python",
                                degrade_on_divergence=True)
        checkpoints = {}

        def keep(count, payload):
            checkpoints[count] = json.loads(json.dumps(payload))

        with pytest.raises(SimulatedCrash) as exc:
            drive_stream(service, NUM_EVENTS, seed, strict=False,
                         injector=FaultInjector(armed, seed=seed),
                         checkpoint_every=self.CHECKPOINT_EVERY,
                         on_checkpoint=keep)
        assert exc.value.index == crash_at
        latest = max(c for c in checkpoints if c <= crash_at)

        resumed = build_service(backend="python",
                                degrade_on_divergence=True)
        resume_stream(
            resumed, checkpoints[latest], NUM_EVENTS, strict=False,
            injector=FaultInjector(armed.without(crash_at, "crash"),
                                   seed=seed))
        assert resumed.snapshot() == reference


class TestRunWrapperCheckpoints:
    def test_service_run_checkpoints_and_audits(self):
        """``AllocationService.run`` exposes the same hooks for
        callers that bring their own event list."""
        from repro.cloud.service import Event, TenantRequest
        from repro.economics.utility import UTILITY2

        service = build_service(backend="python")
        events = []
        for i in range(12):
            events.append(Event(kind="submit", tenant=TenantRequest(
                name=f"t{i}", benchmark="gcc", utility=UTILITY2,
                budget=18.0 + i)))
        events.append(Event(kind="depart", tenant_id="ghost"))
        seen = []
        summary = service.run(
            events, reprice_every=4, strict=False,
            audit_every=4, checkpoint_every=5,
            on_checkpoint=lambda count, snap: seen.append(count))
        assert seen == [5, 10]
        assert summary.dead_letters == 1
        assert summary.events == 13
