"""Randomized invariant tests for the MSHR file.

Seeded random allocate/retire streams against a transparent reference
model.  Seed policy matches ``test_setassoc_random``: fixed default,
``REPRO_PROPERTY_SEED`` override in CI.
"""

import os
import random

from repro.cache.mshr import MSHRFile

SEED = int(os.environ.get("REPRO_PROPERTY_SEED", "20140301"))


def test_merge_and_capacity_invariants_under_random_stream():
    rng = random.Random(SEED)
    capacity = 4
    mshr = MSHRFile(capacity=capacity, line_size=64)
    outstanding = {}  # line -> (fill_cycle, [waiters])
    primary = secondary = stalls = 0
    now = 0
    for seq in range(5000):
        now += rng.randrange(0, 3)
        if rng.random() < 0.25:
            # retire everything due by now
            done = mshr.retire_filled(now)
            for entry in done:
                fill, waiters = outstanding.pop(entry.line)
                assert entry.fill_cycle == fill
                assert entry.waiters == waiters
            assert all(f > now for f, _ in outstanding.values())
            continue
        address = rng.randrange(0, 32) * 64 + rng.randrange(0, 64)
        line = address // 64
        fill = now + rng.randrange(1, 50)
        entry = mshr.allocate(address, fill_cycle=fill, waiter_seq=seq)
        if line in outstanding:
            # secondary miss: merged, inherits the earlier fill time
            secondary += 1
            assert entry is not None
            assert entry.fill_cycle == outstanding[line][0]
            outstanding[line][1].append(seq)
        elif len(outstanding) >= capacity:
            stalls += 1
            assert entry is None
        else:
            primary += 1
            assert entry is not None and entry.fill_cycle == fill
            outstanding[line] = (fill, [seq])
        assert len(mshr) == len(outstanding) <= capacity
        assert mshr.full == (len(outstanding) >= capacity)
    assert mshr.primary_misses == primary
    assert mshr.secondary_merges == secondary
    assert mshr.full_stalls == stalls


def test_earliest_fill_tracks_minimum():
    rng = random.Random(SEED + 1)
    mshr = MSHRFile(capacity=8)
    fills = []
    for i in range(8):
        fill = rng.randrange(10, 1000)
        assert mshr.allocate(i * 64, fill_cycle=fill, waiter_seq=i)
        fills.append(fill)
        assert mshr.earliest_fill() == min(fills)


def test_retire_is_exact_and_idempotent():
    rng = random.Random(SEED + 2)
    mshr = MSHRFile(capacity=8)
    for i in range(8):
        mshr.allocate(i * 64, fill_cycle=rng.randrange(1, 100),
                      waiter_seq=i)
    cut = 50
    done = mshr.retire_filled(cut)
    assert all(e.fill_cycle <= cut for e in done)
    assert all(e.fill_cycle > cut
               for e in mshr._entries.values())
    assert mshr.retire_filled(cut) == []


def test_lookup_finds_entry_by_any_address_in_line():
    mshr = MSHRFile(capacity=2, line_size=64)
    mshr.allocate(130, fill_cycle=9, waiter_seq=0)  # line 2
    for offset in range(64):
        entry = mshr.lookup(128 + offset)
        assert entry is not None and entry.line == 2
    assert mshr.lookup(64) is None


def test_flush_empties_the_file():
    mshr = MSHRFile(capacity=4)
    for i in range(4):
        mshr.allocate(i * 64, fill_cycle=5, waiter_seq=i)
    assert mshr.flush() == 4
    assert len(mshr) == 0
    assert not mshr.full
    assert mshr.earliest_fill() is None
