"""Property-based tests for the mesh and switched networks."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network.messages import OperandRequest
from repro.network.switched import SwitchedNetwork
from repro.network.topology import Mesh2D

dims = st.integers(min_value=1, max_value=10)


@st.composite
def mesh_and_nodes(draw):
    width = draw(dims)
    height = draw(dims)
    mesh = Mesh2D(width=width, height=height)
    a = draw(st.integers(min_value=0, max_value=mesh.num_nodes - 1))
    b = draw(st.integers(min_value=0, max_value=mesh.num_nodes - 1))
    return mesh, a, b


class TestMeshMetricProperties:
    @given(data=mesh_and_nodes())
    @settings(max_examples=100, deadline=None)
    def test_distance_is_a_metric(self, data):
        mesh, a, b = data
        assert mesh.distance(a, b) >= 0
        assert (mesh.distance(a, b) == 0) == (a == b)
        assert mesh.distance(a, b) == mesh.distance(b, a)

    @given(data=mesh_and_nodes())
    @settings(max_examples=100, deadline=None)
    def test_route_realises_distance(self, data):
        mesh, a, b = data
        route = mesh.route(a, b)
        assert len(route) == mesh.distance(a, b)
        # The route is connected: each link starts where the last ended.
        cur = a
        for src, dst in route:
            assert src == cur
            assert mesh.distance(src, dst) == 1
            cur = dst
        if route:
            assert cur == b

    @given(data=mesh_and_nodes(), third=st.integers(min_value=0))
    @settings(max_examples=100, deadline=None)
    def test_triangle_inequality(self, data, third):
        mesh, a, b = data
        c = third % mesh.num_nodes
        assert (mesh.distance(a, b)
                <= mesh.distance(a, c) + mesh.distance(c, b))


class TestNetworkTimingProperties:
    @given(data=mesh_and_nodes(),
           start=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=100, deadline=None)
    def test_arrival_never_precedes_send(self, data, start):
        mesh, a, b = data
        net = SwitchedNetwork(mesh)
        msg = OperandRequest(src=a, dst=b, sent_cycle=start)
        assert net.send(msg) >= start

    @given(data=mesh_and_nodes())
    @settings(max_examples=100, deadline=None)
    def test_latency_monotone_in_distance(self, data):
        mesh, a, b = data
        net = SwitchedNetwork(mesh)
        if mesh.distance(a, b) > 0:
            assert net.latency(a, b) == 1 + mesh.distance(a, b)

    @given(data=mesh_and_nodes(),
           n_messages=st.integers(min_value=1, max_value=20))
    @settings(max_examples=50, deadline=None)
    def test_contention_ordering_preserved(self, data, n_messages):
        """Messages injected in order on one path arrive in order."""
        mesh, a, b = data
        net = SwitchedNetwork(mesh, model_contention=True)
        arrivals = [
            net.send(OperandRequest(src=a, dst=b, sent_cycle=i))
            for i in range(n_messages)
        ]
        assert arrivals == sorted(arrivals)
