"""Property-based tests for the economic model."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.economics.market import Market
from repro.economics.utility import UTILITY1, UTILITY2, UTILITY3
from repro.perfmodel.model import AnalyticModel
from repro.trace import all_benchmarks

cache_sizes = st.sampled_from([0.0, 64.0, 128.0, 256.0, 512.0, 1024.0,
                               2048.0, 4096.0, 8192.0])
slice_counts = st.integers(min_value=1, max_value=8)
benchmarks = st.sampled_from(all_benchmarks())
prices = st.floats(min_value=0.1, max_value=100.0, allow_nan=False)

_MODEL = AnalyticModel()


class TestUtilityProperties:
    @given(perf=st.floats(min_value=0.01, max_value=100),
           vcores=st.floats(min_value=0.01, max_value=100))
    @settings(max_examples=100, deadline=None)
    def test_utilities_positive(self, perf, vcores):
        for u in (UTILITY1, UTILITY2, UTILITY3):
            assert u.value(perf, vcores) > 0

    @given(perf=st.floats(min_value=0.01, max_value=100),
           vcores=st.floats(min_value=0.01, max_value=100),
           factor=st.floats(min_value=1.01, max_value=10))
    @settings(max_examples=100, deadline=None)
    def test_monotone_in_both_arguments(self, perf, vcores, factor):
        for u in (UTILITY1, UTILITY2, UTILITY3):
            assert u.value(perf * factor, vcores) > u.value(perf, vcores)
            assert u.value(perf, vcores * factor) > u.value(perf, vcores)

    @given(perf=st.floats(min_value=1.01, max_value=100))
    @settings(max_examples=100, deadline=None)
    def test_higher_exponent_rewards_performance_more(self, perf):
        """For P > 1, Utility3 grows faster in P than Utility1."""
        ratio1 = UTILITY1.value(perf, 1) / UTILITY1.value(1, 1)
        ratio3 = UTILITY3.value(perf, 1) / UTILITY3.value(1, 1)
        assert ratio3 >= ratio1


class TestMarketProperties:
    @given(slice_price=prices, bank_price=prices, cache=cache_sizes,
           slices=slice_counts)
    @settings(max_examples=100, deadline=None)
    def test_cost_positive_and_monotone(self, slice_price, bank_price,
                                        cache, slices):
        market = Market(name="m", slice_price=slice_price,
                        bank_price=bank_price)
        cost = market.cost(cache, slices)
        assert cost > 0
        assert market.cost(cache + 64, slices) > cost
        if slices < 8:
            assert market.cost(cache, slices + 1) > cost

    @given(budget=st.floats(min_value=1, max_value=1000),
           cache=cache_sizes, slices=slice_counts)
    @settings(max_examples=100, deadline=None)
    def test_equation2_inverse_relationship(self, budget, cache, slices):
        market = Market(name="m", slice_price=2, bank_price=1)
        v = market.vcores_affordable(budget, cache, slices)
        assert v * market.cost(cache, slices) == (
            __import__("pytest").approx(budget)
        )


class TestModelProperties:
    @given(bench=benchmarks, cache=cache_sizes, slices=slice_counts)
    @settings(max_examples=100, deadline=None)
    def test_performance_finite_positive(self, bench, cache, slices):
        perf = _MODEL.performance(bench, cache, slices)
        assert 0 < perf < 100

    @given(bench=benchmarks, cache=cache_sizes)
    @settings(max_examples=60, deadline=None)
    def test_breakdown_sums(self, bench, cache):
        b = _MODEL.breakdown(bench, cache, 4)
        assert abs(b.total - (b.core + b.branch + b.memory)) < 1e-12

    @given(bench=benchmarks, slices=slice_counts)
    @settings(max_examples=60, deadline=None)
    def test_memory_cpi_monotone_in_cache_hits(self, bench, slices):
        """More cache never increases the *miss* component (latency can
        offset it in total performance, but the breakdown's memory term
        moves with the miss curve plus latency, so compare extremes)."""
        none = _MODEL.breakdown(bench, 0, slices)
        small = _MODEL.breakdown(bench, 64, slices)
        # At 64 KB latency is minimal, so memory CPI must not rise much.
        assert small.memory <= none.memory * 1.1
