"""Property-based tests for the cache substrate."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.l2 import BankedL2, default_bank_distances
from repro.cache.setassoc import SetAssociativeCache

addresses = st.integers(min_value=0, max_value=1 << 30)
access_lists = st.lists(
    st.tuples(addresses, st.booleans()), min_size=1, max_size=200
)


class TestSetAssocInvariants:
    @given(accesses=access_lists)
    @settings(max_examples=50, deadline=None)
    def test_occupancy_never_exceeds_capacity(self, accesses):
        cache = SetAssociativeCache(size_bytes=1024, line_size=64, assoc=2)
        for address, is_write in accesses:
            cache.access(address, is_write=is_write)
        assert cache.occupancy() <= cache.num_sets * cache.assoc

    @given(accesses=access_lists)
    @settings(max_examples=50, deadline=None)
    def test_hits_plus_misses_equals_accesses(self, accesses):
        cache = SetAssociativeCache(size_bytes=2048, line_size=64, assoc=4)
        for address, is_write in accesses:
            cache.access(address, is_write=is_write)
        assert cache.hits + cache.misses == len(accesses)

    @given(accesses=access_lists)
    @settings(max_examples=50, deadline=None)
    def test_immediate_reaccess_always_hits(self, accesses):
        cache = SetAssociativeCache(size_bytes=2048, line_size=64, assoc=4)
        for address, is_write in accesses:
            cache.access(address, is_write=is_write)
            assert cache.access(address).hit

    @given(accesses=access_lists)
    @settings(max_examples=50, deadline=None)
    def test_flush_empties_and_counts_dirty(self, accesses):
        cache = SetAssociativeCache(size_bytes=2048, line_size=64, assoc=4)
        for address, is_write in accesses:
            cache.access(address, is_write=is_write)
        dirty = cache.flush()
        assert 0 <= dirty <= len(accesses)
        assert cache.occupancy() == 0

    @given(address=addresses)
    @settings(max_examples=50, deadline=None)
    def test_probe_agrees_with_access(self, address):
        cache = SetAssociativeCache(size_bytes=2048, line_size=64, assoc=4)
        assert not cache.probe(address)
        cache.access(address)
        assert cache.probe(address)


class TestBankedL2Invariants:
    @given(
        num_banks=st.integers(min_value=1, max_value=64),
        accesses=st.lists(addresses, min_size=1, max_size=100),
    )
    @settings(max_examples=30, deadline=None)
    def test_home_bank_is_stable(self, num_banks, accesses):
        l2 = BankedL2(num_banks=num_banks)
        for address in accesses:
            first = l2.bank_for(address).bank_id
            second = l2.bank_for(address).bank_id
            assert first == second

    @given(num_banks=st.integers(min_value=1, max_value=128))
    @settings(max_examples=30, deadline=None)
    def test_ring_distances_monotone(self, num_banks):
        distances = default_bank_distances(num_banks)
        assert len(distances) == num_banks
        assert distances == sorted(distances)
        assert all(d >= 1 for d in distances)
        # Ring r holds at most 4r banks.
        from collections import Counter
        counts = Counter(distances)
        assert all(count <= 4 * ring for ring, count in counts.items())

    @given(accesses=st.lists(addresses, min_size=1, max_size=100))
    @settings(max_examples=30, deadline=None)
    def test_most_recent_line_always_resident(self, accesses):
        """LRU guarantee: the line just accessed is still resident."""
        l2 = BankedL2(num_banks=16)
        for address in accesses:
            l2.access(address)
            result, _ = l2.access(address)
            assert result.hit
