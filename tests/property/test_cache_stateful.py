"""Stateful property test: the set-associative cache against a reference.

A hypothesis rule-based state machine drives the cache with arbitrary
access/invalidate/flush sequences and checks it against an oracle: a
plain per-set LRU list.  Any divergence in hit/miss outcomes, dirty
tracking, or occupancy is a bug.
"""

from collections import OrderedDict

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.cache.setassoc import SetAssociativeCache

SIZE_BYTES = 512
LINE = 64
ASSOC = 2
NUM_SETS = SIZE_BYTES // LINE // ASSOC

addresses = st.integers(min_value=0, max_value=64 * 64)


class _ReferenceLRU:
    """Oracle: dict-of-OrderedDict LRU with dirty bits."""

    def __init__(self):
        self.sets = {}

    def access(self, address, is_write):
        line = address // LINE
        idx = line % NUM_SETS
        ways = self.sets.setdefault(idx, OrderedDict())
        if line in ways:
            dirty = ways.pop(line) or is_write
            ways[line] = dirty
            return True
        if len(ways) >= ASSOC:
            ways.popitem(last=False)
        ways[line] = is_write
        return False

    def probe(self, address):
        line = address // LINE
        return line in self.sets.get(line % NUM_SETS, {})

    def invalidate(self, address):
        line = address // LINE
        ways = self.sets.get(line % NUM_SETS, {})
        if line in ways:
            return ways.pop(line)
        return False

    def flush(self):
        dirty = sum(
            1 for ways in self.sets.values() for d in ways.values() if d
        )
        self.sets.clear()
        return dirty

    def occupancy(self):
        return sum(len(ways) for ways in self.sets.values())


class CacheMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.cache = SetAssociativeCache(
            size_bytes=SIZE_BYTES, line_size=LINE, assoc=ASSOC
        )
        self.oracle = _ReferenceLRU()

    @rule(address=addresses, is_write=st.booleans())
    def access(self, address, is_write):
        got = self.cache.access(address, is_write=is_write).hit
        expected = self.oracle.access(address, is_write)
        assert got == expected, f"hit mismatch at {address:#x}"

    @rule(address=addresses)
    def probe(self, address):
        assert self.cache.probe(address) == self.oracle.probe(address)

    @rule(address=addresses)
    def invalidate(self, address):
        assert (self.cache.invalidate(address)
                == self.oracle.invalidate(address))

    @rule()
    def flush(self):
        assert self.cache.flush() == self.oracle.flush()

    @rule(address=addresses)
    def prefetch(self, address):
        # A prefetch behaves like a clean read for content purposes.
        self.cache.prefetch(address)
        self.oracle.access(address, is_write=False)

    @invariant()
    def occupancy_matches(self):
        assert self.cache.occupancy() == self.oracle.occupancy()

    @invariant()
    def capacity_respected(self):
        assert self.cache.occupancy() <= NUM_SETS * ASSOC


TestCacheStateful = CacheMachine.TestCase
TestCacheStateful.settings = settings(max_examples=40,
                                      stateful_step_count=60,
                                      deadline=None)
