"""Property tests: batched SoA pipeline structures vs scalar oracles.

:class:`~repro.core.batched.BatchedROB` and
:class:`~repro.core.batched.BatchedLSQ` carry several lanes (one per
simulated configuration) over one occupancy tensor each.  These tests
drive every lane through a random op stream alongside an independent
scalar oracle per lane - :class:`~repro.core.rob.DistributedROB` and
:class:`~repro.core.lsq.LSQBank` - and assert identical admission
decisions, identical pop/squash results and identical occupancy at
every step, including lanes whose capacities differ so their decisions
*diverge* mid-stream.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.batched import BatchedLSQ, BatchedROB
from repro.core.lsq import LSQBank
from repro.core.rob import DistributedROB


class _Dyn:
    """Minimal DynInst stand-in: the ROB only reads seq and slice_id."""

    __slots__ = ("seq", "slice_id", "squashed")

    def __init__(self, seq, slice_id):
        self.seq = seq
        self.slice_id = slice_id
        self.squashed = False


# One ROB op: (kind, slice_id) where kind 0=dispatch, 1=commit, 2=flush.
rob_ops = st.lists(
    st.tuples(st.integers(min_value=0, max_value=2),
              st.integers(min_value=0, max_value=3)),
    min_size=1, max_size=60,
)

#: Lane configurations chosen to diverge: capacity 2 lanes start
#: refusing dispatches while capacity 64 lanes still admit.
ROB_LANES = ((4, 2), (4, 64), (2, 3))  # (num_slices, per_slice_capacity)


class TestBatchedROBvsOracle:
    @given(ops=rob_ops)
    @settings(max_examples=80, deadline=None)
    def test_lockstep_matches_per_lane_oracle(self, ops):
        # One BatchedROB per capacity class (the real simulator builds
        # one per lane; the tensor shape just needs max_slices).
        max_slices = max(ns for ns, _ in ROB_LANES)
        batched = {
            cap: BatchedROB(len(ROB_LANES), max_slices, cap)
            for _, cap in ROB_LANES
        }
        oracles = [DistributedROB(ns, per_slice_capacity=cap)
                   for ns, cap in ROB_LANES]
        next_seq = [0] * len(ROB_LANES)
        slice_of = {lane: {} for lane in range(len(ROB_LANES))}

        for kind, raw_slice in ops:
            for lane, (ns, cap) in enumerate(ROB_LANES):
                rob = batched[cap]
                oracle = oracles[lane]
                sid = raw_slice % ns
                if kind == 0:
                    can = rob.can_dispatch(lane, sid)
                    assert can == oracle.can_dispatch(sid)
                    if can:
                        seq = next_seq[lane]
                        rob.dispatch(lane, sid, seq)
                        assert oracle.dispatch(_Dyn(seq, sid))
                        slice_of[lane][seq] = sid
                        next_seq[lane] += 1
                elif kind == 1:
                    head = rob.head(lane)
                    oracle_head = oracle.head()
                    assert head == (-1 if oracle_head is None
                                    else oracle_head.seq)
                    if head >= 0:
                        popped = rob.pop_head(lane, slice_of[lane][head])
                        assert popped == oracle.pop_head().seq == head
                else:
                    cut = next_seq[lane] // 2
                    lookup = [0] * max(1, next_seq[lane])
                    for seq, sid_ in slice_of[lane].items():
                        lookup[seq] = sid_
                    got = rob.squash_younger(lane, cut, lookup)
                    want = [d.seq for d in oracle.squash_younger(cut)]
                    assert got == want
                # Occupancy identical after every op, per slice.
                for sid_ in range(ns):
                    assert (rob.occupancy[lane][sid_]
                            == oracle.occupancy_of(sid_))
                assert (sum(rob.occupancy[lane]) == len(oracle))

    @given(ops=rob_ops)
    @settings(max_examples=40, deadline=None)
    def test_lanes_diverge_independently(self, ops):
        """A full tight lane must never block a roomy lane's dispatch."""
        rob = BatchedROB(2, 1, 2)  # lane 0 and 1, one slice, capacity 2
        roomy = BatchedROB(2, 1, 64)
        seq = [0, 0]
        for kind, _ in ops:
            if kind != 0:
                continue
            for lane, r in ((0, rob), (1, roomy)):
                if r.can_dispatch(lane, 0):
                    r.dispatch(lane, 0, seq[lane])
                    seq[lane] += 1
        assert sum(roomy.occupancy[1]) >= sum(rob.occupancy[0])
        tensor = roomy.occupancy_tensor()
        assert tensor.shape == (2, 1)
        assert tensor[1, 0] == sum(roomy.occupancy[1])


# One LSQ op: (is_store, line, resolved_cycle, force)
lsq_ops = st.lists(
    st.tuples(st.booleans(), st.integers(min_value=0, max_value=7),
              st.integers(min_value=0, max_value=60), st.booleans()),
    min_size=1, max_size=50,
)

#: Capacities chosen to diverge: the size-2 bank refuses (and
#: force-overrides) while the size-64 bank admits everything.
LSQ_CAPS = (2, 64, 4)


class TestBatchedLSQvsOracle:
    @given(ops=lsq_ops)
    @settings(max_examples=80, deadline=None)
    def test_insert_forward_violate_retire_match_oracle(self, ops):
        lanes = len(LSQ_CAPS)
        batched = {
            cap: BatchedLSQ(lanes, [1] * lanes, cap) for cap in LSQ_CAPS
        }
        oracles = [LSQBank(capacity=cap) for cap in LSQ_CAPS]

        for seq, (is_store, line, resolved, force) in enumerate(ops):
            for lane, cap in enumerate(LSQ_CAPS):
                lsq = batched[cap]
                oracle = oracles[lane]
                assert lsq.full(lane, 0) == oracle.full
                admitted = lsq.insert(lane, 0, seq, is_store, line,
                                      resolved, force=force)
                entry = oracle.insert(seq, is_store, line, resolved,
                                      force=force)
                assert admitted == (entry is not None)
                assert (lsq.occupancy[lane][0]
                        == len(lsq.banks[lane][0]))

        probe = len(ops)
        for lane, cap in enumerate(LSQ_CAPS):
            lsq = batched[cap]
            oracle = oracles[lane]
            for line in range(8):
                for before in (0, 30, 10 ** 6):
                    got = lsq.find_forwarding_store(lane, 0, probe,
                                                    line, before)
                    want = oracle.find_forwarding_store(probe, line,
                                                        before)
                    assert got == (-1 if want is None else want.seq)
                for store_seq in (0, len(ops) // 2):
                    got = sorted(lsq.check_store_commit(lane, 0,
                                                        store_seq, line))
                    want = sorted(e.seq for e in oracle.check_store_commit(
                        store_seq, line))
                    assert got == want

    @given(ops=lsq_ops, retire=st.integers(min_value=0, max_value=49))
    @settings(max_examples=60, deadline=None)
    def test_retire_keeps_occupancy_tensor_exact(self, ops, retire):
        lsq = BatchedLSQ(1, [1], 64)
        oracle = LSQBank(capacity=64)
        for seq, (is_store, line, resolved, _) in enumerate(ops):
            lsq.insert(0, 0, seq, is_store, line, resolved)
            oracle.insert(seq, is_store, line, resolved)
        lsq.remove(0, 0, retire)
        oracle.remove(retire)
        # Removing an absent seq must be a no-op on the tensor too.
        lsq.remove(0, 0, 10 ** 9)
        oracle.remove(10 ** 9)
        assert lsq.occupancy_tensor()[0, 0] == oracle.occupancy()
        assert set(lsq.banks[0][0]) == {
            e.seq for e in oracle._entries.values()
        }

    @given(ops=lsq_ops)
    @settings(max_examples=40, deadline=None)
    def test_forwarding_marks_divergence_per_lane(self, ops):
        """forwarded_from recorded on one lane never leaks to another."""
        lsq = BatchedLSQ(2, [1, 1], 64)
        for seq, (is_store, line, resolved, _) in enumerate(ops):
            lsq.insert(0, 0, seq, is_store, line, resolved)
            lsq.insert(1, 0, seq, is_store, line, resolved)
        load = len(ops)
        for line in range(8):
            source = lsq.find_forwarding_store(0, 0, load, line, 10 ** 6)
            if source >= 0:
                lsq.insert(0, 0, load, False, line, 0)
                lsq.banks[0][0][load][3] = source
                assert load not in lsq.banks[1][0]
                lsq.remove(0, 0, load)
