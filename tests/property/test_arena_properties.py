"""Arena equivalence properties of the streaming allocation service.

Two guarantees, each checked over seeded random interleavings of
submit / resize / depart / step events:

* after *every* event, the arena's contiguous active view is
  bit-identical to a fresh ``np.stack`` rebuild over the roster - the
  exact tensors the pre-arena service stacked per step - and a
  warm-started step from identical state yields bit-identical prices
  and allocations on an identically prepared twin;
* a run snapshotted mid-sequence (JSON round-tripped) and restored
  into a fresh service finishes the remaining events with the
  bit-identical final snapshot of the run that never stopped.
"""

import json
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

np = pytest.importorskip("numpy")

from repro.cloud.fabric import Fabric
from repro.cloud.service import AllocationService, TenantRequest
from repro.economics.utility import STANDARD_UTILITIES

NUM_EVENTS = 60
BENCHMARKS = ("gcc", "mcf", "libquantum")


def make_service():
    return AllocationService(fabric=Fabric(16, 8), backend="numpy",
                             admission_floor=0.0, max_vcores=4)


def random_events(seed, num_events=NUM_EVENTS):
    """A seeded interleaving with a live population to act on."""
    rng = random.Random(seed)
    events = []
    serial = 0
    active = []
    for _ in range(num_events):
        roll = rng.random()
        if active and roll < 0.2:
            name = active.pop(rng.randrange(len(active)))
            events.append(("depart", name, None))
        elif active and roll < 0.45:
            name = rng.choice(active)
            events.append(("resize", name,
                           rng.uniform(4.0, 48.0)))
        elif roll < 0.85 or not active:
            name = f"t{serial}"
            serial += 1
            active.append(name)
            events.append(("submit", name, TenantRequest(
                name=name,
                benchmark=rng.choice(BENCHMARKS),
                utility=rng.choice(STANDARD_UTILITIES),
                budget=rng.uniform(4.0, 48.0))))
        else:
            events.append(("step", None, None))
    return events


def apply_event(service, event):
    kind, name, payload = event
    if kind == "submit":
        result = service.submit(payload)
        if not result.admitted:
            return ("rejected", name)
        return ("admitted", name)
    if kind == "depart":
        if name in service._by_name:
            service.depart(name)
        return ("departed", name)
    if kind == "resize":
        if name in service._by_name:
            service.resize(name, payload)
        return ("resized", name)
    result = service.step()
    return ("step", result.slice_price, result.bank_price,
            result.rounds, result.converged)


def fresh_stack(service):
    """The tensors the pre-arena service rebuilt per step."""
    roster = service._roster
    if not roster:
        return None
    return (np.stack([s.perf_k_flat for s in roster]),
            np.array([[s.inv_k] for s in roster]),
            np.array([[s.request.budget] for s in roster]))


def assert_arena_matches_rebuild(service):
    arena = service._arena
    view = arena.active_view()
    rebuilt = fresh_stack(service)
    if rebuilt is None:
        assert view["perf_k"].shape[0] == 0
        return
    assert np.array_equal(view["perf_k"], rebuilt[0])
    assert np.array_equal(view["inv_k"], rebuilt[1])
    assert np.array_equal(view["budgets"], rebuilt[2])
    assert arena.order == [s.request.name for s in service._roster]


class TestArenaEqualsRebuild:
    @given(seed=st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=10, deadline=None)
    def test_view_bit_equal_after_every_event(self, seed):
        service = make_service()
        for event in random_events(seed):
            apply_event(service, event)
            assert_arena_matches_rebuild(service)
        service.verify_invariants()

    @given(seed=st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=6, deadline=None)
    def test_twin_service_steps_identically(self, seed):
        """Replaying the same events on a twin gives bit-identical
        prices and allocations at every step - the arena introduces
        no state the event stream does not determine."""
        service = make_service()
        twin = make_service()
        for event in random_events(seed):
            got = apply_event(service, event)
            assert apply_event(twin, event) == got
        a, b = service.snapshot(), twin.snapshot()
        assert a == b


class TestCheckpointMidSequence:
    @given(seed=st.integers(min_value=0, max_value=2**16),
           cut=st.integers(min_value=1, max_value=NUM_EVENTS - 1))
    @settings(max_examples=8, deadline=None)
    def test_restore_then_finish_bit_identical(self, seed, cut):
        events = random_events(seed)
        straight = make_service()
        for event in events:
            apply_event(straight, event)

        service = make_service()
        for event in events[:cut]:
            apply_event(service, event)
        checkpoint = json.loads(json.dumps(service.snapshot()))

        resumed = make_service()
        resumed.restore(checkpoint)
        assert_arena_matches_rebuild(resumed)
        assert (resumed._arena.layout()
                == service._arena.layout())
        for event in events[cut:]:
            apply_event(resumed, event)
        assert resumed.snapshot() == straight.snapshot()
        assert (resumed._arena.layout()
                == straight._arena.layout())
