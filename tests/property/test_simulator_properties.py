"""Property-based tests for trace generation and simulation invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.simulator import simulate
from repro.trace import all_benchmarks
from repro.trace.generator import generate_trace

benchmarks = st.sampled_from(all_benchmarks())
seeds = st.integers(min_value=0, max_value=1_000_000)


class TestTraceInvariants:
    @given(bench=benchmarks, seed=seeds,
           length=st.integers(min_value=1, max_value=400))
    @settings(max_examples=25, deadline=None)
    def test_trace_well_formed(self, bench, seed, length):
        trace = generate_trace(bench, length, seed=seed)
        assert len(trace) == length
        for idx, inst in enumerate(trace):
            assert inst.seq == idx
            if inst.is_mem:
                assert inst.mem is not None
            if inst.is_branch and inst.taken:
                assert inst.target is not None

    @given(bench=benchmarks, seed=seeds)
    @settings(max_examples=20, deadline=None)
    def test_generation_is_deterministic(self, bench, seed):
        a = generate_trace(bench, 200, seed=seed)
        b = generate_trace(bench, 200, seed=seed)
        assert [(i.pc, i.opcode, i.taken) for i in a] == [
            (i.pc, i.opcode, i.taken) for i in b
        ]


class TestSimulationInvariants:
    @given(
        bench=st.sampled_from(["gcc", "astar", "swaptions"]),
        slices=st.sampled_from([1, 2, 4]),
        cache=st.sampled_from([0.0, 128.0, 512.0]),
        seed=st.integers(min_value=0, max_value=50),
    )
    @settings(max_examples=12, deadline=None)
    def test_everything_commits_exactly_once(self, bench, slices, cache,
                                             seed):
        trace = generate_trace(bench, 300, seed=seed)
        result = simulate(trace, num_slices=slices, l2_cache_kb=cache)
        assert result.stats.committed == 300
        # Fetch count covers commits plus any replayed instructions.
        assert result.stats.fetched >= 300
        assert result.stats.ipc <= 2.0 * slices  # fetch-width bound

    @given(seed=st.integers(min_value=0, max_value=50))
    @settings(max_examples=8, deadline=None)
    def test_cycles_lower_bound(self, seed):
        """A trace can never commit faster than commit bandwidth."""
        trace = generate_trace("gcc", 240, seed=seed)
        result = simulate(trace, num_slices=2, l2_cache_kb=128)
        assert result.cycles >= 240 / (2 * 2)
