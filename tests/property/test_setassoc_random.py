"""Randomized model-based tests for the set-associative cache.

A reference LRU model (one ``OrderedDict`` per set, exactly the
documented replacement policy) is driven in lock-step with
:class:`SetAssociativeCache` under seeded random access streams.  The
seed comes from ``REPRO_PROPERTY_SEED`` when set (CI logs a fresh one
per run) and otherwise stays fixed for reproducibility.
"""

import os
import random
from collections import OrderedDict

import pytest

from repro.cache.setassoc import SetAssociativeCache

SEED = int(os.environ.get("REPRO_PROPERTY_SEED", "20140301"))

GEOMETRIES = [
    # (size_bytes, line_size, assoc)
    (1024, 64, 1),      # direct-mapped
    (2048, 64, 2),
    (4096, 64, 4),
    (4096, 32, 8),
    (512, 64, 8),       # fully associative (one set)
]


class ReferenceLRU:
    """Independent reimplementation of the documented policy."""

    def __init__(self, size_bytes, line_size, assoc):
        self.line_size = line_size
        self.assoc = assoc
        self.num_sets = (size_bytes // line_size) // assoc
        self.sets = {}
        self.hits = 0
        self.misses = 0
        self.writebacks = 0

    def access(self, address, is_write):
        line = address // self.line_size
        ways = self.sets.setdefault(line % self.num_sets, OrderedDict())
        if line in ways:
            self.hits += 1
            ways[line] |= is_write
            ways.move_to_end(line)
            return True, None
        self.misses += 1
        victim = None
        if len(ways) >= self.assoc:
            victim, dirty = ways.popitem(last=False)
            if dirty:
                self.writebacks += 1
        ways[line] = is_write
        return False, victim

    def resident(self):
        return sorted(l for ways in self.sets.values() for l in ways)


@pytest.mark.parametrize("size,line,assoc", GEOMETRIES)
def test_matches_reference_model_under_random_stream(size, line, assoc):
    rng = random.Random(SEED ^ hash((size, line, assoc)))
    cache = SetAssociativeCache(size, line_size=line, assoc=assoc)
    ref = ReferenceLRU(size, line_size=line, assoc=assoc)
    # address pool ~2x the cache's line capacity: plenty of conflicts
    pool = [rng.randrange(0, 4 * size) for _ in range(64)]
    for _ in range(4000):
        address = rng.choice(pool)
        is_write = rng.random() < 0.3
        result = cache.access(address, is_write=is_write)
        ref_hit, ref_victim = ref.access(address, is_write)
        assert result.hit == ref_hit
        assert result.evicted_line == ref_victim
    assert cache.hits == ref.hits
    assert cache.misses == ref.misses
    assert cache.writebacks == ref.writebacks
    assert sorted(cache.resident_lines()) == ref.resident()


def test_hit_after_fill():
    rng = random.Random(SEED)
    cache = SetAssociativeCache(2048, assoc=2)
    for _ in range(1000):
        address = rng.randrange(0, 1 << 20)
        cache.access(address)
        assert cache.access(address).hit  # immediate re-access must hit


def test_lru_eviction_order_follows_touch_order():
    rng = random.Random(SEED + 1)
    assoc = 4
    cache = SetAssociativeCache(64 * assoc, line_size=64, assoc=assoc)
    # One set: fill with `assoc` lines, touch in random order, then
    # insert fresh lines - evictions must come back in touch order.
    lines = list(range(assoc))
    for l in lines:
        cache.access(l * 64)
    touch_order = lines[:]
    rng.shuffle(touch_order)
    for l in touch_order:
        assert cache.access(l * 64).hit
    evicted = []
    for i in range(assoc):
        result = cache.access((assoc + i) * 64)
        assert result.miss
        evicted.append(result.evicted_line)
    assert evicted == touch_order


def test_occupancy_never_exceeds_capacity():
    rng = random.Random(SEED + 2)
    cache = SetAssociativeCache(1024, assoc=2)
    capacity = 1024 // 64
    for _ in range(2000):
        cache.access(rng.randrange(0, 1 << 16))
        assert cache.occupancy() <= capacity


def test_writeback_only_on_dirty_eviction():
    rng = random.Random(SEED + 3)
    cache = SetAssociativeCache(512, assoc=1)  # direct-mapped, tiny
    dirty = set()
    writebacks = 0
    for _ in range(3000):
        address = rng.randrange(0, 1 << 14)
        is_write = rng.random() < 0.5
        line = cache.line_of(address)
        result = cache.access(address, is_write=is_write)
        if result.evicted_line is not None:
            was_dirty = result.evicted_line in dirty
            assert result.evicted_dirty == was_dirty
            assert result.writeback == was_dirty
            writebacks += was_dirty
            dirty.discard(result.evicted_line)
        if is_write:
            dirty.add(line)
    assert cache.writebacks == writebacks


def test_invalidate_then_access_misses():
    rng = random.Random(SEED + 4)
    cache = SetAssociativeCache(4096, assoc=4)
    for _ in range(500):
        address = rng.randrange(0, 1 << 18)
        cache.access(address, is_write=rng.random() < 0.5)
        assert cache.probe(address)
        cache.invalidate(address)
        assert not cache.probe(address)
        assert cache.access(address).miss
        cache.invalidate(address)
