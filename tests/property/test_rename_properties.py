"""Property-based tests for global rename state conservation."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.rename import GlobalRenameState, RenameStallError

arch_regs = st.integers(min_value=0, max_value=7)


class TestRenameConservation:
    @given(writes=st.lists(arch_regs, min_size=1, max_size=60))
    @settings(max_examples=60, deadline=None)
    def test_registers_are_conserved(self, writes):
        """allocated + free == total, under any allocate/release order."""
        state = GlobalRenameState(num_global=32, num_arch=8)
        live = []
        for arch in writes:
            try:
                reg, prior = state.allocate(arch, producer_seq=0,
                                            producer_slice=0)
            except RenameStallError:
                # Free list exhausted: release the oldest pending prior.
                if not live:
                    break
                state.release(live.pop(0))
                continue
            live.append(reg)
            if prior is not None:
                # Commit semantics: the displaced mapping is released.
                state.release(prior.global_reg)
                if prior.global_reg in live:
                    live.remove(prior.global_reg)
        # Conservation: every register is either free or live.
        assert state.free_count + len(live) == 32

    @given(writes=st.lists(arch_regs, min_size=1, max_size=20))
    @settings(max_examples=60, deadline=None)
    def test_lookup_always_returns_latest(self, writes):
        state = GlobalRenameState(num_global=64, num_arch=8)
        latest = {}
        for seq, arch in enumerate(writes):
            reg, prior = state.allocate(arch, producer_seq=seq,
                                        producer_slice=seq % 4)
            if prior is not None:
                state.release(prior.global_reg)
            latest[arch] = reg
        for arch, reg in latest.items():
            mapping = state.lookup(arch)
            assert mapping is not None
            assert mapping.global_reg == reg

    @given(writes=st.lists(arch_regs, min_size=2, max_size=20))
    @settings(max_examples=60, deadline=None)
    def test_rollback_restores_exact_rat(self, writes):
        """Allocating then rolling back youngest-first restores the RAT
        and the free list exactly."""
        state = GlobalRenameState(num_global=64, num_arch=8)
        # Commit an initial architectural state.
        for arch in range(8):
            state.allocate(arch, producer_seq=-1, producer_slice=0)
        snapshot = {arch: state.lookup(arch).global_reg for arch in range(8)}
        free_before = state.free_count

        log = []
        for seq, arch in enumerate(writes):
            reg, prior = state.allocate(arch, producer_seq=seq,
                                        producer_slice=0)
            log.append((arch, reg, prior))
        for arch, reg, prior in reversed(log):
            state.rollback(arch, reg, prior)

        assert state.free_count == free_before
        for arch in range(8):
            assert state.lookup(arch).global_reg == snapshot[arch]
