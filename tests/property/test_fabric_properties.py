"""Property tests: interleaved fabric allocate/release vs brute force.

The fabric's indexed structures (per-row free-run intervals, the
segment tree of row maxima, O(1) free counts) are exercised here
against a brute-force reference recomputed from raw tile ownership
after every operation: any drift in ``free_count``, ``max_free_run``,
or the chosen placements under arbitrary claim/release interleavings
is a corruption the streaming service would amplify over 100k events.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cloud.fabric import Fabric, TileKind

WIDTH, HEIGHT = 12, 4

#: (kind, arg): allocate a run of 1..4 slices, claim 1..3 banks near a
#: node, or release one of the owners created so far.
operations = st.lists(
    st.one_of(
        st.tuples(st.just("slices"), st.integers(1, 4)),
        st.tuples(st.just("banks"), st.integers(1, 3)),
        st.tuples(st.just("release"), st.integers(0, 60)),
    ),
    min_size=1, max_size=60,
)


def brute_force_free_counts(fabric):
    counts = {TileKind.SLICE: 0, TileKind.BANK: 0}
    for node in range(fabric.mesh.num_nodes):
        if fabric.is_free(node):
            counts[fabric.kind(node)] += 1
    return counts


def brute_force_max_run(fabric):
    """Longest horizontal run of free slice tiles, by raw scan."""
    best = 0
    for y in range(fabric.mesh.height):
        run = 0
        for x in range(fabric.mesh.width):
            node = fabric.mesh.node_at(x, y)
            if fabric.kind(node) is not TileKind.SLICE:
                continue  # bank columns neither break nor count
            if fabric.is_free(node):
                run += 1
                best = max(best, run)
            else:
                run = 0
    return best


def brute_force_first_fit(fabric, count):
    """Reference placement: lowest row, leftmost free run of count."""
    for y in range(fabric.mesh.height):
        run = []
        for x in range(fabric.mesh.width):
            node = fabric.mesh.node_at(x, y)
            if fabric.kind(node) is not TileKind.SLICE:
                continue
            if fabric.is_free(node):
                run.append(node)
                if len(run) == count:
                    return run
            else:
                run = []
    return None


class TestInterleavedAllocateRelease:
    @given(ops=operations)
    @settings(max_examples=60, deadline=None)
    def test_counts_and_runs_never_drift(self, ops):
        fabric = Fabric(WIDTH, HEIGHT)
        owners = []
        serial = 0
        for kind, arg in ops:
            if kind == "release" and owners:
                owner = owners.pop(arg % len(owners))
                freed = fabric.release(owner)
                assert all(fabric.is_free(n) for n in freed)
            elif kind == "slices":
                run = fabric.find_contiguous_slices(arg)
                assert run == brute_force_first_fit(fabric, arg)
                if run is not None:
                    owner = f"o{serial}"
                    serial += 1
                    fabric.claim(run, owner)
                    owners.append(owner)
            elif kind == "banks":
                if fabric.free_count(TileKind.BANK) >= arg:
                    anchor = fabric.mesh.node_at(0, 0)
                    banks = fabric.find_nearest_banks(anchor, arg)
                    owner = f"o{serial}"
                    serial += 1
                    fabric.claim(banks, owner)
                    owners.append(owner)
            expected = brute_force_free_counts(fabric)
            assert fabric.free_count(TileKind.SLICE) == \
                expected[TileKind.SLICE]
            assert fabric.free_count(TileKind.BANK) == \
                expected[TileKind.BANK]
            assert fabric.max_free_run() == brute_force_max_run(fabric)
            frag = fabric.slice_fragmentation()
            assert 0.0 <= frag <= 1.0

    @given(ops=operations)
    @settings(max_examples=30, deadline=None)
    def test_release_everything_restores_pristine(self, ops):
        fabric = Fabric(WIDTH, HEIGHT)
        pristine_slices = fabric.free_count(TileKind.SLICE)
        pristine_banks = fabric.free_count(TileKind.BANK)
        pristine_run = fabric.max_free_run()
        owners = []
        serial = 0
        for kind, arg in ops:
            if kind == "slices":
                run = fabric.find_contiguous_slices(arg)
                if run is not None:
                    fabric.claim(run, f"o{serial}")
                    owners.append(f"o{serial}")
                    serial += 1
            elif kind == "banks":
                if fabric.free_count(TileKind.BANK) >= arg:
                    banks = fabric.find_nearest_banks(0, arg)
                    fabric.claim(banks, f"o{serial}")
                    owners.append(f"o{serial}")
                    serial += 1
        for owner in owners:
            fabric.release(owner)
        assert fabric.free_count(TileKind.SLICE) == pristine_slices
        assert fabric.free_count(TileKind.BANK) == pristine_banks
        assert fabric.max_free_run() == pristine_run
        assert fabric.slice_fragmentation() == 0.0
