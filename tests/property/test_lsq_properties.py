"""Property-based tests for the unordered LSQ bank."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.lsq import DistributedLSQ, LSQBank

# A memory operation: (is_store, line, resolved_cycle)
mem_ops = st.lists(
    st.tuples(st.booleans(), st.integers(min_value=0, max_value=7),
              st.integers(min_value=0, max_value=100)),
    min_size=1, max_size=40,
)


class TestLSQBankProperties:
    @given(ops=mem_ops)
    @settings(max_examples=60, deadline=None)
    def test_forwarding_source_is_youngest_older_store(self, ops):
        bank = LSQBank(capacity=64)
        for seq, (is_store, line, resolved) in enumerate(ops):
            bank.insert(seq, is_store, line, resolved)
        load_seq = len(ops)
        for line in range(8):
            found = bank.find_forwarding_store(load_seq, line)
            expected = [
                seq for seq, (is_store, l, _) in enumerate(ops)
                if is_store and l == line
            ]
            if expected:
                assert found is not None and found.seq == max(expected)
            else:
                assert found is None

    @given(ops=mem_ops)
    @settings(max_examples=60, deadline=None)
    def test_violators_are_younger_loads_with_stale_sources(self, ops):
        bank = LSQBank(capacity=64)
        for seq, (is_store, line, resolved) in enumerate(ops):
            bank.insert(seq, is_store, line, resolved)
        store_seq = len(ops) // 2
        for line in range(8):
            violators = bank.check_store_commit(store_seq, line)
            for v in violators:
                assert not v.is_store
                assert v.seq > store_seq
                assert v.line == line
                assert v.forwarded_from is None or v.forwarded_from < store_seq

    @given(ops=mem_ops, cut=st.integers(min_value=0, max_value=40))
    @settings(max_examples=60, deadline=None)
    def test_squash_younger_is_exact(self, ops, cut):
        bank = LSQBank(capacity=64)
        for seq, (is_store, line, resolved) in enumerate(ops):
            bank.insert(seq, is_store, line, resolved)
        older = sum(1 for seq in range(len(ops)) if seq <= cut)
        removed = bank.squash_younger(cut)
        assert removed == len(ops) - older
        assert bank.occupancy() == older

    @given(ops=mem_ops)
    @settings(max_examples=40, deadline=None)
    def test_capacity_is_hard_unless_forced(self, ops):
        bank = LSQBank(capacity=4)
        inserted = 0
        for seq, (is_store, line, resolved) in enumerate(ops):
            if bank.insert(seq, is_store, line, resolved) is not None:
                inserted += 1
        assert inserted == min(4, len(ops))


class TestDistributedLSQProperties:
    @given(addresses=st.lists(st.integers(min_value=0, max_value=1 << 24),
                              min_size=1, max_size=60),
           slices=st.integers(min_value=1, max_value=8))
    @settings(max_examples=60, deadline=None)
    def test_home_is_line_stable_and_in_range(self, addresses, slices):
        lsq = DistributedLSQ(num_slices=slices)
        for address in addresses:
            home = lsq.home_slice(address)
            assert 0 <= home < slices
            # Every byte of the same line homes identically.
            assert lsq.home_slice((address // 64) * 64) == home
            assert lsq.home_slice((address // 64) * 64 + 63) == home
