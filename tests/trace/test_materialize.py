"""Tests for materialized trace arrays and the workload LRU."""

import pytest

from repro.obs import Observability
from repro.trace import materialize as mat
from repro.trace.generator import make_workload
from repro.trace.materialize import (
    FLAG_BRANCH, FLAG_LOAD, FLAG_STORE, FLAG_TAKEN,
    TraceArrays, get_workload, workload_key,
)


@pytest.fixture(autouse=True)
def fresh_lru():
    """Isolate every test from the process-global LRU."""
    mat.clear()
    mat.set_capacity(mat.DEFAULT_CAPACITY)
    yield
    mat.clear()
    mat.set_capacity(mat.DEFAULT_CAPACITY)


class TestTraceArrays:
    def test_columns_match_instructions(self):
        _, trace = make_workload("gcc", 800, seed=3)
        arrays = TraceArrays(trace)
        assert len(arrays) == len(trace)
        for i, inst in enumerate(trace):
            assert arrays.pcs[i] == inst.pc
            bits = arrays.flags[i]
            if inst.mem is not None:
                assert arrays.mem_addrs[i] == inst.mem.address
                assert bool(bits & (FLAG_LOAD | FLAG_STORE))
                assert bool(bits & FLAG_STORE) == inst.is_store
            else:
                assert arrays.mem_addrs[i] == -1
            assert bool(bits & FLAG_BRANCH) == inst.is_branch
            if inst.is_branch:
                assert bool(bits & FLAG_TAKEN) == inst.taken
            expected_target = (inst.target
                               if inst.target is not None else -1)
            assert arrays.targets[i] == expected_target

    def test_materialize_caches_on_trace(self):
        _, trace = make_workload("gcc", 300, seed=1)
        first = mat.materialize(trace)
        second = mat.materialize(trace)
        assert first is second

    def test_memo_keyed_on_content_not_length(self):
        """A trace whose instruction list was swapped in place (same
        length, different content) must not serve the stale columns."""
        _, trace_a = make_workload("gcc", 300, seed=1)
        _, trace_b = make_workload("gcc", 300, seed=2)
        stale = mat.materialize(trace_a)
        # Same length, different instructions - the classic aliasing
        # bug a length-only memo check cannot catch.
        trace_a._instructions = list(trace_b._instructions)
        rebuilt = mat.materialize(trace_a)
        assert rebuilt is not stale
        assert list(rebuilt.pcs) == list(mat.materialize(trace_b).pcs)

    def test_memo_rebuilds_on_element_replacement(self):
        _, trace = make_workload("gcc", 300, seed=1)
        arrays = mat.materialize(trace)
        from dataclasses import replace as dc_replace

        swapped = dc_replace(trace._instructions[5],
                             pc=trace[5].pc + 4096)
        trace._instructions[5] = swapped
        rebuilt = mat.materialize(trace)
        assert rebuilt is not arrays
        assert rebuilt.pcs[5] == trace[5].pc

    def test_token_stable_while_unmutated(self):
        _, trace = make_workload("gcc", 300, seed=1)
        assert mat.trace_token(trace) == mat.trace_token(trace)

    def test_from_buffers_wraps_without_copy(self):
        _, trace = make_workload("gcc", 200, seed=1)
        src = TraceArrays(trace)
        view = TraceArrays.from_buffers(
            src.length, src.pcs, src.mem_addrs, src.flags, src.targets)
        assert view.pcs is src.pcs
        assert len(view) == len(src)


class TestWorkloadLRU:
    def test_hit_and_miss_counters(self):
        get_workload("gcc", 400, 1)
        stats = mat.cache_stats()
        assert (stats["hits"], stats["misses"]) == (0, 1)
        get_workload("gcc", 400, 1)
        stats = mat.cache_stats()
        assert (stats["hits"], stats["misses"]) == (1, 1)
        get_workload("gcc", 400, 2)  # different seed: distinct entry
        assert mat.cache_stats()["misses"] == 2

    def test_identical_to_make_workload(self):
        cached_warmup, cached_trace = get_workload("mcf", 500, 7)
        fresh_warmup, fresh_trace = make_workload("mcf", 500, seed=7)
        assert cached_warmup == fresh_warmup
        assert len(cached_trace) == len(fresh_trace)
        for a, b in zip(cached_trace, fresh_trace):
            assert a.pc == b.pc
            assert (a.mem is None) == (b.mem is None)
            if a.mem is not None:
                assert a.mem.address == b.mem.address

    def test_returns_same_objects_on_hit(self):
        warmup_a, trace_a = get_workload("gcc", 400, 1)
        warmup_b, trace_b = get_workload("gcc", 400, 1)
        assert trace_a is trace_b
        assert warmup_a is warmup_b

    def test_eviction_at_capacity(self):
        mat.set_capacity(2)
        get_workload("gcc", 300, 1)
        get_workload("gcc", 300, 2)
        get_workload("gcc", 300, 3)  # evicts seed-1 entry
        stats = mat.cache_stats()
        assert stats["evictions"] == 1
        assert stats["size"] == 2
        get_workload("gcc", 300, 1)  # regenerated: a miss again
        assert mat.cache_stats()["misses"] == 4

    def test_lru_order_refreshes_on_hit(self):
        mat.set_capacity(2)
        get_workload("gcc", 300, 1)
        get_workload("gcc", 300, 2)
        get_workload("gcc", 300, 1)       # refresh seed 1
        get_workload("gcc", 300, 3)       # must evict seed 2, not 1
        get_workload("gcc", 300, 1)
        assert mat.cache_stats()["hits"] == 2

    def test_set_capacity_validates(self):
        with pytest.raises(ValueError):
            mat.set_capacity(0)

    def test_key_distinguishes_all_axes(self):
        keys = {
            workload_key("gcc", 400, 1),
            workload_key("gcc", 400, 2),
            workload_key("gcc", 500, 1),
            workload_key("mcf", 400, 1),
            workload_key("gcc", 400, 1, warmup_cold_multiplier=2.0),
        }
        assert len(keys) == 5

    def test_trace_arrives_materialized(self):
        _, trace = get_workload("gcc", 400, 1)
        assert getattr(trace, "_materialized", None) is not None


class TestObsIntegration:
    def test_gauges_track_counters(self):
        obs = Observability()
        mat.attach_obs(obs.scope("trace.workload_lru"))
        get_workload("gcc", 300, 1)
        get_workload("gcc", 300, 1)
        snap = obs.snapshot()
        assert snap["trace.workload_lru.hits"]["value"] == 1
        assert snap["trace.workload_lru.misses"]["value"] == 1
