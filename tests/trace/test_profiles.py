"""Tests for benchmark profiles."""

import pytest

from repro.trace.profiles import (
    PROFILES,
    BenchmarkProfile,
    all_benchmarks,
    get_profile,
    parsec_benchmarks,
    spec_benchmarks,
)


class TestProfileCatalog:
    def test_fifteen_workloads(self):
        """The paper's Figure 12 uses exactly 15 workloads."""
        assert len(all_benchmarks()) == 15

    def test_all_benchmarks_have_profiles(self):
        for name in all_benchmarks():
            assert get_profile(name).name == name

    def test_suite_partitions(self):
        spec = set(spec_benchmarks())
        parsec = set(parsec_benchmarks())
        assert spec & parsec == set()
        assert "apache" not in spec | parsec
        assert len(spec) == 11
        assert parsec == {"dedup", "swaptions", "ferret"}

    def test_unknown_benchmark_raises(self):
        with pytest.raises(KeyError, match="unknown benchmark"):
            get_profile("doom")

    def test_parsec_profiles_are_multithreaded_and_capped(self):
        for name in parsec_benchmarks():
            profile = get_profile(name)
            assert profile.is_multithreaded
            assert profile.thread_cap == 2.0  # paper Section 5.3

    def test_spec_profiles_are_single_threaded(self):
        for name in spec_benchmarks():
            assert not get_profile(name).is_multithreaded


class TestProfileBehaviour:
    def test_instruction_mix_sums_below_one(self):
        for profile in PROFILES.values():
            assert 0 < profile.frac_alu < 1

    def test_l2_miss_fraction_monotone_decreasing(self):
        profile = get_profile("gcc")
        sizes = [0, 64, 128, 256, 512, 1024, 4096, 8192]
        misses = [profile.l2_miss_fraction(c) for c in sizes]
        assert misses == sorted(misses, reverse=True)
        assert misses[0] == 1.0

    def test_l2_miss_fraction_floor(self):
        profile = get_profile("libquantum")
        # Streaming workload: even a huge cache misses at the floor.
        assert profile.l2_miss_fraction(1 << 20) >= profile.l2_floor

    def test_branch_predictability_in_range(self):
        for profile in PROFILES.values():
            assert 0.5 <= profile.branch_predictability() <= 1.0

    def test_omnetpp_most_cache_sensitive(self):
        """Paper Figure 13: omnetpp is extremely sensitive to cache."""
        omnetpp = get_profile("omnetpp")
        astar = get_profile("astar")
        span = lambda p: p.l2_miss_fraction(0) - p.l2_miss_fraction(8192)
        assert span(omnetpp) > span(astar)

    def test_with_overrides(self):
        base = get_profile("gcc")
        variant = base.with_overrides(ilp=base.ilp * 2)
        assert variant.ilp == base.ilp * 2
        assert variant.l1_mpki == base.l1_mpki

    def test_validation_rejects_bad_mix(self):
        with pytest.raises(ValueError):
            BenchmarkProfile(name="bad", suite="spec", frac_load=0.9,
                             frac_store=0.2)

    def test_validation_rejects_bad_ilp(self):
        with pytest.raises(ValueError):
            BenchmarkProfile(name="bad", suite="spec", ilp=0.5)

    def test_validation_rejects_bad_floor(self):
        with pytest.raises(ValueError):
            BenchmarkProfile(name="bad", suite="spec", l2_floor=1.5)
