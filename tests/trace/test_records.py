"""Tests for trace containers."""

import pytest

from repro.isa import Instruction, Opcode
from repro.trace.records import Trace, TraceMetadata


def _make_trace(n=10):
    insts = [
        Instruction(seq=i, pc=i, opcode=Opcode.ADD, srcs=(1,), dst=2)
        for i in range(n)
    ]
    return Trace(insts, TraceMetadata(benchmark="t", seed=0, length=n))


class TestTrace:
    def test_sequence_protocol(self):
        trace = _make_trace(5)
        assert len(trace) == 5
        assert trace[2].seq == 2
        assert [i.seq for i in trace] == [0, 1, 2, 3, 4]

    def test_metadata_length_must_match(self):
        insts = [Instruction(seq=0, pc=0, opcode=Opcode.ADD, srcs=(1,), dst=2)]
        with pytest.raises(ValueError):
            Trace(insts, TraceMetadata(benchmark="t", seed=0, length=5))

    def test_sequence_numbers_must_be_dense(self):
        insts = [
            Instruction(seq=5, pc=0, opcode=Opcode.ADD, srcs=(1,), dst=2)
        ]
        with pytest.raises(ValueError):
            Trace(insts, TraceMetadata(benchmark="t", seed=0, length=1))

    def test_op_class_counts(self):
        trace = _make_trace(4)
        counts = trace.op_class_counts()
        assert sum(counts.values()) == 4

    def test_fractions_on_alu_only_trace(self):
        trace = _make_trace(4)
        assert trace.mem_fraction() == 0.0
        assert trace.branch_fraction() == 0.0

    def test_slice_of_rebases(self):
        trace = _make_trace(10)
        window = trace.slice_of(4, 8)
        assert len(window) == 4
        assert [i.seq for i in window] == [0, 1, 2, 3]
        assert window[0].pc == 4  # original pc preserved
        assert window.metadata.benchmark == "t"
