"""Tests for the program-phase model."""

import pytest

from repro.trace.phases import (
    RECONFIG_CACHE_CYCLES,
    RECONFIG_SLICE_CYCLES,
    Phase,
    PhasedProfile,
    gcc_phases,
)
from repro.trace.profiles import get_profile


class TestGccPhases:
    def test_ten_phases(self):
        """Paper Section 5.10: gcc divided into 10 segments."""
        assert len(gcc_phases()) == 10

    def test_phases_vary(self):
        phases = gcc_phases()
        ilps = {p.profile.ilp for p in phases}
        working_sets = {p.profile.l2_ws_kb for p in phases}
        assert len(ilps) > 3
        assert len(working_sets) > 3

    def test_phase_names_derived_from_gcc(self):
        for phase in gcc_phases():
            assert phase.profile.name.startswith("gcc.phase")

    def test_total_instructions(self):
        phased = gcc_phases(instructions_per_phase=1000)
        assert phased.total_instructions == 10_000


class TestReconfigurationCost:
    def test_no_change_costs_nothing(self):
        phased = gcc_phases()
        configs = [(256.0, 2)] * 10
        assert phased.reconfiguration_cost(configs) == 0

    def test_cache_change_dominates(self):
        phased = gcc_phases()
        configs = [(256.0, 2)] * 9 + [(512.0, 2)]
        assert phased.reconfiguration_cost(configs) == RECONFIG_CACHE_CYCLES

    def test_slice_only_change_is_cheap(self):
        phased = gcc_phases()
        configs = [(256.0, 2)] * 9 + [(256.0, 4)]
        assert phased.reconfiguration_cost(configs) == RECONFIG_SLICE_CYCLES

    def test_paper_costs(self):
        """Paper Section 5.10: 10 000 vs 500 cycles."""
        assert RECONFIG_CACHE_CYCLES == 10_000
        assert RECONFIG_SLICE_CYCLES == 500

    def test_wrong_schedule_length_rejected(self):
        with pytest.raises(ValueError):
            gcc_phases().reconfiguration_cost([(256.0, 2)] * 3)


class TestPhaseValidation:
    def test_phase_indices_must_be_ordered(self):
        profile = get_profile("gcc")
        phases = [
            Phase(index=1, profile=profile, instructions=10),
            Phase(index=0, profile=profile, instructions=10),
        ]
        with pytest.raises(ValueError):
            PhasedProfile("x", phases)

    def test_empty_phases_rejected(self):
        with pytest.raises(ValueError):
            PhasedProfile("x", [])

    def test_zero_instruction_phase_rejected(self):
        with pytest.raises(ValueError):
            Phase(index=0, profile=get_profile("gcc"), instructions=0)
