"""Tests for the synthetic trace generator."""

import pytest

from repro.isa import OpClass
from repro.trace.generator import (
    SyntheticTraceGenerator,
    generate_trace,
    make_workload,
)
from repro.trace.profiles import get_profile


class TestDeterminism:
    def test_same_seed_same_trace(self):
        a = generate_trace("gcc", 500, seed=7)
        b = generate_trace("gcc", 500, seed=7)
        assert [i.pc for i in a] == [i.pc for i in b]
        assert [i.opcode for i in a] == [i.opcode for i in b]

    def test_different_seed_different_trace(self):
        a = generate_trace("gcc", 500, seed=1)
        b = generate_trace("gcc", 500, seed=2)
        assert [i.pc for i in a] != [i.pc for i in b]


class TestStatisticalTargets:
    def test_branch_fraction_near_profile(self):
        profile = get_profile("gcc")
        trace = generate_trace("gcc", 8000, seed=3)
        assert abs(trace.branch_fraction() - profile.frac_branch) < 0.05

    def test_mem_fraction_near_profile(self):
        profile = get_profile("gcc")
        trace = generate_trace("gcc", 8000, seed=3)
        target = profile.frac_load + profile.frac_store
        assert abs(trace.mem_fraction() - target) < 0.05

    def test_memory_instructions_have_addresses(self):
        trace = generate_trace("mcf", 2000, seed=1)
        for inst in trace:
            if inst.is_mem:
                assert inst.mem is not None
                assert inst.mem.address > 0

    def test_taken_branches_have_targets(self):
        trace = generate_trace("sjeng", 2000, seed=1)
        for inst in trace:
            if inst.is_branch and inst.taken:
                assert inst.target is not None

    def test_control_flow_follows_branches(self):
        """The instruction after a taken branch starts its target block."""
        trace = generate_trace("gcc", 2000, seed=5)
        for prev, cur in zip(trace, list(trace)[1:]):
            if prev.is_branch and prev.taken:
                assert cur.pc == prev.target
            elif not prev.is_branch:
                assert cur.pc == prev.pc + 1 or cur.pc != prev.pc


class TestColdReuseModel:
    def test_warmup_addresses_are_line_aligned(self):
        gen = SyntheticTraceGenerator(get_profile("gcc"), seed=1)
        addrs = gen.warmup_addresses(0.5)
        assert addrs
        assert all(a % 64 == 0 for a in addrs)

    def test_warmup_reuses_lines(self):
        """The reuse model must actually revisit lines, not just stream."""
        gen = SyntheticTraceGenerator(get_profile("gcc"), seed=1)
        addrs = gen.warmup_addresses(4.0)
        assert len(set(addrs)) < len(addrs)

    def test_streaming_profile_reuses_little(self):
        """libquantum (floor 0.92) is nearly all compulsory misses."""
        gen = SyntheticTraceGenerator(get_profile("libquantum"), seed=1)
        addrs = gen.warmup_addresses(0.01)
        distinct_fraction = len(set(addrs)) / len(addrs)
        assert distinct_fraction > 0.85

    def test_make_workload_shares_history(self):
        warmup, trace = make_workload("gcc", 1000, seed=2)
        warm_lines = {a // 64 for a in warmup}
        trace_cold_lines = {
            i.mem.address // 64
            for i in trace
            if i.mem is not None and i.mem.address // 64 in warm_lines
        }
        # The timed region revisits lines the warmup touched.
        assert trace_cold_lines

    def test_rejects_tiny_cfg(self):
        with pytest.raises(ValueError):
            SyntheticTraceGenerator(get_profile("gcc"), num_blocks=1)

    def test_rejects_empty_trace(self):
        gen = SyntheticTraceGenerator(get_profile("gcc"))
        with pytest.raises(ValueError):
            gen.generate(0)

    def test_rejects_negative_warmup(self):
        gen = SyntheticTraceGenerator(get_profile("gcc"))
        with pytest.raises(ValueError):
            gen.warmup_addresses(-1.0)
