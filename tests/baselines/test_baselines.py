"""Tests for the static and heterogeneous baselines."""

import pytest

from repro.baselines.heterogeneous import (
    BIG_CORE,
    SMALL_CORE,
    CoreType,
    HeterogeneousDatacenter,
)
from repro.baselines.static import StaticFixedArchitecture
from repro.economics.optimizer import UtilityOptimizer
from repro.economics.utility import STANDARD_UTILITIES, UTILITY1


class TestStaticFixed:
    def test_utility_matches_optimizer_cell(self):
        arch = StaticFixedArchitecture(cache_kb=256, slices=2)
        optimizer = UtilityOptimizer()
        from repro.economics.market import MARKET2
        assert arch.utility_for("gcc", UTILITY1) == pytest.approx(
            optimizer.utility_at("gcc", UTILITY1, MARKET2, 256, 2)
        )

    def test_best_across_is_on_grid(self):
        best = StaticFixedArchitecture.best_across(
            ["gcc", "bzip", "hmmer"], STANDARD_UTILITIES
        )
        optimizer = UtilityOptimizer()
        assert best.cache_kb in optimizer.cache_grid
        assert best.slices in optimizer.slice_grid

    def test_best_across_maximises_gme(self):
        import math
        benchmarks = ["gcc", "hmmer"]
        best = StaticFixedArchitecture.best_across(
            benchmarks, STANDARD_UTILITIES
        )
        rival = StaticFixedArchitecture(cache_kb=8192, slices=8)

        def gme(arch):
            values = [
                arch.utility_for(b, u)
                for b in benchmarks for u in STANDARD_UTILITIES
            ]
            return math.prod(values) ** (1 / len(values))

        assert gme(best) >= gme(rival)

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            StaticFixedArchitecture(cache_kb=-1, slices=1)


class TestHeterogeneousDatacenter:
    def test_paper_core_design_points(self):
        """Section 5.9: big = 3 Slices + 256 KB, small = 1 Slice + 0 KB."""
        assert (BIG_CORE.slices, BIG_CORE.cache_kb) == (3, 256.0)
        assert (SMALL_CORE.slices, SMALL_CORE.cache_kb) == (1, 0.0)

    def test_all_small_vs_all_big(self):
        dc = HeterogeneousDatacenter("hmmer", "gobmk")
        all_small = dc.evaluate(big_fraction=0.0, app_a_fraction=1.0)
        all_big = dc.evaluate(big_fraction=1.0, app_a_fraction=1.0)
        # hmmer (cache/slice-insensitive) prefers small cores per area.
        assert all_small.utility_per_area > all_big.utility_per_area

    def test_optimal_mix_moves_with_app_mix(self):
        """Figure 17: no fixed mixture serves every workload mix."""
        dc = HeterogeneousDatacenter("hmmer", "gobmk")
        grid = [i / 10 for i in range(11)]
        optima = {
            frac: dc.optimal_big_fraction(frac, grid)
            for frac in (0.0, 0.5, 1.0)
        }
        assert len(set(optima.values())) >= 2

    def test_assignment_prefers_big_core_for_big_core_lover(self):
        dc = HeterogeneousDatacenter("hmmer", "gobmk")
        point = dc.evaluate(big_fraction=0.5, app_a_fraction=0.5)
        assignments = dict(point.assignment)
        assert assignments.get("gobmk") == "big"

    def test_sweep_shape(self):
        dc = HeterogeneousDatacenter("hmmer", "gobmk", total_cores=10)
        surfaces = dc.sweep([0.0, 0.5, 1.0], [0.0, 1.0])
        assert set(surfaces) == {0.0, 1.0}
        assert len(surfaces[0.0]) == 3

    def test_validation(self):
        dc = HeterogeneousDatacenter("hmmer", "gobmk")
        with pytest.raises(ValueError):
            dc.evaluate(big_fraction=1.5, app_a_fraction=0.5)
        with pytest.raises(ValueError):
            HeterogeneousDatacenter("a", "b", total_cores=0)
