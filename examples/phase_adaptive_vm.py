"""A phase-adaptive VM: reconfiguring a VCore as gcc's phases change.

Reproduces the Table 7 scenario as a running system rather than an
offline analysis: a VM executes gcc's 10 phases; before each phase its
meta-program re-optimises the ``performance^3/area`` metric and, when
worthwhile, asks the hypervisor to resize the VCore - paying 10 000
cycles for cache changes and 500 cycles for Slice-only changes.

Run with::

    python examples/phase_adaptive_vm.py
"""

from repro.area import AreaModel
from repro.cloud import Fabric, Hypervisor
from repro.cloud.vm import VCoreSpec, VMSpec
from repro.economics.efficiency import PERF3_PER_AREA
from repro.perfmodel import AnalyticModel, CACHE_GRID_KB, SLICE_GRID
from repro.trace.phases import gcc_phases


def best_config_for(profile, model, area_model):
    """Exhaustive perf^3/area search for one phase profile."""
    return max(
        ((c, s) for c in CACHE_GRID_KB for s in SLICE_GRID),
        key=lambda cfg: PERF3_PER_AREA.value(
            model.performance(profile, cfg[0], cfg[1]),
            area_model.vcore_area(cfg[0], cfg[1], include_uncore=True),
        ),
    )


def main() -> None:
    model = AnalyticModel()
    area_model = AreaModel()
    hypervisor = Hypervisor(Fabric(width=32, height=16))

    phased = gcc_phases(instructions_per_phase=2_000_000)
    first_cfg = best_config_for(phased.phases[0].profile, model, area_model)
    vm = hypervisor.place(
        VMSpec.uniform(1, slices_per_vcore=first_cfg[1],
                       cache_kb_per_vcore=first_cfg[0])
    )
    assert vm is not None

    print("phase  config (cache, slices)   perf (IPC)  reconfig cycles")
    total_cycles = 0.0
    total_reconfig = 0
    current = first_cfg
    for phase in phased:
        target = best_config_for(phase.profile, model, area_model)
        reconfig_cycles = 0
        if target != current:
            cost = hypervisor.resize_vcore(
                vm.vm_id, 0,
                VCoreSpec(num_slices=target[1], l2_cache_kb=target[0]),
            )
            reconfig_cycles = cost.cycles
            current = target
        perf = model.performance(phase.profile, current[0], current[1])
        phase_cycles = phase.instructions / perf
        total_cycles += phase_cycles + reconfig_cycles
        total_reconfig += reconfig_cycles
        print(f"{phase.index + 1:5}  ({int(current[0]):5d} KB, "
              f"{current[1]} Slices)      {perf:8.3f}  {reconfig_cycles:10d}")

    # Static comparison: the best single configuration for all phases.
    static = max(
        ((c, s) for c in CACHE_GRID_KB for s in SLICE_GRID),
        key=lambda cfg: sum(
            PERF3_PER_AREA.value(
                model.performance(p.profile, cfg[0], cfg[1]),
                area_model.vcore_area(cfg[0], cfg[1],
                                      include_uncore=True),
            )
            for p in phased
        ),
    )
    static_cycles = sum(
        p.instructions / model.performance(p.profile, static[0], static[1])
        for p in phased
    )
    print(f"\ndynamic: {total_cycles:,.0f} cycles "
          f"({total_reconfig:,} spent reconfiguring)")
    print(f"static {static}: {static_cycles:,.0f} cycles")
    print(f"dynamic speedup: {static_cycles / total_cycles:.3f}x")
    print(f"hypervisor stats: {hypervisor.stats.reconfigurations} "
          f"reconfigurations")


if __name__ == "__main__":
    main()
