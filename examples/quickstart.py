"""Quickstart: model a VCore, pick a configuration, and simulate it.

Walks the three layers of the library in ~40 lines:

1. the analytic performance model ``P(c, s)``;
2. the economic optimiser (what should a customer buy?);
3. the cycle-level simulator (run a synthetic trace on that VCore).

Run with::

    python examples/quickstart.py
"""

from repro import (
    MARKET2,
    UTILITY2,
    AnalyticModel,
    UtilityOptimizer,
    make_workload,
    simulate,
)


def main() -> None:
    benchmark = "gcc"

    # --- 1. performance model: how fast is gcc on different VCores? ---
    model = AnalyticModel()
    print(f"P(c, s) for {benchmark}:")
    for cache_kb, slices in ((128, 1), (128, 4), (1024, 4), (1024, 8)):
        perf = model.performance(benchmark, cache_kb, slices)
        print(f"  {slices} Slices + {cache_kb:5d} KB L2 -> {perf:.3f} IPC")

    # --- 2. economics: what should a Utility2 customer buy? ---
    optimizer = UtilityOptimizer(model=model)
    choice = optimizer.best(benchmark, UTILITY2, MARKET2)
    print(
        f"\nA {UTILITY2.name} customer with budget "
        f"{optimizer.budget:.0f} buys {choice.vcores:.2f} VCores of "
        f"({choice.slices} Slices, {choice.cache_kb:.0f} KB L2) "
        f"for utility {choice.utility:.3f}"
    )

    # --- 3. simulator: run that configuration cycle by cycle ---
    warmup, trace = make_workload(benchmark, length=3000, seed=42)
    result = simulate(
        trace,
        num_slices=choice.slices,
        l2_cache_kb=choice.cache_kb,
        warmup_addresses=warmup,
    )
    stats = result.stats
    print(
        f"\nSSim: {stats.committed} instructions in {stats.cycles} cycles "
        f"(IPC {stats.ipc:.3f}, branch accuracy "
        f"{stats.branch_accuracy:.3f}, L2 miss rate "
        f"{stats.l2_miss_rate:.3f})"
    )


if __name__ == "__main__":
    main()
