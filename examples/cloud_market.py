"""An IaaS provider running the Sharing Architecture market.

The scenario the paper's introduction motivates: a provider with one
fabric serves a mixed population of customers - web servers that want
throughput, OLDI services that want single-stream latency, batch jobs in
between.  Each customer's meta-program picks a configuration at current
prices; the scheduler places VMs and adjusts prices with demand.

The same population is then forced onto a static fixed multicore and the
total achieved utility (the market-efficiency quantity of paper Section
2.2) is compared - the per-customer view of Figure 15.

Run with::

    python examples/cloud_market.py
"""

import random

from repro import MARKET2, UTILITY1, UTILITY2, UTILITY3, all_benchmarks
from repro.baselines import StaticFixedArchitecture
from repro.cloud import CloudScheduler, CustomerRequest, Fabric, Hypervisor
from repro.economics import STANDARD_UTILITIES, UtilityOptimizer


def build_customer_population(seed: int = 7, count: int = 24):
    """A mixed customer population over the paper's 15 workloads."""
    rng = random.Random(seed)
    utilities = [UTILITY1, UTILITY1, UTILITY2, UTILITY3]  # skew: throughput
    return [
        CustomerRequest(
            benchmark=rng.choice(all_benchmarks()),
            utility=rng.choice(utilities),
            budget=rng.choice([12.0, 24.0, 48.0]),
        )
        for _ in range(count)
    ]


def main() -> None:
    customers = build_customer_population()

    # --- the Sharing Architecture provider ---
    scheduler = CloudScheduler(
        hypervisor=Hypervisor(Fabric(width=32, height=16))
    )
    placements = scheduler.submit_all(customers)
    print("=== Sharing Architecture provider ===")
    print(f"placed {len(placements)}/{len(customers)} customers, "
          f"fabric utilisation {scheduler.utilization():.0%}")
    print(f"total utility  : {scheduler.total_utility():10.2f}")
    print(f"total revenue  : {scheduler.total_revenue():10.2f}")
    print(f"final prices   : Slice {scheduler.slice_price:.2f}, "
          f"bank {scheduler.bank_price:.2f}")

    shapes = {}
    for p in placements:
        key = (int(p.cache_kb), p.slices)
        shapes[key] = shapes.get(key, 0) + 1
    print("VCore shapes sold:")
    for (cache_kb, slices), n in sorted(shapes.items()):
        print(f"  {slices} Slices + {cache_kb:5d} KB  x{n}")

    # --- the static fixed competitor ---
    static = StaticFixedArchitecture.best_across(
        all_benchmarks(), STANDARD_UTILITIES
    )
    optimizer = UtilityOptimizer()
    static_utility = sum(
        static.utility_for(c.benchmark, c.utility,
                           optimizer=UtilityOptimizer(budget=c.budget))
        for c in customers
    )
    sharing_utility = sum(
        UtilityOptimizer(budget=c.budget)
        .best(c.benchmark, c.utility, MARKET2).utility
        for c in customers
    )
    print("\n=== vs the best static fixed multicore ===")
    print(f"static config  : {static.slices} Slices + "
          f"{static.cache_kb:.0f} KB for everyone")
    print(f"static utility : {static_utility:10.2f}")
    print(f"sharing utility: {sharing_utility:10.2f}")
    print(f"market-efficiency gain: "
          f"{sharing_utility / static_utility:.2f}x")


if __name__ == "__main__":
    main()
