"""An auto-tuned customer without a performance model.

Paper Section 4: customers who cannot model their application "could
utilize an auto-tuner" that "would slowly search the configuration space
by varying the VM instance configuration" using heartbeat feedback.

Here the heartbeat is a *real measurement*: each probed configuration is
run on the cycle-level simulator with a short trace, and the tuner hill-
climbs on measured instructions-per-cycle-per-cost.  The result is
compared against the model-based meta-program's choice.

Run with::

    python examples/autotuned_customer.py   (takes ~1 minute: every
                                             probe is a timed simulation)
"""

from repro import MARKET2, UTILITY1, make_workload, simulate
from repro.cloud import AutoTuner, MetaProgram, PriceQuote


def main() -> None:
    benchmark = "omnetpp"  # cache-hungry: the tuner must discover that
    budget = 24.0
    warmup, trace = make_workload(benchmark, length=1500, seed=11)

    probes = []

    def heartbeat(cache_kb: float, slices: int) -> float:
        """Measured utility-per-budget of one configuration."""
        result = simulate(trace, num_slices=slices, l2_cache_kb=cache_kb,
                          warmup_addresses=warmup)
        vcores = MARKET2.vcores_affordable(budget, cache_kb, slices)
        utility = UTILITY1.value(result.stats.ipc, vcores)
        probes.append((cache_kb, slices, result.stats.ipc))
        return utility

    tuner = AutoTuner(heartbeat, max_evaluations=14)
    result = tuner.tune(start_cache_kb=128, start_slices=1)

    print(f"auto-tuner probed {result.evaluations} configurations:")
    for cache_kb, slices, ipc in probes:
        print(f"  ({int(cache_kb):5d} KB, {slices} Slices) "
              f"-> measured IPC {ipc:.3f}")
    print(f"\ntuned choice : ({int(result.best_cache_kb)} KB, "
          f"{result.best_slices} Slices), utility {result.best_score:.3f}")

    meta = MetaProgram(benchmark, UTILITY1, budget=budget)
    decision = meta.decide(PriceQuote(slice_price=2.0, bank_price=1.0))
    print(f"model choice : ({int(decision.cache_kb)} KB, "
          f"{decision.slices} Slices)")
    print("\nWith a handful of probes the tuner finds a good cache-heavy "
          "configuration for this\ncache-hungry workload; a larger probe "
          "budget (or a model-based meta-program)\nreaches the global "
          "optimum - exactly the trade-off paper Section 4 describes.")


if __name__ == "__main__":
    main()
