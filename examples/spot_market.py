"""A fine-grain spot market clearing Slices and Cache Banks.

Paper Section 2.3 proposes auctioning "all resources down to the ALU,
KB of cache, fetch unit".  This example runs the tatonnement spot market
over a mixed customer population under three supply regimes - balanced,
Slice-starved, and cache-starved - and shows the clearing prices moving
exactly the way the paper's Markets 1-3 sensitivity study assumes
(Section 5.7): scarcity of a resource raises its price and pushes
customers toward configurations heavy in the other resource.

Run with::

    python examples/spot_market.py
"""

import random

from repro.economics.auction import Bidder, SpotMarket
from repro.economics.utility import UTILITY1, UTILITY2, UTILITY3
from repro.trace import all_benchmarks


def build_bidders(count: int = 18, seed: int = 5):
    rng = random.Random(seed)
    return [
        Bidder(
            name=f"customer{i}",
            benchmark=rng.choice(all_benchmarks()),
            utility=rng.choice([UTILITY1, UTILITY1, UTILITY2, UTILITY3]),
            budget=rng.choice([12.0, 24.0, 48.0]),
        )
        for i in range(count)
    ]


def describe(label: str, result) -> None:
    print(f"== {label} ==")
    status = "cleared" if result.converged else "did not clear"
    if result.rationed:
        status += " (rationed)"
    print(f"  {status} in {result.rounds} rounds")
    print(f"  prices  : Slice {result.slice_price:6.2f}, "
          f"bank {result.bank_price:6.2f}")
    print(f"  demand  : {result.slice_demand:6.1f}/{result.slice_supply:.0f} "
          f"Slices, {result.bank_demand:6.1f}/{result.bank_supply:.0f} banks")
    print(f"  welfare : {result.total_welfare:8.2f}   "
          f"revenue: {result.provider_revenue:8.2f}")
    mean_slices = sum(a.slices for a in result.allocations) / len(
        result.allocations
    )
    mean_cache = sum(a.cache_kb for a in result.allocations) / len(
        result.allocations
    )
    print(f"  average bundle: {mean_slices:.1f} Slices, "
          f"{mean_cache:.0f} KB cache\n")


def main() -> None:
    bidders = build_bidders()

    balanced = SpotMarket(slice_supply=80, bank_supply=160).clear(bidders)
    describe("balanced supply", balanced)

    slice_starved = SpotMarket(slice_supply=25, bank_supply=300).clear(bidders)
    describe("Slice-starved supply", slice_starved)

    cache_starved = SpotMarket(slice_supply=200, bank_supply=40).clear(bidders)
    describe("cache-starved supply", cache_starved)

    print("Scarcity moves prices, and prices move the purchased bundles -")
    print("the demand-sensitivity the paper's Market1/Market3 study models.")
    assert slice_starved.slice_price > balanced.slice_price
    assert cache_starved.bank_price > balanced.bank_price


if __name__ == "__main__":
    main()
