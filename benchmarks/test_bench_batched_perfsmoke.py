"""Perf smoke: scalar vs batched simulator backend on the Fig 12 sweep.

The batched structure-of-arrays backend's headline claim, asserted end
to end on the exact Figure 12 configuration sweep (every Slice count at
the 128 KB baseline, one gcc trace):

* a wall-clock speedup of ``BatchedSimulator`` over per-config scalar
  ``simulate()`` calls of at least :data:`MIN_SPEEDUP`, and
* **bit-identical** ``SimStats`` from both paths for every grid point
  (the broader equivalence surface lives in
  ``tests/core/test_batched_equivalence``).

Honest numbers: pure-CPython lockstep batching measures ~4.5-6x on this
sweep on the development machine (the scalar path spends its time in
the same interpreter, so there is no vectorization cliff to jump off -
the win is column reuse, flat arrays and event-driven wakeup).  The
threshold is set at 3x so a CI-runner slowdown doesn't flake the job
while a real regression (losing the event-driven issue path, say)
still fails loudly.  Timing JSONs land in ``REPRO_PERF_SMOKE_DIR``
(default current directory) for the CI artifact upload.
"""

import json
import os
import time

from repro.core.batched import BatchedSimulator
from repro.core.simulator import simulate
from repro.trace.materialize import get_workload

BENCHMARK = "gcc"
LENGTH = 6000
SEED = 7

#: The exact Figure 12 sweep: Slice scaling at the 128 KB baseline.
FIG12_GRID = tuple((ns, 128.0) for ns in (1, 2, 3, 4, 5, 6, 7, 8))

#: Measured runs land around 4.5-6x (see module docstring); 3x leaves
#: CI-noise margin without being vacuous for a pure-CPython backend.
MIN_SPEEDUP = 3.0


def _dump(name, payload):
    out_dir = os.environ.get("REPRO_PERF_SMOKE_DIR", ".")
    os.makedirs(out_dir, exist_ok=True)
    path = os.path.join(out_dir, name)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2)
    return path


def test_bench_batched_perf_smoke():
    warmup, trace = get_workload(BENCHMARK, LENGTH, SEED)

    # Warm both paths (imports, workload memo, trace columns) so the
    # timed section compares steady-state simulation, not first-touch.
    simulate(trace, num_slices=1, l2_cache_kb=128.0,
             warmup_addresses=warmup)
    BatchedSimulator(trace, [FIG12_GRID[0]],
                     warmup_addresses=[warmup]).run()

    start = time.perf_counter()
    scalar = [
        simulate(trace, num_slices=ns, l2_cache_kb=kb,
                 warmup_addresses=warmup)
        for ns, kb in FIG12_GRID
    ]
    scalar_s = time.perf_counter() - start

    start = time.perf_counter()
    batched = BatchedSimulator(trace, list(FIG12_GRID),
                               warmup_addresses=[warmup]).run()
    batched_s = time.perf_counter() - start
    speedup = scalar_s / batched_s

    common = {
        "benchmark": BENCHMARK,
        "trace_length": LENGTH,
        "trace_seed": SEED,
        "grid": [[ns, kb] for ns, kb in FIG12_GRID],
    }
    scalar_path = _dump("batched_perf_smoke_scalar.json", {
        **common, "backend": "python", "wall_s": scalar_s,
        "cycles": [r.stats.cycles for r in scalar],
    })
    _dump("batched_perf_smoke_batched.json", {
        **common, "backend": "batched", "wall_s": batched_s,
        "speedup_vs_scalar": speedup,
        "cycles": [r.stats.cycles for r in batched],
    })
    print(f"\nbatched-perf-smoke: scalar {scalar_s:.2f}s, batched "
          f"{batched_s:.3f}s -> {speedup:.1f}x on the "
          f"{len(FIG12_GRID)}-config Fig 12 sweep "
          f"(timings next to {scalar_path})")

    # Bit-identity before speed: a fast wrong backend is worthless.
    for (ns, kb), want, got in zip(FIG12_GRID, scalar, batched):
        assert want == got, (
            f"batched diverged from scalar at ns={ns} kb={kb:g}"
        )
    assert speedup >= MIN_SPEEDUP, (
        f"batched sweep only {speedup:.1f}x faster than scalar "
        f"(scalar {scalar_s:.2f}s, batched {batched_s:.3f}s)"
    )
