"""Perf smoke: scalar vs vectorized market kernel on the Fig 15 sweep.

The ISSUE's headline claim for the vectorized economics, asserted end
to end:

* >= 10x wall-clock speedup of ``backend="numpy"`` over
  ``backend="python"`` on the Figure 15/16 pairwise-efficiency sweep,
  and
* identical summaries from both backends (bit-identical reference
  configs are enforced by ``tests/economics/test_backend_equivalence``).

The paper's population (15 benchmarks x 3 utilities = 45 customers) is
small enough that interpreter overhead hides in the noise, so the sweep
is scaled the way a datacenter would: each benchmark is replicated with
jittered profile parameters (names ``gcc~i``), giving 360 customers and
64k customer pairs.  Timing JSONs land in ``REPRO_PERF_SMOKE_DIR``
(default current directory) for the CI artifact upload.
"""

import json
import os
import random
import time

import pytest

pytest.importorskip("numpy")

from repro.economics.comparison import MarketEfficiencyComparison
from repro.trace.profiles import PROFILES, get_profile

#: Jittered copies of each base profile: 15 * 8 benchmarks x 3
#: utilities = 360 customers, 64620 pairs.
COPIES = 8
SEED = 0

#: ISSUE acceptance threshold.  Measured runs land around 30-45x at
#: this population size, so 10x leaves ample noise margin without
#: being vacuous.
MIN_SPEEDUP = 10.0
#: Both backends mirror the same arithmetic; summaries agree to ulps.
REL_TOL = 1e-9


def _population(copies, seed):
    rng = random.Random(seed)
    out = []
    for base in sorted(PROFILES):
        prof = get_profile(base)
        for i in range(copies):
            out.append(prof.with_overrides(
                name=f"{base}~{i}",
                ilp=prof.ilp * rng.uniform(0.9, 1.1),
                l1_mpki=prof.l1_mpki * rng.uniform(0.9, 1.1),
            ))
    return out


def _timed(profiles, backend):
    start = time.perf_counter()
    comparison = MarketEfficiencyComparison(profiles, backend=backend)
    fig15 = comparison.summary_vs_static()
    fig16 = comparison.summary_vs_heterogeneous()
    return fig15, fig16, time.perf_counter() - start


def _dump(name, payload):
    out_dir = os.environ.get("REPRO_PERF_SMOKE_DIR", ".")
    os.makedirs(out_dir, exist_ok=True)
    path = os.path.join(out_dir, name)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2)
    return path


def test_bench_market_perf_smoke():
    profiles = _population(COPIES, SEED)

    py15, py16, python_s = _timed(profiles, "python")
    np15, np16, numpy_s = _timed(profiles, "numpy")
    speedup = python_s / numpy_s

    common = {
        "customers": len(profiles) * 3,
        "pairs": py15["pairs"],
        "copies": COPIES,
        "seed": SEED,
    }
    python_path = _dump("market_perf_smoke_python.json", {
        **common, "backend": "python", "wall_s": python_s,
        "fig15": py15, "fig16": py16,
    })
    _dump("market_perf_smoke_numpy.json", {
        **common, "backend": "numpy", "wall_s": numpy_s,
        "speedup_vs_python": speedup,
        "fig15": np15, "fig16": np16,
    })
    print(f"\nmarket-perf-smoke: python {python_s:.2f}s, numpy "
          f"{numpy_s:.3f}s -> {speedup:.1f}x on {py15['pairs']} pairs "
          f"(timings next to {python_path})")

    assert speedup >= MIN_SPEEDUP, (
        f"numpy sweep only {speedup:.1f}x faster than python "
        f"(python {python_s:.2f}s, numpy {numpy_s:.3f}s)"
    )
    for py, np_ in ((py15, np15), (py16, np16)):
        assert py["pairs"] == np_["pairs"]
        for key in ("min", "median", "mean", "max"):
            assert np_[key] == pytest.approx(py[key], rel=REL_TOL)
