"""Ablation: second operand network (paper Section 5.1).

The paper found that a second operand network buys only ~1% across its
applications; this benchmark drives the cycle-level simulator with link
contention on and measures the same experiment.
"""

from repro.experiments import ablation_son


def test_bench_ablation_operand_network(benchmark):
    results = benchmark.pedantic(
        ablation_son.run,
        kwargs={"benchmarks": ("gcc",), "num_slices": 4,
                "trace_length": 2000},
        rounds=1, iterations=1,
    )
    row = results["gcc"]

    # A second network can only help.
    assert row["cycles_2net"] <= row["cycles_1net"]

    # Paper: the improvement is small (~1%); allow a generous band but
    # assert it stays marginal - a single operand network suffices.
    assert row["improvement"] < 0.10
