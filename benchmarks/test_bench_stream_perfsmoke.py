"""Perf smoke: the streaming allocation service at datacenter scale.

The ISSUE's headline claim for the event-driven redesign, asserted end
to end: one :class:`~repro.cloud.service.AllocationService` process
sustains **100k+ submit/resize/depart events** against a rack-sized
fabric with periodic warm-started repricing, at a pinned throughput
floor and per-event p99 latency ceiling.

The thresholds are deliberately conservative (measured runs land at
4-5x the floor on a developer container) so the smoke catches
regressions - an accidentally quadratic roster walk, unbounded
memoization, compaction thrashing - without flaking on slow CI
runners.  Timing JSONs land in ``REPRO_PERF_SMOKE_DIR`` (default
current directory) for the CI artifact upload, alongside the
market-perf-smoke timings.
"""

import json
import os
import time

import pytest

pytest.importorskip("numpy")

from repro.experiments.datacenter_stream import build_service, drive_stream

#: ISSUE acceptance: >= 100k events through one service process.
NUM_EVENTS = 100_000
SEED = 7
#: Reprice every N events: frequent enough that prices track the
#: churning population (and the warm-start path is actually hot),
#: sparse enough that the smoke measures the event path too.
REPRICE_EVERY = 250

#: Measured ~1600 ev/s on a developer container; 300 leaves >5x noise
#: margin without letting a quadratic slip through (that lands <50).
MIN_EVENTS_PER_S = 300.0
#: Measured p99 ~4 ms; compaction spikes stay far below this ceiling.
MAX_P99_MS = 80.0


def _percentile(sorted_values, q):
    idx = min(len(sorted_values) - 1,
              max(0, int(round(q * (len(sorted_values) - 1)))))
    return sorted_values[idx]


def _dump(name, payload):
    out_dir = os.environ.get("REPRO_PERF_SMOKE_DIR", ".")
    os.makedirs(out_dir, exist_ok=True)
    path = os.path.join(out_dir, name)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2)
    return path


def test_bench_stream_perf_smoke():
    service = build_service(backend="numpy")
    start = time.perf_counter()
    stats, latencies, _ = drive_stream(
        service, NUM_EVENTS, seed=SEED,
        reprice_every=REPRICE_EVERY, collect_latencies=True,
    )
    wall_s = time.perf_counter() - start
    events_per_s = NUM_EVENTS / wall_s
    latencies.sort()
    p50_ms = _percentile(latencies, 0.50) * 1e3
    p99_ms = _percentile(latencies, 0.99) * 1e3

    path = _dump("stream_perf_smoke.json", {
        "num_events": NUM_EVENTS,
        "seed": SEED,
        "reprice_every": REPRICE_EVERY,
        "wall_s": wall_s,
        "events_per_s": events_per_s,
        "latency_p50_ms": p50_ms,
        "latency_p99_ms": p99_ms,
        "latency_max_ms": latencies[-1] * 1e3,
        "admitted": stats["admitted"],
        "rejected_price": stats["rejected_price"],
        "rejected_capacity": stats["rejected_capacity"],
        "departures": stats["departures"],
        "resizes": stats["resizes"],
        "reprice_rounds": stats["reprice_rounds"],
        "compactions": stats["compactions"],
        "final_fragmentation": stats["final_fragmentation"],
    })
    print(f"\nstream-perf-smoke: {NUM_EVENTS} events in {wall_s:.1f}s "
          f"-> {events_per_s:.0f} ev/s, p50 {p50_ms:.3f} ms, "
          f"p99 {p99_ms:.3f} ms (timings at {path})")

    # The stream actually exercised the whole event API.
    assert stats["admitted"] > 0
    assert stats["departures"] > 0
    assert stats["resizes"] > 0
    assert stats["reprice_rounds"] > 0
    # Throughput floor and latency ceiling.
    assert events_per_s >= MIN_EVENTS_PER_S, (
        f"stream throughput {events_per_s:.0f} ev/s below the "
        f"{MIN_EVENTS_PER_S:.0f} ev/s floor ({wall_s:.1f}s wall)"
    )
    assert p99_ms <= MAX_P99_MS, (
        f"per-event p99 {p99_ms:.2f} ms above the {MAX_P99_MS:.0f} ms "
        f"ceiling"
    )
