"""Perf smoke: the streaming allocation service at datacenter scale.

The incremental-arena ISSUE's headline claim, asserted end to end: one
:class:`~repro.cloud.service.AllocationService` process sustains
**100k+ submit/resize/depart events** against a rack-sized fabric with
periodic warm-started repricing, at a pinned throughput floor and
per-event p99 latency ceiling.  Timings come from the stream's own
summary (``wall_s`` / ``latency_p50_ms`` / ``latency_p99_ms``), not a
re-derivation in the benchmark - the smoke asserts exactly what the
service reports to users.

The thresholds are deliberately conservative (measured runs land at
8-9x the floor on a developer container) so the smoke catches
regressions - an accidentally quadratic roster walk, a reintroduced
per-step ``np.stack`` rebuild, compaction thrashing - without flaking
on slow CI runners.  Timing JSONs land in ``REPRO_PERF_SMOKE_DIR``
(default current directory) for the CI artifact upload, alongside the
market-perf-smoke timings.
"""

import json
import os

import pytest

pytest.importorskip("numpy")

from repro.experiments.datacenter_stream import build_service, drive_stream

#: ISSUE acceptance: >= 100k events through one service process.
NUM_EVENTS = 100_000
SEED = 7
#: Reprice every N events: frequent enough that prices track the
#: churning population (and the warm-start path is actually hot),
#: sparse enough that the smoke measures the event path too.
REPRICE_EVERY = 250

#: Measured ~8400 ev/s after the arena + fabric fast path (was ~1600
#: before); 900 is 3x the pre-arena floor of 300 and still leaves >9x
#: noise margin, while a reintroduced per-step rebuild (~1600 ev/s)
#: or a quadratic (<50) both trip it.
MIN_EVENTS_PER_S = 900.0
#: Measured p99 ~1 ms; compaction spikes stay far below this ceiling.
MAX_P99_MS = 80.0


def _dump(name, payload):
    out_dir = os.environ.get("REPRO_PERF_SMOKE_DIR", ".")
    os.makedirs(out_dir, exist_ok=True)
    path = os.path.join(out_dir, name)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2)
    return path


def test_bench_stream_perf_smoke():
    service = build_service(backend="numpy")
    stats, latencies, _ = drive_stream(
        service, NUM_EVENTS, seed=SEED,
        reprice_every=REPRICE_EVERY, collect_latencies=True,
    )
    # Summary-reported timings - the asserted numbers are the numbers
    # the service itself hands to operators.
    wall_s = stats["wall_s"]
    events_per_s = stats["events_per_s"]
    p50_ms = stats["latency_p50_ms"]
    p99_ms = stats["latency_p99_ms"]
    arena = service._arena

    path = _dump("stream_perf_smoke.json", {
        "num_events": NUM_EVENTS,
        "seed": SEED,
        "reprice_every": REPRICE_EVERY,
        "wall_s": wall_s,
        "events_per_s": events_per_s,
        "latency_p50_ms": p50_ms,
        "latency_p99_ms": p99_ms,
        "latency_max_ms": max(latencies) * 1e3,
        "admitted": stats["admitted"],
        "rejected_price": stats["rejected_price"],
        "rejected_capacity": stats["rejected_capacity"],
        "departures": stats["departures"],
        "resizes": stats["resizes"],
        "reprice_rounds": stats["reprice_rounds"],
        "compactions": stats["compactions"],
        "final_fragmentation": stats["final_fragmentation"],
        "arena_grows": arena.n_grows,
        "arena_slot_reuse": arena.n_slot_reuse,
        "arena_rounds_no_rebuild": arena.n_rounds_no_rebuild,
    })
    print(f"\nstream-perf-smoke: {NUM_EVENTS} events in {wall_s:.1f}s "
          f"-> {events_per_s:.0f} ev/s, p50 {p50_ms:.3f} ms, "
          f"p99 {p99_ms:.3f} ms (timings at {path})")

    # The stream actually exercised the whole event API.
    assert stats["admitted"] > 0
    assert stats["departures"] > 0
    assert stats["resizes"] > 0
    assert stats["reprice_rounds"] > 0
    # The arena actually ran incrementally: slots recycled, rounds
    # served without a rebuild.
    assert arena.n_slot_reuse > 0
    assert arena.n_rounds_no_rebuild > 0
    # Throughput floor and latency ceiling.
    assert events_per_s >= MIN_EVENTS_PER_S, (
        f"stream throughput {events_per_s:.0f} ev/s below the "
        f"{MIN_EVENTS_PER_S:.0f} ev/s floor ({wall_s:.1f}s wall)"
    )
    assert p99_ms <= MAX_P99_MS, (
        f"per-event p99 {p99_ms:.2f} ms above the {MAX_P99_MS:.0f} ms "
        f"ceiling"
    )
