"""Figure 13: cache-sensitivity benchmark."""

from repro.experiments import cache_sensitivity
from repro.perfmodel.model import CACHE_GRID_KB


def test_bench_fig13_cache_sensitivity(benchmark):
    series = benchmark(cache_sensitivity.run).series

    # Paper: omnetpp extremely sensitive; astar/libquantum/gobmk are not.
    assert max(series["omnetpp"]) >= 3.0
    for bench in ("astar", "libquantum"):
        assert max(series[bench]) <= 1.5

    # Paper: "Performance can actually decrease as more cache is added"
    # because of the 2-cycles-per-256KB communication delay.
    for bench in ("omnetpp", "gcc", "libquantum"):
        values = series[bench]
        assert values[-1] < max(values) + 1e-12
    assert series["libquantum"][-1] < series["libquantum"][0]

    # omnetpp peaks at an interior cache size, not at 8 MB.
    omnetpp = series["omnetpp"]
    peak_cache = CACHE_GRID_KB[omnetpp.index(max(omnetpp))]
    assert 256 <= peak_cache <= 4096


def test_bench_fig13_simulated_anchor(benchmark):
    """Cycle-level anchor: omnetpp gains from L2 capacity in SSim."""
    speedups = benchmark.pedantic(
        cache_sensitivity.run_simulated,
        kwargs={"benchmark": "omnetpp", "cache_grid": (0, 1024),
                "trace_length": 2500},
        rounds=1, iterations=1,
    )
    assert speedups[1024] > 1.1
