"""Figures 10-11: area decomposition benchmark."""

from repro.experiments import area_decomposition


def test_bench_fig10_fig11_area(benchmark):
    result = benchmark(area_decomposition.run)
    fig10 = result.fig10_without_l2
    fig11 = result.fig11_with_l2
    overhead = result.sharing_overhead_pct

    # Paper Figure 10: the L1 caches are the largest components (24% each)
    assert fig10["l1_icache"] == max(fig10.values())
    # Paper Figure 11: the 64 KB L2 bank dominates the tile (~35%).
    assert fig11["l2_dcache_64kb"] == max(fig11.values())
    # Paper: Sharing overhead ~8% without L2, ~5% with it.
    assert 7 <= overhead["without_l2"] <= 9
    assert 4 <= overhead["with_l2"] <= 7
