"""Extension benchmark: Energy*Delay^n optima (paper Section 2.2 analogy)."""

from repro.experiments import energy_delay


def test_bench_energy_delay_optima(benchmark):
    table = benchmark(energy_delay.run).table

    # Higher delay exponents buy bigger cores - the drift the paper's
    # perf^k/area metrics show in Table 4.
    for bench in ("gcc", "omnetpp"):
        ed1 = table[1][bench]
        ed3 = table[3][bench]
        assert ed3[1] >= ed1[1]  # slices
        assert ed3[0] >= ed1[0]  # cache

    # Optima vary across benchmarks at every exponent >= 2.
    for n in (2, 3):
        assert len(set(table[n].values())) >= 2
