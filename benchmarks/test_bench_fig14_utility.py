"""Figure 14: utility-surface benchmark."""

from repro.experiments import utility_surfaces


def test_bench_fig14_utility_surfaces(benchmark):
    result = benchmark(utility_surfaces.run)
    peaks = result.peaks
    surfaces = result.surfaces

    # Four panels, full grids.
    assert len(surfaces) == 4
    for surface in surfaces.values():
        assert len(surface) == 9 * 8
        assert all(v > 0 for v in surface.values())

    # Paper: "simply changing the utility function can drastically
    # change which configuration provides peak utility".
    assert peaks[("gcc", "Utility1")] != peaks[("gcc", "Utility2")]

    # Paper: holding the utility constant but changing the workload
    # moves the peak (gcc vs bzip under Utility2).
    assert peaks[("gcc", "Utility2")] != peaks[("bzip", "Utility2")]

    # Under Utility2, gcc favours more Slices than bzip (Section 5.6).
    assert peaks[("gcc", "Utility2")][1] > peaks[("bzip", "Utility2")][1]
