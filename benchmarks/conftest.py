"""Shared fixtures for the benchmark harness.

Each benchmark regenerates one paper artefact (see DESIGN.md section 4)
and asserts its headline claim, so ``pytest benchmarks/ --benchmark-only``
is simultaneously a timing run and a reproduction check.
"""

import pytest

from repro.perfmodel.model import AnalyticModel


@pytest.fixture(scope="session")
def model():
    return AnalyticModel()
