"""Figure 12: VCore scalability benchmark."""

from repro.experiments import scalability


def test_bench_fig12_scalability(benchmark):
    series = benchmark(scalability.run).series
    assert len(series) == 15

    # Paper band: normalised performance spans roughly 1x-5x at 8 Slices.
    finals = {bench: values[-1] for bench, values in series.items()}
    assert max(finals.values()) >= 3.0
    assert min(finals.values()) >= 0.95

    # Paper Section 5.3: PARSEC speedup bounded by 2.
    for bench in ("dedup", "swaptions", "ferret"):
        assert max(series[bench]) <= 2.0 + 1e-9

    # Strong scalers beat weak scalers (Figure 12 curve ordering).
    assert finals["libquantum"] > finals["hmmer"]
    assert finals["gcc"] > finals["astar"]


def test_bench_fig12_simulated_anchor(benchmark):
    """Cycle-level anchor: gcc gains from 1 -> 4 Slices in SSim too."""
    speedups = benchmark.pedantic(
        scalability.run_simulated,
        kwargs={"benchmark": "gcc", "slice_grid": (1, 4),
                "trace_length": 2500},
        rounds=1, iterations=1,
    )
    assert speedups[4] > 1.05
