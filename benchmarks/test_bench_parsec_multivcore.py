"""PARSEC multi-VCore benchmark: the inter-VCore coherence path."""

from repro.experiments import parsec_multivcore


def test_bench_parsec_multivcore(benchmark):
    results = benchmark.pedantic(
        parsec_multivcore.run,
        kwargs={"trace_length": 500},
        rounds=1, iterations=1,
    )
    assert set(results) == {"dedup", "swaptions", "ferret"}
    for bench, row in results.items():
        assert row["aggregate_ipc"] > 0
        # Coherence costs something but does not dominate (the paper's
        # design sorts intra-VCore traffic so only true sharing pays).
        assert -0.01 <= row["coherence_overhead"] <= 0.5
    # Sharing produced real directory traffic across the suite (light
    # workloads on short traces may individually see none).
    total_traffic = sum(
        row["invalidations"] + row["downgrades"] for row in results.values()
    )
    assert total_traffic > 0
