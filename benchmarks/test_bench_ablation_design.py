"""Design-choice ablations (DESIGN.md section 5).

Three of the paper's implicit design decisions, each benchmarked against
its alternative on the cycle-level simulator:

* PC-interleaved fetch vs dynamic rotation (Section 3.1);
* unordered, late-binding LSQ vs conservative ordered issue (Section 3.6);
* per-Slice bimodal vs gshare prediction (Section 3.1's alternative).
"""

import dataclasses

import pytest

from repro.core.config import SimConfig, SliceConfig
from repro.core.simulator import SharingSimulator
from repro.trace.generator import generate_trace


@pytest.fixture(scope="module")
def trace():
    return generate_trace("gcc", 2000, seed=13)


def _run(trace, **overrides):
    cfg = dataclasses.replace(
        SimConfig().with_vcore(num_slices=4, l2_cache_kb=256), **overrides
    )
    return SharingSimulator(trace, cfg).run()


def test_bench_ablation_fetch_assignment(benchmark, trace):
    def experiment():
        return (_run(trace, fetch_assignment="pc"),
                _run(trace, fetch_assignment="dynamic"))

    pc_based, dynamic = benchmark.pedantic(experiment, rounds=1,
                                           iterations=1)
    # The paper's choice: PC interleave keeps predictor accuracy.
    assert (pc_based.stats.branch_accuracy
            >= dynamic.stats.branch_accuracy)


def test_bench_ablation_ordered_lsq(benchmark, trace):
    def experiment():
        return (_run(trace, ordered_lsq=False),
                _run(trace, ordered_lsq=True))

    unordered, ordered = benchmark.pedantic(experiment, rounds=1,
                                            iterations=1)
    # The paper's choice: speculative unordered issue is never slower
    # here, and conservative ordering eliminates all replay.
    assert unordered.cycles <= ordered.cycles * 1.05
    assert ordered.stats.lsq_violations == 0


def test_bench_ablation_predictor_family(benchmark, trace):
    def experiment():
        results = {}
        for kind in ("bimodal", "gshare"):
            cfg = dataclasses.replace(
                SimConfig().with_vcore(num_slices=2, l2_cache_kb=256),
                slice_config=SliceConfig(predictor_kind=kind),
            )
            results[kind] = SharingSimulator(trace, cfg).run()
        return results

    results = benchmark.pedantic(experiment, rounds=1, iterations=1)
    for result in results.values():
        assert result.stats.committed == 2000
        assert result.stats.branch_accuracy > 0.8
