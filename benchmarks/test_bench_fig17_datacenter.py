"""Figure 17: datacenter big/small core mix benchmark."""

from repro.experiments import datacenter_mix


def test_bench_fig17_datacenter_mix(benchmark):
    result = benchmark(datacenter_mix.run)
    optima = result.optimal_big_fraction

    # Paper: "depending on application mix, different ratios of big and
    # small cores are required" - the optimum must move with the mix.
    assert len(set(optima.values())) >= 2

    # A gobmk-only datacenter wants big cores; hmmer-only wants small.
    assert optima[0.0] > optima[1.0]

    # Every surface point is a valid utility/area value.
    for points in result.surfaces.values():
        assert all(p.utility_per_area > 0 for p in points)
