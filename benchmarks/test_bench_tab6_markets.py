"""Table 6: market-dependent optima benchmark."""

from repro.experiments import markets


def test_bench_tab6_markets(benchmark):
    table = benchmark(markets.run).table

    # 3 markets x 3 utilities x 15 benchmarks.
    assert len(table) == 3 * 3 * 15

    # Paper Section 5.7: when demand departs from area cost, optimal
    # configurations move.  Expensive Slices (Market1) must not buy more
    # Slices than cheap Slices (Market3) for the same customer.
    benches = sorted({b for _, _, b in table})
    for u in ("Utility2", "Utility3"):
        for b in benches:
            dear = table[("Market1", u, b)]
            cheap = table[("Market3", u, b)]
            assert dear[1] <= cheap[1] + 1  # slices

    # A substantial fraction of optima shift between markets.
    shifts = markets.market_shift_summary(table)
    assert any(fraction >= 0.4 for fraction in shifts.values())
