"""Table 4: performance-area efficiency optima benchmark."""

from repro.experiments import optima


def test_bench_tab4_optima(benchmark):
    table = benchmark(optima.run).table

    # Paper Section 5.5: optima are non-uniform across benchmarks.
    diversity = optima.configuration_diversity(table)
    assert all(count >= 2 for count in diversity.values())

    # Within single benchmarks, the optimum moves with the metric
    # (paper: "gcc has over a factor of two in performance gain between
    # optimal configurations for different metrics").
    gcc_configs = {m: table[m]["gcc"] for m in table}
    assert len(set(gcc_configs.values())) >= 2

    # Higher performance preference buys bigger configurations.
    p1 = table["performance/area"]["gcc"]
    p3 = table["performance^3/area"]["gcc"]
    assert p3[0] >= p1[0]  # cache
    assert p3[1] >= p1[1]  # slices

    # Paper anchors: gobmk's perf^2 optimum is a large core; hmmer's is
    # small.
    gobmk = table["performance^2/area"]["gobmk"]
    hmmer = table["performance^2/area"]["hmmer"]
    assert gobmk[0] >= 256 and gobmk[1] >= 3
    assert hmmer[1] <= gobmk[1]
