"""Simulator throughput benchmarks (engineering, not a paper artefact).

Tracks SSim's own performance so regressions in the cycle loop are
caught: simulated instructions per second at 1 and 8 Slices.
"""

import pytest

from repro.core.simulator import simulate
from repro.trace.generator import make_workload


@pytest.fixture(scope="module")
def gcc_workload():
    return make_workload("gcc", 2000, seed=1)


def test_bench_ssim_single_slice(benchmark, gcc_workload):
    warmup, trace = gcc_workload
    result = benchmark.pedantic(
        simulate,
        args=(trace,),
        kwargs={"num_slices": 1, "l2_cache_kb": 128,
                "warmup_addresses": warmup},
        rounds=2, iterations=1,
    )
    assert result.stats.committed == 2000


def test_bench_ssim_eight_slices(benchmark, gcc_workload):
    warmup, trace = gcc_workload
    result = benchmark.pedantic(
        simulate,
        args=(trace,),
        kwargs={"num_slices": 8, "l2_cache_kb": 512,
                "warmup_addresses": warmup},
        rounds=2, iterations=1,
    )
    assert result.stats.committed == 2000


def test_bench_trace_generation(benchmark):
    from repro.trace.generator import generate_trace
    trace = benchmark(generate_trace, "gcc", 5000, 7)
    assert len(trace) == 5000
