"""Figure 16: market-efficiency gain vs a heterogeneous multicore."""

from repro.experiments import hetero_comparison, static_comparison


def test_bench_fig16_hetero_gain(benchmark):
    result = benchmark(hetero_comparison.run)
    summary = result.summary

    assert summary["pairs"] == 990
    assert summary["min"] >= 1.0 - 1e-9

    # Paper: "Over 3x market efficiency gains can be achieved" - the
    # reproduction preserves substantial headroom over the hetero mix.
    assert summary["max"] >= 1.5

    # The per-utility heterogeneous cores differ from one another
    # (otherwise this would degenerate to Figure 15).
    configs = set(result.per_utility_configs.values())
    assert len(configs) >= 2


def test_bench_fig16_weaker_than_fig15(benchmark):
    """A tuned heterogeneous mix serves customers better than a single
    static core, so gains over it are smaller (paper: 3x vs 5x)."""
    hetero = benchmark(lambda: hetero_comparison.run().summary)
    static = static_comparison.run().summary
    assert hetero["mean"] <= static["mean"]
    assert hetero["max"] <= static["max"]
