"""Figure 15: market-efficiency gain vs best static fixed architecture."""

from repro.experiments import static_comparison


def test_bench_fig15_static_gain(benchmark):
    result = benchmark(static_comparison.run)
    summary = result.summary

    # Paper: ~1000 pairwise permutations (C(45, 2) = 990).
    assert summary["pairs"] == 990

    # The Sharing Architecture never loses (it can mimic the fixed core).
    assert summary["min"] >= 1.0 - 1e-9

    # Paper headline: "up to 5x" more economically efficient market.
    assert 2.0 <= summary["max"] <= 8.0

    # Gains are broad, not a single outlier.
    assert summary["median"] >= 1.05
    assert summary["mean"] >= 1.1
