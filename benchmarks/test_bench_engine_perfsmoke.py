"""Perf smoke: the mmap workload store on a cold multi-worker exact
Fig 12 sweep.

The zero-copy sweep engine's headline claim, asserted end to end: on a
cold two-worker exact simulation sweep over the Figure 12 configuration
grid, run in two phases (slices 1-4, then 5-8 on a *fresh* pool, the
pattern real figure runs produce), the workload store

* keeps the synthetic generator to **one invocation per workload** for
  the whole run (store off, every fresh pool regenerates every
  workload it touches), and
* serves the second phase's workloads at least :data:`MIN_SPEEDUP`
  times faster than regeneration, measured on the workload-acquisition
  wall (worker-side ``generation_s`` vs mmap ``load_s`` - the work the
  store actually replaces), and
* is **bit-identical**: both phases' value grids match the store-off
  run exactly.

Honest numbers: total sweep wall is dominated by exact cycle-level
simulation (~5x the generation cost per grid point), so the store's
end-to-end win on *this* workload size is real but modest; the
acquisition wall - regeneration vs mmap reload - is where the 3x floor
is meaningful, and development-machine runs measure it at ~20x.  Both
walls land in the JSON artifacts (``REPRO_PERF_SMOKE_DIR``) so CI
trends the truth, not just the asserted floor.  See DESIGN.md ("Zero-
copy sweep engine") for the ceiling analysis.
"""

import json
import os
import time

from repro.engine import ResultCache, SweepEngine, SweepSpec
from repro.engine.store import reset_store_counters
from repro.trace import materialize

BENCHMARKS = ("gcc", "bzip")
LENGTH = 4000  # the Figure 12 trace length
SEED = 1

#: Fig 12 sweeps Slice count at the 128 KB baseline; split into two
#: phases so the second runs on a cold pool against a warm store.
PHASE_A = (1, 2, 3, 4)
PHASE_B = (5, 6, 7, 8)

#: Acquisition-wall floor (regeneration vs mmap reload); measured ~20x
#: on the development machine, 3x leaves CI-noise margin.
MIN_SPEEDUP = 3.0


def _dump(name, payload):
    out_dir = os.environ.get("REPRO_PERF_SMOKE_DIR", ".")
    os.makedirs(out_dir, exist_ok=True)
    path = os.path.join(out_dir, name)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2)
    return path


def _spec(slices):
    return SweepSpec(benchmarks=BENCHMARKS, simulate=True,
                     cache_grid=(128.0,), slice_grid=tuple(slices),
                     trace_length=LENGTH, trace_seed=SEED)


def _run_mode(tmp_root, store):
    """Two cold phases on fresh pools; returns per-phase sweeps+walls."""
    engine = SweepEngine(
        jobs=2, parallel_threshold=1,
        cache=ResultCache(root=tmp_root / "cache"),
        store=(tmp_root / "workloads") if store else None,
    )
    phases = []
    for slices in (PHASE_A, PHASE_B):
        materialize.clear()  # cold parent: workers fork a clean LRU
        reset_store_counters()
        start = time.perf_counter()
        sweep = engine.run(_spec(slices))
        wall = time.perf_counter() - start
        assert sweep.parallel and sweep.workers == 2
        phases.append((sweep, wall))
    return phases


def test_bench_engine_perf_smoke(tmp_path):
    (off_a, wall_off_a), (off_b, wall_off_b) = _run_mode(
        tmp_path / "off", store=False)
    (on_a, wall_on_a), (on_b, wall_on_b) = _run_mode(
        tmp_path / "on", store=True)

    # Bit-identity before speed: a fast wrong store is worthless.
    assert on_a.values == off_a.values
    assert on_b.values == off_b.values

    # One generator invocation per workload for the whole store-on run;
    # store-off pays it again in every fresh pool.
    gens_on = (on_a.store_stats["generations"]
               + on_b.store_stats["generations"])
    gens_off = (off_a.store_stats["generations"]
                + off_b.store_stats["generations"])
    assert gens_on == len(BENCHMARKS), (
        f"store-on run generated {gens_on} times for "
        f"{len(BENCHMARKS)} workloads")
    assert gens_off == 2 * len(BENCHMARKS)
    assert on_b.store_stats["store_hits"] == len(BENCHMARKS)
    assert on_b.store_stats["generations"] == 0

    # The acquisition wall: what phase B paid to obtain its workloads.
    acq_off = off_b.store_stats["generation_s"]
    acq_on = max(on_b.store_stats["store_load_s"], 1e-9)
    speedup = acq_off / acq_on

    common = {
        "benchmarks": list(BENCHMARKS),
        "trace_length": LENGTH,
        "trace_seed": SEED,
        "phase_a_slices": list(PHASE_A),
        "phase_b_slices": list(PHASE_B),
        "workers": 2,
    }
    off_path = _dump("engine_perf_smoke_store_off.json", {
        **common, "store_enabled": False,
        "wall_s": {"phase_a": wall_off_a, "phase_b": wall_off_b},
        "generations": gens_off,
        "generation_s": {"phase_a": off_a.store_stats["generation_s"],
                         "phase_b": acq_off},
    })
    _dump("engine_perf_smoke_store_on.json", {
        **common, "store_enabled": True,
        "wall_s": {"phase_a": wall_on_a, "phase_b": wall_on_b},
        "generations": gens_on,
        "acquisition_speedup_phase_b": speedup,
        "store": {
            "dumps": on_a.store_stats["store_dumps"],
            "hits": on_b.store_stats["store_hits"],
            "misses": (on_a.store_stats["store_misses"]
                       + on_b.store_stats["store_misses"]),
            "mmap_opens": on_b.store_stats["store_mmap_opens"],
            "bytes_mapped": on_b.store_stats["store_bytes_mapped"],
            "load_s": on_b.store_stats["store_load_s"],
            "dump_s": on_a.store_stats["store_dump_s"],
        },
        "sched": dict(on_b.sched_stats),
    })
    print(f"\nengine-perf-smoke: phase-B acquisition "
          f"{acq_off:.3f}s regenerated vs {acq_on:.4f}s mapped "
          f"-> {speedup:.1f}x; total walls off "
          f"{wall_off_a + wall_off_b:.2f}s / on "
          f"{wall_on_a + wall_on_b:.2f}s "
          f"(timings next to {off_path})")

    assert speedup >= MIN_SPEEDUP, (
        f"store acquisition only {speedup:.1f}x faster than "
        f"regeneration (gen {acq_off:.3f}s, load {acq_on:.4f}s)")
