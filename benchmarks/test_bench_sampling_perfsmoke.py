"""Perf smoke: sampled vs exact on the Figure 12 scalability sweep.

The ISSUE's headline claim for sampled simulation, asserted end to end:

* >= 3x wall-clock speedup over the exact cycle-level sweep, and
* a normalised scalability curve that tracks the exact curve point by
  point (per-profile IPC accuracy is enforced separately by
  ``tests/sampling/test_equivalence.py``).

Both runs are timed sequentially in this process after pre-warming the
workload LRU, so neither pays trace generation and the ratio is pure
simulation time.  Timing JSONs land in ``REPRO_PERF_SMOKE_DIR`` (default
current directory) for the CI artifact upload.
"""

import json
import os
import time

from repro.experiments.scalability import run_simulated
from repro.sampling import DEFAULT_SAMPLING, SamplingPolicy
from repro.trace.materialize import get_workload

BENCH = "gcc"
SLICE_GRID = (1, 2, 4, 8)
LENGTH = 96_000
SEED = 1

#: ISSUE acceptance threshold.  The default policy's detail fraction
#: (~0.25) bounds the theoretical speedup near 3.9x; measured runs land
#: around 3.4-3.9x, so 3.0x leaves noise margin without being vacuous.
MIN_SPEEDUP = 3.0
#: Normalised (ratio-of-IPC) curves divide out common bias; the
#: validated per-IPC error band is +-5%, so points track within 10%.
MAX_POINT_ERROR = 0.10


def _timed(sampling):
    start = time.perf_counter()
    series = run_simulated(BENCH, slice_grid=SLICE_GRID,
                           trace_length=LENGTH, seed=SEED,
                           sampling=sampling)
    return series, time.perf_counter() - start


def _dump(name, payload):
    out_dir = os.environ.get("REPRO_PERF_SMOKE_DIR", ".")
    os.makedirs(out_dir, exist_ok=True)
    path = os.path.join(out_dir, name)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2)
    return path


def test_bench_sampling_perf_smoke():
    get_workload(BENCH, LENGTH, SEED)  # pre-warm: no generation in timings

    exact_series, exact_s = _timed(None)
    sampled_series, sampled_s = _timed(DEFAULT_SAMPLING)
    speedup = exact_s / sampled_s

    schedule = SamplingPolicy(DEFAULT_SAMPLING).plan(LENGTH)
    common = {
        "benchmark": BENCH,
        "slice_grid": list(SLICE_GRID),
        "trace_length": LENGTH,
        "seed": SEED,
    }
    exact_path = _dump("perf_smoke_exact.json", {
        **common, "mode": "exact", "wall_s": exact_s,
        "series": {str(s): v for s, v in exact_series.items()},
    })
    _dump("perf_smoke_sampled.json", {
        **common, "mode": "sampled", "wall_s": sampled_s,
        "speedup_vs_exact": speedup,
        "sampling": DEFAULT_SAMPLING.key_fields(),
        "detail_fraction": schedule.detail_fraction,
        "series": {str(s): v for s, v in sampled_series.items()},
    })
    print(f"\nperf-smoke: exact {exact_s:.1f}s, sampled {sampled_s:.1f}s "
          f"-> {speedup:.2f}x (timings next to {exact_path})")

    assert speedup >= MIN_SPEEDUP, (
        f"sampled sweep only {speedup:.2f}x faster than exact "
        f"(exact {exact_s:.1f}s, sampled {sampled_s:.1f}s)"
    )
    for s in SLICE_GRID:
        err = abs(sampled_series[s] - exact_series[s]) / exact_series[s]
        assert err <= MAX_POINT_ERROR, (
            f"slices={s}: sampled point {sampled_series[s]:.4f} vs "
            f"exact {exact_series[s]:.4f} ({err:+.2%})"
        )
