"""Table 7: dynamic-phase reconfiguration benchmark."""

import pytest

from repro.core.reconfig import ReconfigurationEngine
from repro.economics.efficiency import PERF3_PER_AREA
from repro.economics.phases_analysis import analyze_phases
from repro.experiments import phases
from repro.trace.phases import gcc_phases


def test_bench_tab7_phases(benchmark):
    results = benchmark(phases.run).schedules

    gains = {name: r.gain for name, r in results.items()}

    # Paper ordering: 9.1% < 15.1% < 19.4% across the three metrics.
    ordered = [
        gains["performance/area"],
        gains["performance^2/area"],
        gains["performance^3/area"],
    ]
    assert ordered == sorted(ordered)

    # Band check on the stronger metrics (paper: 15.1% and 19.4%).
    assert 0.03 <= gains["performance^2/area"] <= 0.30
    assert 0.08 <= gains["performance^3/area"] <= 0.35

    # Per-phase optima drift (paper: configurations change with phase).
    for name in ("performance^2/area", "performance^3/area"):
        assert len(set(results[name].per_phase_configs)) >= 3


def test_bench_tab7_reconfig_cost_ablation(benchmark):
    """Ablation: with free reconfiguration the gain can only grow; with
    ruinous costs it shrinks (the design-choice sensitivity DESIGN.md
    calls out)."""
    phased = gcc_phases()
    paper = benchmark(analyze_phases, phased, PERF3_PER_AREA)
    free = analyze_phases(
        phased, PERF3_PER_AREA,
        reconfig=ReconfigurationEngine(cache_flush_cycles=0,
                                       slice_change_cycles=0),
    )
    ruinous = analyze_phases(
        phased, PERF3_PER_AREA,
        reconfig=ReconfigurationEngine(cache_flush_cycles=5_000_000,
                                       slice_change_cycles=1_000_000),
    )
    assert free.gain >= paper.gain >= ruinous.gain
