"""CACTI-like analytic cache area estimator.

The paper sizes caches with CACTI 6.0 at the 45 nm node (Section 5.1).
CACTI itself is a large C++ tool; for the relative-area purposes of this
reproduction a first-order model suffices: SRAM array area scales linearly
with capacity, tag/peripheral overhead scales with the number of lines and
associativity, and a fixed per-array overhead covers decoders and sense
amplifiers.  The constants are chosen so that a 64 KB 4-way array lands
near the published relationship of Figure 11 (a 64 KB L2 bank is ~35% of
a Slice-plus-bank tile, i.e. ~0.54 Slice areas).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CactiLite:
    """First-order 45 nm SRAM area model (areas in mm^2)."""

    #: Data-array density: mm^2 per KB of SRAM at 45 nm.
    mm2_per_kb: float = 0.0038
    #: Tag + comparator area per way per set (mm^2).
    mm2_per_way_set: float = 1.1e-6
    #: Fixed peripheral overhead per array (decoders, sense amps, mm^2).
    fixed_overhead_mm2: float = 0.012
    line_bytes: int = 64

    def area_mm2(self, size_kb: float, assoc: int = 4) -> float:
        """Total array area for a ``size_kb`` KB, ``assoc``-way cache."""
        if size_kb < 0:
            raise ValueError("cache size cannot be negative")
        if assoc < 1:
            raise ValueError("associativity must be >= 1")
        if size_kb == 0:
            return 0.0
        num_lines = size_kb * 1024 / self.line_bytes
        num_sets = max(1.0, num_lines / assoc)
        data = size_kb * self.mm2_per_kb
        tags = num_sets * assoc * self.mm2_per_way_set
        return data + tags + self.fixed_overhead_mm2

    def access_energy_nj(self, size_kb: float) -> float:
        """First-order access energy (nJ); sub-linear in capacity."""
        if size_kb <= 0:
            return 0.0
        return 0.02 + 0.004 * (size_kb ** 0.5)
