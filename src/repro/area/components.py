"""Slice component inventory and published area fractions.

Paper Figure 10 ("Area Decomposition without L2 cache") gives the share of
each Slice component in the place-and-routed 45 nm design.  The *Sharing
Overhead* called out in the figure (8%) is the aggregate of the structures
that exist only because Slices can be composed: the three network routers,
the global-rename logic, the second (local) rename stage, the waitlist,
the inter-Slice scoreboard, and the added pipeline registers.
"""

from __future__ import annotations

import enum
from typing import Dict, FrozenSet


class SliceComponent(enum.Enum):
    L1_ICACHE = "l1_icache"
    L1_DCACHE = "l1_dcache"
    INSTRUCTION_BUFFER = "instruction_buffer"
    LSQ = "lsq"
    REGISTER_FILE = "register_file"
    ROB = "rob"
    ISSUE_WINDOW = "issue_window"
    BTB_PREDICTOR = "btb_predictor"
    MULTIPLIER = "multiplier"
    ALUS = "alus"
    ROUTERS = "routers"
    LOCAL_RENAME = "local_rename"
    GLOBAL_RENAME = "global_rename"
    WAITLIST = "waitlist"
    SCOREBOARD = "scoreboard"
    ADDED_PIPELINE = "added_pipeline"


#: Published Figure 10 percentages (Slice only, no L2 bank).  The paper
#: rounds to integers; ADDED_PIPELINE shows as 0% and is carried here as a
#: small non-zero share so the component exists in the accounting.
FIG10_PERCENTAGES: Dict[SliceComponent, float] = {
    SliceComponent.L1_ICACHE: 24.0,
    SliceComponent.L1_DCACHE: 24.0,
    SliceComponent.INSTRUCTION_BUFFER: 11.0,
    SliceComponent.LSQ: 8.0,
    SliceComponent.REGISTER_FILE: 6.0,
    SliceComponent.ROB: 6.0,
    SliceComponent.ISSUE_WINDOW: 4.0,
    SliceComponent.BTB_PREDICTOR: 4.0,
    SliceComponent.MULTIPLIER: 2.0,
    SliceComponent.ALUS: 1.0,
    SliceComponent.ROUTERS: 2.0,
    SliceComponent.LOCAL_RENAME: 2.0,
    SliceComponent.GLOBAL_RENAME: 1.0,
    SliceComponent.WAITLIST: 1.0,
    SliceComponent.SCOREBOARD: 2.0,
    SliceComponent.ADDED_PIPELINE: 0.3,
}

#: Components that exist only to support sub-core composition; their sum is
#: the paper's "Sharing Overhead" (~8% without L2, ~5% with a 64 KB bank).
SHARING_OVERHEAD_COMPONENTS: FrozenSet[SliceComponent] = frozenset(
    {
        SliceComponent.ROUTERS,
        SliceComponent.LOCAL_RENAME,
        SliceComponent.GLOBAL_RENAME,
        SliceComponent.WAITLIST,
        SliceComponent.SCOREBOARD,
        SliceComponent.ADDED_PIPELINE,
    }
)


def normalized_fractions() -> Dict[SliceComponent, float]:
    """Figure 10 percentages normalised to sum exactly to 1.0."""
    total = sum(FIG10_PERCENTAGES.values())
    return {c: p / total for c, p in FIG10_PERCENTAGES.items()}


def sharing_overhead_fraction() -> float:
    """Fraction of Slice area that is Sharing-Architecture overhead."""
    fracs = normalized_fractions()
    return sum(fracs[c] for c in SHARING_OVERHEAD_COMPONENTS)
