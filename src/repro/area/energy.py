"""First-order energy model for VCore configurations.

The paper frames its performance-preference metrics through the energy
literature's Energy*Delay^2 / Energy*Delay^3 lens (Section 2.2) and
synthesises power along with area from the 45 nm flow (Section 5.1).
This module provides the matching energy side: per-event energies for
the major structures (scaled from the CACTI-like capacities), static
leakage proportional to area, and a per-instruction energy estimate for
a VCore configuration driven by the same profile statistics the
performance model uses.

Energies are in nanojoules; absolute values are representative of a
45 nm node, but as with area only *relative* comparisons are consumed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Union

from repro.area.cacti import CactiLite
from repro.area.model import AreaModel
from repro.perfmodel.model import AnalyticModel, l2_mean_latency
from repro.trace.profiles import BenchmarkProfile, get_profile

ProfileLike = Union[str, BenchmarkProfile]


@dataclass(frozen=True)
class EnergyParameters:
    """Per-event energies (nJ) and leakage density at 45 nm."""

    alu_op_nj: float = 0.010
    register_access_nj: float = 0.004
    rename_nj: float = 0.006
    issue_wakeup_nj: float = 0.008
    #: Energy per hop per operand on the switched networks.
    network_hop_nj: float = 0.005
    dram_access_nj: float = 2.0
    #: Static leakage per mm^2 per cycle at a nominal 1 GHz.
    leakage_nj_per_mm2_cycle: float = 0.0004


@dataclass(frozen=True)
class EnergyBreakdown:
    """Per-instruction energy components (nJ)."""

    core: float
    l1: float
    l2: float
    memory: float
    network: float
    leakage: float

    @property
    def total(self) -> float:
        return (self.core + self.l1 + self.l2 + self.memory
                + self.network + self.leakage)

    def as_dict(self) -> Dict[str, float]:
        return {
            "core": self.core,
            "l1": self.l1,
            "l2": self.l2,
            "memory": self.memory,
            "network": self.network,
            "leakage": self.leakage,
        }


class EnergyModel:
    """Energy per instruction and energy-delay metrics for VCores."""

    def __init__(self, params: Optional[EnergyParameters] = None,
                 area_model: Optional[AreaModel] = None,
                 perf_model: Optional[AnalyticModel] = None):
        self.params = params or EnergyParameters()
        self.area_model = area_model or AreaModel()
        self.perf_model = perf_model or AnalyticModel()
        self.cacti = self.area_model.cacti

    # ------------------------------------------------------------------
    # energy per instruction
    # ------------------------------------------------------------------

    def energy_per_instruction(self, profile: ProfileLike, cache_kb: float,
                               slices: int) -> EnergyBreakdown:
        """Average energy per committed instruction (nJ)."""
        prof = profile if isinstance(profile, BenchmarkProfile) \
            else get_profile(profile)
        if slices < 1 or cache_kb < 0:
            raise ValueError("invalid configuration")
        p = self.params

        mem_frac = prof.frac_load + prof.frac_store
        # Core: execute + rename (two stages) + wakeup + register traffic.
        core = (p.alu_op_nj + 2 * p.rename_nj + p.issue_wakeup_nj
                + 2 * p.register_access_nj)
        # Multi-Slice VCores pay the rename broadcast and remote operand
        # traffic per crossing dependence edge.
        cross_fraction = (prof.comm_sens * (1.0 - 1.0 / slices)
                          if slices > 1 else 0.0)
        mean_hops = (slices + 1) / 3.0 if slices > 1 else 0.0
        network = cross_fraction * mean_hops * p.network_hop_nj * 2

        # L1: every memory op plus every fetch pair touches an L1 array.
        l1_access = self.cacti.access_energy_nj(16)
        l1 = mem_frac * l1_access + 0.5 * l1_access  # data + instruction

        # L2: L1 misses travel hops to the home bank and read it.
        l1_miss_rate = prof.l1_mpki / 1000.0
        bank_access = self.cacti.access_energy_nj(64)
        l2_hops = max(0.0, (l2_mean_latency(cache_kb) - 4.0) / 2.0)
        l2 = l1_miss_rate * (bank_access + l2_hops * p.network_hop_nj) \
            if cache_kb > 0 else 0.0

        # DRAM: L2 misses (or everything, with no L2).
        miss = prof.l2_miss_fraction(cache_kb)
        memory = l1_miss_rate * miss * p.dram_access_nj

        # Leakage: area burns every cycle; amortise by IPC.
        ipc = self.perf_model.performance(prof, cache_kb, slices)
        area = self.area_model.vcore_area(cache_kb, slices)
        leakage = area * p.leakage_nj_per_mm2_cycle / max(ipc, 1e-9)

        return EnergyBreakdown(core=core, l1=l1, l2=l2, memory=memory,
                               network=network, leakage=leakage)

    # ------------------------------------------------------------------
    # energy-delay metrics
    # ------------------------------------------------------------------

    def energy_delay(self, profile: ProfileLike, cache_kb: float,
                     slices: int, delay_exponent: int = 1) -> float:
        """``E * D^n`` per instruction (delay = 1 / IPC in cycles).

        ``n = 2`` and ``n = 3`` are the Energy*Delay^2 / Energy*Delay^3
        metrics the paper's Section 2.2 draws its utility analogy from.
        """
        if delay_exponent < 0:
            raise ValueError("delay exponent cannot be negative")
        energy = self.energy_per_instruction(profile, cache_kb, slices).total
        ipc = self.perf_model.performance(profile, cache_kb, slices)
        delay = 1.0 / ipc
        return energy * (delay ** delay_exponent)

    def best_config(self, profile: ProfileLike, delay_exponent: int = 2,
                    cache_grid=None, slice_grid=None):
        """The ``E*D^n``-minimising configuration on the standard grid."""
        from repro.perfmodel.model import CACHE_GRID_KB, SLICE_GRID
        cache_grid = cache_grid or CACHE_GRID_KB
        slice_grid = slice_grid or SLICE_GRID
        return min(
            ((c, s) for c in cache_grid for s in slice_grid),
            key=lambda cfg: self.energy_delay(
                profile, cfg[0], cfg[1], delay_exponent
            ),
        )
