"""Area model.

The paper implements a Slice in synthesizable Verilog, places and routes
it with the Synopsys flow in TSMC 45 nm, and sizes caches with CACTI
(Section 5.1).  Figures 10 and 11 publish the resulting area decomposition
with and without a 64 KB L2 bank.  We cannot run a Verilog flow here, so
this package encodes the published decomposition directly and supplies a
CACTI-like analytic estimator for cache arrays; all downstream economics
consume only the *relative* areas, which is exactly what the paper's
Figures 10-11 provide.
"""

from repro.area.components import (
    SliceComponent,
    SHARING_OVERHEAD_COMPONENTS,
    FIG10_PERCENTAGES,
)
from repro.area.cacti import CactiLite
from repro.area.model import AreaModel

__all__ = [
    "SliceComponent",
    "SHARING_OVERHEAD_COMPONENTS",
    "FIG10_PERCENTAGES",
    "CactiLite",
    "AreaModel",
]
