"""VCore and chip area accounting.

Ties the published Slice decomposition (Figure 10) to the CACTI-like bank
estimate (Figure 11) and exposes the area quantities consumed by the
performance-per-area metrics (Section 5.5) and the markets (Section 5.7):

* ``slice_area_mm2``     - one Slice including its sharing overhead;
* ``l2_bank_area_mm2``   - one 64 KB L2 Cache Bank;
* ``vcore_area(c, s)``   - a VCore with ``c`` KB of L2 and ``s`` Slices.

Paper Section 5.7 prices Market2 at cost == area with "1 Slice costs the
same as 128KB Cache", i.e. one Slice equals two 64 KB banks; the default
constants reproduce that equivalence.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.area.cacti import CactiLite
from repro.area.components import (
    SHARING_OVERHEAD_COMPONENTS,
    SliceComponent,
    normalized_fractions,
)

#: Absolute Slice area at 45 nm implied by the paper's modest structures.
DEFAULT_SLICE_AREA_MM2 = 0.50

#: Paper Section 5.7: one Slice has the area of this much L2 cache.
SLICE_EQUIVALENT_L2_KB = 128.0

#: Capacity of one L2 bank (KB), paper Section 3.5.
L2_BANK_KB = 64.0


@dataclass
class AreaModel:
    """Area accounting for Slices, banks, VCores and chips."""

    slice_area_mm2: float = DEFAULT_SLICE_AREA_MM2
    #: Per-VCore share of uncore resources (memory controllers, I/O,
    #: on-chip network backbone) charged by the performance-per-area
    #: metrics; roughly four Slices worth, in line with contemporary
    #: server dies where uncore is a large fraction of area.
    uncore_area_mm2: float = 4 * DEFAULT_SLICE_AREA_MM2
    cacti: CactiLite = field(default_factory=CactiLite)
    #: When True (default), pin the bank area to exactly half a Slice, the
    #: equivalence the paper's markets use; when False, use the CACTI-like
    #: estimate (~0.54 Slices per 128 KB, matching Figure 11's 35%).
    use_market_equivalence: bool = True

    @property
    def l2_bank_area_mm2(self) -> float:
        if self.use_market_equivalence:
            return self.slice_area_mm2 * (L2_BANK_KB / SLICE_EQUIVALENT_L2_KB)
        return self.cacti.area_mm2(L2_BANK_KB, assoc=4)

    def slice_component_areas(self) -> Dict[SliceComponent, float]:
        """Per-component absolute areas of one Slice (mm^2)."""
        return {
            c: frac * self.slice_area_mm2
            for c, frac in normalized_fractions().items()
        }

    def sharing_overhead_mm2(self) -> float:
        """Absolute area spent on composition support in one Slice."""
        areas = self.slice_component_areas()
        return sum(areas[c] for c in SHARING_OVERHEAD_COMPONENTS)

    def vcore_area(self, cache_kb: float, slices: int,
                   include_uncore: bool = False) -> float:
        """Area of a VCore with ``cache_kb`` KB of L2 and ``slices`` Slices.

        ``include_uncore`` adds the per-VCore uncore share, which the
        efficiency metrics (Table 4) charge so that performance-per-area
        reflects whole-server cost rather than core tiles alone.
        """
        if slices < 1:
            raise ValueError("a VCore has at least one Slice")
        if cache_kb < 0:
            raise ValueError("cache size cannot be negative")
        banks = cache_kb / L2_BANK_KB
        area = slices * self.slice_area_mm2 + banks * self.l2_bank_area_mm2
        if include_uncore:
            area += self.uncore_area_mm2
        return area

    def chip_area(self, num_slices: int, num_banks: int) -> float:
        """Area of a fabric with the given tile populations."""
        if num_slices < 0 or num_banks < 0:
            raise ValueError("tile counts cannot be negative")
        return (
            num_slices * self.slice_area_mm2
            + num_banks * self.l2_bank_area_mm2
        )

    # ------------------------------------------------------------------
    # published decomposition views (Figures 10 and 11)
    # ------------------------------------------------------------------

    def decomposition_without_l2(self) -> Dict[str, float]:
        """Figure 10: percentage share of each component in one Slice."""
        return {
            c.value: frac * 100.0 for c, frac in normalized_fractions().items()
        }

    def decomposition_with_l2(self) -> Dict[str, float]:
        """Figure 11: shares of a tile of one Slice plus one 64 KB bank.

        The published figure measures the bank at ~35% of the tile; using
        the CACTI-like estimate independently of the market equivalence
        keeps this view faithful to Figure 11.
        """
        bank = self.cacti.area_mm2(L2_BANK_KB, assoc=4)
        tile = self.slice_area_mm2 + bank
        shares = {
            c.value: frac * self.slice_area_mm2 / tile * 100.0
            for c, frac in normalized_fractions().items()
        }
        shares["l2_dcache_64kb"] = bank / tile * 100.0
        return shares

    def sharing_overhead_pct_without_l2(self) -> float:
        fracs = normalized_fractions()
        return sum(fracs[c] for c in SHARING_OVERHEAD_COMPONENTS) * 100.0

    def sharing_overhead_pct_with_l2(self) -> float:
        shares = self.decomposition_with_l2()
        return sum(
            shares[c.value] for c in SHARING_OVERHEAD_COMPONENTS
        )
