"""Market-efficiency comparisons (paper Section 5.8, Figures 15-16).

Figure 15 compares the Sharing Architecture against the single best
*static fixed* configuration - the one that maximises the geometric mean
of utility across every (benchmark, utility-function) customer.  For
each pairwise mix of two customers, the gain is

    (U_b1(sharing) + U_b2(sharing)) / (U_b1(fixed) + U_b2(fixed))

Figure 16 compares against a *heterogeneous* multicore in the spirit of
[18]: per utility function the best configuration across the benchmark
suite is chosen, and each customer runs on their utility's tuned core:

    (U_b1(sharing) + U_b2(sharing)) / (U_b1(fixed_c) + U_b2(fixed_d))

Both studies restrict to Market2 (prices track area), as the paper does.

Backends: on ``"numpy"`` (the default) customer utilities live in one
``(customers, configs)`` matrix, reference configs are log-mean argmaxes
and the pairwise studies are upper-triangle tensor reductions - no
Python double loop touches the ~n^2/2 pair space.  ``"python"`` keeps
the scalar double-loop reference for the equivalence suite.  Customer
sets can grow/shrink incrementally (:meth:`add_benchmarks`,
:meth:`remove_benchmark`): utility rows are appended/dropped and the
cached reference configs invalidated, instead of rebuilding the whole
study.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.economics.backend import HAVE_NUMPY, resolve_backend
from repro.economics.market import MARKET2, Market
from repro.economics.optimizer import UtilityOptimizer
from repro.economics.tensor import pair_gain_summary
from repro.economics.utility import STANDARD_UTILITIES, UtilityFunction

if HAVE_NUMPY:
    import numpy as np


@dataclass(frozen=True)
class Customer:
    """One (benchmark, utility) pair - one Cloud customer archetype."""

    benchmark: str
    utility: UtilityFunction

    @property
    def key(self) -> Tuple[str, str]:
        return self.benchmark, self.utility.name


@dataclass(frozen=True)
class PairGain:
    """Utility gain of the Sharing Architecture for one customer pair."""

    customer_a: Tuple[str, str]
    customer_b: Tuple[str, str]
    sharing_utility: float
    fixed_utility: float

    @property
    def gain(self) -> float:
        if self.fixed_utility <= 0:
            return float("inf")
        return self.sharing_utility / self.fixed_utility


def _geometric_mean(values: Sequence[float],
                    labels: Optional[Sequence] = None) -> float:
    """Geometric mean via an ``fsum`` of logs (order-independent to the
    working precision, unlike a naive running sum).

    Non-positive utilities have no geometric mean; the error names the
    offending customer/config through ``labels`` instead of silently
    collapsing the mean to zero.
    """
    if not values:
        raise ValueError("geometric mean of nothing")
    for idx, v in enumerate(values):
        if v <= 0:
            where = labels[idx] if labels is not None else f"index {idx}"
            raise ValueError(
                f"geometric mean undefined: non-positive utility {v!r} "
                f"for {where}"
            )
    return math.exp(math.fsum(math.log(v) for v in values) / len(values))


class MarketEfficiencyComparison:
    """Pairwise utility-gain studies against fixed architectures."""

    def __init__(self, benchmarks: Sequence[str],
                 utilities: Sequence[UtilityFunction] = STANDARD_UTILITIES,
                 market: Market = MARKET2,
                 optimizer: Optional[UtilityOptimizer] = None,
                 engine=None, backend: Optional[str] = None):
        if not benchmarks:
            raise ValueError("need at least one benchmark")
        self.benchmarks = list(benchmarks)
        self.utilities = list(utilities)
        self.market = market
        if optimizer is not None:
            self.optimizer = optimizer
            self.backend = (optimizer.backend if backend is None
                            else resolve_backend(backend))
        else:
            self.backend = resolve_backend(backend)
            self.optimizer = UtilityOptimizer(engine=engine,
                                              backend=self.backend)
        #: Grid points in flat (cache outer, slice inner) order - the
        #: column order of the utility matrix.
        self._configs: List[Tuple[float, int]] = [
            (cache_kb, slices)
            for cache_kb in self.optimizer.cache_grid
            for slices in self.optimizer.slice_grid
        ]
        self.customers: List[Customer] = []
        self._config_utils: Dict[Tuple[str, str], Dict] = {}
        self._U = None  # (customers, configs) on the numpy backend
        self._sharing_best: Dict[Tuple[str, str], float] = {}
        self._append_benchmarks(self.benchmarks)

    # ------------------------------------------------------------------
    # customer-set maintenance (incremental)
    # ------------------------------------------------------------------

    def _append_benchmarks(self, benchmarks: Sequence[str]) -> None:
        """Compute utility rows for new customers and append them."""
        self.optimizer.prime(benchmarks)
        fresh = [
            Customer(benchmark=b, utility=u)
            for b in benchmarks
            for u in self.utilities
        ]
        if self.backend == "numpy" and self.optimizer.kernel is not None:
            kernel = self.optimizer.kernel.for_market(self.market)
            rows = [
                kernel.utility_grid(c.benchmark, c.utility,
                                    self.optimizer.budget).ravel()
                for c in fresh
            ]
            block = np.stack(rows)
            self._U = (block if self._U is None
                       else np.vstack([self._U, block]))
            for c, row in zip(fresh, rows):
                self._sharing_best[c.key] = float(row.max())
        else:
            for c in fresh:
                utils = {
                    cfg: self.optimizer.utility_at(
                        c.benchmark, c.utility, self.market, *cfg
                    )
                    for cfg in self._configs
                }
                self._config_utils[c.key] = utils
                self._sharing_best[c.key] = max(utils.values())
        self.customers.extend(fresh)
        self._invalidate_references()

    def add_benchmarks(self, benchmarks: Sequence[str]) -> None:
        """Grow the customer set: one new customer per (benchmark,
        utility), computed incrementally (existing rows untouched)."""
        known = set(self.benchmarks)
        new = [b for b in benchmarks if b not in known]
        if not new:
            return
        self.benchmarks.extend(new)
        self._append_benchmarks(new)

    def remove_benchmark(self, benchmark: str) -> None:
        """Drop one benchmark's customers from the study."""
        if benchmark not in self.benchmarks:
            raise KeyError(f"unknown benchmark {benchmark!r}")
        keep = [i for i, c in enumerate(self.customers)
                if c.benchmark != benchmark]
        dropped = [c for c in self.customers if c.benchmark == benchmark]
        if self._U is not None:
            self._U = self._U[keep]
        for c in dropped:
            self._config_utils.pop(c.key, None)
            self._sharing_best.pop(c.key, None)
        self.customers = [self.customers[i] for i in keep]
        self.benchmarks.remove(benchmark)
        self._invalidate_references()

    def _invalidate_references(self) -> None:
        self._static_cfg: Optional[Tuple[float, int]] = None
        self._per_utility_cfg: Optional[Dict[str, Tuple[float, int]]] = None

    # ------------------------------------------------------------------
    # per-customer utility access (backend-neutral)
    # ------------------------------------------------------------------

    def _customer_utils(self, index: int) -> Sequence[float]:
        """Customer ``index``'s utilities in flat config order."""
        if self._U is not None:
            return self._U[index]
        c = self.customers[index]
        utils = self._config_utils[c.key]
        return [utils[cfg] for cfg in self._configs]

    def _utils_at(self, indices: Sequence[int], cfg_index: int
                  ) -> List[float]:
        if self._U is not None:
            col = self._U[:, cfg_index]
            return [float(col[i]) for i in indices]
        cfg = self._configs[cfg_index]
        return [
            self._config_utils[self.customers[i].key][cfg] for i in indices
        ]

    # ------------------------------------------------------------------
    # fixed-architecture references
    # ------------------------------------------------------------------

    def _best_reference_config(self, indices: Sequence[int]
                               ) -> Tuple[float, int]:
        """The config maximising the customers' geometric-mean utility."""
        if self._U is not None:
            sub = self._U[list(indices)]
            bad = np.argwhere(sub <= 0)
            if bad.size:
                i, j = (int(v) for v in bad[0])
                customer = self.customers[list(indices)[i]]
                raise ValueError(
                    f"geometric mean undefined: non-positive utility "
                    f"{float(sub[i, j])!r} for customer "
                    f"{customer.key} at config {self._configs[j]}"
                )
            score = np.log(sub).mean(axis=0)
            return self._configs[int(np.argmax(score))]
        best_cfg = None
        best_score = None
        labels = [
            f"customer {self.customers[i].key}" for i in indices
        ]
        for ci, cfg in enumerate(self._configs):
            values = self._utils_at(indices, ci)
            score = _geometric_mean(
                values,
                labels=[f"{lab} at config {cfg}" for lab in labels],
            )
            if best_score is None or score > best_score:
                best_cfg, best_score = cfg, score
        assert best_cfg is not None
        return best_cfg

    def best_static_config(self) -> Tuple[float, int]:
        """The single configuration maximising GME across all customers.

        This is the paper's "optimal fixed architecture ... determined
        across all benchmarks and the three utility functions".
        """
        if self._static_cfg is None:
            self._static_cfg = self._best_reference_config(
                range(len(self.customers))
            )
        return self._static_cfg

    def best_config_for_utility(self, utility: UtilityFunction
                                ) -> Tuple[float, int]:
        """Per-utility best configuration (heterogeneous design point)."""
        indices = [
            i for i, c in enumerate(self.customers)
            if c.utility is utility or c.utility.name == utility.name
        ]
        return self._best_reference_config(indices)

    def _per_utility_configs(self) -> Dict[str, Tuple[float, int]]:
        if self._per_utility_cfg is None:
            self._per_utility_cfg = {
                u.name: self.best_config_for_utility(u)
                for u in self.utilities
            }
        return self._per_utility_cfg

    # ------------------------------------------------------------------
    # pairwise gain studies
    # ------------------------------------------------------------------

    def _sharing_vector(self) -> List[float]:
        return [self._sharing_best[c.key] for c in self.customers]

    def _fixed_vector_static(self) -> List[float]:
        cfg_index = self._configs.index(self.best_static_config())
        return self._utils_at(range(len(self.customers)), cfg_index)

    def _fixed_vector_hetero(self) -> List[float]:
        per_utility = self._per_utility_configs()
        cfg_indices = {
            name: self._configs.index(cfg)
            for name, cfg in per_utility.items()
        }
        return [
            self._utils_at([i], cfg_indices[c.utility.name])[0]
            for i, c in enumerate(self.customers)
        ]

    def _pair_gains(self, fixed: Sequence[float]) -> List[PairGain]:
        """All-pairs gains from per-customer vectors.

        numpy: the pair space is one upper-triangle broadcast; the
        PairGain objects are built from the resulting arrays (callers
        wanting statistics only should use the summary methods, which
        never materialize the pairs).
        """
        sharing = self._sharing_vector()
        keys = [c.key for c in self.customers]
        n = len(keys)
        if self._U is not None:
            sh = np.asarray(sharing)
            fx = np.asarray(fixed)
            i, j = np.triu_indices(n, k=1)
            sh_sum = sh[i] + sh[j]
            fx_sum = fx[i] + fx[j]
            return [
                PairGain(keys[a], keys[b], float(s), float(f))
                for a, b, s, f in zip(i.tolist(), j.tolist(),
                                      sh_sum.tolist(), fx_sum.tolist())
            ]
        gains: List[PairGain] = []
        for a in range(n):
            for b in range(a + 1, n):
                gains.append(PairGain(
                    keys[a], keys[b],
                    sharing[a] + sharing[b],
                    fixed[a] + fixed[b],
                ))
        return gains

    def gains_vs_static(self) -> List[PairGain]:
        """Figure 15: all customer pairs against the best static config."""
        return self._pair_gains(self._fixed_vector_static())

    def gains_vs_heterogeneous(self) -> List[PairGain]:
        """Figure 16: pairs against per-utility tuned heterogeneous cores."""
        return self._pair_gains(self._fixed_vector_hetero())

    def summary_vs_static(self) -> Dict[str, float]:
        """Figure 15 statistics as pure tensor reductions (no per-pair
        objects) - the datacenter-scale path."""
        return self._summary(self._fixed_vector_static())

    def summary_vs_heterogeneous(self) -> Dict[str, float]:
        """Figure 16 statistics as pure tensor reductions."""
        return self._summary(self._fixed_vector_hetero())

    def _summary(self, fixed: Sequence[float]) -> Dict[str, float]:
        if self._U is not None:
            return pair_gain_summary(self._sharing_vector(), fixed)
        return self.summarize(self._pair_gains(fixed))

    @staticmethod
    def summarize(gains: Sequence[PairGain]) -> Dict[str, float]:
        values = [g.gain for g in gains]
        values.sort()
        return {
            "pairs": len(values),
            "min": values[0],
            "median": values[len(values) // 2],
            "mean": sum(values) / len(values),
            "max": values[-1],
        }
