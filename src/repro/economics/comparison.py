"""Market-efficiency comparisons (paper Section 5.8, Figures 15-16).

Figure 15 compares the Sharing Architecture against the single best
*static fixed* configuration - the one that maximises the geometric mean
of utility across every (benchmark, utility-function) customer.  For
each pairwise mix of two customers, the gain is

    (U_b1(sharing) + U_b2(sharing)) / (U_b1(fixed) + U_b2(fixed))

Figure 16 compares against a *heterogeneous* multicore in the spirit of
[18]: per utility function the best configuration across the benchmark
suite is chosen, and each customer runs on their utility's tuned core:

    (U_b1(sharing) + U_b2(sharing)) / (U_b1(fixed_c) + U_b2(fixed_d))

Both studies restrict to Market2 (prices track area), as the paper does.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.economics.market import MARKET2, Market
from repro.economics.optimizer import UtilityOptimizer
from repro.economics.utility import STANDARD_UTILITIES, UtilityFunction


@dataclass(frozen=True)
class Customer:
    """One (benchmark, utility) pair - one Cloud customer archetype."""

    benchmark: str
    utility: UtilityFunction

    @property
    def key(self) -> Tuple[str, str]:
        return self.benchmark, self.utility.name


@dataclass(frozen=True)
class PairGain:
    """Utility gain of the Sharing Architecture for one customer pair."""

    customer_a: Tuple[str, str]
    customer_b: Tuple[str, str]
    sharing_utility: float
    fixed_utility: float

    @property
    def gain(self) -> float:
        if self.fixed_utility <= 0:
            return float("inf")
        return self.sharing_utility / self.fixed_utility


def _geometric_mean(values: Sequence[float]) -> float:
    if not values:
        raise ValueError("geometric mean of nothing")
    if any(v <= 0 for v in values):
        return 0.0
    return math.exp(sum(math.log(v) for v in values) / len(values))


class MarketEfficiencyComparison:
    """Pairwise utility-gain studies against fixed architectures."""

    def __init__(self, benchmarks: Sequence[str],
                 utilities: Sequence[UtilityFunction] = STANDARD_UTILITIES,
                 market: Market = MARKET2,
                 optimizer: Optional[UtilityOptimizer] = None,
                 engine=None):
        if not benchmarks:
            raise ValueError("need at least one benchmark")
        self.benchmarks = list(benchmarks)
        self.utilities = list(utilities)
        self.market = market
        self.optimizer = optimizer or UtilityOptimizer(engine=engine)
        # One batch evaluation covers every per-config query below.
        self.optimizer.prime(self.benchmarks)
        self.customers = [
            Customer(benchmark=b, utility=u)
            for b in self.benchmarks
            for u in self.utilities
        ]
        # Per-customer utility on every configuration, computed once.
        self._config_utils: Dict[Tuple[str, str], Dict] = {
            c.key: {
                (cache_kb, slices): self.optimizer.utility_at(
                    c.benchmark, c.utility, self.market, cache_kb, slices
                )
                for cache_kb in self.optimizer.cache_grid
                for slices in self.optimizer.slice_grid
            }
            for c in self.customers
        }
        self._sharing_best: Dict[Tuple[str, str], float] = {
            key: max(utils.values())
            for key, utils in self._config_utils.items()
        }

    # ------------------------------------------------------------------
    # fixed-architecture references
    # ------------------------------------------------------------------

    def best_static_config(self) -> Tuple[float, int]:
        """The single configuration maximising GME across all customers.

        This is the paper's "optimal fixed architecture ... determined
        across all benchmarks and the three utility functions".
        """
        configs = [
            (cache_kb, slices)
            for cache_kb in self.optimizer.cache_grid
            for slices in self.optimizer.slice_grid
        ]
        return max(
            configs,
            key=lambda cfg: _geometric_mean(
                [self._config_utils[c.key][cfg] for c in self.customers]
            ),
        )

    def best_config_for_utility(self, utility: UtilityFunction
                                ) -> Tuple[float, int]:
        """Per-utility best configuration (heterogeneous design point)."""
        configs = [
            (cache_kb, slices)
            for cache_kb in self.optimizer.cache_grid
            for slices in self.optimizer.slice_grid
        ]
        relevant = [c for c in self.customers if c.utility is utility
                    or c.utility.name == utility.name]
        return max(
            configs,
            key=lambda cfg: _geometric_mean(
                [self._config_utils[c.key][cfg] for c in relevant]
            ),
        )

    # ------------------------------------------------------------------
    # pairwise gain studies
    # ------------------------------------------------------------------

    def gains_vs_static(self) -> List[PairGain]:
        """Figure 15: all customer pairs against the best static config."""
        fixed_cfg = self.best_static_config()
        gains: List[PairGain] = []
        n = len(self.customers)
        for i in range(n):
            for j in range(i + 1, n):
                a, b = self.customers[i], self.customers[j]
                sharing = self._sharing_best[a.key] + self._sharing_best[b.key]
                fixed = (self._config_utils[a.key][fixed_cfg]
                         + self._config_utils[b.key][fixed_cfg])
                gains.append(PairGain(a.key, b.key, sharing, fixed))
        return gains

    def gains_vs_heterogeneous(self) -> List[PairGain]:
        """Figure 16: pairs against per-utility tuned heterogeneous cores."""
        per_utility_cfg = {
            u.name: self.best_config_for_utility(u) for u in self.utilities
        }
        gains: List[PairGain] = []
        n = len(self.customers)
        for i in range(n):
            for j in range(i + 1, n):
                a, b = self.customers[i], self.customers[j]
                cfg_a = per_utility_cfg[a.utility.name]
                cfg_b = per_utility_cfg[b.utility.name]
                sharing = self._sharing_best[a.key] + self._sharing_best[b.key]
                fixed = (self._config_utils[a.key][cfg_a]
                         + self._config_utils[b.key][cfg_b])
                gains.append(PairGain(a.key, b.key, sharing, fixed))
        return gains

    @staticmethod
    def summarize(gains: Sequence[PairGain]) -> Dict[str, float]:
        values = [g.gain for g in gains]
        values.sort()
        return {
            "pairs": len(values),
            "min": values[0],
            "median": values[len(values) // 2],
            "mean": sum(values) / len(values),
            "max": values[-1],
        }
