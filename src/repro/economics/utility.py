"""Cloud-customer utility functions (paper Section 5.6, Table 5).

A customer's utility is ``U(c, s, v)`` where ``c`` is L2 cache per VCore,
``s`` Slices per VCore, and ``v`` the number of (virtual) cores bought.
The paper's three example functions span the throughput/latency spectrum:

* **Utility1** (latency-tolerant, Equation 4): ``U = v * P(c, s)`` -
  bulk encryption, image resizing, detached MapReduce;
* **Utility2**: ``U = sqrt(v) * P(c, s)^2`` - mixed preferences;
* **Utility3** (OLDI, Equation 1): ``U = cbrt(v) * P(c, s)^3`` -
  query-serving workloads where sub-second latency dominates, analogous
  to the Energy*Delay^2 / Energy*Delay^3 metrics of the energy
  literature.

The root on ``v`` keeps the budget's marginal utility comparable across
the family: all three agree when ``v = 1``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple


@dataclass(frozen=True)
class UtilityFunction:
    """``U = v^(1/k) * P^k`` for a performance-preference exponent k."""

    name: str
    perf_exponent: float
    description: str = ""

    def __post_init__(self) -> None:
        if self.perf_exponent <= 0:
            raise ValueError("performance exponent must be positive")

    def value(self, performance: float, vcores: float) -> float:
        """Utility of buying ``vcores`` cores each performing at ``performance``."""
        if performance < 0 or vcores < 0:
            raise ValueError("performance and vcores cannot be negative")
        k = self.perf_exponent
        return (vcores ** (1.0 / k)) * (performance ** k)

    def favors_throughput(self) -> bool:
        return self.perf_exponent <= 1.0

    def __str__(self) -> str:
        return self.name


#: Table 5's three example customers, sorted from throughput-favouring to
#: single-thread-performance-favouring.
UTILITY1 = UtilityFunction(
    name="Utility1",
    perf_exponent=1.0,
    description="latency tolerant, throughput oriented (U = v * P)",
)
UTILITY2 = UtilityFunction(
    name="Utility2",
    perf_exponent=2.0,
    description="mixed preference (U = sqrt(v) * P^2)",
)
UTILITY3 = UtilityFunction(
    name="Utility3",
    perf_exponent=3.0,
    description="OLDI, single-stream latency dominated (U = cbrt(v) * P^3)",
)

STANDARD_UTILITIES: Tuple[UtilityFunction, ...] = (UTILITY1, UTILITY2, UTILITY3)
