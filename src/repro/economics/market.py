"""Resource markets (paper Section 5.7).

A market assigns prices to the two fine-grain resources - Slices and
64 KB L2 Cache Banks - and the budget constraint (Equation 2) converts a
customer's budget into the number of VCores they can afford:

    v = B / (C_c * c + C_s * s)

The paper's three markets stress how optimal configurations move when
demand-driven prices depart from area cost:

* **Market2** - prices equal area: 1 Slice costs the same as 128 KB of
  cache (two banks);
* **Market1** - Slices in high demand: four times their equal-area cost;
* **Market3** - cache in high demand: four times its equal-area cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

#: Capacity of one L2 bank in KB (paper Section 3.5).
BANK_KB = 64.0


@dataclass(frozen=True)
class Market:
    """Per-resource prices, in arbitrary currency per hour.

    ``fixed_cost`` is the per-VCore overhead every VM instance carries
    regardless of its core composition - DRAM, disk, NIC and hypervisor
    share (the beyond-core resources the paper prices separately,
    Section 2.1, plus the administrative preference for fewer, larger
    instances noted in Section 2.2).  Without it, Equation 2 degenerates:
    the cheapest possible VCore always maximises throughput utility.
    """

    name: str
    slice_price: float
    bank_price: float
    fixed_cost: float = 8.0
    description: str = ""

    def __post_init__(self) -> None:
        if self.slice_price <= 0 or self.bank_price <= 0:
            raise ValueError("prices must be positive")
        if self.fixed_cost < 0:
            raise ValueError("fixed cost cannot be negative")

    def cost(self, cache_kb: float, slices: int) -> float:
        """Hourly cost of one VCore configuration (Equation 2 denominator,
        plus the per-instance fixed overhead)."""
        if cache_kb < 0:
            raise ValueError("cache size cannot be negative")
        if slices < 1:
            raise ValueError("a VCore has at least one Slice")
        banks = cache_kb / BANK_KB
        return (self.bank_price * banks + self.slice_price * slices
                + self.fixed_cost)

    def vcores_affordable(self, budget: float, cache_kb: float,
                          slices: int) -> float:
        """Equation 2: ``v = B / (C_c * c + C_s * s)``.

        The paper treats ``v`` as continuous (workloads replicate within
        and across VMs without loss of generality, Section 5.6).
        """
        if budget < 0:
            raise ValueError("budget cannot be negative")
        return budget / self.cost(cache_kb, slices)

    def relative_slice_premium(self) -> float:
        """Slice price relative to its equal-area price (2 banks)."""
        return self.slice_price / (2.0 * self.bank_price)


#: Slices priced at four times equal-area cost (high demand for compute).
MARKET1 = Market(
    name="Market1",
    slice_price=8.0,
    bank_price=1.0,
    description="Slices at 4x their equal-area cost",
)
#: Prices track area: one Slice == two 64 KB banks == 128 KB.
MARKET2 = Market(
    name="Market2",
    slice_price=2.0,
    bank_price=1.0,
    description="cost equals area (1 Slice = 128 KB cache)",
)
#: Cache priced at four times equal-area cost (high demand for cache).
MARKET3 = Market(
    name="Market3",
    slice_price=2.0,
    bank_price=4.0,
    description="cache at 4x its equal-area cost",
)

STANDARD_MARKETS: Tuple[Market, ...] = (MARKET1, MARKET2, MARKET3)
