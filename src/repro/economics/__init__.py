"""The economic model (paper Sections 2, 5.5-5.8).

The Sharing Architecture's headline contribution is not raw performance
but *market efficiency*: by pricing Slices and cache banks individually,
an IaaS provider lets each customer maximise their own utility function
``U(c, s, v)`` under a budget, and total utility (hence provider profit)
rises relative to any fixed architecture.

This package implements:

* the three example utility functions of Table 5 (throughput-oriented
  through single-thread-performance-oriented);
* the budget constraint of Equations 2-3;
* the three markets of Section 5.7 (resource prices tracking or departing
  from area);
* performance-area efficiency metrics (Table 4);
* the utility optimiser (Table 6) and the market-efficiency comparisons
  against static fixed and heterogeneous architectures (Figures 15-16);
* the dynamic-phase analysis (Table 7).

Two interchangeable backends execute the hot paths: the vectorized
market kernel of :mod:`repro.economics.tensor` (``backend="numpy"``, the
default when numpy is importable) and the scalar reference loops
(``backend="python"``).  Both produce bit-identical optimal
configurations; see DESIGN.md's "Vectorized market kernel" section for
the fp-tolerance policy on utility *values*.
"""

from repro.economics.utility import (
    UtilityFunction,
    UTILITY1,
    UTILITY2,
    UTILITY3,
    STANDARD_UTILITIES,
)
from repro.economics.market import Market, MARKET1, MARKET2, MARKET3, STANDARD_MARKETS
from repro.economics.optimizer import UtilityOptimizer, OptimalChoice
from repro.economics.efficiency import (
    EfficiencyMetric,
    PERF_PER_AREA,
    PERF2_PER_AREA,
    PERF3_PER_AREA,
    STANDARD_METRICS,
    optimal_configuration,
)
from repro.economics.comparison import (
    MarketEfficiencyComparison,
    PairGain,
)
from repro.economics.phases_analysis import PhaseScheduleResult, analyze_phases
from repro.economics.backend import (
    BACKENDS,
    DEFAULT_BACKEND,
    HAVE_NUMPY,
    resolve_backend,
)
from repro.economics.tensor import MarketKernel

__all__ = [
    "UtilityFunction",
    "UTILITY1",
    "UTILITY2",
    "UTILITY3",
    "STANDARD_UTILITIES",
    "Market",
    "MARKET1",
    "MARKET2",
    "MARKET3",
    "STANDARD_MARKETS",
    "UtilityOptimizer",
    "OptimalChoice",
    "EfficiencyMetric",
    "PERF_PER_AREA",
    "PERF2_PER_AREA",
    "PERF3_PER_AREA",
    "STANDARD_METRICS",
    "optimal_configuration",
    "MarketEfficiencyComparison",
    "PairGain",
    "PhaseScheduleResult",
    "analyze_phases",
    "BACKENDS",
    "DEFAULT_BACKEND",
    "HAVE_NUMPY",
    "MarketKernel",
    "resolve_backend",
]
