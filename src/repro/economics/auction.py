"""Spot-market auction for fine-grain resources.

Paper Section 2.1 notes EC2's Spot Pricing auction for whole VM
instances, and Section 2.3 proposes "a market where the cloud provider
auctions off all resources down to the ALU, KB of cache, fetch unit".
This module implements that market-clearing process: a tatonnement
auction in which every customer's meta-program re-submits its demand at
the current prices, and prices for Slices and Cache Banks move with
their individual excess demand until the market (approximately) clears.

The fixed point is the economically efficient allocation the paper's
utility analysis assumes: each customer holds the bundle that maximises
their utility at prices where demand meets supply.

A caveat worth stating: with *lumpy* demand (optima move in grid steps)
a Walrasian equilibrium need not exist - a population of identical
bidders under scarce supply can oscillate between two bundles forever.
``clear`` then returns ``converged=False`` with the final prices, and
the provider must ration (exactly what EC2's spot market does when it
interrupts instances).  Diverse populations, the realistic case, clear
in a handful of rounds.

Backends: each tatonnement round is one best-response computation for
every bidder.  On ``"numpy"`` the bidders' performance grids are stacked
into one ``(bidders, cache, slices)`` tensor once, and each round is a
broadcasted cost/utility evaluation plus a flat argmax per bidder -
:class:`Allocation` objects are only materialized for the final round.
The ``"python"`` path keeps the per-bidder scalar optimizer as the
reference implementation.  The price-adjustment/convergence logic is
shared verbatim between the two.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.economics.market import Market
from repro.economics.optimizer import UtilityOptimizer
from repro.economics.tensor import MarketKernel, resolve_backend
from repro.economics.utility import UtilityFunction
from repro.perfmodel.model import AnalyticModel, _resolve


@dataclass(frozen=True)
class Bidder:
    """One customer participating in the spot market."""

    name: str
    benchmark: str
    utility: UtilityFunction
    budget: float

    def __post_init__(self) -> None:
        if self.budget <= 0:
            raise ValueError("budget must be positive")


@dataclass(frozen=True)
class Allocation:
    """What one bidder holds at the clearing prices."""

    bidder: str
    cache_kb: float
    slices: int
    vcores: float
    utility: float

    @property
    def slices_demanded(self) -> float:
        return self.vcores * self.slices

    @property
    def banks_demanded(self) -> float:
        return self.vcores * (self.cache_kb / 64.0)


@dataclass
class ClearingResult:
    """Outcome of the tatonnement.

    ``rationed`` marks the lumpy-demand case: customers' optima move in
    grid steps, so no price clears the market exactly; the price settles
    and the provider rations the over-demanded resource pro rata (the
    spot-market behaviour of interrupted EC2 spot instances).
    """

    slice_price: float
    bank_price: float
    rounds: int
    converged: bool
    allocations: List[Allocation]
    slice_supply: float
    bank_supply: float
    rationed: bool = False

    @property
    def total_welfare(self) -> float:
        """Global utility - the market-efficiency objective (§2.2)."""
        return sum(a.utility for a in self.allocations)

    @property
    def slice_demand(self) -> float:
        return sum(a.slices_demanded for a in self.allocations)

    @property
    def bank_demand(self) -> float:
        return sum(a.banks_demanded for a in self.allocations)

    @property
    def provider_revenue(self) -> float:
        return (self.slice_price * min(self.slice_demand, self.slice_supply)
                + self.bank_price * min(self.bank_demand, self.bank_supply))


class SpotMarket:
    """Tatonnement over Slice and bank prices."""

    def __init__(self, slice_supply: float, bank_supply: float,
                 fixed_cost: float = 8.0,
                 model: Optional[AnalyticModel] = None,
                 adjustment_rate: float = 0.3,
                 tolerance: float = 0.05,
                 max_rounds: int = 60,
                 backend: Optional[str] = None,
                 obs=None):
        if slice_supply <= 0 or bank_supply <= 0:
            raise ValueError("supplies must be positive")
        if not 0 < adjustment_rate < 1:
            raise ValueError("adjustment rate must be in (0, 1)")
        self.slice_supply = slice_supply
        self.bank_supply = bank_supply
        self.fixed_cost = fixed_cost
        self.model = model or AnalyticModel()
        self.adjustment_rate = adjustment_rate
        self.tolerance = tolerance
        self.max_rounds = max_rounds
        self.backend = resolve_backend(backend)
        from repro.obs import OBS_OFF

        self._obs = obs or OBS_OFF
        scope = self._obs.scope("economics.auction")
        self._c_rounds = scope.counter("rounds")
        self._c_bids = scope.counter("bid_evaluations")
        self._t_clear = scope.timer("clear_s")
        self._kernel: Optional[MarketKernel] = None

    def _demands(self, bidders: Sequence[Bidder], slice_price: float,
                 bank_price: float) -> List[Allocation]:
        """Scalar reference: one best-response optimizer per bidder."""
        market = Market(name="spot", slice_price=slice_price,
                        bank_price=bank_price, fixed_cost=self.fixed_cost)
        allocations = []
        for bidder in bidders:
            optimizer = UtilityOptimizer(model=self.model,
                                         budget=bidder.budget,
                                         backend="python")
            choice = optimizer.best(bidder.benchmark, bidder.utility, market)
            allocations.append(Allocation(
                bidder=bidder.name,
                cache_kb=choice.cache_kb,
                slices=choice.slices,
                vcores=choice.vcores,
                utility=choice.utility,
            ))
        return allocations

    # ------------------------------------------------------------------
    # vectorized best responses (numpy backend)
    # ------------------------------------------------------------------

    def _prepare_numpy(self, bidders: Sequence[Bidder]) -> dict:
        """Stack per-bidder state into round-reusable tensors."""
        import numpy as np

        if self._kernel is None:
            self._kernel = MarketKernel(model=self.model)
        kernel = self._kernel
        profiles = [_resolve(b.benchmark) for b in bidders]
        kernel.prime(profiles)
        perf = np.stack([kernel.perf_row(p) for p in profiles])
        k = np.array([b.utility.perf_exponent for b in bidders])
        budgets = np.array([b.budget for b in bidders])
        cache = np.asarray(kernel.cache_grid, dtype=float)
        slices = np.asarray(kernel.slice_grid, dtype=float)
        return {
            "perf": perf,                       # (n, C, S)
            "perf_k": perf ** k[:, None, None],  # (n, C, S), round-invariant
            "inv_k": (1.0 / k)[:, None],         # (n, 1)
            "budgets": budgets[:, None],         # (n, 1)
            "slices_row": slices[None, :],       # broadcast (C, S) pieces
            "banks_row": (cache / 64.0)[:, None],
            "n_slices": len(kernel.slice_grid),
        }

    def _round_numpy(self, state: dict, slice_price: float,
                     bank_price: float):
        """One tatonnement round for every bidder at once.

        Returns ``(choices, slice_demand, bank_demand)`` where
        ``choices`` holds flat per-bidder argmax indices plus the vcores
        and utility columns needed to build :class:`Allocation` objects
        for the final round only.
        """
        import numpy as np

        # Same op order as Market.cost: banks*C_b + slices*C_s + fixed.
        cost = (bank_price * state["banks_row"]
                + slice_price * state["slices_row"] + self.fixed_cost)
        flat_cost = cost.reshape(1, -1)               # (1, C*S)
        vcores = state["budgets"] / flat_cost          # (n, C*S)
        n = state["perf"].shape[0]
        utility = (vcores ** state["inv_k"]) * state["perf_k"].reshape(n, -1)
        winner = np.argmax(utility, axis=1)            # first max: scalar tie order
        rows = np.arange(n)
        v_best = vcores[rows, winner]
        ci, si = np.divmod(winner, state["n_slices"])
        slices_per = state["slices_row"][0, si]
        banks_per = state["banks_row"][ci, 0]
        slice_demand = float(np.sum(v_best * slices_per))
        bank_demand = float(np.sum(v_best * banks_per))
        choices = {
            "winner": winner,
            "vcores": v_best,
            "utility": utility[rows, winner],
            "ci": ci,
            "si": si,
        }
        return choices, slice_demand, bank_demand

    def _allocations_from(self, bidders: Sequence[Bidder], state: dict,
                          choices: dict) -> List[Allocation]:
        kernel = self._kernel
        assert kernel is not None
        return [
            Allocation(
                bidder=b.name,
                cache_kb=kernel.cache_grid[int(choices["ci"][i])],
                slices=kernel.slice_grid[int(choices["si"][i])],
                vcores=float(choices["vcores"][i]),
                utility=float(choices["utility"][i]),
            )
            for i, b in enumerate(bidders)
        ]

    def clear(self, bidders: Sequence[Bidder],
              initial_slice_price: float = 2.0,
              initial_bank_price: float = 1.0) -> ClearingResult:
        """Iterate prices until excess demand is within tolerance."""
        if not bidders:
            raise ValueError("need at least one bidder")
        with self._t_clear:
            return self._clear(bidders, initial_slice_price,
                               initial_bank_price)

    def _clear(self, bidders: Sequence[Bidder],
               initial_slice_price: float,
               initial_bank_price: float) -> ClearingResult:
        vectorized = self.backend == "numpy"
        state = self._prepare_numpy(bidders) if vectorized else None
        slice_price = initial_slice_price
        bank_price = initial_bank_price
        allocations: List[Allocation] = []
        choices: Optional[dict] = None
        converged = False
        rationed = False
        stable_rounds = 0
        last_demand = (None, None)
        rounds = 0
        for rounds in range(1, self.max_rounds + 1):
            self._c_rounds.inc()
            self._c_bids.inc(len(bidders))
            if vectorized:
                choices, slice_demand, bank_demand = self._round_numpy(
                    state, slice_price, bank_price
                )
            else:
                allocations = self._demands(bidders, slice_price, bank_price)
                slice_demand = sum(a.slices_demanded for a in allocations)
                bank_demand = sum(a.banks_demanded for a in allocations)
            slice_excess = slice_demand / self.slice_supply - 1.0
            bank_excess = bank_demand / self.bank_supply - 1.0
            # Cleared: no over-demand on either resource.  Under-demand
            # is acceptable (free disposal): with excess supply the
            # competitive price falls toward the floor and idle capacity
            # simply stays idle - the provider cannot force customers to
            # buy.
            floor = 0.01
            no_overdemand = (slice_excess <= self.tolerance
                             and bank_excess <= self.tolerance)
            at_floor = slice_price <= floor * 1.01 and bank_price <= floor * 1.01
            if rounds > 1 and no_overdemand and (
                slice_excess >= -self.tolerance
                or bank_excess >= -self.tolerance
                or at_floor
            ):
                converged = True
                break
            # Lumpy demand: optima move in grid steps, so demand can be
            # price-insensitive over a band.  If it has not moved for
            # several rounds the price has settled - accept and ration.
            demand = (round(slice_demand, 1), round(bank_demand, 1))
            stable_rounds = stable_rounds + 1 if demand == last_demand else 0
            last_demand = demand
            if stable_rounds >= 5:
                converged = True
                rationed = not no_overdemand
                break
            # Mildly damped tatonnement: over-demand raises a price,
            # under-demand lowers it toward the floor.
            k = self.adjustment_rate / (1.0 + rounds / 40.0)
            slice_price = max(floor,
                              slice_price * math.exp(k * _clamp(slice_excess)))
            bank_price = max(floor,
                             bank_price * math.exp(k * _clamp(bank_excess)))
        if vectorized and choices is not None:
            allocations = self._allocations_from(bidders, state, choices)
        return ClearingResult(
            slice_price=slice_price,
            bank_price=bank_price,
            rounds=rounds,
            converged=converged,
            allocations=allocations,
            slice_supply=self.slice_supply,
            bank_supply=self.bank_supply,
            rationed=rationed,
        )


def _clamp(x: float, bound: float = 2.0) -> float:
    return max(-bound, min(bound, x))
