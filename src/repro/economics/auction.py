"""Spot-market auction for fine-grain resources.

Paper Section 2.1 notes EC2's Spot Pricing auction for whole VM
instances, and Section 2.3 proposes "a market where the cloud provider
auctions off all resources down to the ALU, KB of cache, fetch unit".
This module implements that market-clearing process: a tatonnement
auction in which every customer's meta-program re-submits its demand at
the current prices, and prices for Slices and Cache Banks move with
their individual excess demand until the market (approximately) clears.

The fixed point is the economically efficient allocation the paper's
utility analysis assumes: each customer holds the bundle that maximises
their utility at prices where demand meets supply.

A caveat worth stating: with *lumpy* demand (optima move in grid steps)
a Walrasian equilibrium need not exist - a population of identical
bidders under scarce supply can oscillate between two bundles forever.
``clear`` then returns ``converged=False`` with the final prices, and
the provider must ration (exactly what EC2's spot market does when it
interrupts instances).  Diverse populations, the realistic case, clear
in a handful of rounds.

Backends: each tatonnement round is one best-response computation for
every bidder.  On ``"numpy"`` the bidders' performance grids are stacked
into one ``(bidders, cache, slices)`` tensor once, and each round is a
broadcasted cost/utility evaluation plus a flat argmax per bidder -
:class:`Allocation` objects are only materialized for the final round.
The ``"python"`` path keeps the per-bidder scalar optimizer as the
reference implementation.  The price-adjustment/convergence logic is
shared verbatim between the two.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.economics.backend import resolve_backend
from repro.economics.tensor import MarketKernel
from repro.economics.utility import UtilityFunction
from repro.perfmodel.model import AnalyticModel


@dataclass(frozen=True)
class Bidder:
    """One customer participating in the spot market."""

    name: str
    benchmark: str
    utility: UtilityFunction
    budget: float

    def __post_init__(self) -> None:
        if self.budget <= 0:
            raise ValueError("budget must be positive")


@dataclass(frozen=True)
class Allocation:
    """What one bidder holds at the clearing prices."""

    bidder: str
    cache_kb: float
    slices: int
    vcores: float
    utility: float

    @property
    def slices_demanded(self) -> float:
        return self.vcores * self.slices

    @property
    def banks_demanded(self) -> float:
        return self.vcores * (self.cache_kb / 64.0)


@dataclass
class ClearingResult:
    """Outcome of the tatonnement.

    ``rationed`` marks the lumpy-demand case: customers' optima move in
    grid steps, so no price clears the market exactly; the price settles
    and the provider rations the over-demanded resource pro rata (the
    spot-market behaviour of interrupted EC2 spot instances).
    """

    slice_price: float
    bank_price: float
    rounds: int
    converged: bool
    allocations: List[Allocation]
    slice_supply: float
    bank_supply: float
    rationed: bool = False

    @property
    def total_welfare(self) -> float:
        """Global utility - the market-efficiency objective (§2.2)."""
        return sum(a.utility for a in self.allocations)

    @property
    def slice_demand(self) -> float:
        return sum(a.slices_demanded for a in self.allocations)

    @property
    def bank_demand(self) -> float:
        return sum(a.banks_demanded for a in self.allocations)

    @property
    def provider_revenue(self) -> float:
        return (self.slice_price * min(self.slice_demand, self.slice_supply)
                + self.bank_price * min(self.bank_demand, self.bank_supply))


class SpotMarket:
    """Tatonnement over Slice and bank prices."""

    def __init__(self, slice_supply: float, bank_supply: float,
                 fixed_cost: float = 8.0,
                 model: Optional[AnalyticModel] = None,
                 adjustment_rate: float = 0.3,
                 tolerance: float = 0.05,
                 max_rounds: int = 60,
                 backend: Optional[str] = None,
                 obs=None):
        if slice_supply <= 0 or bank_supply <= 0:
            raise ValueError("supplies must be positive")
        if not 0 < adjustment_rate < 1:
            raise ValueError("adjustment rate must be in (0, 1)")
        self.slice_supply = slice_supply
        self.bank_supply = bank_supply
        self.fixed_cost = fixed_cost
        self.model = model or AnalyticModel()
        self.adjustment_rate = adjustment_rate
        self.tolerance = tolerance
        self.max_rounds = max_rounds
        self.backend = resolve_backend(backend)
        from repro.obs import OBS_OFF

        self._obs = obs or OBS_OFF
        scope = self._obs.scope("economics.auction")
        self._c_rounds = scope.counter("rounds")
        self._c_bids = scope.counter("bid_evaluations")
        self._t_clear = scope.timer("clear_s")
        self._kernel: Optional[MarketKernel] = None

    def clear(self, bidders: Sequence[Bidder],
              initial_slice_price: float = 2.0,
              initial_bank_price: float = 1.0) -> ClearingResult:
        """Iterate prices until excess demand is within tolerance.

        Since the streaming redesign this is a thin wrapper: the
        bidders are replayed as an arrival-only event stream into an
        economics-only :class:`~repro.cloud.service.AllocationService`,
        whose cold-start tatonnement reproduces the historical loop
        bit for bit (same stacked tensors in bidder order on numpy,
        same per-bidder reference optimizers on python, same two-round
        convergence minimum).
        """
        if not bidders:
            raise ValueError("need at least one bidder")
        with self._t_clear:
            # Imported here, not at module level: the service imports
            # this module's dataclasses.
            from repro.cloud.service import AllocationService, TenantRequest

            service = AllocationService(
                slice_supply=self.slice_supply,
                bank_supply=self.bank_supply,
                fixed_cost=self.fixed_cost,
                model=self.model,
                adjustment_rate=self.adjustment_rate,
                tolerance=self.tolerance,
                max_rounds=self.max_rounds,
                backend=self.backend,
                kernel=self._kernel,
            )
            for bidder in bidders:
                service.register(TenantRequest(
                    name=bidder.name, benchmark=bidder.benchmark,
                    utility=bidder.utility, budget=bidder.budget,
                ))
            result = service.clear_batch(initial_slice_price,
                                         initial_bank_price)
            # Keep the kernel so repeated clears share performance rows.
            self._kernel = service.kernel
            self._c_rounds.inc(result.rounds)
            self._c_bids.inc(result.rounds * len(bidders))
            return result


def _clamp(x: float, bound: float = 2.0) -> float:
    return max(-bound, min(bound, x))
