"""Spot-market auction for fine-grain resources.

Paper Section 2.1 notes EC2's Spot Pricing auction for whole VM
instances, and Section 2.3 proposes "a market where the cloud provider
auctions off all resources down to the ALU, KB of cache, fetch unit".
This module implements that market-clearing process: a tatonnement
auction in which every customer's meta-program re-submits its demand at
the current prices, and prices for Slices and Cache Banks move with
their individual excess demand until the market (approximately) clears.

The fixed point is the economically efficient allocation the paper's
utility analysis assumes: each customer holds the bundle that maximises
their utility at prices where demand meets supply.

A caveat worth stating: with *lumpy* demand (optima move in grid steps)
a Walrasian equilibrium need not exist - a population of identical
bidders under scarce supply can oscillate between two bundles forever.
``clear`` then returns ``converged=False`` with the final prices, and
the provider must ration (exactly what EC2's spot market does when it
interrupts instances).  Diverse populations, the realistic case, clear
in a handful of rounds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.economics.market import Market
from repro.economics.optimizer import UtilityOptimizer
from repro.economics.utility import UtilityFunction
from repro.perfmodel.model import AnalyticModel


@dataclass(frozen=True)
class Bidder:
    """One customer participating in the spot market."""

    name: str
    benchmark: str
    utility: UtilityFunction
    budget: float

    def __post_init__(self) -> None:
        if self.budget <= 0:
            raise ValueError("budget must be positive")


@dataclass(frozen=True)
class Allocation:
    """What one bidder holds at the clearing prices."""

    bidder: str
    cache_kb: float
    slices: int
    vcores: float
    utility: float

    @property
    def slices_demanded(self) -> float:
        return self.vcores * self.slices

    @property
    def banks_demanded(self) -> float:
        return self.vcores * (self.cache_kb / 64.0)


@dataclass
class ClearingResult:
    """Outcome of the tatonnement.

    ``rationed`` marks the lumpy-demand case: customers' optima move in
    grid steps, so no price clears the market exactly; the price settles
    and the provider rations the over-demanded resource pro rata (the
    spot-market behaviour of interrupted EC2 spot instances).
    """

    slice_price: float
    bank_price: float
    rounds: int
    converged: bool
    allocations: List[Allocation]
    slice_supply: float
    bank_supply: float
    rationed: bool = False

    @property
    def total_welfare(self) -> float:
        """Global utility - the market-efficiency objective (§2.2)."""
        return sum(a.utility for a in self.allocations)

    @property
    def slice_demand(self) -> float:
        return sum(a.slices_demanded for a in self.allocations)

    @property
    def bank_demand(self) -> float:
        return sum(a.banks_demanded for a in self.allocations)

    @property
    def provider_revenue(self) -> float:
        return (self.slice_price * min(self.slice_demand, self.slice_supply)
                + self.bank_price * min(self.bank_demand, self.bank_supply))


class SpotMarket:
    """Tatonnement over Slice and bank prices."""

    def __init__(self, slice_supply: float, bank_supply: float,
                 fixed_cost: float = 8.0,
                 model: Optional[AnalyticModel] = None,
                 adjustment_rate: float = 0.3,
                 tolerance: float = 0.05,
                 max_rounds: int = 60):
        if slice_supply <= 0 or bank_supply <= 0:
            raise ValueError("supplies must be positive")
        if not 0 < adjustment_rate < 1:
            raise ValueError("adjustment rate must be in (0, 1)")
        self.slice_supply = slice_supply
        self.bank_supply = bank_supply
        self.fixed_cost = fixed_cost
        self.model = model or AnalyticModel()
        self.adjustment_rate = adjustment_rate
        self.tolerance = tolerance
        self.max_rounds = max_rounds

    def _demands(self, bidders: Sequence[Bidder], slice_price: float,
                 bank_price: float) -> List[Allocation]:
        market = Market(name="spot", slice_price=slice_price,
                        bank_price=bank_price, fixed_cost=self.fixed_cost)
        allocations = []
        for bidder in bidders:
            optimizer = UtilityOptimizer(model=self.model,
                                         budget=bidder.budget)
            choice = optimizer.best(bidder.benchmark, bidder.utility, market)
            allocations.append(Allocation(
                bidder=bidder.name,
                cache_kb=choice.cache_kb,
                slices=choice.slices,
                vcores=choice.vcores,
                utility=choice.utility,
            ))
        return allocations

    def clear(self, bidders: Sequence[Bidder],
              initial_slice_price: float = 2.0,
              initial_bank_price: float = 1.0) -> ClearingResult:
        """Iterate prices until excess demand is within tolerance."""
        if not bidders:
            raise ValueError("need at least one bidder")
        slice_price = initial_slice_price
        bank_price = initial_bank_price
        allocations: List[Allocation] = []
        converged = False
        rationed = False
        stable_rounds = 0
        last_demand = (None, None)
        rounds = 0
        for rounds in range(1, self.max_rounds + 1):
            allocations = self._demands(bidders, slice_price, bank_price)
            slice_excess = (sum(a.slices_demanded for a in allocations)
                            / self.slice_supply - 1.0)
            bank_excess = (sum(a.banks_demanded for a in allocations)
                           / self.bank_supply - 1.0)
            # Cleared: no over-demand on either resource.  Under-demand
            # is acceptable (free disposal): with excess supply the
            # competitive price falls toward the floor and idle capacity
            # simply stays idle - the provider cannot force customers to
            # buy.
            floor = 0.01
            no_overdemand = (slice_excess <= self.tolerance
                             and bank_excess <= self.tolerance)
            at_floor = slice_price <= floor * 1.01 and bank_price <= floor * 1.01
            if rounds > 1 and no_overdemand and (
                slice_excess >= -self.tolerance
                or bank_excess >= -self.tolerance
                or at_floor
            ):
                converged = True
                break
            # Lumpy demand: optima move in grid steps, so demand can be
            # price-insensitive over a band.  If it has not moved for
            # several rounds the price has settled - accept and ration.
            demand = (round(sum(a.slices_demanded for a in allocations), 1),
                      round(sum(a.banks_demanded for a in allocations), 1))
            stable_rounds = stable_rounds + 1 if demand == last_demand else 0
            last_demand = demand
            if stable_rounds >= 5:
                converged = True
                rationed = not no_overdemand
                break
            # Mildly damped tatonnement: over-demand raises a price,
            # under-demand lowers it toward the floor.
            k = self.adjustment_rate / (1.0 + rounds / 40.0)
            slice_price = max(floor,
                              slice_price * math.exp(k * _clamp(slice_excess)))
            bank_price = max(floor,
                             bank_price * math.exp(k * _clamp(bank_excess)))
        return ClearingResult(
            slice_price=slice_price,
            bank_price=bank_price,
            rounds=rounds,
            converged=converged,
            allocations=allocations,
            slice_supply=self.slice_supply,
            bank_supply=self.bank_supply,
            rationed=rationed,
        )


def _clamp(x: float, bound: float = 2.0) -> float:
    return max(-bound, min(bound, x))
