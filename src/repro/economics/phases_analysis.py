"""Dynamic-phase reconfiguration analysis (paper Section 5.10, Table 7).

gcc is divided into 10 phases; for each performance-area metric the
optimal VCore configuration is found per phase, and the dynamic schedule
(reconfiguring at phase boundaries) is compared with the best *static*
configuration for the whole program.  Reconfiguration costs 10 000 cycles
when the cache allocation changes and 500 cycles when only the Slice
count changes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.area.model import AreaModel
from repro.core.reconfig import ReconfigurationEngine
from repro.economics.efficiency import EfficiencyMetric
from repro.perfmodel.model import AnalyticModel, CACHE_GRID_KB, SLICE_GRID
from repro.trace.phases import PhasedProfile


@dataclass(frozen=True)
class PhaseScheduleResult:
    """Dynamic vs static outcome for one metric."""

    metric_name: str
    per_phase_configs: Tuple[Tuple[float, int], ...]
    static_config: Tuple[float, int]
    dynamic_score: float
    static_score: float
    reconfig_cycles: int

    @property
    def gain(self) -> float:
        """Fractional improvement of dynamic over static (paper: 9-19%)."""
        if self.static_score <= 0:
            return float("inf")
        return self.dynamic_score / self.static_score - 1.0


def _geometric_mean(values: Sequence[float]) -> float:
    if any(v <= 0 for v in values):
        return 0.0
    return math.exp(sum(math.log(v) for v in values) / len(values))


def analyze_phases(
    phased: PhasedProfile,
    metric: EfficiencyMetric,
    model: Optional[AnalyticModel] = None,
    area_model: Optional[AreaModel] = None,
    reconfig: Optional[ReconfigurationEngine] = None,
    cache_grid: Sequence[float] = CACHE_GRID_KB,
    slice_grid: Sequence[int] = SLICE_GRID,
) -> PhaseScheduleResult:
    """Compare per-phase reconfiguration with the best static config.

    Scores are the geometric mean across phases of
    ``performance^k / area`` (matching the paper's GME aggregation);
    the dynamic score is discounted by the reconfiguration overhead as a
    fraction of total execution cycles, mirroring Table 7's accounting.
    """
    model = model or AnalyticModel()
    area_model = area_model or AreaModel()
    reconfig = reconfig or ReconfigurationEngine()

    configs = [(c, s) for c in cache_grid for s in slice_grid]

    def metric_at(profile, cfg: Tuple[float, int]) -> float:
        cache_kb, slices = cfg
        perf = model.performance(profile, cache_kb, slices)
        return metric.value(
            perf,
            area_model.vcore_area(cache_kb, slices, include_uncore=True),
        )

    # --- dynamic schedule: per-phase optimum ---
    per_phase = [
        max(configs, key=lambda cfg: metric_at(phase.profile, cfg))
        for phase in phased
    ]
    dynamic_scores = [
        metric_at(phase.profile, cfg) for phase, cfg in zip(phased, per_phase)
    ]

    # --- reconfiguration overhead as a cycle fraction ---
    reconfig_cycles = reconfig.schedule_cost(per_phase)
    total_cycles = 0.0
    for phase, cfg in zip(phased, per_phase):
        perf = model.performance(phase.profile, cfg[0], cfg[1])
        total_cycles += phase.instructions / perf
    overhead_factor = total_cycles / (total_cycles + reconfig_cycles)

    dynamic_score = _geometric_mean(dynamic_scores) * overhead_factor

    # --- best static configuration across all phases ---
    static_cfg = max(
        configs,
        key=lambda cfg: _geometric_mean(
            [metric_at(phase.profile, cfg) for phase in phased]
        ),
    )
    static_score = _geometric_mean(
        [metric_at(phase.profile, static_cfg) for phase in phased]
    )

    return PhaseScheduleResult(
        metric_name=metric.name,
        per_phase_configs=tuple(per_phase),
        static_config=static_cfg,
        dynamic_score=dynamic_score,
        static_score=static_score,
        reconfig_cycles=reconfig_cycles,
    )
