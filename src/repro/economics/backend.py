"""The single shared entry point for economics backend selection.

Every layer that evaluates market economics - the optimizer, the
pairwise comparisons, the efficiency tables, the auction, the streaming
allocation service, engine work units and both CLIs - accepts a
``backend=`` keyword and routes it through :func:`resolve_backend`
here.  Historically this lived in :mod:`repro.economics.tensor`;
importing it from there still works but emits a
``DeprecationWarning`` (see the module ``__getattr__`` shim in
``tensor.py``).

Two backends exist:

* ``"numpy"`` - the vectorized market kernel (tensors over the config
  grid); the default whenever numpy imports;
* ``"python"`` - the scalar reference loops, kept for equivalence
  suites and numpy-less installs.

``resolve_backend(None)`` returns :data:`DEFAULT_BACKEND`, and asking
for ``"numpy"`` without numpy installed silently degrades to
``"python"`` (same numbers, scalar speed) so library code never
hard-fails on the optional import.
"""

from __future__ import annotations

from typing import Optional

try:  # pragma: no cover - exercised implicitly by every numpy test
    import numpy  # noqa: F401  (import probe only)

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover - the no-numpy container case
    HAVE_NUMPY = False

#: Backend names accepted throughout the economics layer.
BACKENDS = ("numpy", "python")

#: What ``backend=None`` resolves to.
DEFAULT_BACKEND = "numpy" if HAVE_NUMPY else "python"


def resolve_backend(backend: Optional[str]) -> str:
    """Validate/default a backend name.

    ``None`` means :data:`DEFAULT_BACKEND`; asking for ``"numpy"``
    without numpy installed silently degrades to ``"python"`` (same
    numbers, scalar speed) so library code never hard-fails on the
    optional import.
    """
    if backend is None:
        return DEFAULT_BACKEND
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r}; expected one of {BACKENDS}"
        )
    if backend == "numpy" and not HAVE_NUMPY:
        return "python"
    return backend


def require_numpy() -> None:
    """Raise with the canonical message when numpy is mandatory."""
    if not HAVE_NUMPY:
        raise RuntimeError(
            "numpy is not available; use backend='python' "
            "(resolve_backend(None) degrades automatically)"
        )
