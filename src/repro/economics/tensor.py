"""Vectorized market kernel: numpy utility tensors over the config grid.

The paper's economic evaluation is tensor-shaped: every customer's
utility ``U(c, s, v)`` is evaluated over the full (cache, slices) grid
(Equation 3), optima are grid argmaxes (Table 6, Figure 14), and the
market-efficiency studies reduce over all customer pairs (Figures
15-16).  The scalar reference implementation walks that space with
Python loops; this module materializes it as numpy arrays instead:

* :func:`performance_tensor` - ``P[bench, cache, slice]`` evaluated in
  one broadcasted pass that mirrors
  :class:`~repro.perfmodel.model.AnalyticModel` operation for
  operation (same order of arithmetic, so values agree with the scalar
  path to the last few ulps - see DESIGN.md "Vectorized market kernel"
  for the fp-tolerance policy);
* :func:`cost_matrix` / :func:`vcores_matrix` - Equation 2 over the
  grid for one market;
* :class:`MarketKernel` - per-profile performance rows memoized once
  and shared across every utility function and market (the scalar
  optimizer re-queried ``P(c, s)`` per utility per market), plus
  budget-feasibility masks and the masked-argmax ``best`` that backs
  :meth:`~repro.economics.optimizer.UtilityOptimizer.best`.

Backend selection
-----------------
Backend selection lives in :mod:`repro.economics.backend` - the single
shared entry point every layer (optimizer, comparison, efficiency,
auction, allocation service, engine work units, both CLIs) routes its
``backend=`` keyword through.  ``resolve_backend`` is still importable
from this module for one release, but doing so emits a
``DeprecationWarning``; new code should import it from
``repro.economics.backend``.

Market binding
--------------
A :class:`MarketKernel` may be *bound* to one market at construction
(``MarketKernel(market=...)``), after which ``market_cost()``,
``vcores(budget)``, ``utility_grid(profile, utility, budget)`` and
``best(profile, utility, budget)`` need no market argument.
:meth:`MarketKernel.for_market` derives a bound view that shares the
memoized performance rows and cost matrices, which is how multi-market
callers (the optimizer's Table 6 sweep) keep the per-profile sharing.
The old signatures that threaded a ``market`` through every call keep
working for one release but warn.

Tie-breaking contract: the scalar loops keep the *first* strictly
greater value in (cache outer, slice inner) order; ``np.argmax`` over
the row-major ``(cache, slice)`` array returns the first occurrence of
the maximum - identical winners whenever values agree, which the
equivalence tests enforce.
"""

from __future__ import annotations

import math
import warnings
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.economics.backend import (
    BACKENDS,
    DEFAULT_BACKEND,
    HAVE_NUMPY,
    require_numpy as _require_numpy,
    resolve_backend as _resolve_backend,
)
from repro.perfmodel.model import (
    ALU_PATH_FRACTION,
    BRANCH_PENALTY_BASE,
    BRANCH_PENALTY_MULTISLICE,
    CACHE_GRID_KB,
    L1_EXPOSED,
    L1_LATENCY,
    MEMORY_DELAY,
    SLICE_GRID,
    AnalyticModel,
    ProfileLike,
    _resolve,
    l2_mean_latency,
)

if HAVE_NUMPY:  # pragma: no branch - mirrors repro.economics.backend
    import numpy as np
else:  # pragma: no cover - the no-numpy container case
    np = None  # type: ignore[assignment]


def __getattr__(name: str):
    """Deprecated import path: ``resolve_backend`` moved to
    :mod:`repro.economics.backend` (kept here for one release)."""
    if name == "resolve_backend":
        warnings.warn(
            "importing resolve_backend from repro.economics.tensor is "
            "deprecated; import it from repro.economics.backend",
            DeprecationWarning, stacklevel=2,
        )
        return _resolve_backend
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}"
    )


# ---------------------------------------------------------------------
# performance tensor
# ---------------------------------------------------------------------

#: Profile fields the analytic model reads, gathered into broadcast
#: arrays of shape (B, 1, 1).
_PROFILE_FIELDS = (
    "ilp", "comm_sens", "br_mpki", "l1_mpki", "l2_ws_kb", "l2_floor",
    "mlp", "frac_load", "thread_cap",
)


def performance_tensor(profiles: Sequence[ProfileLike],
                       cache_grid: Sequence[float] = CACHE_GRID_KB,
                       slice_grid: Sequence[int] = SLICE_GRID,
                       model: Optional[AnalyticModel] = None):
    """``P[bench, cache, slice]`` for every profile in one pass.

    Mirrors :meth:`AnalyticModel.performance` arithmetic exactly
    (operation order included), broadcast over all three axes at once.
    """
    _require_numpy()
    model = model or AnalyticModel()
    profs = [_resolve(p) for p in profiles]
    fields = {
        name: np.array([getattr(p, name) for p in profs],
                       dtype=np.float64).reshape(-1, 1, 1)
        for name in _PROFILE_FIELDS
    }
    cache = np.asarray(cache_grid, dtype=np.float64).reshape(1, -1, 1)
    slices = np.asarray(slice_grid, dtype=np.float64).reshape(1, 1, -1)
    #: Mean L2 hit latency is a pure function of the cache axis; the
    #: ring-packing loop stays scalar (9 values), exactly as computed by
    #: :func:`l2_mean_latency`.
    l2_lat = np.array([l2_mean_latency(c) for c in cache_grid],
                      dtype=np.float64).reshape(1, -1, 1)

    ipc = _ipc(model, fields, cache, slices, l2_lat)
    cap = fields["thread_cap"]
    if np.any(cap > 0):
        # Paper Section 5.3: PARSEC speedup over one Slice is bounded.
        base = _ipc(model, fields, cache,
                    np.ones((1, 1, 1), dtype=np.float64), l2_lat)
        capped = np.minimum(ipc, cap * base)
        ipc = np.where((cap > 0) & (slices > 1), capped, ipc)
    return ipc


def _ipc(model: AnalyticModel, f: Dict[str, "np.ndarray"],
         cache: "np.ndarray", slices: "np.ndarray",
         l2_lat: "np.ndarray") -> "np.ndarray":
    """Broadcasted CPI pipeline; every line matches the scalar model."""
    # --- core CPI (dependence-limited issue rate) ---
    cross_fraction = f["comm_sens"] * (1.0 - 1.0 / slices)
    mean_hops = (slices + 1) / 3.0
    one_way = 1.0 + mean_hops
    penalty = cross_fraction * one_way / model.comm_tolerance
    ilp = np.where(slices == 1, f["ilp"], f["ilp"] / (1.0 + penalty))
    width_cap = np.minimum(2.0 * slices, slices / ALU_PATH_FRACTION)
    core_ipc = 1.0 / (1.0 / width_cap + 1.0 / ilp)
    core = 1.0 / core_ipc

    # --- branch CPI (mispredict refill depth) ---
    br_penalty = np.where(
        slices > 1,
        BRANCH_PENALTY_BASE + BRANCH_PENALTY_MULTISLICE + (slices + 1) / 3.0,
        BRANCH_PENALTY_BASE,
    )
    branch = (f["br_mpki"] / 1000.0) * br_penalty

    # --- memory CPI (L1 misses through the distance-priced L2) ---
    decay = np.exp(-cache / f["l2_ws_kb"])
    miss = np.where(cache <= 0, 1.0,
                    f["l2_floor"] + (1.0 - f["l2_floor"]) * decay)
    avg = l2_lat + miss * MEMORY_DELAY
    mlp = f["mlp"] * (
        1.0 + model.mlp_per_slice * (f["mlp"] - 1.0)
        * np.sqrt(slices - 1)
    )
    exposed_l1 = (L1_EXPOSED * L1_LATENCY * (f["frac_load"] / 0.25)
                  / (10.0 * (1.0 + 0.3 * (slices - 1))))
    memory = (f["l1_mpki"] / 1000.0) * avg / mlp + exposed_l1

    return 1.0 / (core + branch + memory)


# ---------------------------------------------------------------------
# market matrices (Equation 2 over the grid)
# ---------------------------------------------------------------------


def cost_matrix(market, cache_grid: Sequence[float] = CACHE_GRID_KB,
                slice_grid: Sequence[int] = SLICE_GRID):
    """Hourly VCore cost per grid point, shape ``(cache, slice)``.

    Same arithmetic order as :meth:`~repro.economics.market.Market.cost`
    so values agree bitwise with the scalar path.
    """
    _require_numpy()
    cache = np.asarray(cache_grid, dtype=np.float64).reshape(-1, 1)
    slices = np.asarray(slice_grid, dtype=np.float64).reshape(1, -1)
    banks = cache / 64.0
    return (market.bank_price * banks + market.slice_price * slices
            + market.fixed_cost)


def vcores_matrix(market, budget: float,
                  cache_grid: Sequence[float] = CACHE_GRID_KB,
                  slice_grid: Sequence[int] = SLICE_GRID):
    """Equation 2 over the grid: ``v = B / cost(c, s)``."""
    if budget < 0:
        raise ValueError("budget cannot be negative")
    return budget / cost_matrix(market, cache_grid, slice_grid)


def utility_matrix(perf, vcores, utility):
    """``U = v^(1/k) * P^k`` elementwise (same op order as the scalar
    :meth:`~repro.economics.utility.UtilityFunction.value`)."""
    _require_numpy()
    k = utility.perf_exponent
    return (vcores ** (1.0 / k)) * (perf ** k)


# ---------------------------------------------------------------------
# the kernel
# ---------------------------------------------------------------------


class MarketKernel:
    """Memoized utility-tensor evaluator over one configuration grid.

    One kernel holds per-profile performance rows (built once, shared
    across every utility function and market that queries them - the
    hit/miss counters quantify the sharing) plus per-market cost
    matrices.  ``best`` is a feasibility-masked argmax; ``utility_grid``
    hands the full surface to Figure 14 and the pairwise studies.

    ``min_vcores`` is the budget-feasibility floor: configurations whose
    affordable replication falls below it are masked out of ``best``.
    The default ``0.0`` keeps every configuration feasible, matching the
    paper's continuous-``v`` treatment (and the scalar reference path).

    A kernel may be *bound* to one market at construction
    (``market=``); bound kernels drop the ``market`` argument from
    every query (``vcores(budget)``, ``best(profile, utility,
    budget)``).  :meth:`for_market` derives a bound view sharing this
    kernel's memoized rows, so multi-market sweeps keep the
    per-profile sharing.  The old market-threading signatures still
    work for one release but emit a ``DeprecationWarning``.
    """

    def __init__(self, model: Optional[AnalyticModel] = None,
                 cache_grid: Sequence[float] = CACHE_GRID_KB,
                 slice_grid: Sequence[int] = SLICE_GRID,
                 obs=None, market=None):
        _require_numpy()
        self.model = model or AnalyticModel()
        self.cache_grid = tuple(float(c) for c in cache_grid)
        self.slice_grid = tuple(int(s) for s in slice_grid)
        self.market = market
        self._perf_rows: Dict[object, "np.ndarray"] = {}
        self._pow_rows: Dict[Tuple[object, float], "np.ndarray"] = {}
        self._cost: Dict[Tuple[str, float, float, float], "np.ndarray"] = {}
        self._views: Dict[Tuple[str, float, float, float],
                          "MarketKernel"] = {}
        from repro.obs import OBS_OFF

        scope = (obs or OBS_OFF).scope("economics.kernel")
        self._c_row_hits = scope.counter("perf_rows.hits")
        self._c_row_misses = scope.counter("perf_rows.misses")
        self._c_grids = scope.counter("utility_grids")
        self._t_build = scope.timer("perf_build_s")

    # -- market binding --------------------------------------------------

    @staticmethod
    def _market_key(market) -> Tuple[str, float, float, float]:
        return (market.name, market.slice_price, market.bank_price,
                market.fixed_cost)

    def for_market(self, market) -> "MarketKernel":
        """A view of this kernel bound to ``market``.

        Views share the memoized performance rows, cost matrices and
        obs counters with their parent (and with each other), so
        binding costs nothing beyond a small shell object.
        """
        if market is None:
            raise ValueError("for_market needs a market")
        if self.market is not None and self._market_key(
                self.market) == self._market_key(market):
            return self
        key = self._market_key(market)
        view = self._views.get(key)
        if view is None:
            view = MarketKernel.__new__(MarketKernel)
            view.__dict__ = dict(self.__dict__)
            view.market = market
            self._views[key] = view
        return view

    def _bound_market(self, method: str, args: tuple) -> Tuple[Any, tuple]:
        """Split deprecated market-threading call styles.

        Old call sites pass a market object ahead of the remaining
        positional arguments; new ones rely on the bound market.
        """
        if args and hasattr(args[0], "slice_price"):
            warnings.warn(
                f"MarketKernel.{method}(market, ...) is deprecated; "
                "bind the market at construction "
                "(MarketKernel(market=...)) or via for_market() and "
                f"call {method}() without it",
                DeprecationWarning, stacklevel=3,
            )
            return args[0], args[1:]
        if self.market is None:
            raise TypeError(
                f"MarketKernel.{method}: no market bound; construct "
                "with MarketKernel(market=...) or use for_market()"
            )
        return self.market, args

    # -- performance rows ------------------------------------------------

    def prime(self, profiles: Sequence[ProfileLike]) -> None:
        """Batch-build performance rows for ``profiles`` in one pass."""
        fresh = []
        for profile in profiles:
            prof = _resolve(profile)
            if prof not in self._perf_rows:
                fresh.append(prof)
        if not fresh:
            return
        with self._t_build:
            tensor = performance_tensor(fresh, self.cache_grid,
                                        self.slice_grid, self.model)
        for i, prof in enumerate(fresh):
            self._perf_rows[prof] = tensor[i]
        self._c_row_misses.inc(len(fresh))

    def perf_row(self, profile: ProfileLike) -> "np.ndarray":
        """``P(c, s)`` for one profile, shape ``(cache, slice)``."""
        prof = _resolve(profile)
        row = self._perf_rows.get(prof)
        if row is not None:
            self._c_row_hits.inc()
            return row
        self.prime([prof])
        return self._perf_rows[prof]

    def perf_pow_row(self, profile: ProfileLike,
                     k: float) -> "np.ndarray":
        """Flat ``P(c, s)^k``, shape ``(cache * slice,)``, memoized per
        ``(profile, exponent)``.

        This is the row the streaming service's tensor arena copies
        in-place on every admission: building it here (rather than in
        each service) shares the exponentiation across coupled shards
        that trade over one kernel, and guarantees a restored arena
        reproduces its rows bit-exactly - the row is a pure function of
        the profile and the utility exponent.
        """
        prof = _resolve(profile)
        key = (prof, k)
        row = self._pow_rows.get(key)
        if row is None:
            row = (self.perf_row(prof) ** k).ravel()
            self._pow_rows[key] = row
        return row

    # -- market matrices -------------------------------------------------

    def _cost_for(self, market) -> "np.ndarray":
        key = self._market_key(market)
        cost = self._cost.get(key)
        if cost is None:
            cost = cost_matrix(market, self.cache_grid, self.slice_grid)
            self._cost[key] = cost
        return cost

    def market_cost(self, market=None) -> "np.ndarray":
        if market is not None:
            market, _ = self._bound_market("market_cost", (market,))
        else:
            market, _ = self._bound_market("market_cost", ())
        return self._cost_for(market)

    def _vcores_for(self, market, budget: float) -> "np.ndarray":
        if budget < 0:
            raise ValueError("budget cannot be negative")
        return budget / self._cost_for(market)

    def vcores(self, *args) -> "np.ndarray":
        """``v = B / cost`` over the grid; ``vcores(budget)`` on a bound
        kernel (``vcores(market, budget)`` is the deprecated form)."""
        market, (budget,) = self._bound_market("vcores", args)
        return self._vcores_for(market, budget)

    def feasibility_mask(self, *args,
                         min_vcores: float = 0.0) -> "np.ndarray":
        """Boolean grid: configurations affordable under the budget.

        ``feasibility_mask(budget)`` on a bound kernel;
        ``feasibility_mask(market, budget)`` is the deprecated form.
        """
        market, (budget,) = self._bound_market("feasibility_mask", args)
        return self._vcores_for(market, budget) >= min_vcores

    # -- utility surfaces and optima ------------------------------------

    def utility_grid(self, profile: ProfileLike, utility,
                     *args) -> "np.ndarray":
        """``U(c, s)`` surface for one customer, shape ``(cache, slice)``.

        ``utility_grid(profile, utility, budget)`` on a bound kernel;
        ``utility_grid(profile, utility, market, budget)`` is the
        deprecated form.
        """
        market, (budget,) = self._bound_market("utility_grid", args)
        self._c_grids.inc()
        return utility_matrix(self.perf_row(profile),
                              self._vcores_for(market, budget), utility)

    def best(self, profile: ProfileLike, utility, *args,
             min_vcores: float = 0.0
             ) -> Tuple[float, int, float, float, float]:
        """Masked argmax over the grid.

        ``best(profile, utility, budget)`` on a bound kernel
        (``best(profile, utility, market, budget)`` is the deprecated
        form).  Returns ``(cache_kb, slices, vcores, performance,
        utility)`` for the feasible utility-maximising configuration;
        raises ``ValueError`` when the mask leaves nothing feasible.
        """
        market, (budget,) = self._bound_market("best", args)
        bound = self.for_market(market)
        grid = bound.utility_grid(profile, utility, budget)
        if min_vcores > 0.0:
            mask = self._vcores_for(market, budget) >= min_vcores
            if not mask.any():
                raise ValueError(
                    f"no feasible configuration for budget {budget:g} "
                    f"with min_vcores={min_vcores:g} in {market.name}"
                )
            grid = np.where(mask, grid, -np.inf)
        flat = int(np.argmax(grid))
        ci, si = divmod(flat, len(self.slice_grid))
        cache_kb = self.cache_grid[ci]
        slices = self.slice_grid[si]
        return (
            cache_kb,
            slices,
            float(self._vcores_for(market, budget)[ci, si]),
            float(self.perf_row(profile)[ci, si]),
            float(grid[ci, si]),
        )

    # -- bulk helpers ----------------------------------------------------

    def utility_stack(self, profiles: Sequence[ProfileLike], utility,
                      *args) -> "np.ndarray":
        """Stacked ``U`` surfaces, shape ``(len(profiles), cache, slice)``.

        ``utility_stack(profiles, utility, budget)`` on a bound kernel;
        the market-threading form is deprecated.
        """
        market, (budget,) = self._bound_market("utility_stack", args)
        self.prime(profiles)
        perf = np.stack([self.perf_row(p) for p in profiles])
        vcores = self._vcores_for(market, budget)
        return utility_matrix(perf, vcores, utility)

    def config_list(self) -> List[Tuple[float, int]]:
        """Grid points in scalar-iteration (cache outer, slice inner)
        order - the flat-index order of every array this kernel emits."""
        return [(c, s) for c in self.cache_grid for s in self.slice_grid]


def pair_gain_summary(sharing, fixed) -> Dict[str, float]:
    """Figure 15/16 pairwise-gain summary as pure tensor reductions.

    ``sharing``/``fixed`` are per-customer utility vectors; the gain of
    pair ``(i, j)`` is ``(sharing_i + sharing_j) / (fixed_i + fixed_j)``
    over all ``i < j``.  Matches
    :meth:`~repro.economics.comparison.MarketEfficiencyComparison.summarize`
    field for field without materializing any per-pair objects.
    """
    _require_numpy()
    sh = np.asarray(sharing, dtype=np.float64)
    fx = np.asarray(fixed, dtype=np.float64)
    if sh.shape != fx.shape or sh.ndim != 1:
        raise ValueError("sharing/fixed must be equal-length vectors")
    n = sh.shape[0]
    if n < 2:
        raise ValueError("need at least two customers to form pairs")
    i, j = np.triu_indices(n, k=1)
    num = sh[i] + sh[j]
    den = fx[i] + fx[j]
    gains = np.where(den <= 0, np.inf, num / np.where(den <= 0, 1.0, den))
    ordered = np.sort(gains)
    count = ordered.shape[0]
    return {
        "pairs": count,
        "min": float(ordered[0]),
        "median": float(ordered[count // 2]),
        "mean": float(ordered.mean()),
        "max": float(ordered[-1]),
    }


def geometric_mean_vector(utilities_by_customer) -> "np.ndarray":
    """Per-config geometric mean over customers via mean-of-logs.

    ``utilities_by_customer`` has shape ``(customers, configs)``; all
    values must be strictly positive (callers validate and raise the
    naming :class:`ValueError` - see ``comparison._geometric_mean``).
    """
    _require_numpy()
    arr = np.asarray(utilities_by_customer, dtype=np.float64)
    return np.exp(np.log(arr).mean(axis=0))


def _self_check() -> None:  # pragma: no cover - debugging helper
    """Compare the tensor against the scalar model on every profile."""
    from repro.trace.profiles import all_benchmarks

    model = AnalyticModel()
    names = all_benchmarks()
    tensor = performance_tensor(names, model=model)
    worst = 0.0
    for bi, name in enumerate(names):
        for ci, c in enumerate(CACHE_GRID_KB):
            for si, s in enumerate(SLICE_GRID):
                ref = model.performance(name, c, s)
                got = float(tensor[bi, ci, si])
                worst = max(worst, abs(got - ref) / ref)
    print(f"max relative error vs scalar model: {worst:.3e}")


if __name__ == "__main__":  # pragma: no cover
    _self_check()
