"""Vectorized market kernel: numpy utility tensors over the config grid.

The paper's economic evaluation is tensor-shaped: every customer's
utility ``U(c, s, v)`` is evaluated over the full (cache, slices) grid
(Equation 3), optima are grid argmaxes (Table 6, Figure 14), and the
market-efficiency studies reduce over all customer pairs (Figures
15-16).  The scalar reference implementation walks that space with
Python loops; this module materializes it as numpy arrays instead:

* :func:`performance_tensor` - ``P[bench, cache, slice]`` evaluated in
  one broadcasted pass that mirrors
  :class:`~repro.perfmodel.model.AnalyticModel` operation for
  operation (same order of arithmetic, so values agree with the scalar
  path to the last few ulps - see DESIGN.md "Vectorized market kernel"
  for the fp-tolerance policy);
* :func:`cost_matrix` / :func:`vcores_matrix` - Equation 2 over the
  grid for one market;
* :class:`MarketKernel` - per-profile performance rows memoized once
  and shared across every utility function and market (the scalar
  optimizer re-queried ``P(c, s)`` per utility per market), plus
  budget-feasibility masks and the masked-argmax ``best`` that backs
  :meth:`~repro.economics.optimizer.UtilityOptimizer.best`.

Backend selection
-----------------
``resolve_backend(None)`` returns :data:`DEFAULT_BACKEND` - ``"numpy"``
when numpy imports, ``"python"`` otherwise (the dependency is declared
but this module must degrade gracefully when it is absent).  Everything
downstream (optimizer, comparison, efficiency, auction, engine work
units, the experiments runner) accepts ``backend=`` and threads it
through here, keeping the scalar implementation available as the
``"python"`` reference path for the equivalence suite.

Tie-breaking contract: the scalar loops keep the *first* strictly
greater value in (cache outer, slice inner) order; ``np.argmax`` over
the row-major ``(cache, slice)`` array returns the first occurrence of
the maximum - identical winners whenever values agree, which the
equivalence tests enforce.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

from repro.perfmodel.model import (
    ALU_PATH_FRACTION,
    BRANCH_PENALTY_BASE,
    BRANCH_PENALTY_MULTISLICE,
    CACHE_GRID_KB,
    L1_EXPOSED,
    L1_LATENCY,
    MEMORY_DELAY,
    SLICE_GRID,
    AnalyticModel,
    ProfileLike,
    _resolve,
    l2_mean_latency,
)

try:  # pragma: no cover - exercised implicitly by every numpy test
    import numpy as np

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover - the no-numpy container case
    np = None  # type: ignore[assignment]
    HAVE_NUMPY = False

#: Backend names accepted throughout the economics layer.
BACKENDS = ("numpy", "python")

#: What ``backend=None`` resolves to.
DEFAULT_BACKEND = "numpy" if HAVE_NUMPY else "python"


def resolve_backend(backend: Optional[str]) -> str:
    """Validate/default a backend name.

    ``None`` means :data:`DEFAULT_BACKEND`; asking for ``"numpy"``
    without numpy installed silently degrades to ``"python"`` (same
    numbers, scalar speed) so library code never hard-fails on the
    optional import.
    """
    if backend is None:
        return DEFAULT_BACKEND
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r}; expected one of {BACKENDS}"
        )
    if backend == "numpy" and not HAVE_NUMPY:
        return "python"
    return backend


def _require_numpy() -> None:
    if not HAVE_NUMPY:
        raise RuntimeError(
            "numpy is not available; use backend='python' "
            "(resolve_backend(None) degrades automatically)"
        )


# ---------------------------------------------------------------------
# performance tensor
# ---------------------------------------------------------------------

#: Profile fields the analytic model reads, gathered into broadcast
#: arrays of shape (B, 1, 1).
_PROFILE_FIELDS = (
    "ilp", "comm_sens", "br_mpki", "l1_mpki", "l2_ws_kb", "l2_floor",
    "mlp", "frac_load", "thread_cap",
)


def performance_tensor(profiles: Sequence[ProfileLike],
                       cache_grid: Sequence[float] = CACHE_GRID_KB,
                       slice_grid: Sequence[int] = SLICE_GRID,
                       model: Optional[AnalyticModel] = None):
    """``P[bench, cache, slice]`` for every profile in one pass.

    Mirrors :meth:`AnalyticModel.performance` arithmetic exactly
    (operation order included), broadcast over all three axes at once.
    """
    _require_numpy()
    model = model or AnalyticModel()
    profs = [_resolve(p) for p in profiles]
    fields = {
        name: np.array([getattr(p, name) for p in profs],
                       dtype=np.float64).reshape(-1, 1, 1)
        for name in _PROFILE_FIELDS
    }
    cache = np.asarray(cache_grid, dtype=np.float64).reshape(1, -1, 1)
    slices = np.asarray(slice_grid, dtype=np.float64).reshape(1, 1, -1)
    #: Mean L2 hit latency is a pure function of the cache axis; the
    #: ring-packing loop stays scalar (9 values), exactly as computed by
    #: :func:`l2_mean_latency`.
    l2_lat = np.array([l2_mean_latency(c) for c in cache_grid],
                      dtype=np.float64).reshape(1, -1, 1)

    ipc = _ipc(model, fields, cache, slices, l2_lat)
    cap = fields["thread_cap"]
    if np.any(cap > 0):
        # Paper Section 5.3: PARSEC speedup over one Slice is bounded.
        base = _ipc(model, fields, cache,
                    np.ones((1, 1, 1), dtype=np.float64), l2_lat)
        capped = np.minimum(ipc, cap * base)
        ipc = np.where((cap > 0) & (slices > 1), capped, ipc)
    return ipc


def _ipc(model: AnalyticModel, f: Dict[str, "np.ndarray"],
         cache: "np.ndarray", slices: "np.ndarray",
         l2_lat: "np.ndarray") -> "np.ndarray":
    """Broadcasted CPI pipeline; every line matches the scalar model."""
    # --- core CPI (dependence-limited issue rate) ---
    cross_fraction = f["comm_sens"] * (1.0 - 1.0 / slices)
    mean_hops = (slices + 1) / 3.0
    one_way = 1.0 + mean_hops
    penalty = cross_fraction * one_way / model.comm_tolerance
    ilp = np.where(slices == 1, f["ilp"], f["ilp"] / (1.0 + penalty))
    width_cap = np.minimum(2.0 * slices, slices / ALU_PATH_FRACTION)
    core_ipc = 1.0 / (1.0 / width_cap + 1.0 / ilp)
    core = 1.0 / core_ipc

    # --- branch CPI (mispredict refill depth) ---
    br_penalty = np.where(
        slices > 1,
        BRANCH_PENALTY_BASE + BRANCH_PENALTY_MULTISLICE + (slices + 1) / 3.0,
        BRANCH_PENALTY_BASE,
    )
    branch = (f["br_mpki"] / 1000.0) * br_penalty

    # --- memory CPI (L1 misses through the distance-priced L2) ---
    decay = np.exp(-cache / f["l2_ws_kb"])
    miss = np.where(cache <= 0, 1.0,
                    f["l2_floor"] + (1.0 - f["l2_floor"]) * decay)
    avg = l2_lat + miss * MEMORY_DELAY
    mlp = f["mlp"] * (
        1.0 + model.mlp_per_slice * (f["mlp"] - 1.0)
        * np.sqrt(slices - 1)
    )
    exposed_l1 = (L1_EXPOSED * L1_LATENCY * (f["frac_load"] / 0.25)
                  / (10.0 * (1.0 + 0.3 * (slices - 1))))
    memory = (f["l1_mpki"] / 1000.0) * avg / mlp + exposed_l1

    return 1.0 / (core + branch + memory)


# ---------------------------------------------------------------------
# market matrices (Equation 2 over the grid)
# ---------------------------------------------------------------------


def cost_matrix(market, cache_grid: Sequence[float] = CACHE_GRID_KB,
                slice_grid: Sequence[int] = SLICE_GRID):
    """Hourly VCore cost per grid point, shape ``(cache, slice)``.

    Same arithmetic order as :meth:`~repro.economics.market.Market.cost`
    so values agree bitwise with the scalar path.
    """
    _require_numpy()
    cache = np.asarray(cache_grid, dtype=np.float64).reshape(-1, 1)
    slices = np.asarray(slice_grid, dtype=np.float64).reshape(1, -1)
    banks = cache / 64.0
    return (market.bank_price * banks + market.slice_price * slices
            + market.fixed_cost)


def vcores_matrix(market, budget: float,
                  cache_grid: Sequence[float] = CACHE_GRID_KB,
                  slice_grid: Sequence[int] = SLICE_GRID):
    """Equation 2 over the grid: ``v = B / cost(c, s)``."""
    if budget < 0:
        raise ValueError("budget cannot be negative")
    return budget / cost_matrix(market, cache_grid, slice_grid)


def utility_matrix(perf, vcores, utility):
    """``U = v^(1/k) * P^k`` elementwise (same op order as the scalar
    :meth:`~repro.economics.utility.UtilityFunction.value`)."""
    _require_numpy()
    k = utility.perf_exponent
    return (vcores ** (1.0 / k)) * (perf ** k)


# ---------------------------------------------------------------------
# the kernel
# ---------------------------------------------------------------------


class MarketKernel:
    """Memoized utility-tensor evaluator over one configuration grid.

    One kernel holds per-profile performance rows (built once, shared
    across every utility function and market that queries them - the
    hit/miss counters quantify the sharing) plus per-market cost
    matrices.  ``best`` is a feasibility-masked argmax; ``utility_grid``
    hands the full surface to Figure 14 and the pairwise studies.

    ``min_vcores`` is the budget-feasibility floor: configurations whose
    affordable replication falls below it are masked out of ``best``.
    The default ``0.0`` keeps every configuration feasible, matching the
    paper's continuous-``v`` treatment (and the scalar reference path).
    """

    def __init__(self, model: Optional[AnalyticModel] = None,
                 cache_grid: Sequence[float] = CACHE_GRID_KB,
                 slice_grid: Sequence[int] = SLICE_GRID,
                 obs=None):
        _require_numpy()
        self.model = model or AnalyticModel()
        self.cache_grid = tuple(float(c) for c in cache_grid)
        self.slice_grid = tuple(int(s) for s in slice_grid)
        self._perf_rows: Dict[object, "np.ndarray"] = {}
        self._cost: Dict[Tuple[str, float, float, float], "np.ndarray"] = {}
        from repro.obs import OBS_OFF

        scope = (obs or OBS_OFF).scope("economics.kernel")
        self._c_row_hits = scope.counter("perf_rows.hits")
        self._c_row_misses = scope.counter("perf_rows.misses")
        self._c_grids = scope.counter("utility_grids")
        self._t_build = scope.timer("perf_build_s")

    # -- performance rows ------------------------------------------------

    def prime(self, profiles: Sequence[ProfileLike]) -> None:
        """Batch-build performance rows for ``profiles`` in one pass."""
        fresh = []
        for profile in profiles:
            prof = _resolve(profile)
            if prof not in self._perf_rows:
                fresh.append(prof)
        if not fresh:
            return
        with self._t_build:
            tensor = performance_tensor(fresh, self.cache_grid,
                                        self.slice_grid, self.model)
        for i, prof in enumerate(fresh):
            self._perf_rows[prof] = tensor[i]
        self._c_row_misses.inc(len(fresh))

    def perf_row(self, profile: ProfileLike) -> "np.ndarray":
        """``P(c, s)`` for one profile, shape ``(cache, slice)``."""
        prof = _resolve(profile)
        row = self._perf_rows.get(prof)
        if row is not None:
            self._c_row_hits.inc()
            return row
        self.prime([prof])
        return self._perf_rows[prof]

    # -- market matrices -------------------------------------------------

    def market_cost(self, market) -> "np.ndarray":
        key = (market.name, market.slice_price, market.bank_price,
               market.fixed_cost)
        cost = self._cost.get(key)
        if cost is None:
            cost = cost_matrix(market, self.cache_grid, self.slice_grid)
            self._cost[key] = cost
        return cost

    def vcores(self, market, budget: float) -> "np.ndarray":
        if budget < 0:
            raise ValueError("budget cannot be negative")
        return budget / self.market_cost(market)

    def feasibility_mask(self, market, budget: float,
                         min_vcores: float = 0.0) -> "np.ndarray":
        """Boolean grid: configurations affordable under the budget."""
        return self.vcores(market, budget) >= min_vcores

    # -- utility surfaces and optima ------------------------------------

    def utility_grid(self, profile: ProfileLike, utility, market,
                     budget: float) -> "np.ndarray":
        """``U(c, s)`` surface for one customer, shape ``(cache, slice)``."""
        self._c_grids.inc()
        return utility_matrix(self.perf_row(profile),
                              self.vcores(market, budget), utility)

    def best(self, profile: ProfileLike, utility, market, budget: float,
             min_vcores: float = 0.0
             ) -> Tuple[float, int, float, float, float]:
        """Masked argmax over the grid.

        Returns ``(cache_kb, slices, vcores, performance, utility)`` for
        the feasible utility-maximising configuration; raises
        ``ValueError`` when the mask leaves nothing feasible.
        """
        grid = self.utility_grid(profile, utility, market, budget)
        if min_vcores > 0.0:
            mask = self.feasibility_mask(market, budget, min_vcores)
            if not mask.any():
                raise ValueError(
                    f"no feasible configuration for budget {budget:g} "
                    f"with min_vcores={min_vcores:g} in {market.name}"
                )
            grid = np.where(mask, grid, -np.inf)
        flat = int(np.argmax(grid))
        ci, si = divmod(flat, len(self.slice_grid))
        cache_kb = self.cache_grid[ci]
        slices = self.slice_grid[si]
        return (
            cache_kb,
            slices,
            float(self.vcores(market, budget)[ci, si]),
            float(self.perf_row(profile)[ci, si]),
            float(grid[ci, si]),
        )

    # -- bulk helpers ----------------------------------------------------

    def utility_stack(self, profiles: Sequence[ProfileLike], utility,
                      market, budget: float) -> "np.ndarray":
        """Stacked ``U`` surfaces, shape ``(len(profiles), cache, slice)``."""
        self.prime(profiles)
        perf = np.stack([self.perf_row(p) for p in profiles])
        vcores = self.vcores(market, budget)
        return utility_matrix(perf, vcores, utility)

    def config_list(self) -> List[Tuple[float, int]]:
        """Grid points in scalar-iteration (cache outer, slice inner)
        order - the flat-index order of every array this kernel emits."""
        return [(c, s) for c in self.cache_grid for s in self.slice_grid]


def pair_gain_summary(sharing, fixed) -> Dict[str, float]:
    """Figure 15/16 pairwise-gain summary as pure tensor reductions.

    ``sharing``/``fixed`` are per-customer utility vectors; the gain of
    pair ``(i, j)`` is ``(sharing_i + sharing_j) / (fixed_i + fixed_j)``
    over all ``i < j``.  Matches
    :meth:`~repro.economics.comparison.MarketEfficiencyComparison.summarize`
    field for field without materializing any per-pair objects.
    """
    _require_numpy()
    sh = np.asarray(sharing, dtype=np.float64)
    fx = np.asarray(fixed, dtype=np.float64)
    if sh.shape != fx.shape or sh.ndim != 1:
        raise ValueError("sharing/fixed must be equal-length vectors")
    n = sh.shape[0]
    if n < 2:
        raise ValueError("need at least two customers to form pairs")
    i, j = np.triu_indices(n, k=1)
    num = sh[i] + sh[j]
    den = fx[i] + fx[j]
    gains = np.where(den <= 0, np.inf, num / np.where(den <= 0, 1.0, den))
    ordered = np.sort(gains)
    count = ordered.shape[0]
    return {
        "pairs": count,
        "min": float(ordered[0]),
        "median": float(ordered[count // 2]),
        "mean": float(ordered.mean()),
        "max": float(ordered[-1]),
    }


def geometric_mean_vector(utilities_by_customer) -> "np.ndarray":
    """Per-config geometric mean over customers via mean-of-logs.

    ``utilities_by_customer`` has shape ``(customers, configs)``; all
    values must be strictly positive (callers validate and raise the
    naming :class:`ValueError` - see ``comparison._geometric_mean``).
    """
    _require_numpy()
    arr = np.asarray(utilities_by_customer, dtype=np.float64)
    return np.exp(np.log(arr).mean(axis=0))


def _self_check() -> None:  # pragma: no cover - debugging helper
    """Compare the tensor against the scalar model on every profile."""
    from repro.trace.profiles import all_benchmarks

    model = AnalyticModel()
    names = all_benchmarks()
    tensor = performance_tensor(names, model=model)
    worst = 0.0
    for bi, name in enumerate(names):
        for ci, c in enumerate(CACHE_GRID_KB):
            for si, s in enumerate(SLICE_GRID):
                ref = model.performance(name, c, s)
                got = float(tensor[bi, ci, si])
                worst = max(worst, abs(got - ref) / ref)
    print(f"max relative error vs scalar model: {worst:.3e}")


if __name__ == "__main__":  # pragma: no cover
    _self_check()
