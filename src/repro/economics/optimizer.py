"""Customer utility maximisation (paper Section 5.6, Table 6).

A Cloud customer picks the VCore configuration ``(c, s)`` and replication
factor ``v`` that maximise their utility under their budget:

    maximise  U(P(c, s), v)
    where     v = B / (C_c * c + C_s * s)         (Equation 2)
              0 <= c <= 8 MB,  1 <= s <= 8        (Equation 3)

The search is exhaustive over the valid configuration grid, exactly as
the paper's evaluation ("an exhaustive search of performance for
different Slice count and Cache configurations", Section 5.5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.economics.market import Market
from repro.economics.utility import UtilityFunction
from repro.perfmodel.model import (
    AnalyticModel,
    CACHE_GRID_KB,
    SLICE_GRID,
    ProfileLike,
)

#: Default customer budget: enough for roughly a dozen equal-area Slices.
DEFAULT_BUDGET = 24.0


@dataclass(frozen=True)
class OptimalChoice:
    """A customer's utility-maximising purchase."""

    benchmark: str
    utility_name: str
    market_name: str
    cache_kb: float
    slices: int
    vcores: float
    performance: float
    utility: float


class UtilityOptimizer:
    """Maximises customer utility over the configuration grid.

    When an :class:`~repro.engine.core.SweepEngine` is supplied (and no
    explicit ``model``), performance grids are sourced through the
    engine's :class:`~repro.engine.core.GridModel` - same numbers, but
    batch-evaluated with cache-and-fan-out semantics.
    """

    def __init__(self, model: Optional[AnalyticModel] = None,
                 budget: float = DEFAULT_BUDGET,
                 cache_grid: Sequence[float] = CACHE_GRID_KB,
                 slice_grid: Sequence[int] = SLICE_GRID,
                 engine=None):
        if budget <= 0:
            raise ValueError("budget must be positive")
        self.cache_grid = tuple(cache_grid)
        self.slice_grid = tuple(slice_grid)
        if model is None and engine is not None:
            model = engine.grid_model(cache_grid=self.cache_grid,
                                      slice_grid=self.slice_grid)
        self.model = model or AnalyticModel()
        self.budget = budget

    def prime(self, benchmarks: Sequence[ProfileLike]) -> None:
        """Batch-evaluate the grid for ``benchmarks`` ahead of queries.

        A no-op unless the optimizer's model is an engine-backed
        :class:`~repro.engine.core.GridModel`.
        """
        prime = getattr(self.model, "prime", None)
        if prime is not None:
            prime(benchmarks)

    def utility_at(self, benchmark: ProfileLike, utility: UtilityFunction,
                   market: Market, cache_kb: float, slices: int) -> float:
        """Utility of one specific configuration under the budget."""
        perf = self.model.performance(benchmark, cache_kb, slices)
        vcores = market.vcores_affordable(self.budget, cache_kb, slices)
        return utility.value(perf, vcores)

    def best(self, benchmark: str, utility: UtilityFunction,
             market: Market) -> OptimalChoice:
        """The utility-maximising configuration for one customer."""
        best_choice: Optional[OptimalChoice] = None
        for cache_kb in self.cache_grid:
            for slices in self.slice_grid:
                perf = self.model.performance(benchmark, cache_kb, slices)
                vcores = market.vcores_affordable(
                    self.budget, cache_kb, slices
                )
                value = utility.value(perf, vcores)
                if best_choice is None or value > best_choice.utility:
                    best_choice = OptimalChoice(
                        benchmark=benchmark,
                        utility_name=utility.name,
                        market_name=market.name,
                        cache_kb=cache_kb,
                        slices=slices,
                        vcores=vcores,
                        performance=perf,
                        utility=value,
                    )
        assert best_choice is not None
        return best_choice

    def table6(self, benchmarks: Sequence[str],
               utilities: Sequence[UtilityFunction],
               markets: Sequence[Market]
               ) -> Dict[Tuple[str, str, str], OptimalChoice]:
        """Paper Table 6: optimal configurations per market per utility."""
        self.prime(benchmarks)
        return {
            (market.name, utility.name, bench): self.best(
                bench, utility, market
            )
            for market in markets
            for utility in utilities
            for bench in benchmarks
        }

    def utility_surface(self, benchmark: str, utility: UtilityFunction,
                        market: Market) -> Dict[Tuple[float, int], float]:
        """Figure 14: the full utility surface over (cache, slices)."""
        return {
            (cache_kb, slices): self.utility_at(
                benchmark, utility, market, cache_kb, slices
            )
            for cache_kb in self.cache_grid
            for slices in self.slice_grid
        }
