"""Customer utility maximisation (paper Section 5.6, Table 6).

A Cloud customer picks the VCore configuration ``(c, s)`` and replication
factor ``v`` that maximise their utility under their budget:

    maximise  U(P(c, s), v)
    where     v = B / (C_c * c + C_s * s)         (Equation 2)
              0 <= c <= 8 MB,  1 <= s <= 8        (Equation 3)

The search is exhaustive over the valid configuration grid, exactly as
the paper's evaluation ("an exhaustive search of performance for
different Slice count and Cache configurations", Section 5.5).

Two interchangeable backends perform that search (``backend=``):

* ``"numpy"`` (default when numpy is available) - the vectorized
  market kernel of :mod:`repro.economics.tensor`: one masked argmax per
  customer over a memoized utility tensor;
* ``"python"`` - the scalar reference loops, kept for the equivalence
  suite and numpy-less installs.

Either way the per-benchmark ``P(c, s)`` grid is evaluated *once* and
shared across every utility function and market that queries it (the
hit/miss counters under ``economics.optimizer`` quantify the reuse).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.economics.backend import resolve_backend
from repro.economics.market import Market
from repro.economics.tensor import MarketKernel
from repro.economics.utility import UtilityFunction
from repro.perfmodel.model import (
    AnalyticModel,
    CACHE_GRID_KB,
    SLICE_GRID,
    ProfileLike,
    _resolve,
)

#: Default customer budget: enough for roughly a dozen equal-area Slices.
DEFAULT_BUDGET = 24.0


@dataclass(frozen=True)
class OptimalChoice:
    """A customer's utility-maximising purchase."""

    benchmark: str
    utility_name: str
    market_name: str
    cache_kb: float
    slices: int
    vcores: float
    performance: float
    utility: float


class UtilityOptimizer:
    """Maximises customer utility over the configuration grid.

    When an :class:`~repro.engine.core.SweepEngine` is supplied (and no
    explicit ``model``), performance grids are sourced through the
    engine's :class:`~repro.engine.core.GridModel` - same numbers, but
    batch-evaluated with cache-and-fan-out semantics.
    """

    def __init__(self, model: Optional[AnalyticModel] = None,
                 budget: float = DEFAULT_BUDGET,
                 cache_grid: Sequence[float] = CACHE_GRID_KB,
                 slice_grid: Sequence[int] = SLICE_GRID,
                 engine=None, backend: Optional[str] = None,
                 obs=None):
        if budget <= 0:
            raise ValueError("budget must be positive")
        self.cache_grid = tuple(cache_grid)
        self.slice_grid = tuple(slice_grid)
        if model is None and engine is not None:
            model = engine.grid_model(cache_grid=self.cache_grid,
                                      slice_grid=self.slice_grid)
        self.model = model or AnalyticModel()
        self.budget = budget
        self.backend = resolve_backend(backend)
        if obs is None and engine is not None:
            obs = getattr(engine, "obs", None)
        from repro.obs import OBS_OFF

        self._obs = obs or OBS_OFF
        scope = self._obs.scope("economics.optimizer")
        self._c_grid_hits = scope.counter("perf_grid.hits")
        self._c_grid_misses = scope.counter("perf_grid.misses")
        #: Scalar-path P(c, s) tables, one per profile, shared across
        #: every (utility, market) query.
        self._perf_grids: Dict[object, Dict[Tuple[float, int], float]] = {}
        self._kernel: Optional[MarketKernel] = None
        if self.backend == "numpy":
            self._kernel = MarketKernel(
                model=self.model, cache_grid=self.cache_grid,
                slice_grid=self.slice_grid, obs=self._obs,
            )

    @property
    def kernel(self) -> Optional[MarketKernel]:
        """The vectorized kernel (``None`` on the python backend)."""
        return self._kernel

    def prime(self, benchmarks: Sequence[ProfileLike]) -> None:
        """Batch-evaluate the grid for ``benchmarks`` ahead of queries.

        Engine-backed :class:`~repro.engine.core.GridModel`\\ s fill
        their table in one fan-out; the numpy kernel builds all
        performance rows in one broadcasted pass.
        """
        prime = getattr(self.model, "prime", None)
        if prime is not None:
            prime(benchmarks)
        if self._kernel is not None:
            self._kernel.prime(benchmarks)

    # ------------------------------------------------------------------
    # memoized scalar grids (shared across utilities and markets)
    # ------------------------------------------------------------------

    def _perf_grid(self, benchmark: ProfileLike
                   ) -> Dict[Tuple[float, int], float]:
        """One profile's ``{(cache_kb, slices): P}`` table, built once."""
        prof = _resolve(benchmark)
        grid = self._perf_grids.get(prof)
        if grid is not None:
            self._c_grid_hits.inc()
            return grid
        self._c_grid_misses.inc()
        grid = {
            (cache_kb, slices): self.model.performance(prof, cache_kb,
                                                       slices)
            for cache_kb in self.cache_grid
            for slices in self.slice_grid
        }
        self._perf_grids[prof] = grid
        return grid

    def utility_at(self, benchmark: ProfileLike, utility: UtilityFunction,
                   market: Market, cache_kb: float, slices: int) -> float:
        """Utility of one specific configuration under the budget."""
        perf = self._perf_grid(benchmark).get((cache_kb, slices))
        if perf is None:  # off-grid query: straight through the model
            perf = self.model.performance(benchmark, cache_kb, slices)
        vcores = market.vcores_affordable(self.budget, cache_kb, slices)
        return utility.value(perf, vcores)

    def best(self, benchmark: ProfileLike, utility: UtilityFunction,
             market: Market) -> OptimalChoice:
        """The utility-maximising configuration for one customer."""
        name = _resolve(benchmark).name
        if self._kernel is not None:
            cache_kb, slices, vcores, perf, value = self._kernel.for_market(
                market
            ).best(benchmark, utility, self.budget)
            return OptimalChoice(
                benchmark=name,
                utility_name=utility.name,
                market_name=market.name,
                cache_kb=cache_kb,
                slices=slices,
                vcores=vcores,
                performance=perf,
                utility=value,
            )
        grid = self._perf_grid(benchmark)
        best_choice: Optional[OptimalChoice] = None
        for cache_kb in self.cache_grid:
            for slices in self.slice_grid:
                perf = grid[(cache_kb, slices)]
                vcores = market.vcores_affordable(
                    self.budget, cache_kb, slices
                )
                value = utility.value(perf, vcores)
                if best_choice is None or value > best_choice.utility:
                    best_choice = OptimalChoice(
                        benchmark=name,
                        utility_name=utility.name,
                        market_name=market.name,
                        cache_kb=cache_kb,
                        slices=slices,
                        vcores=vcores,
                        performance=perf,
                        utility=value,
                    )
        assert best_choice is not None
        return best_choice

    def table6(self, benchmarks: Sequence[ProfileLike],
               utilities: Sequence[UtilityFunction],
               markets: Sequence[Market]
               ) -> Dict[Tuple[str, str, str], OptimalChoice]:
        """Paper Table 6: optimal configurations per market per utility."""
        self.prime(benchmarks)
        return {
            (market.name, utility.name, _resolve(bench).name): self.best(
                bench, utility, market
            )
            for market in markets
            for utility in utilities
            for bench in benchmarks
        }

    def utility_surface(self, benchmark: ProfileLike,
                        utility: UtilityFunction,
                        market: Market) -> Dict[Tuple[float, int], float]:
        """Figure 14: the full utility surface over (cache, slices)."""
        if self._kernel is not None:
            grid = self._kernel.for_market(market).utility_grid(
                benchmark, utility, self.budget)
            return {
                (cache_kb, slices): float(grid[ci, si])
                for ci, cache_kb in enumerate(self.cache_grid)
                for si, slices in enumerate(self.slice_grid)
            }
        return {
            (cache_kb, slices): self.utility_at(
                benchmark, utility, market, cache_kb, slices
            )
            for cache_kb in self.cache_grid
            for slices in self.slice_grid
        }
