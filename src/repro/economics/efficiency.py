"""Performance-area efficiency metrics (paper Section 5.5, Table 4).

``performance / area`` models throughput customers; ``performance^2 /
area`` and ``performance^3 / area`` model increasing preference for
single-thread performance (the paper notes the analogy to Energy*Delay^2
and Energy*Delay^3).  Optimal VCore configurations are found by
exhaustive search over the Equation 3 space.

On the ``"numpy"`` backend the search is one ``perf**k / area`` tensor
and an argmax per (benchmark, metric); the scalar double loop stays as
the ``"python"`` reference path.  Row-major (cache outer, slice inner)
argmax ties break identically to the scalar first-strictly-greater
loop, so the chosen configurations are bit-identical across backends.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro.area.model import AreaModel
from repro.economics.backend import resolve_backend
from repro.economics.tensor import performance_tensor
from repro.perfmodel.model import (
    AnalyticModel,
    CACHE_GRID_KB,
    SLICE_GRID,
    ProfileLike,
    _resolve,
)


@dataclass(frozen=True)
class EfficiencyMetric:
    """``performance^k / area`` for a preference exponent k."""

    name: str
    perf_exponent: float

    def __post_init__(self) -> None:
        if self.perf_exponent <= 0:
            raise ValueError("exponent must be positive")

    def value(self, performance: float, area: float) -> float:
        if area <= 0:
            raise ValueError("area must be positive")
        return (performance ** self.perf_exponent) / area


PERF_PER_AREA = EfficiencyMetric("performance/area", 1.0)
PERF2_PER_AREA = EfficiencyMetric("performance^2/area", 2.0)
PERF3_PER_AREA = EfficiencyMetric("performance^3/area", 3.0)
STANDARD_METRICS: Tuple[EfficiencyMetric, ...] = (
    PERF_PER_AREA,
    PERF2_PER_AREA,
    PERF3_PER_AREA,
)


@dataclass(frozen=True)
class ConfigurationScore:
    """One configuration's metric value."""

    cache_kb: float
    slices: int
    performance: float
    area: float
    score: float


def area_matrix(area_model: Optional[AreaModel] = None,
                cache_grid: Sequence[float] = CACHE_GRID_KB,
                slice_grid: Sequence[int] = SLICE_GRID):
    """The ``(cache, slices)`` VCore-area matrix (uncore included)."""
    import numpy as np

    area_model = area_model or AreaModel()
    return np.array([
        [area_model.vcore_area(cache_kb, slices, include_uncore=True)
         for slices in slice_grid]
        for cache_kb in cache_grid
    ])


def optimal_configuration(
    benchmark: ProfileLike,
    metric: EfficiencyMetric,
    model: Optional[AnalyticModel] = None,
    area_model: Optional[AreaModel] = None,
    cache_grid: Sequence[float] = CACHE_GRID_KB,
    slice_grid: Sequence[int] = SLICE_GRID,
    backend: Optional[str] = None,
) -> ConfigurationScore:
    """Exhaustively search Equation 3's space for the best configuration."""
    model = model or AnalyticModel()
    area_model = area_model or AreaModel()
    if resolve_backend(backend) == "numpy":
        import numpy as np

        perf = performance_tensor([benchmark], cache_grid, slice_grid,
                                  model=model)[0]
        area = area_matrix(area_model, cache_grid, slice_grid)
        score = (perf ** metric.perf_exponent) / area
        ci, si = divmod(int(np.argmax(score)), len(slice_grid))
        return ConfigurationScore(
            cache_kb=cache_grid[ci],
            slices=slice_grid[si],
            performance=float(perf[ci, si]),
            area=float(area[ci, si]),
            score=float(score[ci, si]),
        )
    best: Optional[ConfigurationScore] = None
    for cache_kb in cache_grid:
        for slices in slice_grid:
            perf = model.performance(benchmark, cache_kb, slices)
            area = area_model.vcore_area(cache_kb, slices,
                                          include_uncore=True)
            score = metric.value(perf, area)
            if best is None or score > best.score:
                best = ConfigurationScore(
                    cache_kb=cache_kb,
                    slices=slices,
                    performance=perf,
                    area=area,
                    score=score,
                )
    assert best is not None
    return best


def efficiency_table(
    benchmarks: Sequence[str],
    metrics: Sequence[EfficiencyMetric] = STANDARD_METRICS,
    model: Optional[AnalyticModel] = None,
    area_model: Optional[AreaModel] = None,
    backend: Optional[str] = None,
):
    """Table 4: optimal (cache, slices) per benchmark per metric.

    The numpy path builds one ``(benchmarks, cache, slices)`` performance
    tensor and reduces it under every metric exponent, instead of
    re-walking the grid per (benchmark, metric).
    """
    model = model or AnalyticModel()
    area_model = area_model or AreaModel()
    if resolve_backend(backend) == "numpy":
        import numpy as np

        cache_grid, slice_grid = CACHE_GRID_KB, SLICE_GRID
        names = [_resolve(b).name for b in benchmarks]
        perf = performance_tensor(benchmarks, cache_grid, slice_grid,
                                  model=model)
        area = area_matrix(area_model, cache_grid, slice_grid)
        table = {}
        for metric in metrics:
            scores = (perf ** metric.perf_exponent) / area
            flat = scores.reshape(len(names), -1)
            winners = np.argmax(flat, axis=1)
            row = {}
            for bi, name in enumerate(names):
                ci, si = divmod(int(winners[bi]), len(slice_grid))
                row[name] = ConfigurationScore(
                    cache_kb=cache_grid[ci],
                    slices=slice_grid[si],
                    performance=float(perf[bi, ci, si]),
                    area=float(area[ci, si]),
                    score=float(scores[bi, ci, si]),
                )
            table[metric.name] = row
        return table
    return {
        metric.name: {
            bench: optimal_configuration(bench, metric, model, area_model,
                                         backend="python")
            for bench in benchmarks
        }
        for metric in metrics
    }
