"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``experiments``            run every table/figure runner
``experiment <name>``      run one artefact (fig12, tab6, ...)
``simulate``               one SSim run with explicit parameters
``optimize``               one customer's utility-maximising purchase
``datacenter-stream``      drive the streaming allocation service
``list``                   benchmarks, utilities, markets, experiments
"""

from __future__ import annotations

import argparse
import sys

from repro.core.simulator import simulate
from repro.economics.market import STANDARD_MARKETS
from repro.economics.optimizer import UtilityOptimizer
from repro.economics.utility import STANDARD_UTILITIES
from repro.trace import all_benchmarks
from repro.trace.generator import make_workload

_EXPERIMENTS = {
    "fig10": "area_decomposition",
    "fig11": "area_decomposition",
    "fig12": "scalability",
    "fig13": "cache_sensitivity",
    "tab4": "optima",
    "fig14": "utility_surfaces",
    "tab6": "markets",
    "fig15": "static_comparison",
    "fig16": "hetero_comparison",
    "fig17": "datacenter_mix",
    "tab7": "phases",
    "tab8": "taxonomy",
    "parsec": "parsec_multivcore",
    "energy": "energy_delay",
    "ablation-son": "ablation_son",
    "datacenter": "datacenter_scale",
    "datacenter-stream": "datacenter_stream",
}


def _cmd_experiments(args) -> int:
    from repro.experiments import runner
    argv = []
    for name in args.only or ():
        argv += ["--only", name]
    if args.jobs != 1:
        argv += ["--jobs", str(args.jobs)]
    if args.json:
        argv += ["--json", args.json]
    if args.no_cache:
        argv.append("--no-cache")
    if args.cache_dir:
        argv += ["--cache-dir", args.cache_dir]
    if args.no_store:
        argv.append("--no-store")
    elif args.workload_store is not True:
        argv += ["--workload-store", args.workload_store]
    if args.obs:
        argv.append("--obs")
    if args.trace:
        argv += ["--trace", args.trace]
    if args.metrics_out:
        argv += ["--metrics-out", args.metrics_out]
    if args.timeout is not None:
        argv += ["--timeout", str(args.timeout)]
    if args.backend != "numpy":
        argv += ["--backend", args.backend]
    if args.sampling:
        argv.append("--sampling")
    if args.profile:
        argv.append("--profile")
    return runner.main(argv)


def _cmd_experiment(args) -> int:
    module_name = _EXPERIMENTS.get(args.name)
    if module_name is None:
        print(f"unknown experiment {args.name!r}; known: "
              f"{', '.join(sorted(_EXPERIMENTS))}", file=sys.stderr)
        return 2
    import importlib
    module = importlib.import_module(f"repro.experiments.{module_name}")
    module.main()
    return 0


def _cmd_simulate(args) -> int:
    import json

    from repro.obs import Observability

    obs = None
    if args.obs or args.trace or args.metrics_out:
        obs = Observability(trace=args.trace is not None)
    warmup, trace = make_workload(args.benchmark, args.length,
                                  seed=args.seed)
    backend = args.sim_backend
    if backend == "batched" and obs is not None:
        print("--backend batched has no per-instruction observability; "
              "drop --obs/--trace or use --backend python",
              file=sys.stderr)
        return 2
    summary = None
    if args.sampling:
        from repro.sampling import simulate_sampled
        result = simulate_sampled(trace, num_slices=args.slices,
                                  l2_cache_kb=args.cache_kb,
                                  warmup_addresses=warmup, obs=obs,
                                  backend=backend)
        summary = result.sampling
    else:
        result = simulate(trace, num_slices=args.slices,
                          l2_cache_kb=args.cache_kb,
                          warmup_addresses=warmup, obs=obs,
                          backend=backend)
    print(f"{args.benchmark} on ({args.slices} Slices, "
          f"{args.cache_kb:.0f} KB L2):")
    for key, value in result.stats.summary().items():
        print(f"  {key:16} {value}")
    if summary is not None:
        lo, hi = result.ipc_ci
        print(f"  {'ipc_ci':16} [{lo:.4f}, {hi:.4f}] "
              f"(+-{summary.relative_error:.1%})")
        print(f"  {'detail_frac':16} {summary.detail_fraction:.3f} "
              f"({summary.windows} windows, head "
              f"{summary.head_instructions})")
    if args.metrics_out:
        payload = {
            "benchmark": args.benchmark,
            "slices": args.slices,
            "cache_kb": args.cache_kb,
            "stats": result.stats.summary(),
            "obs": obs.snapshot(),
        }
        with open(args.metrics_out, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, default=str)
        print(f"wrote {args.metrics_out}")
    if args.trace:
        obs.export_trace(
            args.trace,
            process_name=f"ssim:{args.benchmark}"
                         f".s{args.slices}.c{args.cache_kb:g}",
        )
        print(f"wrote {args.trace}")
    return 0


def _cmd_optimize(args) -> int:
    utilities = {u.name: u for u in STANDARD_UTILITIES}
    markets = {m.name: m for m in STANDARD_MARKETS}
    optimizer = UtilityOptimizer(budget=args.budget)
    choice = optimizer.best(args.benchmark, utilities[args.utility],
                            markets[args.market])
    print(f"{args.benchmark} / {args.utility} / {args.market} "
          f"(budget {args.budget:.0f}):")
    print(f"  buy {choice.vcores:.2f} VCores of "
          f"({choice.slices} Slices, {choice.cache_kb:.0f} KB L2)")
    print(f"  performance {choice.performance:.3f} IPC, "
          f"utility {choice.utility:.3f}")
    return 0


def _cmd_datacenter_stream(args) -> int:
    import json

    from repro.experiments import datacenter_stream

    engine = None
    if args.shards > 1:
        from repro.engine import SweepEngine
        engine = SweepEngine(jobs=args.jobs)
    floor = (args.admission_floor if args.admission_floor is not None
             else datacenter_stream.ADMISSION_FLOOR)
    strict = True if args.strict else None

    profiler = None
    if args.profile:
        import cProfile
        profiler = cProfile.Profile()
        profiler.enable()
    try:
        result = datacenter_stream.run(
            num_events=args.events,
            seed=args.seed,
            backend=args.backend,
            admission_floor=floor,
            reprice_every=args.reprice_every,
            shards=args.shards,
            couple=args.couple,
            sync_every=(args.sync_every if args.sync_every is not None
                        else datacenter_stream.SYNC_EVERY),
            fault_rate=args.faults,
            chaos_seed=args.chaos_seed,
            strict=strict,
            readmit=args.readmit,
            audit_every=args.audit_every,
            checkpoint_every=args.checkpoint_every,
            checkpoint_path=args.checkpoint_path,
            engine=engine,
        )
    finally:
        if profiler is not None:
            profiler.disable()
            profiler.dump_stats(args.profile)
            print(f"wrote {args.profile} "
                  f"(open with `python -m pstats {args.profile}`)")
    datacenter_stream.render(result)
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(result.to_dict(), fh, indent=2)
        print(f"wrote {args.json}")
    return 0


def _cmd_list(_args) -> int:
    print("benchmarks :", ", ".join(all_benchmarks()))
    print("utilities  :", ", ".join(u.name for u in STANDARD_UTILITIES))
    print("markets    :", ", ".join(m.name for m in STANDARD_MARKETS))
    print("experiments:", ", ".join(sorted(_EXPERIMENTS)))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="The Sharing Architecture (ASPLOS 2014) reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    exp = sub.add_parser("experiments", help="run every table/figure")
    exp.add_argument("--only", action="append", metavar="NAME",
                     default=None, help="run only this experiment "
                     "(repeatable; see `repro list`)")
    exp.add_argument("--jobs", type=int, default=1, metavar="N",
                     help="sweep-engine worker processes")
    exp.add_argument("--json", metavar="PATH", default=None,
                     help="export results + metrics as JSON")
    exp.add_argument("--no-cache", action="store_true",
                     help="disable the persistent result cache")
    exp.add_argument("--cache-dir", metavar="DIR", default=None,
                     help="result-cache directory")
    exp.add_argument("--workload-store", metavar="PATH", nargs="?",
                     const=True, default=True,
                     help="shared mmap workload store (default on, "
                          "under the cache dir)")
    exp.add_argument("--no-store", action="store_true",
                     help="disable the workload store")
    exp.add_argument("--obs", action="store_true",
                     help="enable the instrument registry")
    exp.add_argument("--trace", metavar="PATH", default=None,
                     help="write Chrome trace_event JSON (implies --obs)")
    exp.add_argument("--metrics-out", metavar="PATH", default=None,
                     help="write run metrics as JSON")
    exp.add_argument("--timeout", type=float, default=None, metavar="S",
                     help="per-sweep wall-clock bound (seconds)")
    exp.add_argument("--backend", choices=("numpy", "python"),
                     default="numpy",
                     help="economics evaluation backend (default numpy)")
    exp_mode = exp.add_mutually_exclusive_group()
    exp_mode.add_argument("--sampling", action="store_true",
                          help="interval-sampled simulation sweeps")
    exp_mode.add_argument("--exact", action="store_true",
                          help="exact simulation sweeps (default)")
    exp.add_argument("--profile", action="store_true",
                     help="wrap the run in cProfile "
                          "(pstats next to --metrics-out)")
    exp.set_defaults(func=_cmd_experiments)

    one = sub.add_parser("experiment", help="run one artefact")
    one.add_argument("name", help="fig12, tab6, parsec, ...")
    one.set_defaults(func=_cmd_experiment)

    sim = sub.add_parser("simulate", help="one SSim run")
    sim.add_argument("--benchmark", default="gcc",
                     choices=all_benchmarks())
    sim.add_argument("--slices", type=int, default=2)
    sim.add_argument("--cache-kb", type=float, default=256.0)
    sim.add_argument("--length", type=int, default=3000)
    sim.add_argument("--seed", type=int, default=0)
    sim.add_argument("--obs", action="store_true",
                     help="attach the instrument registry")
    sim.add_argument("--trace", metavar="PATH", default=None,
                     help="write Chrome trace_event JSON of the run "
                          "(open in ui.perfetto.dev)")
    sim.add_argument("--metrics-out", metavar="PATH", default=None,
                     help="write stats + instrument snapshot as JSON")
    sim.add_argument("--backend", dest="sim_backend",
                     choices=("python", "batched"), default="python",
                     help="simulator backend: the scalar reference or "
                          "the structure-of-arrays batched backend "
                          "(bit-identical stats, faster)")
    sim_mode = sim.add_mutually_exclusive_group()
    sim_mode.add_argument("--sampling", action="store_true",
                          help="interval-sampled run (reports IPC with "
                               "a confidence interval)")
    sim_mode.add_argument("--exact", action="store_true",
                          help="exact cycle-level run (default)")
    sim.set_defaults(func=_cmd_simulate)

    opt = sub.add_parser("optimize", help="one customer's best purchase")
    opt.add_argument("--benchmark", default="gcc",
                     choices=all_benchmarks())
    opt.add_argument("--utility", default="Utility2",
                     choices=[u.name for u in STANDARD_UTILITIES])
    opt.add_argument("--market", default="Market2",
                     choices=[m.name for m in STANDARD_MARKETS])
    opt.add_argument("--budget", type=float, default=24.0)
    opt.set_defaults(func=_cmd_optimize)

    stream = sub.add_parser(
        "datacenter-stream",
        help="drive the streaming allocation service",
    )
    stream.add_argument("--events", type=int, default=20_000,
                        help="number of submit/resize/depart events")
    stream.add_argument("--seed", type=int, default=11)
    stream.add_argument("--backend", choices=("numpy", "python"),
                        default=None,
                        help="economics backend (default numpy when "
                             "available)")
    stream.add_argument("--admission-floor", type=float, default=None,
                        help="minimum utility per budget unit to admit "
                             "a tenant")
    stream.add_argument("--reprice-every", type=int, default=1,
                        metavar="N", help="run a warm-started repricing "
                        "step every N events (0 disables)")
    stream.add_argument("--shards", type=int, default=1,
                        help="fan independent stream shards across "
                             "engine workers")
    stream.add_argument("--couple", type=int, default=1, metavar="N",
                        help="split each stream across N coupled "
                             "shards trading against one global price "
                             "vector (periodic averaging)")
    stream.add_argument("--sync-every", type=int, default=None,
                        metavar="N",
                        help="per-shard events between global price "
                             "syncs when coupling (default 500)")
    stream.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes when sharding")
    stream.add_argument("--profile", metavar="PATH", default=None,
                        help="wrap the run in cProfile and dump pstats "
                             "to PATH")
    stream.add_argument("--json", metavar="PATH", default=None,
                        help="write the result as JSON")
    stream.add_argument("--faults", type=float, default=0.0,
                        metavar="RATE",
                        help="inject seeded faults at this per-event "
                             "rate (0 disables; implies lenient mode)")
    stream.add_argument("--chaos-seed", type=int, default=0,
                        help="seed for the fault plan and injector")
    stream.add_argument("--strict", action="store_true",
                        help="raise on bad events even when injecting "
                             "faults (default: lenient when --faults>0)")
    stream.add_argument("--readmit", action="store_true",
                        help="retry capacity-rejected tenants with "
                             "capped backoff after departures")
    stream.add_argument("--audit-every", type=int, default=0,
                        metavar="N",
                        help="verify service invariants every N events")
    stream.add_argument("--checkpoint-every", type=int, default=0,
                        metavar="N",
                        help="write a resumable checkpoint every N "
                             "events (needs --checkpoint-path)")
    stream.add_argument("--checkpoint-path", metavar="PATH",
                        default=None,
                        help="where to write the checkpoint JSON")
    stream.set_defaults(func=_cmd_datacenter_stream)

    sub.add_parser("list", help="list names").set_defaults(func=_cmd_list)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
