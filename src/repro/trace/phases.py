"""Program-phase modelling.

Paper Section 5.10 studies program phases by dividing gcc into 10 equal
segments, simulating each independently, and reconfiguring the VCore at
phase boundaries (10 000 cycles when the L2 configuration changes, 500
cycles when only the Slice count changes).

A :class:`PhasedProfile` is an ordered list of per-phase
:class:`~repro.trace.profiles.BenchmarkProfile` variants plus the number of
instructions in each phase.  The phase variants for gcc sweep from
cache-hungry, ILP-rich early phases to lean, low-ILP late phases so that
the optimal VCore configuration drifts across phases as in Table 7.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.trace.profiles import BenchmarkProfile, get_profile

#: Reconfiguration penalty when the L2 allocation changes (cycles).
#: The L2 banks must be flushed to memory (paper Sections 3.8, 5.10).
RECONFIG_CACHE_CYCLES = 10_000
#: Reconfiguration penalty when only the Slice count changes (cycles).
#: Only a Register Flush over the operand network is needed.
RECONFIG_SLICE_CYCLES = 500


@dataclass(frozen=True)
class Phase:
    """One program phase: a profile variant plus its instruction count."""

    index: int
    profile: BenchmarkProfile
    instructions: int

    def __post_init__(self) -> None:
        if self.instructions <= 0:
            raise ValueError("phase must contain instructions")


class PhasedProfile:
    """An ordered sequence of program phases for one benchmark."""

    def __init__(self, name: str, phases: Sequence[Phase]):
        if not phases:
            raise ValueError("need at least one phase")
        for expected, phase in enumerate(phases):
            if phase.index != expected:
                raise ValueError("phase indices must be 0..n-1 in order")
        self.name = name
        self.phases: Tuple[Phase, ...] = tuple(phases)

    def __len__(self) -> int:
        return len(self.phases)

    def __iter__(self):
        return iter(self.phases)

    @property
    def total_instructions(self) -> int:
        return sum(p.instructions for p in self.phases)

    def reconfiguration_cost(
        self,
        configs: Sequence[Tuple[float, int]],
    ) -> int:
        """Total reconfiguration cycles for a per-phase schedule.

        ``configs`` is one ``(cache_kb, slices)`` pair per phase.  A change
        in cache allocation costs :data:`RECONFIG_CACHE_CYCLES`; a change
        in Slice count alone costs :data:`RECONFIG_SLICE_CYCLES`.
        """
        if len(configs) != len(self.phases):
            raise ValueError(
                f"need {len(self.phases)} configs, got {len(configs)}"
            )
        total = 0
        for prev, cur in zip(configs, configs[1:]):
            prev_cache, prev_slices = prev
            cur_cache, cur_slices = cur
            if cur_cache != prev_cache:
                total += RECONFIG_CACHE_CYCLES
            elif cur_slices != prev_slices:
                total += RECONFIG_SLICE_CYCLES
        return total


#: Per-phase modifiers for gcc, ordered phase 1..10.  Early phases carry
#: more ILP and a larger working set; late phases are lean (paper Table 7
#: shows optimal configurations shrinking across phases).
_GCC_PHASE_MODIFIERS = [
    # (ilp_scale, ws_scale, l1_mpki_scale, comm_scale)
    (1.50, 2.20, 1.50, 0.70),
    (1.40, 1.80, 1.30, 0.75),
    (1.30, 1.50, 1.20, 0.80),
    (1.15, 1.70, 1.15, 0.90),
    (1.20, 2.00, 1.30, 0.85),
    (0.95, 0.80, 0.90, 1.05),
    (1.10, 1.40, 1.05, 0.90),
    (0.70, 0.40, 0.60, 1.35),
    (0.60, 0.30, 0.45, 1.50),
    (0.85, 0.60, 0.80, 1.20),
]


def gcc_phases(instructions_per_phase: int = 2_000_000) -> PhasedProfile:
    """The 10-phase decomposition of gcc used in paper Table 7."""
    base = get_profile("gcc")
    phases: List[Phase] = []
    for idx, (ilp_s, ws_s, mpki_s, comm_s) in enumerate(_GCC_PHASE_MODIFIERS):
        variant = base.with_overrides(
            name=f"gcc.phase{idx + 1}",
            ilp=max(1.0, base.ilp * ilp_s),
            l2_ws_kb=base.l2_ws_kb * ws_s,
            l1_mpki=base.l1_mpki * mpki_s,
            comm_sens=min(1.0, base.comm_sens * comm_s),
        )
        phases.append(
            Phase(index=idx, profile=variant, instructions=instructions_per_phase)
        )
    return PhasedProfile("gcc", phases)
