"""Per-benchmark workload profiles.

The paper evaluates the complete SPEC CINT2006 suite, an Apache static
web-serving workload, and a subset of PARSEC (Section 5.2); its figures use
the 15 workloads listed in Figure 12.  Each profile below captures the
statistical structure of one benchmark's dynamic instruction stream:

* instruction mix (loads, stores, branches, multiplies);
* dependence-distance distribution, which bounds exploitable ILP;
* branch predictability for a bimodal predictor;
* memory reuse behaviour, expressed as an L1 miss rate plus an exponential
  L2 miss-rate curve ``floor + (1 - floor) * exp(-c / ws)``.

The numeric values are calibration targets, not measurements of the real
binaries: they were chosen so that the simulated benchmark reproduces the
published scaling curve (Figure 12), cache-sensitivity curve (Figure 13)
and optimal-configuration tables (Tables 4, 6, 7) in *shape*.  See
EXPERIMENTS.md for paper-vs-measured values.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List


@dataclass(frozen=True)
class BenchmarkProfile:
    """Statistical description of one workload's dynamic behaviour."""

    name: str
    suite: str  # "apache" | "spec" | "parsec"

    # --- instruction mix (fractions of the dynamic stream) ---
    frac_load: float = 0.22
    frac_store: float = 0.10
    frac_branch: float = 0.16
    frac_mul: float = 0.02

    # --- ILP structure ---
    #: Dependence-limited IPC with unbounded width and zero-cost bypass.
    ilp: float = 3.0
    #: Fraction of critical dependence edges that cross Slices when the
    #: VCore is partitioned; scales the operand-network penalty.
    comm_sens: float = 0.5

    # --- control flow ---
    #: Bimodal-predictor mispredictions per kilo-instruction.
    br_mpki: float = 8.0

    # --- memory behaviour ---
    #: L1D misses per kilo-instruction (feeds the L2).
    l1_mpki: float = 20.0
    #: Exponential working-set scale (KB) of the L2 miss-rate curve.
    l2_ws_kb: float = 512.0
    #: Fraction of L1-miss traffic that never fits in any L2 (streaming /
    #: compulsory misses).
    l2_floor: float = 0.25
    #: Memory-level parallelism: overlapping outstanding misses divide the
    #: exposed stall time.
    mlp: float = 1.6

    # --- threading (PARSEC) ---
    #: Per-VCore speedup bound.  Paper Section 5.3: "Compared with SPEC,
    #: PARSEC benchmarks have less ILP; the speedup is bounded by 2."
    thread_cap: float = 0.0  # 0 means uncapped (single-threaded SPEC)
    #: Threads used when the benchmark runs multithreaded (PARSEC: 4).
    num_threads: int = 1

    def __post_init__(self) -> None:
        mix = self.frac_load + self.frac_store + self.frac_branch + self.frac_mul
        if not 0.0 < mix < 1.0:
            raise ValueError(f"{self.name}: instruction mix sums to {mix}")
        if self.ilp < 1.0:
            raise ValueError(f"{self.name}: ilp must be >= 1")
        if not 0.0 <= self.comm_sens <= 1.0:
            raise ValueError(f"{self.name}: comm_sens out of [0, 1]")
        if not 0.0 <= self.l2_floor <= 1.0:
            raise ValueError(f"{self.name}: l2_floor out of [0, 1]")
        if self.l2_ws_kb <= 0:
            raise ValueError(f"{self.name}: l2_ws_kb must be positive")
        if self.mlp < 1.0:
            raise ValueError(f"{self.name}: mlp must be >= 1")

    @property
    def frac_alu(self) -> float:
        """Remaining fraction: plain ALU operations."""
        return 1.0 - (
            self.frac_load + self.frac_store + self.frac_branch + self.frac_mul
        )

    @property
    def is_multithreaded(self) -> bool:
        return self.num_threads > 1

    def l2_miss_fraction(self, cache_kb: float) -> float:
        """Fraction of L1 misses that also miss a ``cache_kb`` KB L2."""
        import math

        if cache_kb <= 0:
            return 1.0
        decay = math.exp(-cache_kb / self.l2_ws_kb)
        return self.l2_floor + (1.0 - self.l2_floor) * decay

    def branch_predictability(self) -> float:
        """Probability that the bimodal predictor is correct on a branch."""
        branches_per_ki = self.frac_branch * 1000.0
        if branches_per_ki <= 0:
            return 1.0
        return max(0.5, 1.0 - self.br_mpki / branches_per_ki)

    def with_overrides(self, **kwargs) -> "BenchmarkProfile":
        """A copy of this profile with some fields replaced."""
        return replace(self, **kwargs)


def _spec(name: str, **kwargs) -> BenchmarkProfile:
    return BenchmarkProfile(name=name, suite="spec", **kwargs)


def _parsec(name: str, **kwargs) -> BenchmarkProfile:
    return BenchmarkProfile(
        name=name, suite="parsec", thread_cap=2.0, num_threads=4, **kwargs
    )


#: The 15 workloads of paper Figure 12.  Calibrated; see module docstring.
PROFILES: Dict[str, BenchmarkProfile] = {
    p.name: p
    for p in [
        BenchmarkProfile(
            name="apache",
            suite="apache",
            frac_load=0.24,
            frac_store=0.12,
            frac_branch=0.18,
            ilp=3.6,
            comm_sens=0.50,
            br_mpki=9.0,
            l1_mpki=32.0,
            l2_ws_kb=560.0,
            l2_floor=0.18,
            mlp=1.8,
        ),
        _spec(
            "bzip",
            frac_load=0.26,
            frac_store=0.09,
            frac_branch=0.15,
            ilp=1.8,
            comm_sens=0.95,
            br_mpki=9.5,
            l1_mpki=24.0,
            l2_ws_kb=230.0,
            l2_floor=0.28,
            mlp=1.2,
        ),
        _spec(
            "gcc",
            frac_load=0.25,
            frac_store=0.13,
            frac_branch=0.20,
            ilp=5.0,
            comm_sens=0.42,
            br_mpki=7.0,
            l1_mpki=28.0,
            l2_ws_kb=520.0,
            l2_floor=0.14,
            mlp=1.9,
        ),
        _spec(
            "astar",
            frac_load=0.27,
            frac_store=0.08,
            frac_branch=0.17,
            ilp=2.5,
            comm_sens=0.55,
            br_mpki=13.0,
            l1_mpki=9.0,
            l2_ws_kb=64.0,
            l2_floor=0.50,
            mlp=1.3,
        ),
        _spec(
            "libquantum",
            frac_load=0.23,
            frac_store=0.07,
            frac_branch=0.13,
            ilp=6.5,
            comm_sens=0.28,
            br_mpki=1.0,
            l1_mpki=34.0,
            l2_ws_kb=32000.0,
            l2_floor=0.92,
            mlp=3.2,
        ),
        _spec(
            "perlbench",
            frac_load=0.24,
            frac_store=0.11,
            frac_branch=0.21,
            ilp=4.4,
            comm_sens=0.48,
            br_mpki=8.0,
            l1_mpki=19.0,
            l2_ws_kb=380.0,
            l2_floor=0.22,
            mlp=1.6,
        ),
        _spec(
            "sjeng",
            frac_load=0.21,
            frac_store=0.08,
            frac_branch=0.19,
            ilp=3.1,
            comm_sens=0.55,
            br_mpki=12.0,
            l1_mpki=6.0,
            l2_ws_kb=140.0,
            l2_floor=0.40,
            mlp=1.3,
        ),
        _spec(
            "hmmer",
            frac_load=0.28,
            frac_store=0.11,
            frac_branch=0.08,
            ilp=1.9,
            comm_sens=0.92,
            br_mpki=4.0,
            l1_mpki=10.0,
            l2_ws_kb=48.0,
            l2_floor=0.32,
            mlp=1.4,
        ),
        _spec(
            "gobmk",
            frac_load=0.23,
            frac_store=0.10,
            frac_branch=0.19,
            ilp=5.2,
            comm_sens=0.30,
            br_mpki=13.0,
            l1_mpki=18.0,
            l2_ws_kb=300.0,
            l2_floor=0.25,
            mlp=1.5,
        ),
        _spec(
            "mcf",
            frac_load=0.31,
            frac_store=0.09,
            frac_branch=0.17,
            ilp=2.0,
            comm_sens=0.40,
            br_mpki=11.0,
            l1_mpki=110.0,
            l2_ws_kb=1900.0,
            l2_floor=0.12,
            mlp=1.25,
        ),
        _spec(
            "omnetpp",
            frac_load=0.30,
            frac_store=0.14,
            frac_branch=0.18,
            ilp=2.6,
            comm_sens=0.40,
            br_mpki=8.0,
            l1_mpki=130.0,
            l2_ws_kb=620.0,
            l2_floor=0.01,
            mlp=1.15,
        ),
        _spec(
            "h264ref",
            frac_load=0.28,
            frac_store=0.12,
            frac_branch=0.10,
            ilp=5.6,
            comm_sens=0.33,
            br_mpki=3.0,
            l1_mpki=12.0,
            l2_ws_kb=190.0,
            l2_floor=0.36,
            mlp=1.8,
        ),
        _parsec(
            "dedup",
            frac_load=0.25,
            frac_store=0.12,
            frac_branch=0.15,
            ilp=3.4,
            comm_sens=0.55,
            br_mpki=6.0,
            l1_mpki=26.0,
            l2_ws_kb=520.0,
            l2_floor=0.30,
            mlp=1.8,
        ),
        _parsec(
            "swaptions",
            frac_load=0.24,
            frac_store=0.09,
            frac_branch=0.12,
            ilp=4.0,
            comm_sens=0.50,
            br_mpki=3.0,
            l1_mpki=5.0,
            l2_ws_kb=64.0,
            l2_floor=0.42,
            mlp=1.4,
        ),
        _parsec(
            "ferret",
            frac_load=0.27,
            frac_store=0.11,
            frac_branch=0.14,
            ilp=3.4,
            comm_sens=0.52,
            br_mpki=7.0,
            l1_mpki=30.0,
            l2_ws_kb=640.0,
            l2_floor=0.24,
            mlp=1.9,
        ),
    ]
}


def get_profile(name: str) -> BenchmarkProfile:
    """Look up a benchmark profile by name."""
    try:
        return PROFILES[name]
    except KeyError:
        known = ", ".join(sorted(PROFILES))
        raise KeyError(f"unknown benchmark {name!r}; known: {known}") from None


def all_benchmarks() -> List[str]:
    """All 15 workload names in the paper's presentation order."""
    return [
        "apache",
        "bzip",
        "gcc",
        "astar",
        "libquantum",
        "perlbench",
        "sjeng",
        "hmmer",
        "gobmk",
        "mcf",
        "omnetpp",
        "h264ref",
        "dedup",
        "swaptions",
        "ferret",
    ]


def spec_benchmarks() -> List[str]:
    return [n for n in all_benchmarks() if PROFILES[n].suite == "spec"]


def parsec_benchmarks() -> List[str]:
    return [n for n in all_benchmarks() if PROFILES[n].suite == "parsec"]
