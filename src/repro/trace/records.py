"""Trace containers.

A :class:`Trace` is an ordered dynamic instruction stream plus metadata
about the workload that produced it.  Traces are plain sequences so the
simulator can index into them cheaply; metadata travels with the trace so
results can always be attributed to a workload and generator seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Sequence

from repro.isa import Instruction, OpClass


@dataclass(frozen=True)
class TraceMetadata:
    """Provenance of a trace."""

    benchmark: str
    seed: int
    length: int
    generator: str = "synthetic-v1"


class Trace(Sequence[Instruction]):
    """An immutable dynamic instruction stream."""

    def __init__(self, instructions: Sequence[Instruction], metadata: TraceMetadata):
        self._instructions: List[Instruction] = list(instructions)
        self.metadata = metadata
        if metadata.length != len(self._instructions):
            raise ValueError(
                f"metadata length {metadata.length} != trace length "
                f"{len(self._instructions)}"
            )
        self._validate_sequence_numbers()

    @classmethod
    def from_trusted(cls, instructions: List[Instruction],
                     metadata: TraceMetadata) -> "Trace":
        """Wrap an already-validated instruction list without copying.

        For internal fast paths (the workload store rebuilds traces
        whose sequence numbers are correct by construction); the O(n)
        validation walk of ``__init__`` is skipped.  The list is owned
        by the returned trace - callers must not mutate it.
        """
        trace = cls.__new__(cls)
        trace._instructions = instructions
        trace.metadata = metadata
        return trace

    def _validate_sequence_numbers(self) -> None:
        for idx, inst in enumerate(self._instructions):
            if inst.seq != idx:
                raise ValueError(
                    f"instruction at position {idx} carries seq {inst.seq}"
                )

    def __len__(self) -> int:
        return len(self._instructions)

    def __getitem__(self, idx):  # type: ignore[override]
        return self._instructions[idx]

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self._instructions)

    def op_class_counts(self) -> dict:
        """Histogram of operation classes, useful for sanity checks."""
        counts: dict = {cls: 0 for cls in OpClass}
        for inst in self._instructions:
            counts[inst.op_class] += 1
        return counts

    def mem_fraction(self) -> float:
        if not self._instructions:
            return 0.0
        n_mem = sum(1 for i in self._instructions if i.is_mem)
        return n_mem / len(self._instructions)

    def branch_fraction(self) -> float:
        if not self._instructions:
            return 0.0
        n_br = sum(1 for i in self._instructions if i.is_branch)
        return n_br / len(self._instructions)

    def slice_of(self, start: int, stop: int) -> "Trace":
        """A sub-trace with re-based sequence numbers."""
        window = self._instructions[start:stop]
        rebased = [
            Instruction(
                seq=i,
                pc=inst.pc,
                opcode=inst.opcode,
                srcs=inst.srcs,
                dst=inst.dst,
                mem=inst.mem,
                taken=inst.taken,
                target=inst.target,
            )
            for i, inst in enumerate(window)
        ]
        meta = TraceMetadata(
            benchmark=self.metadata.benchmark,
            seed=self.metadata.seed,
            length=len(rebased),
            generator=self.metadata.generator,
        )
        return Trace(rebased, meta)
