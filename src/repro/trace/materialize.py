"""Materialized trace arrays and a process-local workload cache.

Two hot-path services for the simulator and the sweep engine:

* :func:`materialize` flattens a :class:`~repro.trace.records.Trace` into
  :class:`TraceArrays` - compact, preallocated ``array`` columns (PCs,
  memory addresses, packed flags) that the functional fast-forward loop
  can walk without touching ``Instruction`` objects or property chains.
  The arrays are built once per trace and cached on the trace instance.

* :func:`get_workload` is a process-local LRU over generated workloads,
  keyed by (profile fields, length, seed, warmup multiplier).  Repeated
  work units inside one engine worker - or repeated experiment calls in
  one process - reuse the same generated trace instead of re-running the
  synthetic generator.  Hit/miss/eviction counters are exposed both as
  plain module state (:func:`cache_stats`) and through ``repro.obs``
  (:func:`attach_obs`).

Cached workloads are shared, so callers must treat the returned trace
and warmup stream as immutable (the simulator already does).
"""

from __future__ import annotations

import threading
from array import array
from collections import OrderedDict
from dataclasses import asdict
from typing import Any, Dict, List, Sequence, Tuple, Union

from repro.trace.profiles import BenchmarkProfile, get_profile
from repro.trace.records import Trace

#: Packed per-instruction flag bits (see :class:`TraceArrays.flags`).
FLAG_BRANCH = 1
FLAG_TAKEN = 2
FLAG_LOAD = 4
FLAG_STORE = 8

#: Default number of workloads kept by the process-local LRU.  A workload
#: is O(length) instruction objects; 32 covers every benchmark in the
#: paper's figures at several lengths without unbounded growth.
DEFAULT_CAPACITY = 32


class TraceArrays:
    """Column-oriented view of a trace for the functional fast path.

    One entry per dynamic instruction:

    * ``pcs``       - program counters (``array('q')``);
    * ``mem_addrs`` - effective address, or ``-1`` for non-memory ops;
    * ``flags``     - packed ``FLAG_*`` bits (``array('b')``);
    * ``targets``   - taken-branch target PC, or ``-1``.
    """

    __slots__ = ("length", "pcs", "mem_addrs", "flags", "targets")

    def __init__(self, trace: Sequence) -> None:
        n = len(trace)
        self.length = n
        pcs = array("q", bytes(8 * n))
        mem_addrs = array("q", bytes(8 * n))
        flags = array("b", bytes(n))
        targets = array("q", bytes(8 * n))
        for i, inst in enumerate(trace):
            pcs[i] = inst.pc
            bits = 0
            if inst.mem is not None:
                mem_addrs[i] = inst.mem.address
                bits |= FLAG_STORE if inst.is_store else FLAG_LOAD
            else:
                mem_addrs[i] = -1
            if inst.is_branch:
                bits |= FLAG_BRANCH
                if inst.taken:
                    bits |= FLAG_TAKEN
            targets[i] = inst.target if inst.target is not None else -1
            flags[i] = bits
        self.pcs = pcs
        self.mem_addrs = mem_addrs
        self.flags = flags
        self.targets = targets

    def __len__(self) -> int:
        return self.length


def materialize(trace: Trace) -> TraceArrays:
    """The trace's :class:`TraceArrays`, built once and cached on it."""
    arrays = getattr(trace, "_materialized", None)
    if arrays is None or arrays.length != len(trace):
        arrays = TraceArrays(trace)
        trace._materialized = arrays  # type: ignore[attr-defined]
    return arrays


# ----------------------------------------------------------------------
# process-local workload LRU
# ----------------------------------------------------------------------

ProfileLike = Union[str, BenchmarkProfile]
WorkloadKey = Tuple[Any, ...]

_lock = threading.Lock()
_lru: "OrderedDict[WorkloadKey, Tuple[List[int], Trace]]" = OrderedDict()
_capacity = DEFAULT_CAPACITY
_hits = 0
_misses = 0
_evictions = 0


def _profile_fields(profile: ProfileLike) -> Tuple[Tuple[str, Any], ...]:
    if isinstance(profile, str):
        profile = get_profile(profile)
    return tuple(sorted(asdict(profile).items()))


def workload_key(profile: ProfileLike, length: int, seed: int = 0,
                 warmup_cold_multiplier: float = 4.0) -> WorkloadKey:
    """The LRU (and cache-fingerprint) key of one generated workload."""
    return (_profile_fields(profile), int(length), int(seed),
            float(warmup_cold_multiplier))


def get_workload(profile: ProfileLike, length: int, seed: int = 0,
                 warmup_cold_multiplier: float = 4.0
                 ) -> Tuple[List[int], Trace]:
    """A ``(warmup_addresses, trace)`` pair, served from the LRU.

    Generation is identical to
    :func:`repro.trace.generator.make_workload`; only the redundant
    re-generation is elided.  The trace's :class:`TraceArrays` are built
    eagerly so every consumer shares them.
    """
    global _hits, _misses, _evictions
    key = workload_key(profile, length, seed, warmup_cold_multiplier)
    with _lock:
        cached = _lru.get(key)
        if cached is not None:
            _lru.move_to_end(key)
            _hits += 1
            return cached

    # Generate outside the lock: generation is seconds-scale and pure.
    from repro.trace.generator import SyntheticTraceGenerator

    prof = get_profile(profile) if isinstance(profile, str) else profile
    generator = SyntheticTraceGenerator(prof, seed=seed)
    warmup = generator.warmup_addresses(warmup_cold_multiplier)
    trace = generator.generate(length)
    materialize(trace)
    entry = (warmup, trace)
    with _lock:
        _misses += 1
        _lru[key] = entry
        _lru.move_to_end(key)
        while len(_lru) > _capacity:
            _lru.popitem(last=False)
            _evictions += 1
    return entry


def set_capacity(capacity: int) -> None:
    """Resize the LRU (evicting oldest entries if shrinking)."""
    global _capacity, _evictions
    if capacity < 1:
        raise ValueError("LRU capacity must be >= 1")
    with _lock:
        _capacity = capacity
        while len(_lru) > _capacity:
            _lru.popitem(last=False)
            _evictions += 1


def clear() -> None:
    """Drop every cached workload and zero the counters."""
    global _hits, _misses, _evictions
    with _lock:
        _lru.clear()
        _hits = 0
        _misses = 0
        _evictions = 0


def cache_stats() -> Dict[str, int]:
    """Current LRU counters: hits, misses, evictions, size, capacity."""
    with _lock:
        return {
            "hits": _hits,
            "misses": _misses,
            "evictions": _evictions,
            "size": len(_lru),
            "capacity": _capacity,
        }


def attach_obs(scope) -> None:
    """Register the LRU counters as gauges on a ``repro.obs`` scope."""
    scope.gauge("hits", lambda: _hits)
    scope.gauge("misses", lambda: _misses)
    scope.gauge("evictions", lambda: _evictions)
    scope.gauge("size", lambda: len(_lru))
    scope.info("capacity", _capacity)
