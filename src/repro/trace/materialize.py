"""Materialized trace arrays and a process-local workload cache.

Two hot-path services for the simulator and the sweep engine:

* :func:`materialize` flattens a :class:`~repro.trace.records.Trace` into
  :class:`TraceArrays` - compact, preallocated ``array`` columns (PCs,
  memory addresses, packed flags) that the functional fast-forward loop
  can walk without touching ``Instruction`` objects or property chains.
  The arrays are built once per trace and cached on the trace instance.

* :func:`get_workload` is a process-local LRU over generated workloads,
  keyed by (profile fields, length, seed, warmup multiplier).  Repeated
  work units inside one engine worker - or repeated experiment calls in
  one process - reuse the same generated trace instead of re-running the
  synthetic generator.  Hit/miss/eviction counters are exposed both as
  plain module state (:func:`cache_stats`) and through ``repro.obs``
  (:func:`attach_obs`).

Cached workloads are shared, so callers must treat the returned trace
and warmup stream as immutable (the simulator already does).
"""

from __future__ import annotations

import threading
import time
from array import array
from collections import OrderedDict
from dataclasses import asdict
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.trace.profiles import BenchmarkProfile, get_profile
from repro.trace.records import Trace

#: Packed per-instruction flag bits (see :class:`TraceArrays.flags`).
FLAG_BRANCH = 1
FLAG_TAKEN = 2
FLAG_LOAD = 4
FLAG_STORE = 8

#: Default number of workloads kept by the process-local LRU.  A workload
#: is O(length) instruction objects; 32 covers every benchmark in the
#: paper's figures at several lengths without unbounded growth.
DEFAULT_CAPACITY = 32


class TraceArrays:
    """Column-oriented view of a trace for the functional fast path.

    One entry per dynamic instruction:

    * ``pcs``       - program counters (``array('q')``);
    * ``mem_addrs`` - effective address, or ``-1`` for non-memory ops;
    * ``flags``     - packed ``FLAG_*`` bits (``array('b')``);
    * ``targets``   - taken-branch target PC, or ``-1``.
    """

    __slots__ = ("length", "pcs", "mem_addrs", "flags", "targets")

    def __init__(self, trace: Sequence) -> None:
        n = len(trace)
        self.length = n
        pcs = array("q", bytes(8 * n))
        mem_addrs = array("q", bytes(8 * n))
        flags = array("b", bytes(n))
        targets = array("q", bytes(8 * n))
        for i, inst in enumerate(trace):
            pcs[i] = inst.pc
            bits = 0
            if inst.mem is not None:
                mem_addrs[i] = inst.mem.address
                bits |= FLAG_STORE if inst.is_store else FLAG_LOAD
            else:
                mem_addrs[i] = -1
            if inst.is_branch:
                bits |= FLAG_BRANCH
                if inst.taken:
                    bits |= FLAG_TAKEN
            targets[i] = inst.target if inst.target is not None else -1
            flags[i] = bits
        self.pcs = pcs
        self.mem_addrs = mem_addrs
        self.flags = flags
        self.targets = targets

    def __len__(self) -> int:
        return self.length

    @classmethod
    def from_buffers(cls, length: int, pcs, mem_addrs, flags,
                     targets) -> "TraceArrays":
        """Wrap existing column buffers without copying.

        Used by the workload store to serve mmap-backed, read-only
        ``memoryview`` columns: every worker process indexes the same
        physical pages.  Buffers must follow the constructor's layout
        (``'q'`` for pcs/mem_addrs/targets, ``'b'`` flags, ``-1``
        sentinels).
        """
        self = cls.__new__(cls)
        self.length = int(length)
        self.pcs = pcs
        self.mem_addrs = mem_addrs
        self.flags = flags
        self.targets = targets
        return self


#: Full-fidelity content tokens are computed for traces up to this many
#: instructions; beyond it :func:`trace_token` samples element
#: identities (the token check runs on the per-window fast-forward
#: path, and a full O(n) walk over a millions-long trace would cost as
#: much as the window itself).
_TOKEN_FULL_MAX = 65536
_TOKEN_PROBES = 4096


def trace_token(trace: Trace) -> int:
    """Identity fingerprint of a trace's instruction stream.

    Replacing any element of a small trace changes the token;
    for traces above ``_TOKEN_FULL_MAX`` a strided sample of element
    identities (plus length and endpoints) is fingerprinted instead.
    """
    insts = trace._instructions
    n = len(insts)
    if n <= _TOKEN_FULL_MAX:
        return hash((n, tuple(map(id, insts))))
    step = max(1, n // _TOKEN_PROBES)
    probes = tuple(id(insts[i]) for i in range(0, n, step))
    return hash((n, id(insts), id(insts[-1]), probes))


def materialize(trace: Trace) -> TraceArrays:
    """The trace's :class:`TraceArrays`, built once and cached on it.

    The memo is keyed on the trace's *content identity*
    (:func:`trace_token`), not just its length, so a trace mutated in
    place can never serve stale columns.
    """
    token = trace_token(trace)
    arrays = getattr(trace, "_materialized", None)
    if (arrays is not None and arrays.length == len(trace)
            and getattr(trace, "_materialized_token", None) == token):
        return arrays
    arrays = TraceArrays(trace)
    trace._materialized = arrays  # type: ignore[attr-defined]
    trace._materialized_token = token  # type: ignore[attr-defined]
    return arrays


# ----------------------------------------------------------------------
# process-local workload LRU
# ----------------------------------------------------------------------

ProfileLike = Union[str, BenchmarkProfile]
WorkloadKey = Tuple[Any, ...]

_lock = threading.Lock()
_lru: "OrderedDict[WorkloadKey, Tuple[Any, Trace]]" = OrderedDict()
_capacity = DEFAULT_CAPACITY
_hits = 0
_misses = 0
_evictions = 0
_generations = 0
_generation_s = 0.0

#: Process default workload store (see :func:`set_store`): the tier
#: between the in-process LRU and regeneration.  Duck-typed - anything
#: with ``fetch(profile_fields, length, seed, multiplier, generate)``
#: works; in practice a
#: :class:`~repro.engine.store.WorkloadStore` (materialize cannot
#: import it: the store sits above this module in the layering).
_default_store: Optional[Any] = None

#: Sentinel distinguishing "use the process default" from an explicit
#: ``store=None`` (force regeneration semantics).
_UNSET = object()


def set_store(store: Optional[Any]) -> Optional[Any]:
    """Install the process-default workload store; returns the old one.

    Pool workers call this (through the engine's batch payloads) so
    every :func:`get_workload` LRU miss tries the shared mmap store
    before paying for generation.
    """
    global _default_store
    previous = _default_store
    _default_store = store
    return previous


def get_default_store() -> Optional[Any]:
    return _default_store


def _profile_fields(profile: ProfileLike) -> Tuple[Tuple[str, Any], ...]:
    if isinstance(profile, str):
        profile = get_profile(profile)
    return tuple(sorted(asdict(profile).items()))


def workload_key(profile: ProfileLike, length: int, seed: int = 0,
                 warmup_cold_multiplier: float = 4.0) -> WorkloadKey:
    """The LRU (and cache-fingerprint) key of one generated workload."""
    return (_profile_fields(profile), int(length), int(seed),
            float(warmup_cold_multiplier))


def _generate_workload(prof: BenchmarkProfile, length: int, seed: int,
                       warmup_cold_multiplier: float
                       ) -> Tuple[List[int], Trace]:
    """Run the synthetic generator (the slow path), counted and timed."""
    global _generations, _generation_s
    from repro.trace.generator import SyntheticTraceGenerator

    start = time.monotonic()
    generator = SyntheticTraceGenerator(prof, seed=seed)
    warmup = generator.warmup_addresses(warmup_cold_multiplier)
    trace = generator.generate(length)
    materialize(trace)
    with _lock:
        _generations += 1
        _generation_s += time.monotonic() - start
    return warmup, trace


def get_workload(profile: ProfileLike, length: int, seed: int = 0,
                 warmup_cold_multiplier: float = 4.0,
                 store: Any = _UNSET) -> Tuple[Any, Trace]:
    """A ``(warmup_addresses, trace)`` pair, served in three tiers:
    the process-local LRU, then the shared mmap workload store (when one
    is installed via :func:`set_store` or passed as ``store=``), then
    the synthetic generator.

    Generation is identical to
    :func:`repro.trace.generator.make_workload`; only the redundant
    re-generation is elided.  The trace's :class:`TraceArrays` are built
    eagerly so every consumer shares them.  Store-served workloads are
    bit-identical to generated ones (same instruction stream, same
    warmup values); their warmup is a read-only ``memoryview`` over the
    mapped file rather than a list.
    """
    global _hits, _misses, _evictions
    key = workload_key(profile, length, seed, warmup_cold_multiplier)
    with _lock:
        cached = _lru.get(key)
        if cached is not None:
            _lru.move_to_end(key)
            _hits += 1
            return cached

    # Generate/load outside the lock: generation is seconds-scale and
    # pure, and the store serializes concurrent generators itself.
    prof = get_profile(profile) if isinstance(profile, str) else profile
    if store is _UNSET:
        store = _default_store
    if store is not None:
        entry = store.fetch(
            key[0], int(length), int(seed), float(warmup_cold_multiplier),
            lambda: _generate_workload(prof, int(length), int(seed),
                                       float(warmup_cold_multiplier)))
    else:
        entry = _generate_workload(prof, int(length), int(seed),
                                   float(warmup_cold_multiplier))
    with _lock:
        _misses += 1
        _lru[key] = entry
        _lru.move_to_end(key)
        while len(_lru) > _capacity:
            _lru.popitem(last=False)
            _evictions += 1
    return entry


def set_capacity(capacity: int) -> None:
    """Resize the LRU (evicting oldest entries if shrinking)."""
    global _capacity, _evictions
    if capacity < 1:
        raise ValueError("LRU capacity must be >= 1")
    with _lock:
        _capacity = capacity
        while len(_lru) > _capacity:
            _lru.popitem(last=False)
            _evictions += 1


def clear() -> None:
    """Drop every cached workload and zero the counters."""
    global _hits, _misses, _evictions, _generations, _generation_s
    with _lock:
        _lru.clear()
        _hits = 0
        _misses = 0
        _evictions = 0
        _generations = 0
        _generation_s = 0.0


def cache_stats() -> Dict[str, Any]:
    """Current LRU counters: hits, misses, evictions, size, capacity,
    plus the process's generator invocations and time."""
    with _lock:
        return {
            "hits": _hits,
            "misses": _misses,
            "evictions": _evictions,
            "size": len(_lru),
            "capacity": _capacity,
            "generations": _generations,
            "generation_s": _generation_s,
        }


def attach_obs(scope) -> None:
    """Register the LRU counters as gauges on a ``repro.obs`` scope."""
    scope.gauge("hits", lambda: _hits)
    scope.gauge("misses", lambda: _misses)
    scope.gauge("evictions", lambda: _evictions)
    scope.gauge("size", lambda: len(_lru))
    scope.gauge("generations", lambda: _generations)
    scope.info("capacity", _capacity)
