"""Synthetic dynamic-trace generation.

Substitutes for the paper's GEM5 Alpha full-system traces (Section 5.2).
The generator builds a small static control-flow graph and walks it,
emitting dynamic instructions whose dependence distances, branch behaviour
and memory reuse follow the statistical targets in a
:class:`~repro.trace.profiles.BenchmarkProfile`.

Only the *statistics* of the stream matter to the micro-architecture under
study, so this substitution exercises the same simulator code paths as a
real trace would: register renaming sees the same dependence structure, the
branch unit sees the same (mis)predictability, and the cache hierarchy sees
the same reuse-distance mix.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional

from repro.isa import Instruction, MemAccess
from repro.isa.opcodes import CLASS_OPCODES, OpClass
from repro.trace.profiles import BenchmarkProfile, get_profile
from repro.trace.records import Trace, TraceMetadata

#: Size of the "hot" data region that always fits in the L1 D-cache.
_HOT_REGION_BYTES = 4 * 1024
#: Base virtual address of the data segment.
_DATA_BASE = 0x1000_0000
#: Base virtual address of the streaming segment (never reused).
_STREAM_BASE = 0x4000_0000
#: Base of the code segment; PCs are instruction indices, not bytes.
_CODE_BASE = 0x40_0000
#: Bias of an easy (highly predictable) static branch.
_EASY_BIAS = 0.995
#: Bias of a hard static branch (bimodal accuracy ~= max(p, 1-p)).
_HARD_BIAS = 0.70


@dataclass
class _StaticBranch:
    """A static branch site with a fixed bias and taken-target."""

    pc: int
    bias: float
    target_block: int


@dataclass
class _BasicBlock:
    """A static basic block: a run of non-branch slots plus one branch."""

    base_pc: int
    body_len: int
    branch: _StaticBranch
    fallthrough_block: int


class SyntheticTraceGenerator:
    """Generates dynamic instruction traces for one benchmark profile."""

    def __init__(
        self,
        profile: BenchmarkProfile,
        seed: int = 0,
        num_blocks: int = 64,
        mean_block_len: Optional[int] = None,
    ):
        if num_blocks < 2:
            raise ValueError("need at least two basic blocks")
        if mean_block_len is None:
            # One branch per block, so the block length realises the
            # profile's branch fraction.
            mean_block_len = max(2, round(1.0 / profile.frac_branch) - 1)
        self.profile = profile
        self.seed = seed
        self._rng = random.Random(seed)
        self._blocks = self._build_cfg(num_blocks, mean_block_len)
        self._recent_dsts: List[int] = []
        self._ws_bytes = max(
            _HOT_REGION_BYTES * 2, int(profile.l2_ws_kb * 1024)
        )
        self._ws_lines = self._ws_bytes // 64
        #: history of cold lines touched (most recent last); reuse draws
        #: index from the tail at exponential distances
        self._cold_history: List[int] = []
        #: allocator for never-before-seen (compulsory-miss) lines
        self._next_cold_line = 0
        # Dependence-distance distribution: geometric with mean tied to the
        # profile's ILP (longer distances expose more parallelism).
        mean_dist = max(2.0, profile.ilp * 3.5)
        self._dep_p = 1.0 / mean_dist
        #: probability an ALU op carries a second register dependence
        self._two_src_prob = 0.4
        self._miss_frac = self._l1_miss_fraction()

    def _l1_miss_fraction(self) -> float:
        """Fraction of memory ops directed at the cold (L1-missing) region."""
        mem_pki = (self.profile.frac_load + self.profile.frac_store) * 1000.0
        if mem_pki <= 0:
            return 0.0
        return min(1.0, self.profile.l1_mpki / mem_pki)

    # ------------------------------------------------------------------
    # static program construction
    # ------------------------------------------------------------------

    def _build_cfg(self, num_blocks: int, mean_block_len: int) -> List[_BasicBlock]:
        """Lay out ``num_blocks`` blocks with biased branches between them."""
        accuracy_target = self.profile.branch_predictability()
        # Mixture of easy/hard branches whose average bimodal accuracy hits
        # the target: accuracy ~= q * EASY + (1 - q) * HARD.
        hard_acc = max(_HARD_BIAS, 1.0 - _HARD_BIAS)
        easy_acc = _EASY_BIAS
        if easy_acc == hard_acc:
            frac_easy = 1.0
        else:
            frac_easy = (accuracy_target - hard_acc) / (easy_acc - hard_acc)
        frac_easy = min(1.0, max(0.0, frac_easy))

        blocks: List[_BasicBlock] = []
        pc = _CODE_BASE
        for idx in range(num_blocks):
            body_len = max(2, int(self._rng.expovariate(1.0 / mean_block_len)))
            branch_pc = pc + body_len
            if self._rng.random() < frac_easy:
                bias = _EASY_BIAS if self._rng.random() < 0.5 else 1.0 - _EASY_BIAS
            else:
                bias = _HARD_BIAS if self._rng.random() < 0.5 else 1.0 - _HARD_BIAS
            target = self._rng.randrange(num_blocks)
            fallthrough = (idx + 1) % num_blocks
            blocks.append(
                _BasicBlock(
                    base_pc=pc,
                    body_len=body_len,
                    branch=_StaticBranch(pc=branch_pc, bias=bias, target_block=target),
                    fallthrough_block=fallthrough,
                )
            )
            pc = branch_pc + 1
        return blocks

    # ------------------------------------------------------------------
    # dynamic instruction synthesis
    # ------------------------------------------------------------------

    def _pick_dst(self) -> int:
        """Destination register, avoiding the zero register."""
        return self._rng.randrange(1, 32)

    def _pick_src(self) -> int:
        """Source register at a profile-typical dependence distance."""
        if not self._recent_dsts:
            return self._rng.randrange(1, 32)
        # Geometric distance back into the recent-writer window.
        dist = 1
        while self._rng.random() > self._dep_p and dist < len(self._recent_dsts):
            dist += 1
        dist = min(dist, len(self._recent_dsts))
        return self._recent_dsts[-dist]

    def _cold_line(self) -> int:
        """Pick a cold line realising the profile's L2 miss-rate curve.

        With probability ``l2_floor`` the access is compulsory (a fresh
        line, missing at any capacity).  Otherwise the line is drawn from
        the access history at an exponentially distributed reuse distance
        with mean ``l2_ws_kb`` worth of lines - under LRU this yields a
        miss fraction of approximately ``exp(-capacity / l2_ws_kb)``,
        matching :meth:`BenchmarkProfile.l2_miss_fraction` by
        construction.
        """
        history = self._cold_history
        fresh = self._rng.random() < self.profile.l2_floor
        if not fresh:
            offset = 1 + int(self._rng.expovariate(1.0 / self._ws_lines))
            if offset <= len(history):
                line = history[-offset]
            else:
                # Reuse distance beyond recorded history: effectively a
                # compulsory miss at any capacity.
                fresh = True
        if fresh:
            line = self._next_cold_line
            self._next_cold_line += 1
        history.append(line)
        # Bound the history so arbitrarily long traces stay O(working set).
        if len(history) > 12 * self._ws_lines:
            del history[: len(history) - 10 * self._ws_lines]
        return line

    def _pick_address(self) -> int:
        """Memory address following the profile's reuse structure."""
        if self._rng.random() < self._miss_frac:
            # Cold access (L1-missing): reuse at L2 scales or compulsory.
            # The cold region sits well above the hot region so the two
            # never alias.
            return _DATA_BASE + 0x100_0000 + self._cold_line() * 64
        # Hot access: always L1-resident.
        offset = self._rng.randrange(_HOT_REGION_BYTES // 8) * 8
        return _DATA_BASE + offset

    def _pick_op_class(self) -> OpClass:
        """Pick a non-branch class for a block-body slot.

        Branches are emitted only at block ends, so body-slot fractions
        are scaled by 1 / (1 - frac_branch) to realise the profile's
        global instruction mix.
        """
        p = self.profile
        scale = 1.0 / (1.0 - p.frac_branch)
        r = self._rng.random()
        if r < p.frac_load * scale:
            return OpClass.LOAD
        r -= p.frac_load * scale
        if r < p.frac_store * scale:
            return OpClass.STORE
        r -= p.frac_store * scale
        if r < p.frac_mul * scale:
            return OpClass.MUL
        return OpClass.ALU

    def _emit(self, seq: int, pc: int, op_class: OpClass) -> Instruction:
        opcode = self._rng.choice(CLASS_OPCODES[op_class])
        srcs: tuple
        dst: Optional[int]
        mem: Optional[MemAccess] = None
        if op_class is OpClass.LOAD:
            srcs = (self._pick_src(),)
            dst = self._pick_dst()
            mem = MemAccess(address=self._pick_address())
        elif op_class is OpClass.STORE:
            srcs = (self._pick_src(), self._pick_src())
            dst = None
            mem = MemAccess(address=self._pick_address())
        elif self._rng.random() < self._two_src_prob:
            srcs = (self._pick_src(), self._pick_src())
            dst = self._pick_dst()
        else:
            srcs = (self._pick_src(),)
            dst = self._pick_dst()
        inst = Instruction(
            seq=seq, pc=pc, opcode=opcode, srcs=srcs, dst=dst, mem=mem
        )
        if dst is not None:
            self._recent_dsts.append(dst)
            if len(self._recent_dsts) > 64:
                self._recent_dsts.pop(0)
        return inst

    def _emit_branch(self, seq: int, branch: _StaticBranch) -> Instruction:
        taken = self._rng.random() < branch.bias
        target_pc = self._blocks[branch.target_block].base_pc
        opcode = self._rng.choice(CLASS_OPCODES[OpClass.BRANCH])
        return Instruction(
            seq=seq,
            pc=branch.pc,
            opcode=opcode,
            srcs=(self._pick_src(),),
            dst=None,
            taken=taken,
            target=target_pc if taken else None,
        )

    def warmup_addresses(self, cold_multiplier: float = 4.0) -> List[int]:
        """Cold-region addresses that bring the reuse history to steady
        state.

        Replaying these through the cache hierarchy (functionally, no
        timing) before a timed simulation substitutes for the fast-forward
        of a full-length trace: the L2 starts populated with the lines the
        timed region will reuse.  ``cold_multiplier`` scales the stream to
        a multiple of the working-set size.
        """
        if cold_multiplier < 0:
            raise ValueError("cold_multiplier cannot be negative")
        n = int(cold_multiplier * self._ws_lines)
        base = _DATA_BASE + 0x100_0000
        return [base + self._cold_line() * 64 for _ in range(n)]

    def generate(self, length: int) -> Trace:
        """Generate a dynamic trace of ``length`` instructions."""
        if length < 1:
            raise ValueError("trace length must be positive")
        instructions: List[Instruction] = []
        block_idx = 0
        seq = 0
        while seq < length:
            block = self._blocks[block_idx]
            for offset in range(block.body_len):
                if seq >= length:
                    break
                op_class = self._pick_op_class()
                if op_class is OpClass.BRANCH:  # branches only end blocks
                    op_class = OpClass.ALU
                instructions.append(
                    self._emit(seq, block.base_pc + offset, op_class)
                )
                seq += 1
            if seq >= length:
                break
            branch_inst = self._emit_branch(seq, block.branch)
            instructions.append(branch_inst)
            seq += 1
            if branch_inst.taken:
                block_idx = block.branch.target_block
            else:
                block_idx = block.fallthrough_block
        meta = TraceMetadata(
            benchmark=self.profile.name, seed=self.seed, length=len(instructions)
        )
        return Trace(instructions, meta)


def generate_trace(benchmark: str, length: int, seed: int = 0) -> Trace:
    """Convenience wrapper: generate a trace for a named benchmark."""
    profile = get_profile(benchmark)
    return SyntheticTraceGenerator(profile, seed=seed).generate(length)


def make_workload(benchmark: str, length: int, seed: int = 0,
                  warmup_cold_multiplier: float = 4.0):
    """Build a (warmup_addresses, trace) pair for timed simulation.

    The warmup address stream and the timed trace share one reuse
    history, so the timed region re-touches lines the warmup installed -
    exactly what a fast-forwarded full-length trace would provide.
    """
    generator = SyntheticTraceGenerator(get_profile(benchmark), seed=seed)
    warmup = generator.warmup_addresses(warmup_cold_multiplier)
    trace = generator.generate(length)
    return warmup, trace
