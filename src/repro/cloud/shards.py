"""Coupled sharding: N per-shard services, one global price vector.

A single :class:`~repro.cloud.service.AllocationService` serializes
every event through one tatonnement loop.  To span 1M+ events per run,
the stream is split across N per-shard services - each with its own
fabric, roster, and event stream - that trade against a *shared global
price vector*: every ``sync_every`` events per shard, the group
averages the shards' price vectors and broadcasts the mean back, so
local price discovery keeps tracking global supply/demand (the same
periodic-averaging discipline distributed price-adjustment systems
use; prices re-converge from the broadcast point via the existing
warm-started steps).

The group is deterministic: shards run in a fixed round-robin order
over fixed-size chunks, and the averaging is a plain mean over the
shard order, so a coupled run is exactly reproducible and
checkpointable (:meth:`CoupledShards.snapshot` /
:meth:`CoupledShards.restore` round-trip every shard's full service
state - including its tensor arena layout - plus the sync counter).
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence

from repro.cloud.service import AllocationService


class CoupledShards:
    """N allocation services coupled through periodic price averaging.

    ``sync_every`` is the per-shard event interval between global
    price synchronizations.  :meth:`sync` is the whole coupling
    mechanism: average the shards' slice/bank prices, broadcast the
    mean back through each service's price-epoch machinery (so every
    admission-cost cache invalidates exactly as if the shard's own
    tatonnement had moved prices there).
    """

    def __init__(self, services: Sequence[AllocationService],
                 sync_every: int = 500, obs=None):
        if not services:
            raise ValueError("need at least one shard service")
        if sync_every < 1:
            raise ValueError("sync_every must be >= 1")
        self.services: List[AllocationService] = list(services)
        self.sync_every = int(sync_every)
        self.n_syncs = 0

        from repro.obs import OBS_OFF

        scope = (obs or OBS_OFF).scope("cloud.shards")
        self._c_syncs = scope.counter("price_syncs")
        scope.gauge("shards", lambda: len(self.services))
        scope.gauge("active_tenants", lambda: sum(
            len(s._roster) for s in self.services))

    # ------------------------------------------------------------------
    # coupling
    # ------------------------------------------------------------------

    def prices(self) -> tuple:
        """The global price vector: the mean over shards."""
        n = len(self.services)
        return (sum(s.slice_price for s in self.services) / n,
                sum(s.bank_price for s in self.services) / n)

    def sync(self) -> tuple:
        """Average the shard price vectors and broadcast the mean.

        Returns the broadcast ``(slice_price, bank_price)``.  Prices
        move through ``_set_prices``, which bumps each shard's price
        epoch only when its vector actually changes - a quiescent,
        already-agreed group syncs for free.
        """
        slice_price, bank_price = self.prices()
        for service in self.services:
            service._set_prices(slice_price, bank_price)
        self.n_syncs += 1
        self._c_syncs.inc()
        return slice_price, bank_price

    # ------------------------------------------------------------------
    # checkpoint / restore
    # ------------------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """JSON-stable group state: every shard's full service
        snapshot (arena layout included) plus the sync counter."""
        return {
            "version": 1,
            "sync_every": self.sync_every,
            "n_syncs": self.n_syncs,
            "shards": [s.snapshot() for s in self.services],
        }

    def restore(self, state: Dict[str, Any]) -> None:
        """Reset this group to a :meth:`snapshot` - bit-exact resume.

        The group must have been built with the same shard count and
        shard shapes; per-shard mismatches raise from the underlying
        :meth:`~repro.cloud.service.AllocationService.restore` guard.
        """
        shards = state["shards"]
        if len(shards) != len(self.services):
            raise ValueError(
                f"snapshot has {len(shards)} shards, group has "
                f"{len(self.services)}")
        if int(state["sync_every"]) != self.sync_every:
            raise ValueError(
                f"snapshot sync_every={state['sync_every']} does not "
                f"match group sync_every={self.sync_every}")
        for service, shard_state in zip(self.services, shards):
            service.restore(shard_state)
        self.n_syncs = int(state["n_syncs"])

    def verify_invariants(self) -> None:
        """Audit every shard (see service ``verify_invariants``)."""
        for service in self.services:
            service.verify_invariants()

    def summary_totals(self) -> Dict[str, float]:
        """Cross-shard aggregate of the result-bearing tallies."""
        summaries = [s.summary() for s in self.services]
        slice_price, bank_price = self.prices()
        n = len(summaries)
        return {
            "admitted": float(sum(s.admitted for s in summaries)),
            "rejected_price": float(sum(s.rejected_price
                                        for s in summaries)),
            "rejected_capacity": float(sum(s.rejected_capacity
                                           for s in summaries)),
            "departures": float(sum(s.departures for s in summaries)),
            "resizes": float(sum(s.resizes for s in summaries)),
            "reprice_rounds": float(sum(s.reprice_rounds
                                        for s in summaries)),
            "compactions": float(sum(s.compactions for s in summaries)),
            "active_tenants": float(sum(s.active_tenants
                                        for s in summaries)),
            "slice_price": slice_price,
            "bank_price": bank_price,
            "final_fragmentation": (sum(s.fragmentation
                                        for s in summaries) / n),
            "dead_letters": float(sum(s.dead_letters
                                      for s in summaries)),
            "degraded_steps": float(sum(s.degraded_steps
                                        for s in summaries)),
            "readmitted": float(sum(s.readmitted for s in summaries)),
            "price_syncs": float(self.n_syncs),
        }
