"""Deterministic fault injection and invariant auditing for the
streaming allocation service.

A million-event run is only trustworthy if the service provably
survives the events a real datacenter feeds it: malformed payloads,
duplicate submits, departures of tenants nobody admitted, churn
bursts, repricing rounds that refuse to converge, and the process
simply dying.  This module makes all of those *reproducible*:

* :class:`FaultPlan` - a seeded, immutable schedule mapping event
  indices to fault kinds.  Same ``(num_events, rate, seed)`` - same
  plan, forever; a chaos failure is a one-line repro.
* :class:`FaultInjector` - fires a plan against a live
  :class:`~repro.cloud.service.AllocationService` run.  Rejectable
  faults are applied through the service's lenient path (so they land
  in the dead-letter queue); churn bursts are submit+depart pairs
  engineered to be exactly state-neutral; ``nonconverge`` arms the
  graceful-degradation path; ``crash`` raises
  :class:`~repro.cloud.errors.SimulatedCrash` for the
  checkpoint/restore machinery to absorb.
* :func:`verify_invariants` - the auditor: fabric tile conservation,
  placement/roster agreement, positive finite prices, stacked-tensor
  coherence.  Cheap enough to run every N events of a chaos stream.
* checkpoint helpers - atomic JSON save/load plus ``random.Random``
  state (de)serialization, shared by the stream driver's
  crash/resume path.
"""

from __future__ import annotations

import json
import math
import os
import random
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.cloud.errors import InvariantViolation, SimulatedCrash
from repro.cloud.fabric import TileKind
from repro.cloud.service import (
    AllocationService,
    Event,
    TenantRequest,
)
from repro.economics.market import BANK_KB

#: Every fault kind the injector understands.
FAULT_KINDS = ("malformed", "duplicate", "unknown", "churn_burst",
               "nonconverge", "crash")

#: Kinds whose injection provably leaves the service state (roster,
#: prices, fabric) untouched - the set a lenient faulty run can carry
#: while still finishing bit-identical to a strict clean run.
STATE_NEUTRAL_KINDS = ("malformed", "duplicate", "unknown",
                       "churn_burst")

#: Default mix for `--faults`: everything survivable in one process
#: (``crash`` is only injected when a checkpoint/restore harness asks
#: for it explicitly).
DEFAULT_INJECT_KINDS = ("malformed", "duplicate", "unknown",
                        "churn_burst", "nonconverge")


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault: fire ``kind`` before event ``index``."""

    index: int
    kind: str

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; "
                             f"known: {', '.join(FAULT_KINDS)}")
        if self.index < 0:
            raise ValueError("fault index cannot be negative")


class FaultPlan:
    """An immutable schedule of :class:`FaultEvent`\\ s.

    Construction is either explicit (a test pinning exact faults) or
    :meth:`seeded` - a deterministic Bernoulli draw per event index,
    so the same parameters always produce the same plan.
    """

    def __init__(self, faults: Iterable[FaultEvent] = ()):
        self.faults: Tuple[FaultEvent, ...] = tuple(
            sorted(faults, key=lambda f: (f.index, f.kind)))
        by_index: Dict[int, List[FaultEvent]] = {}
        for fault in self.faults:
            by_index.setdefault(fault.index, []).append(fault)
        self._by_index = {i: tuple(fs) for i, fs in by_index.items()}

    @classmethod
    def seeded(cls, num_events: int, rate: float, seed: int,
               kinds: Sequence[str] = DEFAULT_INJECT_KINDS
               ) -> "FaultPlan":
        """A deterministic plan: each event index draws a fault with
        probability ``rate``, its kind uniform over ``kinds``."""
        if not 0.0 <= rate <= 1.0:
            raise ValueError("fault rate must be in [0, 1]")
        if rate > 0 and not kinds:
            raise ValueError("need at least one fault kind")
        rng = random.Random(seed)
        faults = [
            FaultEvent(index, kinds[rng.randrange(len(kinds))])
            for index in range(num_events)
            if rng.random() < rate
        ]
        return cls(faults)

    def at(self, index: int) -> Tuple[FaultEvent, ...]:
        return self._by_index.get(index, ())

    def without(self, index: int,
                kind: Optional[str] = None) -> "FaultPlan":
        """A copy of the plan minus the fault(s) at ``index``
        (optionally only those of ``kind``) - how a resume harness
        disarms a crash that already fired once."""
        return FaultPlan(f for f in self.faults
                         if not (f.index == index
                                 and (kind is None or f.kind == kind)))

    def counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for fault in self.faults:
            out[fault.kind] = out.get(fault.kind, 0) + 1
        return out

    def __len__(self) -> int:
        return len(self.faults)

    def __iter__(self):
        return iter(self.faults)


class FaultInjector:
    """Fires a :class:`FaultPlan` against a live service run.

    The run loop calls :meth:`perturb` once per event index *before*
    applying the real event.  Every injected fault is tallied in
    :attr:`counts`, so a chaos test can reconcile injections against
    the service's dead-letter / degradation counters exactly.
    """

    #: Submit+depart pairs per churn burst.
    BURST_SIZE = 3

    def __init__(self, plan: FaultPlan, seed: int = 0):
        self.plan = plan
        self.rng = random.Random(seed)
        self.counts: Dict[str, int] = {}
        self._serial = 0
        self._benchmarks: Optional[List[str]] = None
        self._utilities = None

    def perturb(self, service: AllocationService, index: int) -> None:
        """Fire every fault scheduled at ``index``."""
        for fault in self.plan.at(index):
            self.counts[fault.kind] = self.counts.get(fault.kind, 0) + 1
            getattr(self, f"_fire_{fault.kind}")(service, index)

    # -- fault payloads -------------------------------------------------

    def _fire_crash(self, service: AllocationService,
                    index: int) -> None:
        raise SimulatedCrash(index)

    def _fire_nonconverge(self, service: AllocationService,
                          index: int) -> None:
        service.force_nonconverge += 1

    def _fire_malformed(self, service: AllocationService,
                        index: int) -> None:
        # A resize with a non-positive budget: passes Event
        # construction, rejected by the service with
        # EventValidationError (or UnknownTenantError for a ghost).
        target = self._pick_active(service) or self._ghost()
        event = Event(kind="resize", tenant_id=target,
                      budget=-self.rng.uniform(0.0, 10.0) - 0.001)
        service.process(event, index, strict=False)

    def _fire_duplicate(self, service: AllocationService,
                        index: int) -> None:
        target = self._pick_active(service)
        if target is None:
            # Empty roster: duplicates are impossible; inject an
            # unknown-tenant fault instead (still accounted, still
            # dead-lettered).
            self._fire_unknown(service, index)
            return
        event = Event(kind="submit", tenant=service.tenant(target))
        service.process(event, index, strict=False)

    def _fire_unknown(self, service: AllocationService,
                      index: int) -> None:
        ghost = self._ghost()
        if self.rng.random() < 0.5:
            event = Event(kind="depart", tenant_id=ghost)
        else:
            event = Event(kind="resize", tenant_id=ghost,
                          budget=self.rng.uniform(12.0, 48.0))
        service.process(event, index, strict=False)

    def _fire_churn_burst(self, service: AllocationService,
                          index: int) -> None:
        """A burst of arrivals that immediately depart: net-zero state.

        Each admitted chaos tenant departs with ``compact=False``
        (release exactly undoes the placement), no repricing happens
        inside the burst, and rejected submits never touch state - so
        roster, prices, and fabric are bit-identical before and after
        the burst.  Only the counters move.
        """
        from repro.economics.utility import STANDARD_UTILITIES
        from repro.trace.profiles import PROFILES

        if self._benchmarks is None:
            self._benchmarks = sorted(PROFILES)
            self._utilities = list(STANDARD_UTILITIES)
        for _ in range(self.BURST_SIZE):
            self._serial += 1
            request = TenantRequest(
                name=f"chaos{self._serial}",
                benchmark=self._benchmarks[
                    self.rng.randrange(len(self._benchmarks))],
                utility=self._utilities[
                    self.rng.randrange(len(self._utilities))],
                budget=self.rng.uniform(12.0, 48.0),
            )
            outcome = service.process(
                Event(kind="submit", tenant=request), index,
                strict=False)
            if outcome is not None and outcome.admitted:
                service.depart(request.name, compact=False)

    # -- checkpoint surface ---------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """JSON-stable injector state (rng, chaos-name serial, tallies)
        so a crash/resume run replays the exact same fault payloads."""
        return {"rng_state": rng_state_to_json(self.rng.getstate()),
                "serial": self._serial,
                "counts": dict(self.counts)}

    def restore(self, state: Dict[str, Any]) -> None:
        self.rng.setstate(rng_state_from_json(state["rng_state"]))
        self._serial = int(state["serial"])
        self.counts = {str(k): int(v)
                       for k, v in state["counts"].items()}

    # -- helpers --------------------------------------------------------

    def _pick_active(self, service: AllocationService) -> Optional[str]:
        active = service.active_tenants
        if not active:
            return None
        return active[self.rng.randrange(len(active))]

    def _ghost(self) -> str:
        return f"ghost{self.rng.randrange(1 << 30)}"


# ----------------------------------------------------------------------
# invariant auditing
# ----------------------------------------------------------------------

def verify_invariants(service: AllocationService) -> None:
    """Audit a service's cross-layer invariants; raise
    :class:`~repro.cloud.errors.InvariantViolation` listing every
    violation found.

    Checks, in order: positive finite prices; roster/name-index
    agreement; tensor-arena coherence (active view in roster order,
    budgets matching the roster, slot index and free list consistent);
    fabric tile conservation (free counts + owned counts cover every
    tile exactly once); and per-tenant placement shape
    (``vcores * slices`` slice tiles, ``vcores * banks_per`` bank
    tiles, no foreign owners).
    """
    problems: List[str] = []

    for label, price in (("slice", service.slice_price),
                         ("bank", service.bank_price)):
        if not (math.isfinite(price) and price > 0):
            problems.append(f"{label}_price {price!r} not positive "
                            "finite")

    roster_names = [t.request.name for t in service._roster]
    if len(set(roster_names)) != len(roster_names):
        problems.append("duplicate names in roster")
    if set(roster_names) != set(service._by_name):
        problems.append(
            f"roster/by-name disagree: {len(roster_names)} roster vs "
            f"{len(service._by_name)} indexed")
    for name, state in service._by_name.items():
        if state.request.name != name:
            problems.append(f"by-name key {name!r} holds tenant "
                            f"{state.request.name!r}")

    arena = service._arena
    if arena is not None:
        if arena.n_active != len(service._roster):
            problems.append(
                f"tensor arena has {arena.n_active} active rows for "
                f"{len(service._roster)} tenants")
        elif arena.order != roster_names:
            problems.append("arena active view not in roster order")
        else:
            budgets = [float(b)
                       for b in arena.view_budgets[:arena.n_active, 0]]
            expect = [t.request.budget for t in service._roster]
            if budgets != expect:
                problems.append("arena budgets diverge from roster "
                                "budgets")
        if set(arena.slot_of) != set(roster_names):
            problems.append("arena slot index disagrees with roster")
        used = set(arena.slot_of.values())
        if len(used) != len(arena.slot_of):
            problems.append("two tenants share one arena slot")
        free = set(arena.free_slots)
        if free & used:
            problems.append("arena free list overlaps used slots")
        if any(s >= arena.capacity for s in used | free):
            problems.append("arena slot beyond capacity")

    fabric = service.fabric
    if fabric is not None:
        owned = fabric.snapshot_owners()
        owned_nodes: List[int] = []
        for nodes in owned.values():
            owned_nodes.extend(nodes)
        if len(set(owned_nodes)) != len(owned_nodes):
            problems.append("a fabric tile has two owners")
        by_kind = {TileKind.SLICE: 0, TileKind.BANK: 0}
        for node in owned_nodes:
            by_kind[fabric.kind(node)] += 1
        for kind, total in ((TileKind.SLICE, fabric.num_slices),
                            (TileKind.BANK, fabric.num_banks)):
            free = fabric.free_count(kind)
            if free + by_kind[kind] != total:
                problems.append(
                    f"{kind.value} conservation broken: {free} free + "
                    f"{by_kind[kind]} owned != {total} total")
        foreign = set(owned) - set(roster_names)
        if foreign:
            problems.append("fabric owners not in roster: "
                            + ", ".join(sorted(foreign)[:5]))
        for state in service._roster:
            name = state.request.name
            if state.vcores <= 0:
                continue
            nodes = owned.get(name, [])
            slices = sum(1 for n in nodes
                         if fabric.kind(n) is TileKind.SLICE)
            banks = sum(1 for n in nodes
                        if fabric.kind(n) is TileKind.BANK)
            want_slices = state.vcores * state.slices
            want_banks = (state.vcores
                          * int(round(state.cache_kb / BANK_KB)))
            if slices != want_slices:
                problems.append(
                    f"{name}: owns {slices} slice tiles, placement "
                    f"says {want_slices}")
            if banks != want_banks:
                problems.append(
                    f"{name}: owns {banks} bank tiles, placement "
                    f"says {want_banks}")

    if problems:
        raise InvariantViolation("; ".join(problems))


# ----------------------------------------------------------------------
# checkpoint helpers
# ----------------------------------------------------------------------

def rng_state_to_json(state: tuple) -> list:
    """``random.Random.getstate()`` as a JSON-stable list."""
    version, internal, gauss_next = state
    return [version, list(internal), gauss_next]

def rng_state_from_json(data: Sequence[Any]) -> tuple:
    """Inverse of :func:`rng_state_to_json`."""
    version, internal, gauss_next = data
    return (version, tuple(internal), gauss_next)


def save_checkpoint(path: str, payload: Dict[str, Any]) -> None:
    """Atomically write a checkpoint JSON (write-temp + rename, so a
    crash mid-write can never leave a truncated checkpoint)."""
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    tmp = f"{path}.tmp"
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(payload, fh)
    os.replace(tmp, path)


def load_checkpoint(path: str) -> Dict[str, Any]:
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)
