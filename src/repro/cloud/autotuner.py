"""Configuration auto-tuner (paper Section 4).

For customers without a performance model: "The auto-tuner would slowly
search the configuration space by varying the VM instance configuration
... Such an auto-tuning system would likely require the use of a
heartbeat or performance feedback."

The tuner hill-climbs over the (cache, Slice) grid using a caller-
supplied measurement function (a heartbeat: higher is better), so it
works identically against the analytic model, the cycle-level simulator,
or - in a real deployment - live application throughput.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.perfmodel.model import CACHE_GRID_KB, SLICE_GRID

#: A heartbeat: maps (cache_kb, slices) to a goodness score.
MeasureFn = Callable[[float, int], float]


@dataclass
class TuningResult:
    """Outcome of one auto-tuning run."""

    best_cache_kb: float
    best_slices: int
    best_score: float
    evaluations: int
    trajectory: List[Tuple[float, int, float]] = field(default_factory=list)


class AutoTuner:
    """Greedy hill climber with restart over the configuration grid."""

    def __init__(self, measure: MeasureFn,
                 cache_grid: Sequence[float] = CACHE_GRID_KB,
                 slice_grid: Sequence[int] = SLICE_GRID,
                 max_evaluations: int = 64):
        if max_evaluations < 1:
            raise ValueError("need at least one evaluation")
        self.measure = measure
        self.cache_grid = list(cache_grid)
        self.slice_grid = list(slice_grid)
        self.max_evaluations = max_evaluations
        self._cache_index = {c: i for i, c in enumerate(self.cache_grid)}
        self._slice_index = {s: i for i, s in enumerate(self.slice_grid)}

    def _neighbors(self, cache_kb: float, slices: int
                   ) -> List[Tuple[float, int]]:
        ci = self._cache_index[cache_kb]
        si = self._slice_index[slices]
        out: List[Tuple[float, int]] = []
        for dci, dsi in ((1, 0), (-1, 0), (0, 1), (0, -1)):
            ni, nj = ci + dci, si + dsi
            if 0 <= ni < len(self.cache_grid) and 0 <= nj < len(self.slice_grid):
                out.append((self.cache_grid[ni], self.slice_grid[nj]))
        return out

    def tune(self, start_cache_kb: Optional[float] = None,
             start_slices: Optional[int] = None) -> TuningResult:
        """Hill-climb from a starting configuration to a local optimum."""
        cache_kb = (self.cache_grid[len(self.cache_grid) // 2]
                    if start_cache_kb is None else start_cache_kb)
        slices = (self.slice_grid[0]
                  if start_slices is None else start_slices)
        if cache_kb not in self._cache_index:
            raise ValueError(f"start cache {cache_kb} not on the grid")
        if slices not in self._slice_index:
            raise ValueError(f"start slices {slices} not on the grid")

        scores: Dict[Tuple[float, int], float] = {}

        def measured(c: float, s: int) -> float:
            key = (c, s)
            if key not in scores:
                scores[key] = self.measure(c, s)
            return scores[key]

        trajectory: List[Tuple[float, int, float]] = []
        current_score = measured(cache_kb, slices)
        trajectory.append((cache_kb, slices, current_score))
        while len(scores) < self.max_evaluations:
            candidates = [
                (measured(c, s), c, s)
                for c, s in self._neighbors(cache_kb, slices)
                if len(scores) < self.max_evaluations or (c, s) in scores
            ]
            if not candidates:
                break
            best_score, best_c, best_s = max(candidates)
            if best_score <= current_score:
                break  # local optimum
            cache_kb, slices, current_score = best_c, best_s, best_score
            trajectory.append((cache_kb, slices, current_score))
        return TuningResult(
            best_cache_kb=cache_kb,
            best_slices=slices,
            best_score=current_score,
            evaluations=len(scores),
            trajectory=trajectory,
        )
