"""The hypervisor (paper Section 3.8).

Runs time-sliced on single-Slice VCores and reconfigures client VCores by
rewriting interconnect and protection state.  It places VMs on the
fabric, tears them down, and resizes VCores, charging the paper's
reconfiguration costs (register flush over the SON; L2 flush to memory).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.cloud.fabric import AllocationError, Fabric, TileKind
from repro.cloud.vm import VCoreSpec, VMInstance, VMSpec
from repro.core.reconfig import ReconfigCost, ReconfigurationEngine


@dataclass
class HypervisorStats:
    vms_placed: int = 0
    vms_rejected: int = 0
    vms_torn_down: int = 0
    reconfigurations: int = 0
    reconfiguration_cycles: int = 0


class Hypervisor:
    """Fabric manager: placement, teardown, and VCore reconfiguration."""

    def __init__(self, fabric: Optional[Fabric] = None,
                 reconfig: Optional[ReconfigurationEngine] = None):
        self.fabric = fabric or Fabric()
        self.reconfig = reconfig or ReconfigurationEngine()
        self._vms: Dict[str, VMInstance] = {}
        self._ids = itertools.count()
        self.stats = HypervisorStats()
        # The hypervisor itself occupies one single-Slice VCore (paper:
        # "we propose having the hypervisor execute only on single-Slice
        # VCores").
        home = self.fabric.find_contiguous_slices(1)
        if home is None:
            raise AllocationError("fabric too small for the hypervisor")
        self.fabric.claim(home, owner="hypervisor")
        self.home_slice = home[0]

    # ------------------------------------------------------------------
    # placement
    # ------------------------------------------------------------------

    def place(self, spec: VMSpec) -> Optional[VMInstance]:
        """Place a VM; ``None`` if capacity is insufficient."""
        vm_id = f"vm{next(self._ids)}"
        instance = VMInstance(vm_id=vm_id, spec=spec)
        claimed: List[Tuple[str, List[int]]] = []
        try:
            for idx, vcore in enumerate(spec.vcores):
                tag = instance.vcore_owner_tag(idx)
                slices = self.fabric.find_contiguous_slices(vcore.num_slices)
                if slices is None:
                    raise AllocationError("no contiguous Slice run")
                self.fabric.claim(slices, owner=tag)
                claimed.append((tag, slices))
                banks = self.fabric.find_nearest_banks(
                    slices[0], vcore.num_banks
                )
                self.fabric.claim(banks, owner=tag)
                claimed.append((tag, banks))
                instance.placements.append((slices, banks))
        except AllocationError:
            for tag, _ in claimed:
                self.fabric.release(tag)
            self.stats.vms_rejected += 1
            return None
        self._vms[vm_id] = instance
        self.stats.vms_placed += 1
        return instance

    def teardown(self, vm_id: str) -> None:
        instance = self._vms.pop(vm_id, None)
        if instance is None:
            raise KeyError(f"unknown VM {vm_id!r}")
        for idx in range(instance.num_vcores):
            self.fabric.release(instance.vcore_owner_tag(idx))
        self.stats.vms_torn_down += 1

    def bank_distances(self, instance: VMInstance,
                       vcore_index: int) -> List[int]:
        """Network distances from a VCore's anchor Slice to its banks."""
        slices, banks = instance.placements[vcore_index]
        anchor = slices[0]
        return [self.fabric.mesh.distance(anchor, b) for b in banks]

    # ------------------------------------------------------------------
    # reconfiguration
    # ------------------------------------------------------------------

    def resize_vcore(self, vm_id: str, vcore_index: int,
                     new_spec: VCoreSpec) -> ReconfigCost:
        """Resize one VCore in place, charging the paper's costs."""
        instance = self._vms.get(vm_id)
        if instance is None:
            raise KeyError(f"unknown VM {vm_id!r}")
        if not 0 <= vcore_index < instance.num_vcores:
            raise IndexError("VCore index out of range")
        old_spec = instance.spec.vcores[vcore_index]
        cost = self.reconfig.cost(
            old_cache_kb=old_spec.l2_cache_kb,
            old_slices=old_spec.num_slices,
            new_cache_kb=new_spec.l2_cache_kb,
            new_slices=new_spec.num_slices,
        )
        tag = instance.vcore_owner_tag(vcore_index)
        self.fabric.release(tag)
        slices = self.fabric.find_contiguous_slices(new_spec.num_slices)
        if slices is None:
            # Roll back: re-place the old VCore.
            old_slices, old_banks = instance.placements[vcore_index]
            self.fabric.claim(old_slices + old_banks, owner=tag)
            raise AllocationError("no room for the resized VCore")
        self.fabric.claim(slices, owner=tag)
        banks = self.fabric.find_nearest_banks(slices[0], new_spec.num_banks)
        self.fabric.claim(banks, owner=tag)
        instance.placements[vcore_index] = (slices, banks)
        vcores = list(instance.spec.vcores)
        vcores[vcore_index] = new_spec
        instance.spec = VMSpec(
            vcores=tuple(vcores),
            dram_gb=instance.spec.dram_gb,
            disk_gb=instance.spec.disk_gb,
        )
        self.stats.reconfigurations += 1
        self.stats.reconfiguration_cycles += cost.cycles
        return cost

    def defragment(self) -> Dict[str, int]:
        """Repack every VCore to eliminate fragmentation.

        Paper Section 3: "all Slices are interchangeable and equally
        connected therefore fixing fragmentation problems is as simple as
        rescheduling Slices to VCores."  Every VCore is re-placed from a
        clean fabric, largest first; a VCore whose Slice tiles move pays
        the Register Flush (500 cycles), and one whose bank tiles move
        pays the L2 flush (10 000 cycles).

        Returns ``{"moved": n, "cycles": total_reconfiguration_cycles}``.
        """
        # Snapshot and release everything except the hypervisor's Slice.
        old_placements: Dict[Tuple[str, int], Tuple[List[int], List[int]]] = {}
        for vm_id, instance in self._vms.items():
            for idx in range(instance.num_vcores):
                old_placements[(vm_id, idx)] = instance.placements[idx]
                self.fabric.release(instance.vcore_owner_tag(idx))

        # Re-place largest VCores first (hardest to fit).
        order = sorted(
            (
                (vm_id, idx, self._vms[vm_id].spec.vcores[idx])
                for vm_id, idx in old_placements
            ),
            key=lambda item: -(item[2].num_slices + item[2].num_banks),
        )
        moved = 0
        cycles = 0
        for vm_id, idx, vcore in order:
            tag = self._vms[vm_id].vcore_owner_tag(idx)
            slices = self.fabric.find_contiguous_slices(vcore.num_slices)
            if slices is None:
                raise AllocationError(
                    "defragmentation failed to re-place a VCore; fabric "
                    "capacity must have been exceeded"
                )
            self.fabric.claim(slices, owner=tag)
            banks = self.fabric.find_nearest_banks(slices[0],
                                                   vcore.num_banks)
            self.fabric.claim(banks, owner=tag)
            self._vms[vm_id].placements[idx] = (slices, banks)
            old_slices, old_banks = old_placements[(vm_id, idx)]
            if set(banks) != set(old_banks):
                moved += 1
                cycles += self.reconfig.cache_flush_cycles
            elif set(slices) != set(old_slices):
                moved += 1
                cycles += self.reconfig.slice_change_cycles
        self.stats.reconfigurations += moved
        self.stats.reconfiguration_cycles += cycles
        return {"moved": moved, "cycles": cycles}

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    def active_vms(self) -> List[str]:
        return sorted(self._vms)

    def instance(self, vm_id: str) -> VMInstance:
        return self._vms[vm_id]

    def free_capacity(self) -> Dict[str, int]:
        return {
            "slices": self.fabric.free_count(TileKind.SLICE),
            "banks": self.fabric.free_count(TileKind.BANK),
        }
