"""Customer meta-programs (paper Section 4).

"A basic solution would be for the IaaS user to provide a meta-program
along with the VM workload ... The meta-program can express the user's
multi-dimensional utility function as a function of different resources
and can understand how to react to changing pricing."

A :class:`MetaProgram` binds a benchmark profile and a utility function;
given a price quote it returns the configuration the customer wants.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.economics.market import Market
from repro.economics.optimizer import UtilityOptimizer
from repro.economics.utility import UtilityFunction
from repro.perfmodel.model import AnalyticModel


@dataclass(frozen=True)
class PriceQuote:
    """Current market prices published by the provider."""

    slice_price: float
    bank_price: float
    fixed_cost: float = 8.0

    def as_market(self) -> Market:
        return Market(
            name="quoted",
            slice_price=self.slice_price,
            bank_price=self.bank_price,
            fixed_cost=self.fixed_cost,
        )


@dataclass(frozen=True)
class ConfigurationDecision:
    """What the meta-program wants to buy at the quoted prices."""

    cache_kb: float
    slices: int
    vcores: float
    expected_utility: float


class MetaProgram:
    """A customer's pricing-aware configuration policy."""

    def __init__(self, benchmark: str, utility: UtilityFunction,
                 budget: float,
                 model: Optional[AnalyticModel] = None):
        if budget <= 0:
            raise ValueError("budget must be positive")
        self.benchmark = benchmark
        self.utility = utility
        self.budget = budget
        self.model = model or AnalyticModel()

    def decide(self, quote: PriceQuote) -> ConfigurationDecision:
        """React to current prices: re-optimise the purchase."""
        optimizer = UtilityOptimizer(model=self.model, budget=self.budget)
        choice = optimizer.best(self.benchmark, self.utility,
                                quote.as_market())
        return ConfigurationDecision(
            cache_kb=choice.cache_kb,
            slices=choice.slices,
            vcores=choice.vcores,
            expected_utility=choice.utility,
        )

    def would_reconfigure(self, current: Tuple[float, int],
                          quote: PriceQuote,
                          hysteresis: float = 0.05) -> bool:
        """Is switching from ``current`` worth it at the new prices?

        A small hysteresis avoids thrashing on the reconfiguration costs
        of Section 3.8.
        """
        decision = self.decide(quote)
        optimizer = UtilityOptimizer(model=self.model, budget=self.budget)
        current_utility = optimizer.utility_at(
            self.benchmark, self.utility, quote.as_market(),
            current[0], current[1],
        )
        if current_utility <= 0:
            return True
        return decision.expected_utility > current_utility * (1 + hysteresis)
