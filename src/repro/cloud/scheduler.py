"""Cloud management scheduler (paper Section 4).

"The Cloud management software (scheduler) will have to change in order
to schedule new resources."  This scheduler accepts customer requests
(benchmark, utility function, budget), lets each customer's meta-program
pick its configuration at current prices, places the resulting VMs
through the hypervisor, and adjusts prices with demand - a simple
tatonnement toward the market-clearing prices the paper's economic model
assumes.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.cloud.fabric import TileKind
from repro.cloud.hypervisor import Hypervisor
from repro.cloud.metaprogram import MetaProgram, PriceQuote
from repro.cloud.vm import VMSpec
from repro.economics.utility import UtilityFunction
from repro.perfmodel.model import AnalyticModel


@dataclass(frozen=True)
class CustomerRequest:
    """One customer's workload and preferences."""

    benchmark: str
    utility: UtilityFunction
    budget: float

    def __post_init__(self) -> None:
        if self.budget <= 0:
            raise ValueError("budget must be positive")


@dataclass
class Placement:
    """A satisfied request."""

    request: CustomerRequest
    vm_id: str
    cache_kb: float
    slices: int
    vcores: int
    expected_utility: float
    revenue: float


class CloudScheduler:
    """Market-driven scheduler over one fabric."""

    def __init__(self, hypervisor: Optional[Hypervisor] = None,
                 slice_price: float = 2.0, bank_price: float = 1.0,
                 fixed_cost: float = 8.0,
                 price_sensitivity: float = 0.25,
                 model: Optional[AnalyticModel] = None):
        if slice_price <= 0 or bank_price <= 0:
            raise ValueError("prices must be positive")
        if not 0 <= price_sensitivity < 1:
            raise ValueError("price sensitivity must be in [0, 1)")
        self.hypervisor = hypervisor or Hypervisor()
        self.slice_price = slice_price
        self.bank_price = bank_price
        self.fixed_cost = fixed_cost
        self.price_sensitivity = price_sensitivity
        self.model = model or AnalyticModel()
        self.placements: List[Placement] = []
        self.rejected: List[CustomerRequest] = []

    # ------------------------------------------------------------------
    # pricing
    # ------------------------------------------------------------------

    def quote(self) -> PriceQuote:
        return PriceQuote(
            slice_price=self.slice_price,
            bank_price=self.bank_price,
            fixed_cost=self.fixed_cost,
        )

    def _update_prices(self) -> None:
        """Raise the price of the scarcer resource (simple tatonnement)."""
        fabric = self.hypervisor.fabric
        slice_total = fabric.num_slices
        bank_total = fabric.num_banks
        slice_used = slice_total - fabric.free_count(TileKind.SLICE)
        bank_used = bank_total - fabric.free_count(TileKind.BANK)
        slice_load = slice_used / slice_total if slice_total else 0.0
        bank_load = bank_used / bank_total if bank_total else 0.0
        k = self.price_sensitivity
        self.slice_price *= 1.0 + k * (slice_load - 0.5)
        self.bank_price *= 1.0 + k * (bank_load - 0.5)

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------

    def submit(self, request: CustomerRequest) -> Optional[Placement]:
        """Serve one request at current prices; reprice afterwards."""
        meta = MetaProgram(request.benchmark, request.utility,
                           request.budget, model=self.model)
        decision = meta.decide(self.quote())
        # Integer VMs: the customer buys as many whole VCores as the
        # budget covers (at least one).
        vcores = max(1, math.floor(decision.vcores))
        spec = VMSpec.uniform(
            num_vcores=vcores,
            slices_per_vcore=decision.slices,
            cache_kb_per_vcore=decision.cache_kb,
        )
        instance = self.hypervisor.place(spec)
        while instance is None and vcores > 1:
            vcores //= 2
            spec = VMSpec.uniform(
                num_vcores=vcores,
                slices_per_vcore=decision.slices,
                cache_kb_per_vcore=decision.cache_kb,
            )
            instance = self.hypervisor.place(spec)
        if instance is None:
            self.rejected.append(request)
            self._update_prices()
            return None
        quote = self.quote().as_market()
        revenue = vcores * quote.cost(decision.cache_kb, decision.slices)
        placement = Placement(
            request=request,
            vm_id=instance.vm_id,
            cache_kb=decision.cache_kb,
            slices=decision.slices,
            vcores=vcores,
            expected_utility=decision.expected_utility,
            revenue=revenue,
        )
        self.placements.append(placement)
        self._update_prices()
        return placement

    def submit_all(self, requests: List[CustomerRequest]) -> List[Placement]:
        return [p for p in (self.submit(r) for r in requests) if p]

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------

    def total_revenue(self) -> float:
        return sum(p.revenue for p in self.placements)

    def total_utility(self) -> float:
        """Global utility - the market-efficiency quantity of Section 2.2."""
        return sum(p.expected_utility for p in self.placements)

    def utilization(self) -> float:
        return self.hypervisor.fabric.utilization()
