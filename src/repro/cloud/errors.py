"""Typed error taxonomy for the streaming allocation service.

The service used to escape raw ``KeyError``/``ValueError`` from
``depart``/``resize``/``submit``; a caller driving a million-event
stream could not tell a malformed event from a genuine bug, and one
bad event killed the whole run.  Every rejectable condition now raises
a :class:`ServiceError` subclass carrying a stable machine-readable
``reason`` string - the key the dead-letter queue and the per-reason
obs counters aggregate on.

Backward compatibility: each subclass *also* inherits the built-in
exception the old code raised (``UnknownTenantError`` is a
``KeyError``, ``DuplicateTenantError`` and ``EventValidationError``
are ``ValueError``\\ s), so existing ``except KeyError`` / ``except
ValueError`` clauses keep working unchanged.
"""

from __future__ import annotations


class ServiceError(Exception):
    """Base of every rejectable service-level failure.

    ``reason`` is a stable slug (stored in dead-letter records and
    counter names); ``tenant`` names the offending tenant when known.
    """

    reason = "service_error"

    def __init__(self, message: str, tenant: str = ""):
        super().__init__(message)
        self.tenant = tenant

    def __str__(self) -> str:  # KeyError quotes its repr; keep prose.
        return self.args[0] if self.args else self.reason


class UnknownTenantError(ServiceError, KeyError):
    """``depart``/``resize`` named a tenant the roster does not hold."""

    reason = "unknown_tenant"


class DuplicateTenantError(ServiceError, ValueError):
    """``submit`` named a tenant that is already active."""

    reason = "duplicate_tenant"


class EventValidationError(ServiceError, ValueError):
    """An event's payload is malformed (e.g. a non-positive budget)."""

    reason = "invalid_event"


class InvariantViolation(ServiceError):
    """The invariant auditor found corrupted service state.

    Unlike the rejectable errors above this is never dead-lettered:
    it means the service itself - not an event - is wrong, and the
    run must stop even in lenient mode.
    """

    reason = "invariant_violation"


class SimulatedCrash(RuntimeError):
    """A fault-injected process death (see ``repro.cloud.resilience``).

    Deliberately *not* a :class:`ServiceError`: a crash is not a
    rejectable event, it models the whole process dying, so lenient
    mode must let it propagate to the checkpoint/restore machinery.
    """

    def __init__(self, index: int):
        super().__init__(f"simulated crash at event {index}")
        self.index = index
