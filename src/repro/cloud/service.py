"""The streaming allocation service: a long-lived, event-driven market.

The paper evaluates its economic mechanism as a one-shot clearing
(Section 5, Figures 14-16, Table 6), but an IaaS provider runs a
*churning* market: tenants arrive, resize, and depart continuously.
:class:`AllocationService` turns the batch machinery into that service.
It owns a :class:`~repro.economics.tensor.MarketKernel`, a
:class:`~repro.cloud.fabric.Fabric`, and the current price vector, and
exposes an event-driven API:

* :meth:`submit` - profit-aware admission at the current prices:
  the tenant's utility-per-budget-unit must clear ``admission_floor``,
  and their VCores must physically place on the fabric;
* :meth:`resize` - change a tenant's budget (configurations are
  budget-independent, so only the replication factor moves);
* :meth:`depart` - release the tenant's tiles, with opportunistic
  compaction when the freed capacity leaves the fabric fragmented;
* :meth:`step` - warm-started tatonnement: prices re-converge from
  the previous fixed point instead of from scratch, so a quiescent
  market reprices in a single round with zero price movement;
* :meth:`run` - drive a whole event stream.

Batch clearing is now a thin wrapper: :meth:`clear_batch` replays the
registered tenants through the same tatonnement loop with cold-start
semantics, and :meth:`~repro.economics.auction.SpotMarket.clear`
delegates here.  Both backends of the auction are preserved verbatim -
the vectorized round is bit-identical to the old
``SpotMarket._round_numpy`` (same stacked tensors in tenant-insertion
order, same reduction order), and the scalar path keeps one fresh
reference optimizer per bidder per round - so existing golden and
equivalence suites pin the service-backed results unchanged.
"""

from __future__ import annotations

import math
import time
from collections import deque
from dataclasses import dataclass, field
from typing import (
    Any, Callable, Deque, Dict, Iterable, List, Optional, Tuple,
)

from repro.cloud.arena import TensorArena
from repro.cloud.errors import (
    DuplicateTenantError,
    EventValidationError,
    ServiceError,
    UnknownTenantError,
)
from repro.cloud.fabric import AllocationError, Fabric
from repro.economics.auction import Allocation, ClearingResult, _clamp
from repro.economics.backend import resolve_backend
from repro.economics.market import BANK_KB, Market
from repro.economics.optimizer import UtilityOptimizer
from repro.economics.tensor import MarketKernel
from repro.economics.utility import UtilityFunction
from repro.perfmodel.model import AnalyticModel, _resolve


@dataclass(frozen=True)
class TenantRequest:
    """One tenant's standing bid: who they are and what they will pay."""

    name: str
    benchmark: str
    utility: UtilityFunction
    budget: float

    def __post_init__(self) -> None:
        if self.budget <= 0:
            raise EventValidationError("budget must be positive",
                                       tenant=self.name)


@dataclass(frozen=True)
class AdmissionResult:
    """Outcome of one submit/resize event."""

    tenant: str
    admitted: bool
    #: "admitted" | "rejected_price" | "rejected_capacity"
    reason: str
    cache_kb: float = 0.0
    slices: int = 0
    vcores: int = 0
    #: Utility at the tenant's budget under the admission-time prices.
    utility: float = 0.0
    #: ``utility / budget`` - the profit-aware admission metric.
    marginal_utility: float = 0.0


@dataclass(frozen=True)
class StepResult:
    """Outcome of one warm-started repricing round."""

    rounds: int
    converged: bool
    rationed: bool
    slice_price: float
    bank_price: float
    #: True when tatonnement failed to converge and the service fell
    #: back to the last-known-good price vector (graceful degradation;
    #: requires ``degrade_on_divergence``).
    degraded: bool = False
    #: Wall-clock seconds this repricing step took.  Excluded from
    #: equality: timing is observational, never semantic.
    elapsed_s: float = field(default=0.0, compare=False)


@dataclass(frozen=True)
class Event:
    """One datacenter event: ``submit``, ``depart``, or ``resize``."""

    kind: str
    tenant: Optional[TenantRequest] = None
    tenant_id: Optional[str] = None
    budget: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in ("submit", "depart", "resize"):
            raise EventValidationError(
                f"unknown event kind {self.kind!r}")
        if self.kind == "submit" and self.tenant is None:
            raise EventValidationError("submit events need a tenant")
        if self.kind != "submit" and not self.tenant_id:
            raise EventValidationError(
                f"{self.kind} events need a tenant_id")

    @property
    def subject(self) -> str:
        """The tenant this event names (dead-letter records key)."""
        if self.kind == "submit":
            return self.tenant.name if self.tenant is not None else ""
        return self.tenant_id or ""


@dataclass(frozen=True)
class StreamSummary:
    """Aggregate outcome of :meth:`AllocationService.run`."""

    events: int
    admitted: int
    rejected_price: int
    rejected_capacity: int
    departures: int
    resizes: int
    reprice_rounds: int
    compactions: int
    active_tenants: int
    slice_price: float
    bank_price: float
    fragmentation: float
    #: Self-healing accounting (zero on strict, fault-free streams).
    dead_letters: int = 0
    degraded_steps: int = 0
    readmitted: int = 0
    retry_pending: int = 0
    #: Wall-clock seconds the driving loop spent (0.0 outside
    #: :meth:`AllocationService.run`).  Timing fields are excluded
    #: from equality: faulty==clean and crash/resume equivalence
    #: compare semantic outcomes, not wall clocks.
    wall_s: float = field(default=0.0, compare=False)
    #: Per-event latency percentiles over the driven stream, in
    #: milliseconds (0.0 outside :meth:`AllocationService.run`).
    latency_p50_ms: float = field(default=0.0, compare=False)
    latency_p99_ms: float = field(default=0.0, compare=False)


def _percentile(sorted_values: List[float], q: float) -> float:
    """Nearest-rank percentile over pre-sorted values (0.0 if empty)."""
    if not sorted_values:
        return 0.0
    idx = min(len(sorted_values) - 1,
              max(0, int(round(q * (len(sorted_values) - 1)))))
    return sorted_values[idx]


class _TenantState:
    """Internal per-tenant record (economics row + placement)."""

    __slots__ = ("request", "cache_kb", "slices", "vcores",
                 "perf_k_flat", "inv_k")

    def __init__(self, request: TenantRequest, cache_kb: float = 0.0,
                 slices: int = 0, vcores: int = 0,
                 perf_k_flat=None, inv_k: float = 1.0):
        self.request = request
        self.cache_kb = cache_kb
        self.slices = slices
        self.vcores = vcores
        self.perf_k_flat = perf_k_flat  # (C*S,) on the numpy backend
        self.inv_k = inv_k


class AllocationService:
    """A long-lived market over one fabric: the provider's control loop.

    The service holds the state the batch entry points recompute from
    scratch - an incremental tensor arena of per-tenant utility rows,
    memoized performance rows, the current price vector, and the
    fabric occupancy - and updates it incrementally per event.  Economics-only operation
    (``fabric=None`` with explicit supplies) backs the batch auction
    wrapper; fabric-backed operation adds physical placement and
    capacity-based rejection.
    """

    def __init__(self, slice_supply: Optional[float] = None,
                 bank_supply: Optional[float] = None, *,
                 fabric: Optional[Fabric] = None,
                 fixed_cost: float = 8.0,
                 model: Optional[AnalyticModel] = None,
                 adjustment_rate: float = 0.3,
                 tolerance: float = 0.05,
                 max_rounds: int = 60,
                 backend: Optional[str] = None,
                 admission_floor: float = 0.0,
                 max_vcores: int = 8,
                 compaction_threshold: float = 0.5,
                 initial_slice_price: float = 2.0,
                 initial_bank_price: float = 1.0,
                 kernel: Optional[MarketKernel] = None,
                 dead_letter_limit: int = 1024,
                 degrade_on_divergence: bool = False,
                 readmit_attempts: int = 3,
                 readmit_backoff: int = 8,
                 readmit_backoff_cap: int = 128,
                 readmit_queue_limit: int = 256,
                 obs=None):
        if fabric is not None:
            if slice_supply is None:
                slice_supply = float(fabric.num_slices)
            if bank_supply is None:
                bank_supply = float(fabric.num_banks)
        if slice_supply is None or bank_supply is None:
            raise ValueError("need a fabric or explicit supplies")
        if slice_supply <= 0 or bank_supply <= 0:
            raise ValueError("supplies must be positive")
        if not 0 < adjustment_rate < 1:
            raise ValueError("adjustment rate must be in (0, 1)")
        if admission_floor < 0:
            raise ValueError("admission floor cannot be negative")
        if max_vcores < 1:
            raise ValueError("max_vcores must be >= 1")
        self.fabric = fabric
        self.slice_supply = slice_supply
        self.bank_supply = bank_supply
        self.fixed_cost = fixed_cost
        self.model = model or AnalyticModel()
        self.adjustment_rate = adjustment_rate
        self.tolerance = tolerance
        self.max_rounds = max_rounds
        self.backend = resolve_backend(backend)
        self.admission_floor = admission_floor
        self.max_vcores = max_vcores
        self.compaction_threshold = compaction_threshold
        self.slice_price = initial_slice_price
        self.bank_price = initial_bank_price
        self.kernel: Optional[MarketKernel] = None
        if self.backend == "numpy":
            self.kernel = kernel or MarketKernel(model=self.model)
            self.cache_grid = self.kernel.cache_grid
            self.slice_grid = self.kernel.slice_grid
        else:
            from repro.perfmodel.model import CACHE_GRID_KB, SLICE_GRID

            self.cache_grid = tuple(float(c) for c in CACHE_GRID_KB)
            self.slice_grid = tuple(int(s) for s in SLICE_GRID)

        #: Tenants in arrival order - the reduction order of every
        #: vectorized round, so batch replay matches the old auction
        #: bit for bit.
        self._roster: List[_TenantState] = []
        self._by_name: Dict[str, _TenantState] = {}
        #: Bumped whenever prices move; invalidates the admission cost
        #: row so memoization cannot grow with the event count.
        self._price_epoch = 0
        self._flat_cost_epoch = -1
        self._flat_cost = None
        self._grid_rows: Optional[Tuple[Any, Any]] = None
        self._spot_market: Optional[Market] = None

        # --- self-healing state -----------------------------------
        #: Bounded queue of rejected-not-crashed event records
        #: (lenient mode); each record is a JSON-stable dict.
        self.dead_letters: Deque[Dict[str, Any]] = deque(
            maxlen=max(1, dead_letter_limit))
        self.degrade_on_divergence = degrade_on_divergence
        self.readmit_attempts = readmit_attempts
        self.readmit_backoff = max(1, readmit_backoff)
        self.readmit_backoff_cap = max(1, readmit_backoff_cap)
        self.readmit_queue_limit = readmit_queue_limit
        #: Fault hook: each pending unit forces the next ``step()`` to
        #: behave as a non-converged tatonnement (see
        #: ``repro.cloud.resilience.FaultInjector``).
        self.force_nonconverge = 0
        self._retry_queue: List[Dict[str, Any]] = []
        self._n_dead_letters: Dict[str, int] = {}
        self._n_degraded_steps = 0
        self._n_readmitted = 0
        self._n_retry_exhausted = 0

        from repro.obs import OBS_OFF

        scope = (obs or OBS_OFF).scope("cloud.service")
        self._scope = scope
        self._dl_counters: Dict[str, Any] = {}
        self._c_degraded = scope.counter("degraded_steps")
        self._c_readmitted = scope.counter("readmitted")
        self._c_retry_exhausted = scope.counter("retry_exhausted")
        self._c_admitted = scope.counter("admitted")
        self._c_rejected_price = scope.counter("rejected_price")
        self._c_rejected_capacity = scope.counter("rejected_capacity")
        self._c_departures = scope.counter("departures")
        self._c_resizes = scope.counter("resizes")
        self._c_compactions = scope.counter("compactions")
        self._c_reprice_rounds = scope.counter("reprice_rounds")
        self._t_submit = scope.timer("submit_s")
        self._t_depart = scope.timer("depart_s")
        self._t_resize = scope.timer("resize_s")
        self._t_step = scope.timer("step_s")
        scope.gauge("active_tenants", lambda: len(self._roster))
        #: Incremental tensor arena (numpy backend only): preallocated
        #: per-tenant round tensors with a contiguous active view, so
        #: no event ever triggers a stack rebuild.
        self._arena: Optional[TensorArena] = None
        if self.backend == "numpy":
            self._arena = TensorArena(
                len(self.cache_grid) * len(self.slice_grid),
                scope=scope)
        # Mirrored plain tallies for stream summaries (obs may be off).
        self._n_admitted = 0
        self._n_rejected_price = 0
        self._n_rejected_capacity = 0
        self._n_departures = 0
        self._n_resizes = 0
        self._n_compactions = 0
        self._n_reprice_rounds = 0

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    @property
    def active_tenants(self) -> List[str]:
        """Admitted tenant ids, in arrival order."""
        return [t.request.name for t in self._roster]

    def tenant(self, tenant_id: str) -> TenantRequest:
        state = self._by_name.get(tenant_id)
        if state is None:
            raise UnknownTenantError(f"unknown tenant {tenant_id!r}",
                                     tenant=tenant_id)
        return state.request

    def fragmentation(self) -> float:
        """Current free-Slice fragmentation (0.0 without a fabric)."""
        if self.fabric is None:
            return 0.0
        return self.fabric.slice_fragmentation()

    def prices(self) -> Tuple[float, float]:
        return self.slice_price, self.bank_price

    def spot_market(self) -> Market:
        """The current prices as a :class:`Market` (epoch-cached)."""
        if (self._spot_market is None
                or self._spot_market.slice_price != self.slice_price
                or self._spot_market.bank_price != self.bank_price):
            self._spot_market = Market(
                name="spot", slice_price=self.slice_price,
                bank_price=self.bank_price, fixed_cost=self.fixed_cost,
            )
        return self._spot_market

    # ------------------------------------------------------------------
    # event API
    # ------------------------------------------------------------------

    def submit(self, tenant: TenantRequest) -> AdmissionResult:
        """Admit (or reject) one arriving tenant at the current prices.

        Admission is profit-aware: the tenant's utility per unit of
        budget at the current prices must be at least
        ``admission_floor`` (a provider floor on willingness-to-pay
        per delivered utility), and - with a fabric - the VCores must
        physically place.  Admitted tenants join the market; prices
        move on the next :meth:`step`.
        """
        with self._t_submit:
            if tenant.name in self._by_name:
                raise DuplicateTenantError(
                    f"tenant {tenant.name!r} already active",
                    tenant=tenant.name)
            cache_kb, slices, value = self._best_at_prices(tenant)
            marginal = value / tenant.budget
            if marginal < self.admission_floor:
                self._c_rejected_price.inc()
                self._n_rejected_price += 1
                return AdmissionResult(
                    tenant=tenant.name, admitted=False,
                    reason="rejected_price", cache_kb=cache_kb,
                    slices=slices, utility=value,
                    marginal_utility=marginal,
                )
            affordable = self.spot_market().vcores_affordable(
                tenant.budget, cache_kb, slices
            )
            vcores = max(1, min(self.max_vcores, int(affordable)))
            if self.fabric is not None and not self._place(
                    tenant.name, cache_kb, slices, vcores):
                self._c_rejected_capacity.inc()
                self._n_rejected_capacity += 1
                return AdmissionResult(
                    tenant=tenant.name, admitted=False,
                    reason="rejected_capacity", cache_kb=cache_kb,
                    slices=slices, vcores=vcores, utility=value,
                    marginal_utility=marginal,
                )
            self._register(tenant, cache_kb=cache_kb, slices=slices,
                           vcores=vcores)
            self._c_admitted.inc()
            self._n_admitted += 1
            return AdmissionResult(
                tenant=tenant.name, admitted=True, reason="admitted",
                cache_kb=cache_kb, slices=slices, vcores=vcores,
                utility=value, marginal_utility=marginal,
            )

    def depart(self, tenant_id: str,
               compact: bool = True) -> TenantRequest:
        """Remove a tenant: free their tiles, maybe compact, mark
        prices stale.  ``compact=False`` skips opportunistic
        defragmentation (used by the fault injector so a churn burst
        is exactly state-neutral).  Returns the departed request.
        """
        with self._t_depart:
            state = self._by_name.pop(tenant_id, None)
            if state is None:
                raise UnknownTenantError(
                    f"unknown tenant {tenant_id!r}", tenant=tenant_id)
            index = self._roster.index(state)
            del self._roster[index]
            if self._arena is not None:
                self._arena.depart(tenant_id, index)
            self._c_departures.inc()
            self._n_departures += 1
            if self.fabric is not None:
                self.fabric.release(tenant_id)
                if compact and (self.fabric.slice_fragmentation()
                                > self.compaction_threshold):
                    self._compact()
            return state.request

    def resize(self, tenant_id: str, budget: float) -> AdmissionResult:
        """Change a tenant's budget.

        Optimal configurations are budget-independent (``U(B) =
        B^(1/k) * U(1)``), so only the replication factor moves: the
        tenant keeps their ``(cache, slices)`` shape and is re-placed
        with the new VCore count.  A resize the fabric cannot absorb is
        rejected and the old placement restored exactly.
        """
        if budget <= 0:
            raise EventValidationError("budget must be positive",
                                       tenant=tenant_id)
        with self._t_resize:
            state = self._by_name.get(tenant_id)
            if state is None:
                raise UnknownTenantError(
                    f"unknown tenant {tenant_id!r}", tenant=tenant_id)
            affordable = self.spot_market().vcores_affordable(
                budget, state.cache_kb, state.slices
            )
            vcores = max(1, min(self.max_vcores, int(affordable)))
            if self.fabric is not None and vcores != state.vcores:
                snapshot = self.fabric.owned_by(tenant_id)
                self.fabric.release(tenant_id)
                if not self._place(tenant_id, state.cache_kb,
                                   state.slices, vcores):
                    # Those exact tiles were just freed: claiming the
                    # snapshot back always succeeds.
                    self.fabric.claim(snapshot, tenant_id)
                    self._n_rejected_capacity += 1
                    self._c_rejected_capacity.inc()
                    return AdmissionResult(
                        tenant=tenant_id, admitted=False,
                        reason="rejected_capacity",
                        cache_kb=state.cache_kb, slices=state.slices,
                        vcores=vcores,
                    )
            old_budget = state.request.budget
            state.request = TenantRequest(
                name=state.request.name,
                benchmark=state.request.benchmark,
                utility=state.request.utility, budget=budget,
            )
            state.vcores = vcores
            if budget != old_budget and self._arena is not None:
                self._arena.set_budget(tenant_id,
                                       self._roster.index(state),
                                       budget)
            self._c_resizes.inc()
            self._n_resizes += 1
            return AdmissionResult(
                tenant=tenant_id, admitted=True, reason="admitted",
                cache_kb=state.cache_kb, slices=state.slices,
                vcores=vcores,
            )

    def step(self) -> StepResult:
        """Warm-started tatonnement from the current price vector.

        Unlike cold batch clearing (which demands at least two rounds
        before accepting convergence), a warm step may converge in a
        single round: at a fixed point demand is already within
        tolerance and prices do not move at all, which is what makes
        submit+depart of the same tenant return *exactly* to the
        pre-submit prices.
        """
        with self._t_step:
            t0 = time.perf_counter()
            if self.force_nonconverge > 0:
                # Fault-injected tatonnement failure: behave exactly
                # like a diverged step that degraded gracefully.
                self.force_nonconverge -= 1
                return self._degraded_step(rounds=0, t0=t0)
            if not self._roster:
                return StepResult(rounds=0, converged=True,
                                  rationed=False,
                                  slice_price=self.slice_price,
                                  bank_price=self.bank_price,
                                  elapsed_s=time.perf_counter() - t0)
            out = self._tatonnement(self.slice_price, self.bank_price,
                                    min_rounds=1,
                                    want_allocations=False)
            if not out["converged"] and self.degrade_on_divergence:
                # Graceful degradation: the diverged prices are never
                # committed - the market keeps serving at the
                # last-known-good vector (= the current one, since
                # ``_tatonnement`` works on locals until committed).
                return self._degraded_step(rounds=out["rounds"], t0=t0)
            self._set_prices(out["slice_price"], out["bank_price"])
            self._c_reprice_rounds.inc(out["rounds"])
            self._n_reprice_rounds += out["rounds"]
            return StepResult(rounds=out["rounds"],
                              converged=out["converged"],
                              rationed=out["rationed"],
                              slice_price=self.slice_price,
                              bank_price=self.bank_price,
                              elapsed_s=time.perf_counter() - t0)

    def _degraded_step(self, rounds: int,
                       t0: Optional[float] = None) -> StepResult:
        """A repricing step that failed: keep last-known-good prices."""
        self._c_degraded.inc()
        self._n_degraded_steps += 1
        self._c_reprice_rounds.inc(rounds)
        self._n_reprice_rounds += rounds
        elapsed = time.perf_counter() - t0 if t0 is not None else 0.0
        return StepResult(rounds=rounds, converged=False,
                          rationed=False,
                          slice_price=self.slice_price,
                          bank_price=self.bank_price,
                          degraded=True, elapsed_s=elapsed)

    def apply(self, event: Event):
        """Dispatch one :class:`Event` to the matching method."""
        if event.kind == "submit":
            return self.submit(event.tenant)
        if event.kind == "depart":
            return self.depart(event.tenant_id)
        return self.resize(event.tenant_id, event.budget)

    def process(self, event: Event, index: int = 0, *,
                strict: bool = True):
        """Apply one event with optional self-healing.

        Strict mode is :meth:`apply`.  Lenient mode
        (``strict=False``) turns every :class:`ServiceError` - an
        unknown tenant, a duplicate submit, a malformed payload - into
        a bounded dead-letter record plus a per-reason counter instead
        of a crashed stream, and returns ``None`` for the rejected
        event.  Anything that is *not* a typed service error still
        raises: lenient mode absorbs bad events, not bugs.
        """
        try:
            return self.apply(event)
        except ServiceError as exc:
            if strict:
                raise
            self._dead_letter(event, exc, index)
            return None

    def run(self, events: Iterable[Event],
            reprice_every: int = 1, *,
            strict: bool = True,
            readmit: bool = False,
            injector=None,
            audit_every: int = 0,
            checkpoint_every: int = 0,
            on_checkpoint: Optional[Callable[[int, dict], None]] = None
            ) -> StreamSummary:
        """Drive a stream of events, repricing every ``reprice_every``
        events (0 disables automatic repricing).

        The defaults reproduce the historical strict loop bit for bit.
        ``strict=False`` dead-letters rejectable events instead of
        raising; ``readmit=True`` re-queues capacity-rejected tenants
        and retries them with capped backoff after departures free
        tiles; ``injector`` perturbs the stream with a seeded
        :class:`~repro.cloud.resilience.FaultInjector`;
        ``audit_every=N`` runs :meth:`verify_invariants` every N
        events; ``checkpoint_every=N`` calls ``on_checkpoint(count,
        snapshot)`` every N events.
        """
        count = 0
        latencies: List[float] = []
        t_run = time.perf_counter()
        for event in events:
            if injector is not None:
                injector.perturb(self, count)
            t_event = time.perf_counter()
            outcome = self.process(event, count, strict=strict)
            if readmit:
                if event.kind == "depart" and outcome is not None:
                    self.readmit_pending(count)
                elif (event.kind == "submit" and outcome is not None
                        and not outcome.admitted
                        and outcome.reason == "rejected_capacity"):
                    self.note_capacity_rejection(event.tenant, count)
            count += 1
            if reprice_every and count % reprice_every == 0:
                self.step()
            latencies.append(time.perf_counter() - t_event)
            if audit_every and count % audit_every == 0:
                self.verify_invariants()
            if (checkpoint_every and on_checkpoint is not None
                    and count % checkpoint_every == 0):
                on_checkpoint(count, self.snapshot())
        return self.summary(events=count,
                            wall_s=time.perf_counter() - t_run,
                            latencies=latencies)

    def summary(self, events: int = 0, *, wall_s: float = 0.0,
                latencies: Optional[List[float]] = None
                ) -> StreamSummary:
        ordered = sorted(latencies) if latencies else []
        return StreamSummary(
            events=events,
            admitted=self._n_admitted,
            rejected_price=self._n_rejected_price,
            rejected_capacity=self._n_rejected_capacity,
            departures=self._n_departures,
            resizes=self._n_resizes,
            reprice_rounds=self._n_reprice_rounds,
            compactions=self._n_compactions,
            active_tenants=len(self._roster),
            slice_price=self.slice_price,
            bank_price=self.bank_price,
            fragmentation=self.fragmentation(),
            dead_letters=sum(self._n_dead_letters.values()),
            degraded_steps=self._n_degraded_steps,
            readmitted=self._n_readmitted,
            retry_pending=len(self._retry_queue),
            wall_s=wall_s,
            latency_p50_ms=_percentile(ordered, 0.50) * 1e3,
            latency_p99_ms=_percentile(ordered, 0.99) * 1e3,
        )

    # ------------------------------------------------------------------
    # self-healing: dead letters and capacity-retry re-admission
    # ------------------------------------------------------------------

    @property
    def dead_letter_counts(self) -> Dict[str, int]:
        """Total dead-lettered events per rejection reason (unbounded
        tallies; the queue itself is bounded)."""
        return dict(self._n_dead_letters)

    def _dead_letter(self, event: Event, exc: ServiceError,
                     index: int) -> None:
        reason = getattr(exc, "reason", "service_error")
        self.dead_letters.append({
            "index": index,
            "kind": event.kind,
            "tenant": event.subject,
            "reason": reason,
            "error": str(exc),
        })
        self._n_dead_letters[reason] = (
            self._n_dead_letters.get(reason, 0) + 1)
        counter = self._dl_counters.get(reason)
        if counter is None:
            counter = self._scope.counter(f"dead_letter.{reason}")
            self._dl_counters[reason] = counter
        counter.inc()

    def note_capacity_rejection(self, tenant: TenantRequest,
                                index: int) -> None:
        """Queue a capacity-rejected tenant for backoff re-admission.

        The queue is bounded and deduplicated by tenant name; the first
        retry becomes eligible ``readmit_backoff`` events later.
        """
        if len(self._retry_queue) >= self.readmit_queue_limit:
            return
        if any(e["tenant"].name == tenant.name
               for e in self._retry_queue):
            return
        self._retry_queue.append({
            "tenant": tenant,
            "attempts": 0,
            "next_event": index + self.readmit_backoff,
        })

    def readmit_pending(self, index: int) -> List[str]:
        """Retry queued capacity rejections; returns readmitted names.

        Meant to run right after departures free tiles.  Each tenant
        gets at most ``readmit_attempts`` tries, spaced by capped
        exponential backoff (``readmit_backoff * 2^attempts`` events,
        capped at ``readmit_backoff_cap``); a price rejection on retry
        means the market moved against them and the entry is dropped.
        """
        if not self._retry_queue:
            return []
        readmitted: List[str] = []
        still: List[Dict[str, Any]] = []
        for entry in self._retry_queue:
            name = entry["tenant"].name
            if name in self._by_name:
                continue  # the stream resubmitted them itself
            if entry["next_event"] > index:
                still.append(entry)
                continue
            outcome = self.submit(entry["tenant"])
            if outcome.admitted:
                readmitted.append(name)
                self._n_readmitted += 1
                self._c_readmitted.inc()
                continue
            entry["attempts"] += 1
            if (outcome.reason == "rejected_capacity"
                    and entry["attempts"] < self.readmit_attempts):
                delay = min(self.readmit_backoff_cap,
                            self.readmit_backoff
                            * (2 ** entry["attempts"]))
                entry["next_event"] = index + delay
                still.append(entry)
            else:
                self._n_retry_exhausted += 1
                self._c_retry_exhausted.inc()
        self._retry_queue = still
        return readmitted

    # ------------------------------------------------------------------
    # batch compatibility (the old one-shot auction)
    # ------------------------------------------------------------------

    def register(self, tenant: TenantRequest) -> None:
        """Add a tenant without admission control or placement - the
        batch-replay path (every bidder participates unconditionally,
        exactly as in the one-shot auction)."""
        self._register(tenant)

    def clear_batch(self, initial_slice_price: float = 2.0,
                    initial_bank_price: float = 1.0) -> ClearingResult:
        """Cold-start clearing over the registered tenants.

        Replays the old ``SpotMarket._clear`` loop - same initial
        prices, same two-round convergence minimum, same backends -
        and leaves the service's price vector at the clearing point,
        so a subsequent :meth:`step` warm-starts from it.
        """
        if not self._roster:
            raise ValueError("need at least one bidder")
        out = self._tatonnement(initial_slice_price, initial_bank_price,
                                min_rounds=2)
        self._set_prices(out["slice_price"], out["bank_price"])
        return ClearingResult(
            slice_price=out["slice_price"],
            bank_price=out["bank_price"],
            rounds=out["rounds"],
            converged=out["converged"],
            allocations=out["allocations"],
            slice_supply=self.slice_supply,
            bank_supply=self.bank_supply,
            rationed=out["rationed"],
        )

    # ------------------------------------------------------------------
    # checkpoint / restore
    # ------------------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """The full logical service state as a JSON-stable dict.

        Captures everything result-affecting - roster (arrival order),
        per-tenant shapes, prices + price epoch, fabric ownership (in
        claim order), stream tallies, dead letters, and the retry
        queue - but none of the derived caches (stacked tensors, flat
        cost rows, memoized perf rows), which are rebuilt on demand.
        ``json.dumps`` of the snapshot round-trips bit-exactly: Python
        serializes floats via ``repr`` (shortest round-trip form).

        Version 2 adds the arena slot layout (capacity, free list,
        slot map); the rows themselves are recomputed from the
        memoized kernel on restore - they are pure functions of each
        tenant's profile and utility exponent.  :meth:`restore`
        accepts version-1 snapshots (fresh arena layout in roster
        order; round results are layout-independent).
        """
        return {
            "version": 2,
            "arena": (self._arena.layout()
                      if self._arena is not None else None),
            "config": {
                "backend": self.backend,
                "slice_supply": self.slice_supply,
                "bank_supply": self.bank_supply,
                "fixed_cost": self.fixed_cost,
            },
            "prices": {"slice": self.slice_price,
                       "bank": self.bank_price},
            "price_epoch": self._price_epoch,
            "roster": [
                {
                    "name": t.request.name,
                    "benchmark": str(t.request.benchmark),
                    "utility": {
                        "name": t.request.utility.name,
                        "perf_exponent":
                            t.request.utility.perf_exponent,
                    },
                    "budget": t.request.budget,
                    "cache_kb": t.cache_kb,
                    "slices": t.slices,
                    "vcores": t.vcores,
                }
                for t in self._roster
            ],
            "fabric": (self.fabric.snapshot_owners()
                       if self.fabric is not None else None),
            "counters": {
                "admitted": self._n_admitted,
                "rejected_price": self._n_rejected_price,
                "rejected_capacity": self._n_rejected_capacity,
                "departures": self._n_departures,
                "resizes": self._n_resizes,
                "compactions": self._n_compactions,
                "reprice_rounds": self._n_reprice_rounds,
                "degraded_steps": self._n_degraded_steps,
                "readmitted": self._n_readmitted,
                "retry_exhausted": self._n_retry_exhausted,
            },
            "dead_letters": [dict(d) for d in self.dead_letters],
            "dead_letter_counts": dict(self._n_dead_letters),
            "retry_queue": [
                {
                    "tenant": {
                        "name": e["tenant"].name,
                        "benchmark": str(e["tenant"].benchmark),
                        "utility": {
                            "name": e["tenant"].utility.name,
                            "perf_exponent":
                                e["tenant"].utility.perf_exponent,
                        },
                        "budget": e["tenant"].budget,
                    },
                    "attempts": e["attempts"],
                    "next_event": e["next_event"],
                }
                for e in self._retry_queue
            ],
        }

    def restore(self, state: Dict[str, Any]) -> None:
        """Reset this service to a :meth:`snapshot` - bit-exact resume.

        The service must have been constructed with the same shape
        (backend, supplies, fabric geometry) as the snapshotting one;
        mismatches raise :class:`ValueError` before any state is
        touched.  A restored run continues exactly as the
        uninterrupted one would (proven by the crash/resume
        equivalence suite).
        """
        from repro.economics.utility import UtilityFunction

        config = state.get("config", {})
        for key, ours in (("backend", self.backend),
                          ("slice_supply", self.slice_supply),
                          ("bank_supply", self.bank_supply),
                          ("fixed_cost", self.fixed_cost)):
            theirs = config.get(key, ours)
            if theirs != ours:
                raise ValueError(
                    f"snapshot {key}={theirs!r} does not match this "
                    f"service's {key}={ours!r}")
        self._roster = []
        self._by_name = {}
        if self._arena is not None:
            self._arena.clear()
        for row in state["roster"]:
            util = row["utility"]
            request = TenantRequest(
                name=row["name"], benchmark=row["benchmark"],
                utility=UtilityFunction(
                    name=util["name"],
                    perf_exponent=util["perf_exponent"]),
                budget=row["budget"],
            )
            self._register(request, cache_kb=row["cache_kb"],
                           slices=row["slices"], vcores=row["vcores"])
        arena_layout = state.get("arena")
        if self._arena is not None and arena_layout is not None:
            self._arena.adopt_layout(arena_layout)
        self.slice_price = state["prices"]["slice"]
        self.bank_price = state["prices"]["bank"]
        self._price_epoch = state["price_epoch"]
        self._flat_cost_epoch = -1
        self._spot_market = None
        if self.fabric is not None and state["fabric"] is not None:
            for owner in list(self.fabric.snapshot_owners()):
                self.fabric.release(owner)
            for owner, nodes in state["fabric"].items():
                self.fabric.claim(nodes, owner)
        counters = state["counters"]
        self._n_admitted = counters["admitted"]
        self._n_rejected_price = counters["rejected_price"]
        self._n_rejected_capacity = counters["rejected_capacity"]
        self._n_departures = counters["departures"]
        self._n_resizes = counters["resizes"]
        self._n_compactions = counters["compactions"]
        self._n_reprice_rounds = counters["reprice_rounds"]
        self._n_degraded_steps = counters.get("degraded_steps", 0)
        self._n_readmitted = counters.get("readmitted", 0)
        self._n_retry_exhausted = counters.get("retry_exhausted", 0)
        self.dead_letters.clear()
        self.dead_letters.extend(dict(d)
                                 for d in state.get("dead_letters", ()))
        self._n_dead_letters = dict(state.get("dead_letter_counts", {}))
        self._retry_queue = []
        for entry in state.get("retry_queue", ()):
            row = entry["tenant"]
            util = row["utility"]
            self._retry_queue.append({
                "tenant": TenantRequest(
                    name=row["name"], benchmark=row["benchmark"],
                    utility=UtilityFunction(
                        name=util["name"],
                        perf_exponent=util["perf_exponent"]),
                    budget=row["budget"],
                ),
                "attempts": entry["attempts"],
                "next_event": entry["next_event"],
            })
        self.force_nonconverge = 0

    def verify_invariants(self) -> None:
        """Audit the service state; raises
        :class:`~repro.cloud.errors.InvariantViolation` on corruption.
        See :func:`repro.cloud.resilience.verify_invariants`."""
        from repro.cloud.resilience import verify_invariants

        verify_invariants(self)

    # ------------------------------------------------------------------
    # internals: admission economics
    # ------------------------------------------------------------------

    def _best_at_prices(self, tenant: TenantRequest
                        ) -> Tuple[float, int, float]:
        """``(cache_kb, slices, utility_at_budget)`` at current prices.

        The numpy path works on epoch-cached flat tensors instead of
        binding a throwaway :class:`Market` into the kernel: price
        vectors change continuously, so per-market memoization would
        grow without bound over an event stream.
        """
        if self.backend == "numpy":
            import numpy as np

            k = tenant.utility.perf_exponent
            perf_k = self._perf_k(tenant.benchmark, k)
            cost = self._flat_cost_row()
            vcores = tenant.budget / cost
            utility = (vcores ** (1.0 / k)) * perf_k
            winner = int(np.argmax(utility))
            ci, si = divmod(winner, len(self.slice_grid))
            return (self.cache_grid[ci], self.slice_grid[si],
                    float(utility[winner]))
        optimizer = UtilityOptimizer(model=self.model,
                                     budget=tenant.budget,
                                     backend="python")
        choice = optimizer.best(tenant.benchmark, tenant.utility,
                                self.spot_market())
        return choice.cache_kb, choice.slices, choice.utility

    def _perf_k(self, benchmark, k: float):
        """Flat ``P(c, s)^k`` row, memoized in the kernel per
        (profile, exponent) - the rows the arena copies in-place."""
        return self.kernel.perf_pow_row(benchmark, k)

    def _flat_cost_row(self):
        """Flat per-VCore cost over the grid at the current prices."""
        if self._flat_cost_epoch != self._price_epoch:
            import numpy as np

            cache = np.asarray(self.cache_grid, dtype=float)
            slices = np.asarray(self.slice_grid, dtype=float)
            cost = (self.bank_price * (cache / BANK_KB)[:, None]
                    + self.slice_price * slices[None, :]
                    + self.fixed_cost)
            self._flat_cost = cost.reshape(-1)
            self._flat_cost_epoch = self._price_epoch
        return self._flat_cost

    def _set_prices(self, slice_price: float, bank_price: float) -> None:
        if (slice_price != self.slice_price
                or bank_price != self.bank_price):
            self.slice_price = slice_price
            self.bank_price = bank_price
            self._price_epoch += 1

    def _register(self, tenant: TenantRequest, cache_kb: float = 0.0,
                  slices: int = 0, vcores: int = 0) -> None:
        state = _TenantState(tenant, cache_kb=cache_kb, slices=slices,
                             vcores=vcores)
        if self.backend == "numpy":
            k = tenant.utility.perf_exponent
            state.perf_k_flat = self._perf_k(tenant.benchmark, k)
            state.inv_k = 1.0 / k
        self._roster.append(state)
        self._by_name[tenant.name] = state
        if self._arena is not None:
            self._arena.submit(tenant.name, state.perf_k_flat,
                               state.inv_k, tenant.budget)

    # ------------------------------------------------------------------
    # internals: tatonnement (shared with the batch auction)
    # ------------------------------------------------------------------

    def _numpy_state(self) -> dict:
        """Round tensors over the roster, in arrival order.

        Served from the incremental arena's contiguous active view -
        zero stacking, zero copies.  Values are bit-identical to
        ``SpotMarket._prepare_numpy``: every view row is a float64
        copy of the memoized ``P^k`` row ``np.stack`` would have
        copied, in the same (arrival) order, and a row-prefix of a
        C-contiguous array is itself contiguous, so every later
        reduction runs over identical bytes in identical order.
        """
        if self._grid_rows is None:
            import numpy as np

            cache = np.asarray(self.cache_grid, dtype=float)
            slices = np.asarray(self.slice_grid, dtype=float)
            self._grid_rows = (slices[None, :],
                               (cache / BANK_KB)[:, None])
        state = self._arena.active_view()
        state["slices_row"] = self._grid_rows[0]
        state["banks_row"] = self._grid_rows[1]
        state["n_slices"] = len(self.slice_grid)
        return state

    def _round_numpy(self, state: dict, slice_price: float,
                     bank_price: float):
        """One vectorized best-response round (the old auction's,
        verbatim, over the incrementally maintained stack)."""
        import numpy as np

        cost = (bank_price * state["banks_row"]
                + slice_price * state["slices_row"] + self.fixed_cost)
        flat_cost = cost.reshape(1, -1)
        vcores = state["budgets"] / flat_cost
        utility = (vcores ** state["inv_k"]) * state["perf_k"]
        winner = np.argmax(utility, axis=1)
        rows = np.arange(utility.shape[0])
        v_best = vcores[rows, winner]
        ci, si = np.divmod(winner, state["n_slices"])
        slices_per = state["slices_row"][0, si]
        banks_per = state["banks_row"][ci, 0]
        slice_demand = float(np.sum(v_best * slices_per))
        bank_demand = float(np.sum(v_best * banks_per))
        choices = {
            "winner": winner,
            "vcores": v_best,
            "utility": utility[rows, winner],
            "ci": ci,
            "si": si,
        }
        return choices, slice_demand, bank_demand

    def _demands_python(self, slice_price: float,
                        bank_price: float) -> List[Allocation]:
        """Scalar reference round: one fresh best-response optimizer
        per tenant (the old auction's reference path, verbatim)."""
        market = Market(name="spot", slice_price=slice_price,
                        bank_price=bank_price,
                        fixed_cost=self.fixed_cost)
        allocations = []
        for state in self._roster:
            request = state.request
            optimizer = UtilityOptimizer(model=self.model,
                                         budget=request.budget,
                                         backend="python")
            choice = optimizer.best(request.benchmark, request.utility,
                                    market)
            allocations.append(Allocation(
                bidder=request.name,
                cache_kb=choice.cache_kb,
                slices=choice.slices,
                vcores=choice.vcores,
                utility=choice.utility,
            ))
        return allocations

    def _allocations_from(self, choices: dict) -> List[Allocation]:
        return [
            Allocation(
                bidder=state.request.name,
                cache_kb=self.cache_grid[int(choices["ci"][i])],
                slices=self.slice_grid[int(choices["si"][i])],
                vcores=float(choices["vcores"][i]),
                utility=float(choices["utility"][i]),
            )
            for i, state in enumerate(self._roster)
        ]

    def _tatonnement(self, slice_price: float, bank_price: float,
                     min_rounds: int,
                     want_allocations: bool = True) -> dict:
        """Damped price adjustment until excess demand is tolerable.

        ``min_rounds=2`` reproduces the batch auction's cold-start
        contract (never accept the arbitrary initial prices unseen);
        ``min_rounds=1`` is the warm-start mode, where converging on
        the very first round leaves prices untouched.
        """
        vectorized = self.backend == "numpy"
        state = self._numpy_state() if vectorized else None
        allocations: List[Allocation] = []
        choices: Optional[dict] = None
        converged = False
        rationed = False
        stable_rounds = 0
        last_demand = (None, None)
        rounds = 0
        for rounds in range(1, self.max_rounds + 1):
            if vectorized:
                choices, slice_demand, bank_demand = self._round_numpy(
                    state, slice_price, bank_price
                )
            else:
                allocations = self._demands_python(slice_price,
                                                   bank_price)
                slice_demand = sum(a.slices_demanded
                                   for a in allocations)
                bank_demand = sum(a.banks_demanded for a in allocations)
            slice_excess = slice_demand / self.slice_supply - 1.0
            bank_excess = bank_demand / self.bank_supply - 1.0
            # Cleared: no over-demand on either resource (free
            # disposal; see the auction module for the rationale).
            floor = 0.01
            no_overdemand = (slice_excess <= self.tolerance
                             and bank_excess <= self.tolerance)
            at_floor = (slice_price <= floor * 1.01
                        and bank_price <= floor * 1.01)
            if rounds >= min_rounds and no_overdemand and (
                slice_excess >= -self.tolerance
                or bank_excess >= -self.tolerance
                or at_floor
            ):
                converged = True
                break
            # Lumpy demand: settle and ration after 5 stable rounds.
            demand = (round(slice_demand, 1), round(bank_demand, 1))
            stable_rounds = (stable_rounds + 1 if demand == last_demand
                             else 0)
            last_demand = demand
            if stable_rounds >= 5:
                converged = True
                rationed = not no_overdemand
                break
            k = self.adjustment_rate / (1.0 + rounds / 40.0)
            slice_price = max(
                floor, slice_price * math.exp(k * _clamp(slice_excess)))
            bank_price = max(
                floor, bank_price * math.exp(k * _clamp(bank_excess)))
        if vectorized:
            self._arena.note_rounds(rounds)
            if choices is not None and want_allocations:
                # Warm steps discard allocations (StepResult carries
                # only prices), so they skip this construction.
                allocations = self._allocations_from(choices)
        return {
            "slice_price": slice_price,
            "bank_price": bank_price,
            "rounds": rounds,
            "converged": converged,
            "rationed": rationed,
            "allocations": allocations,
        }

    # ------------------------------------------------------------------
    # internals: fabric placement
    # ------------------------------------------------------------------

    def _place(self, owner: str, cache_kb: float, slices: int,
               vcores: int) -> bool:
        """Place ``vcores`` VCores of one shape; all-or-nothing."""
        banks_per = int(round(cache_kb / BANK_KB))
        for _ in range(vcores):
            run = self.fabric.find_contiguous_slices(slices)
            if run is None:
                self.fabric.release(owner)
                return False
            try:
                self.fabric.claim(run, owner)
                if banks_per:
                    banks = self.fabric.find_nearest_banks(run[0],
                                                           banks_per)
                    self.fabric.claim(banks, owner)
            except AllocationError:
                self.fabric.release(owner)
                return False
        return True

    def _compact(self) -> None:
        """Opportunistic defragmentation after a departure.

        Paper Section 3: all Slices are interchangeable, so "fixing
        fragmentation problems is as simple as rescheduling Slices to
        VCores".  Every placement is lifted and re-packed widest-VCore
        first; if the re-pack cannot place someone (first-fit is not
        optimal), the exact previous tiling is restored - the tiles
        were only ever released, so the snapshot is always claimable.
        """
        snapshot = {
            t.request.name: self.fabric.owned_by(t.request.name)
            for t in self._roster
        }
        order = sorted(
            self._roster,
            key=lambda t: (-t.slices, -t.vcores, t.request.name),
        )
        for state in self._roster:
            self.fabric.release(state.request.name)
        for state in order:
            if not self._place(state.request.name, state.cache_kb,
                               state.slices, state.vcores):
                for other in order:
                    self.fabric.release(other.request.name)
                for name, nodes in snapshot.items():
                    if nodes:
                        self.fabric.claim(nodes, name)
                return
        if self._arena is not None:
            # Piggyback arena slot re-packing on the same
            # fragmentation-driven cadence - never on the hot path.
            self._arena.compact()
        self._c_compactions.inc()
        self._n_compactions += 1
