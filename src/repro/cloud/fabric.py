"""The manycore fabric: a 2-D array of Slice and Cache Bank tiles.

Paper Figure 3: Slices and Cache Banks sit on a single switched fabric;
"a full chip will have 100's of Slices and Cache Banks".  Slices of a
VCore must be contiguous within a row (operand latency); banks may be
anywhere, with latency set by Manhattan distance.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.network.topology import Mesh2D


class TileKind(enum.Enum):
    SLICE = "slice"
    BANK = "bank"


class AllocationError(RuntimeError):
    """The fabric cannot satisfy an allocation request."""


@dataclass(frozen=True)
class TileAssignment:
    """Who owns a tile."""

    owner: str  # VCore id


class Fabric:
    """A ``width x height`` grid of tiles.

    The default layout alternates slice columns and bank columns, giving
    a 1:1 Slice:Bank ratio (one Slice to 64 KB); real deployments would
    choose the mix at fabrication time - but unlike a heterogeneous CMP,
    the *grouping* remains fully dynamic.
    """

    def __init__(self, width: int = 16, height: int = 8,
                 bank_columns: Optional[Sequence[int]] = None):
        self.mesh = Mesh2D(width=width, height=height)
        if bank_columns is None:
            bank_columns = [x for x in range(width) if x % 2 == 1]
        bank_cols: Set[int] = set(bank_columns)
        self._kind: Dict[int, TileKind] = {}
        for node in range(self.mesh.num_nodes):
            x, _ = self.mesh.coords(node)
            self._kind[node] = (
                TileKind.BANK if x in bank_cols else TileKind.SLICE
            )
        self._owner: Dict[int, str] = {}

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def kind(self, node: int) -> TileKind:
        return self._kind[node]

    def owner_of(self, node: int) -> Optional[str]:
        return self._owner.get(node)

    def is_free(self, node: int) -> bool:
        return node not in self._owner

    def tiles(self, kind: TileKind) -> List[int]:
        return [n for n, k in self._kind.items() if k is kind]

    def free_tiles(self, kind: TileKind) -> List[int]:
        return [n for n in self.tiles(kind) if self.is_free(n)]

    @property
    def num_slices(self) -> int:
        return len(self.tiles(TileKind.SLICE))

    @property
    def num_banks(self) -> int:
        return len(self.tiles(TileKind.BANK))

    def utilization(self) -> float:
        return len(self._owner) / self.mesh.num_nodes

    # ------------------------------------------------------------------
    # allocation
    # ------------------------------------------------------------------

    def find_contiguous_slices(self, count: int) -> Optional[List[int]]:
        """A horizontal run of ``count`` free Slice tiles, if one exists.

        Contiguity here means consecutive slice tiles of one row - bank
        columns interleave physically but the slice-to-slice operand
        distance remains proportional to position, which is what the
        latency model charges.
        """
        if count < 1:
            raise ValueError("need at least one Slice")
        for y in range(self.mesh.height):
            run: List[int] = []
            for x in range(self.mesh.width):
                node = self.mesh.node_at(x, y)
                if self._kind[node] is not TileKind.SLICE:
                    continue
                if self.is_free(node):
                    run.append(node)
                    if len(run) == count:
                        return run
                else:
                    run = []
        return None

    def find_nearest_banks(self, anchor: int, count: int) -> List[int]:
        """The ``count`` free bank tiles nearest to ``anchor``."""
        free = self.free_tiles(TileKind.BANK)
        if len(free) < count:
            raise AllocationError(
                f"need {count} banks, only {len(free)} free"
            )
        free.sort(key=lambda n: self.mesh.distance(anchor, n))
        return free[:count]

    def claim(self, nodes: Sequence[int], owner: str) -> None:
        for node in nodes:
            if not self.is_free(node):
                raise AllocationError(f"tile {node} already owned")
        for node in nodes:
            self._owner[node] = owner

    def release(self, owner: str) -> List[int]:
        """Free every tile owned by ``owner``; returns the freed nodes."""
        freed = [n for n, o in self._owner.items() if o == owner]
        for node in freed:
            del self._owner[node]
        return freed

    def owned_by(self, owner: str) -> List[int]:
        return sorted(n for n, o in self._owner.items() if o == owner)

    def defragment_candidates(self, count: int) -> bool:
        """Would ``count`` Slices fit after rescheduling (total capacity)?

        Paper Section 3: "fixing fragmentation problems is as simple as
        rescheduling Slices to VCores" - all Slices are interchangeable,
        so capacity, not layout, is the real constraint.
        """
        return len(self.free_tiles(TileKind.SLICE)) >= count
