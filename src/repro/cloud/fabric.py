"""The manycore fabric: a 2-D array of Slice and Cache Bank tiles.

Paper Figure 3: Slices and Cache Banks sit on a single switched fabric;
"a full chip will have 100's of Slices and Cache Banks".  Slices of a
VCore must be contiguous within a row (operand latency); banks may be
anywhere, with latency set by Manhattan distance.

Allocation is indexed, not scanned.  Each row keeps its free slice
positions as sorted maximal intervals (in slice-column index space, so
interleaved bank columns neither break nor count toward a run), and a
segment tree over per-row maximum run lengths answers "lowest row with a
free run of ``count``" in O(log height).  Free banks are found by
walking a lazily-built per-anchor visit order - every bank sorted once
by ``(manhattan_distance, node_id)`` - and filtering occupied tiles,
which is exactly the order a Manhattan-ring expansion (or a full-chip
stable sort) emits.  Both paths return bit-identical placements to the
original linear scans: first-fit lowest row, leftmost run; nearest
banks with ties broken by ascending node id.
"""

from __future__ import annotations

import enum
from bisect import bisect_right
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.network.topology import Mesh2D


class TileKind(enum.Enum):
    SLICE = "slice"
    BANK = "bank"


class AllocationError(RuntimeError):
    """The fabric cannot satisfy an allocation request."""


@dataclass(frozen=True)
class TileAssignment:
    """Who owns a tile."""

    owner: str  # VCore id


class _RowRuns:
    """One row's free slice positions as sorted maximal intervals.

    Positions are slice-column *indices* (0..S-1), not x coordinates:
    a bank column between two slice columns does not interrupt a run,
    matching the original scan's ``continue`` over bank tiles.
    """

    __slots__ = ("starts", "ends")

    def __init__(self, num_positions: int):
        if num_positions > 0:
            self.starts = [0]
            self.ends = [num_positions]
        else:
            self.starts = []
            self.ends = []

    def max_run(self) -> int:
        starts = self.starts
        if not starts:
            return 0
        ends = self.ends
        best = 0
        for i in range(len(starts)):
            length = ends[i] - starts[i]
            if length > best:
                best = length
        return best

    def first_run(self, count: int) -> Optional[int]:
        """Start position of the leftmost free run of >= ``count``."""
        for s, e in zip(self.starts, self.ends):
            if e - s >= count:
                return s
        return None

    def _locate(self, pos: int) -> int:
        i = bisect_right(self.starts, pos) - 1
        if i < 0 or pos >= self.ends[i]:
            raise AllocationError(f"slice position {pos} is not free")
        return i

    def remove(self, pos: int) -> None:
        """Mark ``pos`` occupied, splitting its interval as needed."""
        i = self._locate(pos)
        s, e = self.starts[i], self.ends[i]
        if s == pos and e == pos + 1:
            del self.starts[i]
            del self.ends[i]
        elif s == pos:
            self.starts[i] = pos + 1
        elif e == pos + 1:
            self.ends[i] = pos
        else:  # split interior
            self.ends[i] = pos
            self.starts.insert(i + 1, pos + 1)
            self.ends.insert(i + 1, e)

    def add(self, pos: int) -> None:
        """Mark ``pos`` free again, merging with neighbours."""
        i = bisect_right(self.starts, pos) - 1
        left = i >= 0 and self.ends[i] == pos
        right = (i + 1 < len(self.starts)
                 and self.starts[i + 1] == pos + 1)
        if i >= 0 and pos < self.ends[i]:
            raise AllocationError(f"slice position {pos} already free")
        if left and right:
            self.ends[i] = self.ends[i + 1]
            del self.starts[i + 1]
            del self.ends[i + 1]
        elif left:
            self.ends[i] = pos + 1
        elif right:
            self.starts[i + 1] = pos
        else:
            self.starts.insert(i + 1, pos)
            self.ends.insert(i + 1, pos + 1)


class _RowMaxTree:
    """Segment tree over rows: max free-run length, leftmost descent."""

    __slots__ = ("size", "tree")

    def __init__(self, num_rows: int, values: Sequence[int]):
        size = 1
        while size < max(1, num_rows):
            size *= 2
        self.size = size
        self.tree = [0] * (2 * size)
        for y, v in enumerate(values):
            self.tree[size + y] = v
        for i in range(size - 1, 0, -1):
            self.tree[i] = max(self.tree[2 * i], self.tree[2 * i + 1])

    def update(self, row: int, value: int) -> None:
        i = self.size + row
        self.tree[i] = value
        i //= 2
        while i:
            self.tree[i] = max(self.tree[2 * i], self.tree[2 * i + 1])
            i //= 2

    def first_row_with(self, count: int) -> Optional[int]:
        """The lowest row whose max free run is >= ``count``."""
        if self.tree[1] < count:
            return None
        i = 1
        while i < self.size:
            i *= 2
            if self.tree[i] < count:
                i += 1
        return i - self.size


class Fabric:
    """A ``width x height`` grid of tiles.

    The default layout alternates slice columns and bank columns, giving
    a 1:1 Slice:Bank ratio (one Slice to 64 KB); real deployments would
    choose the mix at fabrication time - but unlike a heterogeneous CMP,
    the *grouping* remains fully dynamic.
    """

    def __init__(self, width: int = 16, height: int = 8,
                 bank_columns: Optional[Sequence[int]] = None):
        self.mesh = Mesh2D(width=width, height=height)
        if bank_columns is None:
            bank_columns = [x for x in range(width) if x % 2 == 1]
        bank_cols: Set[int] = set(bank_columns)
        self._kind: Dict[int, TileKind] = {}
        for node in range(self.mesh.num_nodes):
            x, _ = self.mesh.coords(node)
            self._kind[node] = (
                TileKind.BANK if x in bank_cols else TileKind.SLICE
            )
        self._owner: Dict[int, str] = {}
        #: Claimed nodes per owner, in claim order (release order).
        self._owner_nodes: Dict[str, List[int]] = {}
        #: Slice columns ascending, and x -> slice-column index.
        self._slice_cols: List[int] = sorted(
            x for x in range(width) if x not in bank_cols
        )
        self._col_index: Dict[int, int] = {
            x: i for i, x in enumerate(self._slice_cols)
        }
        self._rows: List[_RowRuns] = [
            _RowRuns(len(self._slice_cols)) for _ in range(height)
        ]
        self._row_tree = _RowMaxTree(
            height, [r.max_run() for r in self._rows]
        )
        self._free_counts: Dict[TileKind, int] = {
            TileKind.SLICE: len(self._slice_cols) * height,
            TileKind.BANK: len(bank_cols & set(range(width))) * height,
        }
        #: All bank node ids, ascending.
        self._bank_nodes: List[int] = [
            n for n, k in self._kind.items() if k is TileKind.BANK
        ]
        #: anchor -> every bank sorted by (manhattan distance, node id).
        #: Occupancy-independent, so never invalidated; built lazily on
        #: first placement from each anchor.
        self._bank_order_cache: Dict[int, List[int]] = {}

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def kind(self, node: int) -> TileKind:
        return self._kind[node]

    def owner_of(self, node: int) -> Optional[str]:
        return self._owner.get(node)

    def is_free(self, node: int) -> bool:
        return node not in self._owner

    def tiles(self, kind: TileKind) -> List[int]:
        return [n for n, k in self._kind.items() if k is kind]

    def free_tiles(self, kind: TileKind) -> List[int]:
        return [n for n in self.tiles(kind) if self.is_free(n)]

    def free_count(self, kind: TileKind) -> int:
        """How many tiles of ``kind`` are free - O(1)."""
        return self._free_counts[kind]

    @property
    def num_slices(self) -> int:
        return len(self._slice_cols) * self.mesh.height

    @property
    def num_banks(self) -> int:
        return self.mesh.num_nodes - self.num_slices

    def utilization(self) -> float:
        return len(self._owner) / self.mesh.num_nodes

    def max_free_run(self) -> int:
        """Longest contiguous free Slice run on the chip - O(1)."""
        return self._row_tree.tree[1]

    def slice_fragmentation(self) -> float:
        """How scattered the free Slice capacity is, in [0, 1].

        ``1 - max_free_run / best_possible_run`` where the best possible
        run is bounded by the row width (runs cannot span rows): 0 when
        some row offers the longest run the free capacity could ever
        form, approaching 1 when capacity is shredded into single-tile
        fragments.  This is the metric the streaming allocation service
        watches to trigger opportunistic compaction (paper Section 3:
        "fixing fragmentation problems is as simple as rescheduling
        Slices to VCores").
        """
        free = self._free_counts[TileKind.SLICE]
        if free == 0:
            return 0.0
        best = min(free, len(self._slice_cols))
        return 1.0 - self.max_free_run() / best

    # ------------------------------------------------------------------
    # allocation
    # ------------------------------------------------------------------

    def find_contiguous_slices(self, count: int) -> Optional[List[int]]:
        """A horizontal run of ``count`` free Slice tiles, if one exists.

        Contiguity here means consecutive slice tiles of one row - bank
        columns interleave physically but the slice-to-slice operand
        distance remains proportional to position, which is what the
        latency model charges.  First fit: lowest row, leftmost run.
        """
        if count < 1:
            raise ValueError("need at least one Slice")
        y = self._row_tree.first_row_with(count)
        if y is None:
            return None
        start = self._rows[y].first_run(count)
        assert start is not None
        base = y * self.mesh.width
        cols = self._slice_cols
        return [base + cols[p] for p in range(start, start + count)]

    def _bank_order(self, anchor: int) -> List[int]:
        """Every bank, sorted by ``(manhattan distance, node id)``.

        Expanding Manhattan rings and taking node ids ascending within
        each ring emits banks in exactly this order, so walking it and
        skipping occupied tiles reproduces the ring expansion (and the
        original full-chip stable sort) bit-for-bit.  The order depends
        only on geometry, never on occupancy, so one sort per anchor is
        amortized over every placement anchored there.
        """
        order = self._bank_order_cache.get(anchor)
        if order is None:
            width = self.mesh.width
            ay, ax = divmod(anchor, width)
            order = sorted(
                self._bank_nodes,
                key=lambda n: (
                    abs(n % width - ax) + abs(n // width - ay), n
                ),
            )
            self._bank_order_cache[anchor] = order
        return order

    def find_nearest_banks(self, anchor: int, count: int) -> List[int]:
        """The ``count`` free bank tiles nearest to ``anchor``.

        Ties at equal Manhattan distance break by ascending node id
        (the stable-sort order of the original full-chip scan).
        """
        if count <= 0:
            return []
        if self._free_counts[TileKind.BANK] < count:
            raise AllocationError(
                f"need {count} banks, only "
                f"{self._free_counts[TileKind.BANK]} free"
            )
        owner = self._owner
        chosen: List[int] = []
        append = chosen.append
        for node in self._bank_order(anchor):
            if node not in owner:
                append(node)
                if len(chosen) == count:
                    return chosen
        raise AllocationError(  # pragma: no cover - guarded by the count
            f"need {count} banks, ran out of fabric"
        )

    def claim(self, nodes: Sequence[int], owner: str) -> None:
        owner_map = self._owner
        for node in nodes:
            if node in owner_map:
                raise AllocationError(f"tile {node} already owned")
        claimed = self._owner_nodes.setdefault(owner, [])
        kinds = self._kind
        counts = self._free_counts
        for node in nodes:
            owner_map[node] = owner
            claimed.append(node)
            kind = kinds[node]
            counts[kind] -= 1
            if kind is TileKind.SLICE:
                self._slice_freed(node, free=False)

    def release(self, owner: str) -> List[int]:
        """Free every tile owned by ``owner``; returns the freed nodes."""
        freed = self._owner_nodes.pop(owner, [])
        owner_map = self._owner
        kinds = self._kind
        counts = self._free_counts
        for node in freed:
            del owner_map[node]
            kind = kinds[node]
            counts[kind] += 1
            if kind is TileKind.SLICE:
                self._slice_freed(node, free=True)
        return freed

    def _slice_freed(self, node: int, free: bool) -> None:
        y, x = divmod(node, self.mesh.width)
        row = self._rows[y]
        pos = self._col_index[x]
        if free:
            row.add(pos)
        else:
            row.remove(pos)
        self._row_tree.update(y, row.max_run())

    def owned_by(self, owner: str) -> List[int]:
        return sorted(self._owner_nodes.get(owner, []))

    def snapshot_owners(self) -> Dict[str, List[int]]:
        """Every owner's claimed nodes, in claim order.

        JSON-stable (string keys, int lists) and ordered so that
        replaying ``claim(nodes, owner)`` per entry reconstructs the
        internal bookkeeping - including release order - bit-exactly.
        This is the fabric's contribution to
        :meth:`repro.cloud.service.AllocationService.snapshot`.
        """
        return {owner: list(nodes)
                for owner, nodes in self._owner_nodes.items()}

    def defragment_candidates(self, count: int) -> bool:
        """Would ``count`` Slices fit after rescheduling (total capacity)?

        Paper Section 3: "fixing fragmentation problems is as simple as
        rescheduling Slices to VCores" - all Slices are interchangeable,
        so capacity, not layout, is the real constraint.
        """
        return self._free_counts[TileKind.SLICE] >= count
