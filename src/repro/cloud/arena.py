"""Incremental tensor arena for the streaming allocation service.

The rebuild-on-invalidate stack re-``np.stack``-ed every per-tenant
utility row whenever the roster changed - an O(active) rebuild per
event.  :class:`TensorArena` replaces it with preallocated
``(capacity, cache * slice)`` arrays that grow by amortized doubling,
a LIFO free-slot list recycling departed tenants' rows, in-place row
writes on submit/resize, and a slot<->tenant index.  Tatonnement
rounds read a *contiguous active view*: separate prefix arrays kept in
roster (arrival) order, updated incrementally - append on submit,
shift-down on depart, in-place budget write on resize - so the view's
contents are always bit-identical to ``np.stack`` over the roster and
no per-step stacking ever happens.

Bit-identity argument: every view row is a float64 copy of the exact
memoized ``P^k`` row ``np.stack`` would have copied, rows sit in the
same (arrival) order, and a row-prefix of a C-contiguous array is
itself C-contiguous - so every downstream reduction (`argmax`, `sum`)
runs over identical bytes in identical order.

Slot storage (where rows live) is invisible to the rounds; it exists
so the arena can be compacted off the hot path and so checkpoints can
round-trip the exact layout.  :meth:`compact` re-packs slots into
roster order and empties the free list; the service piggybacks it on
the existing fragmentation-driven compaction cadence.
"""

from __future__ import annotations

from typing import Any, Dict, List

#: Initial slot capacity; doubling from here amortizes growth to O(1)
#: row copies per admission.
INITIAL_CAPACITY = 64


class TensorArena:
    """Preallocated per-tenant round tensors with an incremental
    contiguous active view.

    Parameters
    ----------
    row_width:
        Flattened configuration-grid width (``cache * slice``).
    capacity:
        Initial slot capacity (grows by doubling).
    scope:
        An obs scope (e.g. ``cloud.service``); the arena registers its
        instruments under ``<scope>.arena.*``.
    """

    def __init__(self, row_width: int, capacity: int = INITIAL_CAPACITY,
                 scope=None):
        import numpy as np

        self._np = np
        self.row_width = int(row_width)
        self.capacity = max(1, int(capacity))
        # Slot storage: rows live wherever their slot is.
        self.perf_k = np.zeros((self.capacity, self.row_width))
        self.inv_k = np.zeros(self.capacity)
        self.budgets = np.zeros(self.capacity)
        #: LIFO recycling of departed tenants' slots.
        self.free_slots: List[int] = []
        #: slot <-> tenant index.
        self.slot_of: Dict[str, int] = {}
        self.tenant_of: Dict[int, str] = {}
        self._next_slot = 0
        # Contiguous active view, roster order; rounds read [:n_active].
        self.view_perf_k = np.zeros((self.capacity, self.row_width))
        self.view_inv_k = np.zeros((self.capacity, 1))
        self.view_budgets = np.zeros((self.capacity, 1))
        #: Tenant names in view (== roster) order.
        self.order: List[str] = []
        self.n_active = 0

        from repro.obs import NULL_SCOPE

        scope = scope if scope is not None else NULL_SCOPE
        self._c_grows = scope.counter("arena.grows")
        self._c_slot_reuse = scope.counter("arena.slot_reuse")
        self._c_rounds_no_rebuild = scope.counter(
            "arena.rounds_no_rebuild")
        scope.gauge("arena.active_view", lambda: self.n_active)
        scope.gauge("arena.capacity", lambda: self.capacity)
        # Mirrored plain tallies (obs may be off).
        self.n_grows = 0
        self.n_slot_reuse = 0
        self.n_rounds_no_rebuild = 0

    # ------------------------------------------------------------------
    # hot-path mutations
    # ------------------------------------------------------------------

    def _grow(self, need: int) -> None:
        np = self._np
        capacity = self.capacity
        while capacity < need:
            capacity *= 2
        grown = np.zeros((capacity, self.row_width))
        grown[:self.capacity] = self.perf_k
        self.perf_k = grown
        grown = np.zeros(capacity)
        grown[:self.capacity] = self.inv_k
        self.inv_k = grown
        grown = np.zeros(capacity)
        grown[:self.capacity] = self.budgets
        self.budgets = grown
        grown = np.zeros((capacity, self.row_width))
        grown[:self.capacity] = self.view_perf_k
        self.view_perf_k = grown
        grown = np.zeros((capacity, 1))
        grown[:self.capacity] = self.view_inv_k
        self.view_inv_k = grown
        grown = np.zeros((capacity, 1))
        grown[:self.capacity] = self.view_budgets
        self.view_budgets = grown
        self.capacity = capacity
        self._c_grows.inc()
        self.n_grows += 1

    def submit(self, name: str, perf_k_row, inv_k: float,
               budget: float) -> int:
        """Add one tenant: in-place row write into a (possibly
        recycled) slot plus an append to the active view.  Returns the
        slot."""
        if name in self.slot_of:
            raise ValueError(f"tenant {name!r} already in arena")
        if self.free_slots:
            slot = self.free_slots.pop()
            self._c_slot_reuse.inc()
            self.n_slot_reuse += 1
        else:
            if self._next_slot >= self.capacity:
                self._grow(self._next_slot + 1)
            slot = self._next_slot
            self._next_slot += 1
        self.perf_k[slot] = perf_k_row
        self.inv_k[slot] = inv_k
        self.budgets[slot] = budget
        self.slot_of[name] = slot
        self.tenant_of[slot] = name
        n = self.n_active
        if n >= self.capacity:  # pragma: no cover - slots grow first
            self._grow(n + 1)
        self.view_perf_k[n] = perf_k_row
        self.view_inv_k[n, 0] = inv_k
        self.view_budgets[n, 0] = budget
        self.order.append(name)
        self.n_active = n + 1
        return slot

    def depart(self, name: str, index: int) -> None:
        """Remove the tenant at roster position ``index``: recycle the
        slot, shift the view suffix down one row (contents stay equal
        to a fresh stack of the shrunken roster)."""
        slot = self.slot_of.pop(name, None)
        if slot is None or self.order[index] != name:
            raise ValueError(
                f"tenant {name!r} not at arena position {index}")
        del self.tenant_of[slot]
        self.free_slots.append(slot)
        n = self.n_active
        if index < n - 1:
            self.view_perf_k[index:n - 1] = self.view_perf_k[
                index + 1:n]
            self.view_inv_k[index:n - 1] = self.view_inv_k[index + 1:n]
            self.view_budgets[index:n - 1] = self.view_budgets[
                index + 1:n]
        del self.order[index]
        self.n_active = n - 1

    def set_budget(self, name: str, index: int, budget: float) -> None:
        """In-place budget write (resize); the utility row is
        budget-independent so nothing else moves."""
        slot = self.slot_of.get(name)
        if slot is None or self.order[index] != name:
            raise ValueError(
                f"tenant {name!r} not at arena position {index}")
        self.budgets[slot] = budget
        self.view_budgets[index, 0] = budget

    # ------------------------------------------------------------------
    # round access
    # ------------------------------------------------------------------

    def active_view(self) -> Dict[str, Any]:
        """The contiguous round tensors - zero stacking, zero copies."""
        n = self.n_active
        return {
            "perf_k": self.view_perf_k[:n],
            "inv_k": self.view_inv_k[:n],
            "budgets": self.view_budgets[:n],
        }

    def note_rounds(self, rounds: int) -> None:
        """Tally tatonnement rounds served without any stack rebuild."""
        self._c_rounds_no_rebuild.inc(rounds)
        self.n_rounds_no_rebuild += rounds

    # ------------------------------------------------------------------
    # off-hot-path maintenance
    # ------------------------------------------------------------------

    def compact(self) -> None:
        """Re-pack slot storage into roster order; empties the free
        list.  The active view is already contiguous, so this only
        tidies slot space - it runs on the service's opportunistic
        compaction cadence, never per event."""
        n = self.n_active
        self.perf_k[:n] = self.view_perf_k[:n]
        self.inv_k[:n] = self.view_inv_k[:n, 0]
        self.budgets[:n] = self.view_budgets[:n, 0]
        self.slot_of = {name: i for i, name in enumerate(self.order)}
        self.tenant_of = {i: name for i, name in enumerate(self.order)}
        self.free_slots = []
        self._next_slot = n

    def layout(self) -> Dict[str, Any]:
        """JSON-stable arena layout for checkpoints.

        Rows are *not* serialized: they are pure functions of the
        tenant's profile and utility exponent, recomputed bit-exactly
        from the memoized kernel on restore.
        """
        return {
            "capacity": self.capacity,
            "next_slot": self._next_slot,
            "free_slots": list(self.free_slots),
            "slots": {name: self.slot_of[name] for name in self.order},
        }

    def adopt_layout(self, layout: Dict[str, Any]) -> None:
        """Re-shape slot storage to a checkpointed :meth:`layout`.

        The active view (and therefore every round result) is
        unaffected; this restores the slot/free-list bookkeeping so a
        resumed service recycles the same slots the original would.
        """
        slots = {str(k): int(v) for k, v in layout["slots"].items()}
        if set(slots) != set(self.order):
            raise ValueError("arena layout names do not match roster")
        need = int(layout["capacity"])
        if need > self.capacity:
            self._grow(need)
        self._next_slot = int(layout["next_slot"])
        self.free_slots = [int(s) for s in layout["free_slots"]]
        self.slot_of = {}
        self.tenant_of = {}
        for index, name in enumerate(self.order):
            slot = slots[name]
            self.perf_k[slot] = self.view_perf_k[index]
            self.inv_k[slot] = self.view_inv_k[index, 0]
            self.budgets[slot] = self.view_budgets[index, 0]
            self.slot_of[name] = slot
            self.tenant_of[slot] = name

    def clear(self) -> None:
        """Forget every tenant (restore() rebuilds from a snapshot)."""
        self.free_slots = []
        self.slot_of = {}
        self.tenant_of = {}
        self._next_slot = 0
        self.order = []
        self.n_active = 0
