"""IaaS cloud layer: fabric, hypervisor, scheduler, and customer tooling.

The Sharing Architecture targets IaaS providers (paper Sections 1-2, 4):
a hypervisor running on single-Slice VCores reconfigures the fabric;
Cloud management software schedules customer VMs onto Slices and Cache
Banks; customers steer their purchases with meta-programs or auto-tuners.
"""

from repro.cloud.errors import (
    DuplicateTenantError,
    EventValidationError,
    InvariantViolation,
    ServiceError,
    SimulatedCrash,
    UnknownTenantError,
)
from repro.cloud.fabric import Fabric, TileKind, AllocationError
from repro.cloud.resilience import (
    FaultEvent,
    FaultInjector,
    FaultPlan,
    verify_invariants,
)
from repro.cloud.vm import VCoreSpec, VMSpec, VMInstance
from repro.cloud.hypervisor import Hypervisor
from repro.cloud.scheduler import CloudScheduler, CustomerRequest, Placement
from repro.cloud.autotuner import AutoTuner, TuningResult
from repro.cloud.metaprogram import MetaProgram, PriceQuote
from repro.cloud.service import (
    AdmissionResult,
    AllocationService,
    Event,
    StepResult,
    StreamSummary,
    TenantRequest,
)

__all__ = [
    "Fabric",
    "TileKind",
    "AllocationError",
    "ServiceError",
    "UnknownTenantError",
    "DuplicateTenantError",
    "EventValidationError",
    "InvariantViolation",
    "SimulatedCrash",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "verify_invariants",
    "AllocationService",
    "TenantRequest",
    "Event",
    "AdmissionResult",
    "StepResult",
    "StreamSummary",
    "VCoreSpec",
    "VMSpec",
    "VMInstance",
    "Hypervisor",
    "CloudScheduler",
    "CustomerRequest",
    "Placement",
    "AutoTuner",
    "TuningResult",
    "MetaProgram",
    "PriceQuote",
]
