"""Virtual Machine and VCore specifications.

Paper Figure 1: a VM is composed of one or more VCores; each VCore is a
set of Slices plus L2 Cache Banks.  ``VMInstance`` records a placed VM's
tiles so the hypervisor can tear it down or reconfigure it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple


@dataclass(frozen=True)
class VCoreSpec:
    """Requested shape of one VCore."""

    num_slices: int
    l2_cache_kb: float

    def __post_init__(self) -> None:
        if not 1 <= self.num_slices <= 8:
            raise ValueError("Slice count must be in [1, 8] (Equation 3)")
        if not 0 <= self.l2_cache_kb <= 8192:
            raise ValueError("L2 must be in [0, 8192] KB (Equation 3)")

    @property
    def num_banks(self) -> int:
        return int(round(self.l2_cache_kb / 64.0))


@dataclass(frozen=True)
class VMSpec:
    """Requested shape of one VM: a list of VCores plus beyond-core
    resources (DRAM/disk are priced but not micro-modelled)."""

    vcores: Tuple[VCoreSpec, ...]
    dram_gb: float = 1.7
    disk_gb: float = 160.0

    def __post_init__(self) -> None:
        if not self.vcores:
            raise ValueError("a VM needs at least one VCore")
        if self.dram_gb <= 0 or self.disk_gb < 0:
            raise ValueError("invalid beyond-core resources")

    @property
    def total_slices(self) -> int:
        return sum(vc.num_slices for vc in self.vcores)

    @property
    def total_banks(self) -> int:
        return sum(vc.num_banks for vc in self.vcores)

    @classmethod
    def uniform(cls, num_vcores: int, slices_per_vcore: int,
                cache_kb_per_vcore: float, **kwargs) -> "VMSpec":
        if num_vcores < 1:
            raise ValueError("need at least one VCore")
        vc = VCoreSpec(num_slices=slices_per_vcore,
                       l2_cache_kb=cache_kb_per_vcore)
        return cls(vcores=(vc,) * num_vcores, **kwargs)


@dataclass
class VMInstance:
    """A placed VM: its spec plus the fabric tiles of each VCore."""

    vm_id: str
    spec: VMSpec
    #: per-VCore: (slice tiles, bank tiles)
    placements: List[Tuple[List[int], List[int]]] = field(default_factory=list)

    @property
    def num_vcores(self) -> int:
        return len(self.spec.vcores)

    def all_tiles(self) -> List[int]:
        tiles: List[int] = []
        for slices, banks in self.placements:
            tiles.extend(slices)
            tiles.extend(banks)
        return tiles

    def vcore_owner_tag(self, index: int) -> str:
        return f"{self.vm_id}/vcore{index}"
