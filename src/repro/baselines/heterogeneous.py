"""Heterogeneous datacenter baseline (paper Section 5.9, Figure 17).

A datacenter is built from a *static* mix of big and small cores - in
the paper's study, big cores have 3 Slices + 256 KB L2 and small cores
1 Slice + 0 KB L2; hmmer peaks on the small core, gobmk on the big one.
As the application mix varies, different big:small ratios are optimal,
so no fixed mixture serves every workload mix - which is the argument
for the Sharing Architecture's dynamic composition.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.area.model import AreaModel
from repro.perfmodel.model import AnalyticModel


@dataclass(frozen=True)
class CoreType:
    """One fixed core design in the datacenter."""

    name: str
    cache_kb: float
    slices: int

    def area(self, area_model: AreaModel) -> float:
        return area_model.vcore_area(self.cache_kb, self.slices,
                                     include_uncore=True)


#: Paper Section 5.9's two design points.
BIG_CORE = CoreType(name="big", cache_kb=256.0, slices=3)
SMALL_CORE = CoreType(name="small", cache_kb=0.0, slices=1)


@dataclass(frozen=True)
class MixPoint:
    """Outcome of one (core ratio, application ratio) evaluation."""

    big_core_fraction: float
    app_a_fraction: float
    utility_per_area: float
    assignment: Tuple[Tuple[str, str], ...]  # (app, core type) pairs


class HeterogeneousDatacenter:
    """A fixed population of big/small cores serving a two-app mix."""

    def __init__(self, app_a: str, app_b: str,
                 big: CoreType = BIG_CORE, small: CoreType = SMALL_CORE,
                 total_cores: int = 100,
                 model: Optional[AnalyticModel] = None,
                 area_model: Optional[AreaModel] = None):
        if total_cores < 1:
            raise ValueError("need at least one core")
        self.app_a = app_a
        self.app_b = app_b
        self.big = big
        self.small = small
        self.total_cores = total_cores
        self.model = model or AnalyticModel()
        self.area_model = area_model or AreaModel()

    def _perf(self, app: str, core: CoreType) -> float:
        return self.model.performance(app, core.cache_kb, core.slices)

    def evaluate(self, big_fraction: float, app_a_fraction: float) -> MixPoint:
        """Throughput-per-area of one core mix serving one app mix.

        Jobs are assigned to core types greedily by performance gain, the
        best static scheduler a provider could run.
        """
        if not 0 <= big_fraction <= 1 or not 0 <= app_a_fraction <= 1:
            raise ValueError("fractions must be in [0, 1]")
        n_big = round(self.total_cores * big_fraction)
        n_small = self.total_cores - n_big
        n_a = round(self.total_cores * app_a_fraction)
        n_b = self.total_cores - n_a

        # Assign the app with the larger big-core *advantage* to big cores
        # first; the remainder spills onto the other type.
        adv_a = self._perf(self.app_a, self.big) / max(
            self._perf(self.app_a, self.small), 1e-12
        )
        adv_b = self._perf(self.app_b, self.big) / max(
            self._perf(self.app_b, self.small), 1e-12
        )
        first, n_first, second, n_second = (
            (self.app_a, n_a, self.app_b, n_b)
            if adv_a >= adv_b
            else (self.app_b, n_b, self.app_a, n_a)
        )

        assignment: List[Tuple[str, str]] = []
        total_perf = 0.0
        big_left, small_left = n_big, n_small
        for app, count in ((first, n_first), (second, n_second)):
            on_big = min(count, big_left)
            big_left -= on_big
            on_small = min(count - on_big, small_left)
            small_left -= on_small
            total_perf += on_big * self._perf(app, self.big)
            total_perf += on_small * self._perf(app, self.small)
            if on_big:
                assignment.append((app, self.big.name))
            if on_small:
                assignment.append((app, self.small.name))

        total_area = (n_big * self.big.area(self.area_model)
                      + n_small * self.small.area(self.area_model))
        return MixPoint(
            big_core_fraction=big_fraction,
            app_a_fraction=app_a_fraction,
            utility_per_area=total_perf / total_area if total_area else 0.0,
            assignment=tuple(assignment),
        )

    def sweep(self, big_fractions: Sequence[float],
              app_fractions: Sequence[float]) -> Dict[float, List[MixPoint]]:
        """Figure 17: utility/area surfaces over core and app ratios."""
        return {
            app_frac: [
                self.evaluate(big_frac, app_frac)
                for big_frac in big_fractions
            ]
            for app_frac in app_fractions
        }

    def optimal_big_fraction(self, app_a_fraction: float,
                             big_fractions: Sequence[float]) -> float:
        """The best core mix for one application mix."""
        points = [
            self.evaluate(bf, app_a_fraction) for bf in big_fractions
        ]
        best = max(points, key=lambda p: p.utility_per_area)
        return best.big_core_fraction
