"""Comparison baselines.

The paper evaluates the Sharing Architecture against (a) the best static
fixed multicore (Figure 15), (b) a heterogeneous multicore tuned per
utility function (Figure 16), and (c) a datacenter built from a static
mix of big and small cores (Figure 17, following Guevara et al. [18]).
"""

from repro.baselines.static import StaticFixedArchitecture
from repro.baselines.heterogeneous import (
    CoreType,
    HeterogeneousDatacenter,
    MixPoint,
    BIG_CORE,
    SMALL_CORE,
)

__all__ = [
    "StaticFixedArchitecture",
    "CoreType",
    "HeterogeneousDatacenter",
    "MixPoint",
    "BIG_CORE",
    "SMALL_CORE",
]
