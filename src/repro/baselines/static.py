"""Static fixed multicore baseline.

Today's IaaS substrate: every core has the same, fabrication-time-fixed
micro-architecture.  Expressed in Sharing Architecture terms, it is a
single ``(cache_kb, slices)`` point that every customer must use.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro.economics.market import MARKET2, Market
from repro.economics.optimizer import UtilityOptimizer
from repro.economics.utility import UtilityFunction
from repro.perfmodel.model import AnalyticModel


@dataclass(frozen=True)
class StaticFixedArchitecture:
    """One frozen core configuration offered to all customers."""

    cache_kb: float
    slices: int
    name: str = "static-fixed"

    def __post_init__(self) -> None:
        if self.cache_kb < 0 or not 1 <= self.slices <= 8:
            raise ValueError("invalid static configuration")

    def utility_for(self, benchmark: str, utility: UtilityFunction,
                    market: Market = MARKET2,
                    optimizer: Optional[UtilityOptimizer] = None) -> float:
        """Utility a customer obtains when forced onto this core."""
        optimizer = optimizer or UtilityOptimizer()
        return optimizer.utility_at(
            benchmark, utility, market, self.cache_kb, self.slices
        )

    @classmethod
    def best_across(cls, benchmarks: Sequence[str],
                    utilities: Sequence[UtilityFunction],
                    market: Market = MARKET2,
                    optimizer: Optional[UtilityOptimizer] = None
                    ) -> "StaticFixedArchitecture":
        """The GME-maximising single configuration (Figure 15 reference)."""
        optimizer = optimizer or UtilityOptimizer()
        best_cfg: Optional[Tuple[float, int]] = None
        best_score = -math.inf
        for cache_kb in optimizer.cache_grid:
            for slices in optimizer.slice_grid:
                utils = [
                    optimizer.utility_at(b, u, market, cache_kb, slices)
                    for b in benchmarks
                    for u in utilities
                ]
                if any(v <= 0 for v in utils):
                    continue
                score = sum(math.log(v) for v in utils) / len(utils)
                if score > best_score:
                    best_score = score
                    best_cfg = (cache_kb, slices)
        assert best_cfg is not None
        return cls(cache_kb=best_cfg[0], slices=best_cfg[1],
                   name="best-static-fixed")
