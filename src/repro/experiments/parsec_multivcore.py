"""PARSEC multi-VCore experiment (paper Sections 3.5 and 5.3).

"For PARSEC, benchmarks use four threads on four equally configured
VCores which share an L2 Cache."  This experiment runs the three PARSEC
workloads through the multi-VCore simulator with the MSI directory at
the coherence point between L1 and L2, and reports the coherence cost of
data sharing - the inter-VCore path that single-thread runs never
exercise.
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.core.multivcore import MultiVCoreSimulator
from repro.trace.profiles import parsec_benchmarks


def run(benchmarks: Sequence[str] = (),
        num_vcores: int = 4,
        slices_per_vcore: int = 2,
        l2_cache_kb: float = 512.0,
        trace_length: int = 800,
        seed: int = 1) -> Dict[str, Dict[str, float]]:
    """Per-benchmark multi-VCore results with and without sharing."""
    benchmarks = list(benchmarks) or parsec_benchmarks()
    results: Dict[str, Dict[str, float]] = {}
    for bench in benchmarks:
        shared = MultiVCoreSimulator(
            bench, num_vcores=num_vcores,
            slices_per_vcore=slices_per_vcore, l2_cache_kb=l2_cache_kb,
            trace_length=trace_length, seed=seed, shared_fraction=0.35,
        ).run()
        private = MultiVCoreSimulator(
            bench, num_vcores=num_vcores,
            slices_per_vcore=slices_per_vcore, l2_cache_kb=l2_cache_kb,
            trace_length=trace_length, seed=seed, shared_fraction=0.0,
        ).run()
        results[bench] = {
            "vm_cycles_shared": shared.vm_cycles,
            "vm_cycles_private": private.vm_cycles,
            "aggregate_ipc": shared.aggregate_ipc,
            "invalidations": shared.directory_invalidations,
            "downgrades": shared.directory_downgrades,
            "coherence_overhead": (
                shared.vm_cycles / private.vm_cycles - 1.0
                if private.vm_cycles else 0.0
            ),
        }
    return results


def main() -> None:
    results = run()
    print("PARSEC on 4 VCores sharing an L2 (MSI directory at L1/L2)")
    print("benchmark   agg-IPC  inval  downgr  coherence-overhead")
    for bench, row in results.items():
        print(f"{bench:11} {row['aggregate_ipc']:7.2f} "
              f"{row['invalidations']:6.0f} {row['downgrades']:7.0f} "
              f"{row['coherence_overhead'] * 100:8.2f}%")


if __name__ == "__main__":
    main()
