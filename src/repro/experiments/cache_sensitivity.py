"""Figure 13: performance scaling with cache size.

L2 swept from 0 KB to 8 MB on a fixed 2-Slice VCore, normalised to the
no-L2 point.  Reproduces the paper's observations: omnetpp is extremely
cache sensitive, astar/libquantum/gobmk are insensitive, and performance
can *decrease* with more cache because distant banks add latency.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.core.simulator import simulate
from repro.experiments.base import ExperimentResult
from repro.perfmodel.model import AnalyticModel, CACHE_GRID_KB
from repro.trace.generator import make_workload
from repro.trace.profiles import all_benchmarks

NAME = "cache_sensitivity"
FIXED_SLICES = 2


@dataclass(frozen=True)
class CacheSensitivityResult(ExperimentResult):
    """Normalised performance per cache size, per benchmark."""

    cache_grid: Tuple[float, ...]
    series: Dict[str, Tuple[float, ...]]


def run(benchmarks: Optional[Sequence[str]] = None,
        cache_grid: Sequence[float] = CACHE_GRID_KB,
        model: Optional[AnalyticModel] = None,
        engine=None) -> CacheSensitivityResult:
    """Figure 13's curves as a frozen result."""
    start = time.perf_counter()
    benchmarks = list(benchmarks or all_benchmarks())
    cache_grid = tuple(float(c) for c in cache_grid)
    if model is None:
        if engine is not None:
            grid = tuple(sorted({*cache_grid, 0.0}))
            model = engine.grid_model(cache_grid=grid,
                                      slice_grid=(FIXED_SLICES,),
                                      profiles=benchmarks)
        else:
            model = AnalyticModel()
    series = {
        bench: tuple(
            model.speedup(bench, c, FIXED_SLICES,
                          baseline_cache_kb=0, baseline_slices=FIXED_SLICES)
            for c in cache_grid
        )
        for bench in benchmarks
    }
    rows = tuple(
        {"benchmark": bench, "cache_kb": c, "speedup": value}
        for bench, values in series.items()
        for c, value in zip(cache_grid, values)
    )
    return CacheSensitivityResult(
        name=NAME,
        params={"fixed_slices": FIXED_SLICES,
                "cache_grid": list(cache_grid),
                "benchmarks": benchmarks},
        rows=rows,
        elapsed=time.perf_counter() - start,
        cache_grid=cache_grid,
        series=series,
    )


def run_simulated(benchmark: str = "omnetpp",
                  cache_grid: Sequence[float] = (0, 256, 1024),
                  trace_length: int = 4000,
                  seed: int = 1) -> Dict[float, float]:
    """Cycle-level anchor points for one benchmark."""
    warmup, trace = make_workload(benchmark, trace_length, seed=seed)
    cycles = {
        c: simulate(trace, num_slices=FIXED_SLICES, l2_cache_kb=c,
                    warmup_addresses=warmup).cycles
        for c in cache_grid
    }
    base = cycles[cache_grid[0]]
    return {c: base / cyc for c, cyc in cycles.items()}


def render(result: CacheSensitivityResult) -> None:
    grid = list(result.cache_grid)
    print(f"Figure 13: normalised performance vs L2 size "
          f"({FIXED_SLICES}-Slice VCore, baseline 0 KB)")
    header = " ".join(
        f"{int(c)}K" if c < 1024 else f"{int(c / 1024)}M" for c in grid
    )
    print("benchmark   " + header)
    for bench, values in result.series.items():
        print(f"{bench:11} " + " ".join(f"{v:4.2f}" for v in values))


def main() -> None:
    render(run())


if __name__ == "__main__":
    main()
