"""Figure 13: performance scaling with cache size.

L2 swept from 0 KB to 8 MB on a fixed 2-Slice VCore, normalised to the
no-L2 point.  Reproduces the paper's observations: omnetpp is extremely
cache sensitive, astar/libquantum/gobmk are insensitive, and performance
can *decrease* with more cache because distant banks add latency.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.simulator import simulate
from repro.perfmodel.model import AnalyticModel, CACHE_GRID_KB
from repro.trace.generator import make_workload
from repro.trace.profiles import all_benchmarks

FIXED_SLICES = 2


def run(benchmarks: Optional[Sequence[str]] = None,
        cache_grid: Sequence[float] = CACHE_GRID_KB,
        model: Optional[AnalyticModel] = None) -> Dict[str, List[float]]:
    """Normalised performance per cache size, per benchmark."""
    model = model or AnalyticModel()
    benchmarks = list(benchmarks or all_benchmarks())
    return {
        bench: [
            model.speedup(bench, c, FIXED_SLICES,
                          baseline_cache_kb=0, baseline_slices=FIXED_SLICES)
            for c in cache_grid
        ]
        for bench in benchmarks
    }


def run_simulated(benchmark: str = "omnetpp",
                  cache_grid: Sequence[float] = (0, 256, 1024),
                  trace_length: int = 4000,
                  seed: int = 1) -> Dict[float, float]:
    """Cycle-level anchor points for one benchmark."""
    warmup, trace = make_workload(benchmark, trace_length, seed=seed)
    cycles = {
        c: simulate(trace, num_slices=FIXED_SLICES, l2_cache_kb=c,
                    warmup_addresses=warmup).cycles
        for c in cache_grid
    }
    base = cycles[cache_grid[0]]
    return {c: base / cyc for c, cyc in cycles.items()}


def main() -> None:
    series = run()
    grid = list(CACHE_GRID_KB)
    print(f"Figure 13: normalised performance vs L2 size "
          f"({FIXED_SLICES}-Slice VCore, baseline 0 KB)")
    header = " ".join(
        f"{int(c)}K" if c < 1024 else f"{int(c / 1024)}M" for c in grid
    )
    print("benchmark   " + header)
    for bench, values in series.items():
        print(f"{bench:11} " + " ".join(f"{v:4.2f}" for v in values))


if __name__ == "__main__":
    main()
