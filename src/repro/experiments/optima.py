"""Table 4: optimal VCore configurations for three efficiency metrics.

Exhaustive search over the Equation 3 space for every benchmark under
``performance/area``, ``performance^2/area`` and ``performance^3/area``.
The paper's headline observation - "the optimal configuration varies
greatly dependent on the efficiency metric" even within one benchmark -
is what the variance across columns reproduces.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.area.model import AreaModel
from repro.economics.efficiency import (
    STANDARD_METRICS,
    EfficiencyMetric,
    optimal_configuration,
)
from repro.economics.backend import resolve_backend
from repro.experiments.base import ExperimentResult
from repro.trace.profiles import all_benchmarks

NAME = "optima"

OptimaTable = Dict[str, Dict[str, Tuple[float, int]]]


@dataclass(frozen=True)
class OptimaResult(ExperimentResult):
    """``{metric: {benchmark: (cache_kb, slices)}}`` plus its diversity."""

    table: OptimaTable
    diversity: Dict[str, int]


def run(benchmarks: Optional[Sequence[str]] = None,
        metrics: Sequence[EfficiencyMetric] = STANDARD_METRICS,
        engine=None, backend: Optional[str] = None) -> OptimaResult:
    """Table 4 as a frozen result."""
    start = time.perf_counter()
    benchmarks = list(benchmarks or all_benchmarks())
    model = engine.grid_model(profiles=benchmarks) if engine else None
    area_model = AreaModel()
    table: OptimaTable = {
        metric.name: {
            bench: (
                (score := optimal_configuration(
                    bench, metric, model=model, area_model=area_model,
                    backend=backend,
                )).cache_kb,
                score.slices,
            )
            for bench in benchmarks
        }
        for metric in metrics
    }
    diversity = configuration_diversity(table)
    rows = tuple(
        {"metric": metric, "benchmark": bench,
         "cache_kb": cfg[0], "slices": cfg[1]}
        for metric, row in table.items()
        for bench, cfg in row.items()
    )
    return OptimaResult(
        name=NAME,
        params={"benchmarks": benchmarks,
                "metrics": [m.name for m in metrics],
                "backend": resolve_backend(backend)},
        rows=rows,
        elapsed=time.perf_counter() - start,
        table=table,
        diversity=diversity,
    )


def configuration_diversity(table: OptimaTable) -> Dict[str, int]:
    """Distinct optimal configurations per metric - the paper's
    non-uniformity argument in one number."""
    return {
        metric: len(set(row.values())) for metric, row in table.items()
    }


def render(result: OptimaResult) -> None:
    table = result.table
    print("Table 4: optimal VCore configurations (cache KB, Slices)")
    benches = list(next(iter(table.values())))
    print("benchmark   " + "  ".join(f"{m:>20}" for m in table))
    for bench in benches:
        cells = [
            f"({int(table[m][bench][0])}K,{table[m][bench][1]}s)"
            for m in table
        ]
        print(f"{bench:11} " + "  ".join(f"{c:>20}" for c in cells))
    print("distinct optima per metric:", result.diversity)


def main() -> None:
    render(run())


if __name__ == "__main__":
    main()
