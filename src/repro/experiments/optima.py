"""Table 4: optimal VCore configurations for three efficiency metrics.

Exhaustive search over the Equation 3 space for every benchmark under
``performance/area``, ``performance^2/area`` and ``performance^3/area``.
The paper's headline observation - "the optimal configuration varies
greatly dependent on the efficiency metric" even within one benchmark -
is what the variance across columns reproduces.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from repro.economics.efficiency import (
    STANDARD_METRICS,
    EfficiencyMetric,
    optimal_configuration,
)
from repro.trace.profiles import all_benchmarks


def run(benchmarks: Optional[Sequence[str]] = None,
        metrics: Sequence[EfficiencyMetric] = STANDARD_METRICS
        ) -> Dict[str, Dict[str, Tuple[float, int]]]:
    """``{metric: {benchmark: (cache_kb, slices)}}``."""
    benchmarks = list(benchmarks or all_benchmarks())
    return {
        metric.name: {
            bench: (
                (score := optimal_configuration(bench, metric)).cache_kb,
                score.slices,
            )
            for bench in benchmarks
        }
        for metric in metrics
    }


def configuration_diversity(table: Dict[str, Dict[str, Tuple[float, int]]]
                            ) -> Dict[str, int]:
    """Distinct optimal configurations per metric - the paper's
    non-uniformity argument in one number."""
    return {
        metric: len(set(row.values())) for metric, row in table.items()
    }


def main() -> None:
    table = run()
    print("Table 4: optimal VCore configurations (cache KB, Slices)")
    benches = list(next(iter(table.values())))
    print("benchmark   " + "  ".join(f"{m:>20}" for m in table))
    for bench in benches:
        cells = [
            f"({int(table[m][bench][0])}K,{table[m][bench][1]}s)"
            for m in table
        ]
        print(f"{bench:11} " + "  ".join(f"{c:>20}" for c in cells))
    diversity = configuration_diversity(table)
    print("distinct optima per metric:", diversity)


if __name__ == "__main__":
    main()
