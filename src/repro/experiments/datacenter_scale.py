"""Datacenter-scale market allocation: 10k+ tenants across Markets 1-3.

The paper sizes its economics at tens of customers; a production IaaS
market serves orders of magnitude more.  This experiment stresses the
vectorized market kernel end to end: synthetic tenants are drawn from
the Table 5 workload mix (15 benchmarks x 3 utility functions), each
tenant's optimal VCore configuration comes from the market optimizer,
and the resulting VMs are placed on racks of Sharing-Architecture
fabrics by the indexed (segment-tree) allocator.

Two properties make this tractable:

* optimal configurations are budget-independent - ``U(B) = B^(1/k) *
  U(1)`` scales every config's utility equally - so the 45 archetypes
  are optimized once per market and each tenant only needs a vcore
  count from their own budget;
* fabric placement is O(log height) per VCore, so allocation cost is
  essentially linear in tenants.

Per-phase wall times (optimize / synthesize / allocate) are recorded
through ``repro.obs`` under ``experiments.datacenter_scale`` and
reported in the result.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cloud.fabric import Fabric, TileKind
from repro.cloud.hypervisor import Hypervisor
from repro.cloud.vm import VMSpec
from repro.economics.market import STANDARD_MARKETS, Market
from repro.economics.optimizer import UtilityOptimizer
from repro.economics.utility import STANDARD_UTILITIES
from repro.experiments.base import ExperimentResult
from repro.trace.profiles import PROFILES

NAME = "datacenter_scale"

#: Rack geometry: 32 slice columns x 32 rows, 1:1 slice:bank ratio.
RACK_WIDTH = 64
RACK_HEIGHT = 32

#: Tenant budgets span small through premium customers.
BUDGET_SPAN = (12.0, 48.0)

#: Cap per-tenant replication so a single tenant cannot hog a rack.
MAX_VCORES = 8


@dataclass(frozen=True)
class Tenant:
    """One synthetic customer drawn from the workload mix."""

    name: str
    benchmark: str
    utility_name: str
    budget: float


@dataclass(frozen=True)
class DatacenterScaleResult(ExperimentResult):
    """Placement and welfare statistics per market."""

    num_tenants: int
    seed: int
    phase_seconds: Dict[str, float]
    backend: str


def _synthesize(num_tenants: int, seed: int) -> List[Tenant]:
    """The Table 5 mix: uniform over (benchmark, utility), budgets
    uniform across the span."""
    rng = random.Random(seed)
    benchmarks = sorted(PROFILES)
    lo, hi = BUDGET_SPAN
    tenants = []
    for i in range(num_tenants):
        bench = benchmarks[rng.randrange(len(benchmarks))]
        util = STANDARD_UTILITIES[rng.randrange(len(STANDARD_UTILITIES))]
        tenants.append(Tenant(
            name=f"tenant{i}",
            benchmark=bench,
            utility_name=util.name,
            budget=rng.uniform(lo, hi),
        ))
    return tenants


def run(num_tenants: int = 10_000, seed: int = 7,
        markets: Sequence[Market] = STANDARD_MARKETS,
        backend: Optional[str] = None,
        engine=None, obs=None) -> DatacenterScaleResult:
    """Allocate ``num_tenants`` synthetic tenants in every market."""
    start = time.perf_counter()
    if obs is None and engine is not None:
        obs = getattr(engine, "obs", None)
    from repro.obs import OBS_OFF

    obs = obs or OBS_OFF
    scope = obs.scope("experiments.datacenter_scale")
    t_optimize = scope.timer("optimize_s")
    t_synthesize = scope.timer("synthesize_s")
    t_allocate = scope.timer("allocate_s")
    c_placed = scope.counter("tenants_placed")
    c_rejected = scope.counter("tenants_rejected")

    optimizer = UtilityOptimizer(engine=engine, backend=backend, obs=obs)
    utilities = {u.name: u for u in STANDARD_UTILITIES}
    benchmarks = sorted(PROFILES)

    # Phase 1: optimize the 45 archetypes once per market.  Budget
    # independence (U(B) = B^(1/k) * U(1)) makes this exact for every
    # tenant budget.
    phase_t0 = time.perf_counter()
    with t_optimize:
        archetypes = optimizer.table6(benchmarks, STANDARD_UTILITIES,
                                      markets)
    optimize_s = time.perf_counter() - phase_t0

    phase_t0 = time.perf_counter()
    with t_synthesize:
        tenants = _synthesize(num_tenants, seed)
    synthesize_s = time.perf_counter() - phase_t0

    phase_t0 = time.perf_counter()
    rows = []
    with t_allocate:
        for market in markets:
            racks: List[Hypervisor] = [
                Hypervisor(Fabric(RACK_WIDTH, RACK_HEIGHT))
            ]
            placed = 0
            rejected = 0
            welfare = 0.0
            for tenant in tenants:
                choice = archetypes[(market.name, tenant.utility_name,
                                     tenant.benchmark)]
                affordable = market.vcores_affordable(
                    tenant.budget, choice.cache_kb, choice.slices
                )
                vcores = max(1, min(MAX_VCORES, int(affordable)))
                spec = VMSpec.uniform(
                    num_vcores=vcores,
                    slices_per_vcore=choice.slices,
                    cache_kb_per_vcore=choice.cache_kb,
                )
                instance = racks[-1].place(spec)
                if instance is None:
                    # Open a fresh rack rather than rescan older ones:
                    # keeps allocation strictly linear in tenants.
                    racks.append(Hypervisor(Fabric(RACK_WIDTH,
                                                   RACK_HEIGHT)))
                    instance = racks[-1].place(spec)
                if instance is None:
                    rejected += 1
                    c_rejected.inc()
                    continue
                placed += 1
                c_placed.inc()
                welfare += utilities[tenant.utility_name].value(
                    choice.performance, float(vcores)
                )
            utilization = (sum(r.fabric.utilization() for r in racks)
                           / len(racks))
            rows.append({
                "market": market.name,
                "tenants": len(tenants),
                "placed": placed,
                "rejected": rejected,
                "racks": len(racks),
                "mean_utilization": utilization,
                "total_welfare": welfare,
            })
    allocate_s = time.perf_counter() - phase_t0

    return DatacenterScaleResult(
        name=NAME,
        params={"num_tenants": num_tenants, "seed": seed,
                "markets": [m.name for m in markets],
                "backend": optimizer.backend,
                "rack": f"{RACK_WIDTH}x{RACK_HEIGHT}"},
        rows=tuple(rows),
        elapsed=time.perf_counter() - start,
        num_tenants=num_tenants,
        seed=seed,
        phase_seconds={"optimize": optimize_s,
                       "synthesize": synthesize_s,
                       "allocate": allocate_s},
        backend=optimizer.backend,
    )


def render(result: DatacenterScaleResult) -> None:
    print(f"Datacenter-scale allocation: {result.num_tenants} tenants, "
          f"backend={result.backend}")
    print("  market    placed  rejected  racks  mean-util  welfare")
    for row in result.rows:
        print(f"  {row['market']:<9} {row['placed']:>6} "
              f"{row['rejected']:>9} {row['racks']:>6} "
              f"{row['mean_utilization']:>9.2f} "
              f"{row['total_welfare']:>12.1f}")
    phases = result.phase_seconds
    print("  phases: " + "  ".join(
        f"{k}={v:.2f}s" for k, v in phases.items()
    ))
    print(f"  total: {result.elapsed:.2f}s")


def main() -> None:
    render(run())


if __name__ == "__main__":
    main()
