"""Figures 10 and 11: Slice area decomposition.

Regenerates the two published pie-chart decompositions: component shares
of one Slice without L2 (Figure 10) and of a Slice-plus-64 KB-bank tile
(Figure 11), plus the aggregate Sharing Overhead called out in each.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Optional

from repro.area.model import AreaModel
from repro.experiments.base import ExperimentResult

NAME = "area_decomposition"


@dataclass(frozen=True)
class AreaDecompositionResult(ExperimentResult):
    """Component shares (Figures 10/11) plus the Sharing Overhead."""

    fig10_without_l2: Dict[str, float]
    fig11_with_l2: Dict[str, float]
    sharing_overhead_pct: Dict[str, float]


def run(area_model: Optional[AreaModel] = None,
        engine=None) -> AreaDecompositionResult:
    """Figures 10/11 as a frozen result.

    ``engine`` is accepted for runner uniformity; this experiment is
    pure area accounting and has no performance grid to sweep.
    """
    start = time.perf_counter()
    model = area_model or AreaModel()
    fig10 = model.decomposition_without_l2()
    fig11 = model.decomposition_with_l2()
    overhead = {
        "without_l2": model.sharing_overhead_pct_without_l2(),
        "with_l2": model.sharing_overhead_pct_with_l2(),
    }
    rows = tuple(
        {"figure": figure, "component": component, "pct": pct}
        for figure, decomposition in (("fig10_without_l2", fig10),
                                      ("fig11_with_l2", fig11))
        for component, pct in decomposition.items()
    )
    return AreaDecompositionResult(
        name=NAME,
        params={},
        rows=rows,
        elapsed=time.perf_counter() - start,
        fig10_without_l2=fig10,
        fig11_with_l2=fig11,
        sharing_overhead_pct=overhead,
    )


def render(result: AreaDecompositionResult) -> None:
    for figure, decomposition in (
        ("fig10_without_l2", result.fig10_without_l2),
        ("fig11_with_l2", result.fig11_with_l2),
    ):
        print(f"== {figure} ==")
        for component, pct in sorted(
            decomposition.items(), key=lambda kv: -kv[1]
        ):
            print(f"  {component:22} {pct:5.1f}%")
    overhead = result.sharing_overhead_pct
    print(
        f"Sharing overhead: {overhead['without_l2']:.1f}% of a Slice, "
        f"{overhead['with_l2']:.1f}% of a Slice+bank tile"
    )


def main() -> None:
    render(run())


if __name__ == "__main__":
    main()
