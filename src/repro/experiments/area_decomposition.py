"""Figures 10 and 11: Slice area decomposition.

Regenerates the two published pie-chart decompositions: component shares
of one Slice without L2 (Figure 10) and of a Slice-plus-64 KB-bank tile
(Figure 11), plus the aggregate Sharing Overhead called out in each.
"""

from __future__ import annotations

from typing import Dict

from repro.area.model import AreaModel


def run(area_model: AreaModel = None) -> Dict[str, Dict[str, float]]:
    model = area_model or AreaModel()
    return {
        "fig10_without_l2": model.decomposition_without_l2(),
        "fig11_with_l2": model.decomposition_with_l2(),
        "sharing_overhead_pct": {
            "without_l2": model.sharing_overhead_pct_without_l2(),
            "with_l2": model.sharing_overhead_pct_with_l2(),
        },
    }


def main() -> None:
    result = run()
    for figure in ("fig10_without_l2", "fig11_with_l2"):
        print(f"== {figure} ==")
        for component, pct in sorted(
            result[figure].items(), key=lambda kv: -kv[1]
        ):
            print(f"  {component:22} {pct:5.1f}%")
    overhead = result["sharing_overhead_pct"]
    print(
        f"Sharing overhead: {overhead['without_l2']:.1f}% of a Slice, "
        f"{overhead['with_l2']:.1f}% of a Slice+bank tile"
    )


if __name__ == "__main__":
    main()
