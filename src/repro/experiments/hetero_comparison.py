"""Figure 16: utility gain over a heterogeneous multicore.

Same pairwise study as Figure 15, but each customer runs on the fixed
configuration tuned for their *utility function* across the benchmark
suite - the strongest static heterogeneous design in the spirit of
Guevara et al. [18].  The paper reports gains of over 3x.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.economics.comparison import MarketEfficiencyComparison, PairGain
from repro.trace.profiles import all_benchmarks


def run(benchmarks: Optional[Sequence[str]] = None,
        comparison: Optional[MarketEfficiencyComparison] = None) -> Dict:
    comparison = comparison or MarketEfficiencyComparison(
        list(benchmarks or all_benchmarks())
    )
    gains: List[PairGain] = comparison.gains_vs_heterogeneous()
    per_utility = {
        u.name: comparison.best_config_for_utility(u)
        for u in comparison.utilities
    }
    return {
        "per_utility_configs": per_utility,
        "gains": gains,
        "summary": comparison.summarize(gains),
    }


def main() -> None:
    result = run()
    print("Figure 16: utility gain vs heterogeneous multicore")
    for uname, (cache_kb, slices) in result["per_utility_configs"].items():
        print(f"  {uname} core: {int(cache_kb)} KB L2, {slices} Slices")
    summary = result["summary"]
    print(f"  pairs: {summary['pairs']}")
    print(f"  gain min/median/mean/max: "
          f"{summary['min']:.2f} / {summary['median']:.2f} / "
          f"{summary['mean']:.2f} / {summary['max']:.2f}")


if __name__ == "__main__":
    main()
