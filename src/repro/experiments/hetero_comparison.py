"""Figure 16: utility gain over a heterogeneous multicore.

Same pairwise study as Figure 15, but each customer runs on the fixed
configuration tuned for their *utility function* across the benchmark
suite - the strongest static heterogeneous design in the spirit of
Guevara et al. [18].  The paper reports gains of over 3x.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.economics.comparison import MarketEfficiencyComparison, PairGain
from repro.experiments.base import ExperimentResult
from repro.trace.profiles import all_benchmarks

NAME = "hetero_comparison"


@dataclass(frozen=True)
class HeteroComparisonResult(ExperimentResult):
    """Figure 16's pair gains against per-utility tuned cores."""

    per_utility_configs: Dict[str, Tuple[float, int]]
    gains: Tuple[PairGain, ...]
    summary: Dict[str, float]


def run(benchmarks: Optional[Sequence[str]] = None,
        comparison: Optional[MarketEfficiencyComparison] = None,
        engine=None,
        backend: Optional[str] = None) -> HeteroComparisonResult:
    """Figure 16 as a frozen result."""
    start = time.perf_counter()
    comparison = comparison or MarketEfficiencyComparison(
        list(benchmarks or all_benchmarks()), engine=engine,
        backend=backend,
    )
    gains = tuple(comparison.gains_vs_heterogeneous())
    per_utility = {
        u.name: comparison.best_config_for_utility(u)
        for u in comparison.utilities
    }
    summary = comparison.summarize(gains)
    rows = tuple(
        {"customer_a": f"{g.customer_a[0]}/{g.customer_a[1]}",
         "customer_b": f"{g.customer_b[0]}/{g.customer_b[1]}",
         "gain": g.gain}
        for g in gains
    )
    return HeteroComparisonResult(
        name=NAME,
        params={"benchmarks": list(comparison.benchmarks),
                "market": comparison.market.name,
                "backend": comparison.backend},
        rows=rows,
        elapsed=time.perf_counter() - start,
        per_utility_configs=per_utility,
        gains=gains,
        summary=summary,
    )


def render(result: HeteroComparisonResult) -> None:
    print("Figure 16: utility gain vs heterogeneous multicore")
    for uname, (cache_kb, slices) in result.per_utility_configs.items():
        print(f"  {uname} core: {int(cache_kb)} KB L2, {slices} Slices")
    summary = result.summary
    print(f"  pairs: {summary['pairs']}")
    print(f"  gain min/median/mean/max: "
          f"{summary['min']:.2f} / {summary['median']:.2f} / "
          f"{summary['mean']:.2f} / {summary['max']:.2f}")


def main() -> None:
    render(run())


if __name__ == "__main__":
    main()
