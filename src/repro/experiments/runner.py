"""Run every experiment in sequence: ``python -m repro.experiments.runner``."""

from __future__ import annotations

import sys
import time

from repro.experiments import (
    area_decomposition,
    cache_sensitivity,
    datacenter_mix,
    energy_delay,
    hetero_comparison,
    markets,
    optima,
    phases,
    scalability,
    static_comparison,
    taxonomy,
    utility_surfaces,
)

#: (name, module) in the paper's presentation order.  The SON ablation is
#: omitted here because it drives the cycle-level simulator (minutes);
#: run it directly via ``python -m repro.experiments.ablation_son``.
EXPERIMENTS = (
    ("Figures 10-11 (area)", area_decomposition),
    ("Figure 12 (scalability)", scalability),
    ("Figure 13 (cache sensitivity)", cache_sensitivity),
    ("Table 4 (efficiency optima)", optima),
    ("Figure 14 (utility surfaces)", utility_surfaces),
    ("Table 6 (markets)", markets),
    ("Figure 15 (vs static fixed)", static_comparison),
    ("Figure 16 (vs heterogeneous)", hetero_comparison),
    ("Figure 17 (datacenter mix)", datacenter_mix),
    ("Table 7 (dynamic phases)", phases),
    ("Table 8 (taxonomy)", taxonomy),
    ("Extension: Energy*Delay^n optima", energy_delay),
)


def main() -> int:
    for name, module in EXPERIMENTS:
        print("=" * 72)
        print(name)
        print("=" * 72)
        start = time.time()
        module.main()
        print(f"[{time.time() - start:.1f}s]\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
