"""Run the paper's experiments through one engine-backed harness.

``python -m repro.experiments.runner`` runs every table/figure in the
paper's presentation order.  Flags:

``--only <name>``     run one experiment (repeatable; see ``NAMES``)
``--jobs N``          worker processes for the sweep engine (default 1)
``--json <path>``     export all results + run metrics as JSON
``--no-cache``        disable the persistent result cache
``--cache-dir DIR``   cache location (default ``.repro_cache``)
``--workload-store [PATH]``  shared mmap workload store (default on,
                      under the cache dir; PATH overrides the root)
``--no-store``        disable the workload store
``--obs``             enable the instrument registry (repro.obs)
``--trace PATH``      write a Chrome trace_event JSON of the run
                      (implies ``--obs``; open in ui.perfetto.dev)
``--metrics-out PATH``  write run metrics (+ obs snapshot) as JSON
``--backend B``       economics evaluation backend: ``numpy`` (default,
                      vectorized market kernel) or ``python`` (scalar
                      reference); stamped into sweep cache keys
``--timeout S``       per-sweep wall-clock bound for pool fan-outs
``--sampling``        interval-sampled simulation for simulation sweeps
                      (``--exact``, the default, keeps golden paths
                      bit-identical)
``--profile``         wrap the run in cProfile; writes a pstats dump
                      next to ``--metrics-out`` (see README "Profiling")

Every experiment goes through the same path: ``module.run(engine=...)``
returns a frozen :class:`~repro.experiments.base.ExperimentResult`,
``module.render(result)`` prints it, and the engine records per-sweep
cache/fan-out metrics that land in the JSON export.
"""

from __future__ import annotations

import argparse
import inspect
import json
import sys
from typing import Optional, Sequence

from repro.engine import ResultCache, RunMetrics, SweepEngine
from repro.obs import OBS_OFF, Observability
from repro.experiments import (
    area_decomposition,
    cache_sensitivity,
    datacenter_mix,
    datacenter_scale,
    datacenter_stream,
    energy_delay,
    hetero_comparison,
    markets,
    optima,
    phases,
    scalability,
    static_comparison,
    taxonomy,
    utility_surfaces,
)

#: (title, module) in the paper's presentation order.  The SON ablation
#: is omitted here because it drives the cycle-level simulator (minutes);
#: run it directly via ``python -m repro.experiments.ablation_son``.
EXPERIMENTS = (
    ("Figures 10-11 (area)", area_decomposition),
    ("Figure 12 (scalability)", scalability),
    ("Figure 13 (cache sensitivity)", cache_sensitivity),
    ("Table 4 (efficiency optima)", optima),
    ("Figure 14 (utility surfaces)", utility_surfaces),
    ("Table 6 (markets)", markets),
    ("Figure 15 (vs static fixed)", static_comparison),
    ("Figure 16 (vs heterogeneous)", hetero_comparison),
    ("Figure 17 (datacenter mix)", datacenter_mix),
    ("Table 7 (dynamic phases)", phases),
    ("Table 8 (taxonomy)", taxonomy),
    ("Extension: Energy*Delay^n optima", energy_delay),
    ("Extension: datacenter-scale allocation", datacenter_scale),
    ("Extension: streaming allocation service", datacenter_stream),
)

#: ``--only`` vocabulary, in run order.
NAMES = tuple(module.NAME for _, module in EXPERIMENTS)

#: JSON export format version.
EXPORT_SCHEMA = 1


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError("must be >= 1")
    return value


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.experiments.runner",
        description="Run the paper's tables and figures",
    )
    parser.add_argument("--only", action="append", choices=NAMES,
                        metavar="NAME", default=None,
                        help="run only this experiment (repeatable); "
                             "one of: " + ", ".join(NAMES))
    parser.add_argument("--jobs", type=_positive_int, default=1, metavar="N",
                        help="sweep-engine worker processes (default 1)")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="write results + run metrics as JSON")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the persistent result cache")
    parser.add_argument("--cache-dir", metavar="DIR", default=None,
                        help="result-cache directory "
                             "(default .repro_cache, or $REPRO_CACHE_DIR)")
    parser.add_argument("--workload-store", metavar="PATH", nargs="?",
                        const=True, default=True,
                        help="shared mmap workload store: generated "
                             "traces are dumped once and mapped "
                             "read-only by every worker (default on, "
                             "under the cache dir; pass PATH for an "
                             "explicit root). Bit-identical results "
                             "either way.")
    parser.add_argument("--no-store", action="store_true",
                        help="disable the workload store (regenerate "
                             "traces per worker process)")
    parser.add_argument("--obs", action="store_true",
                        help="enable the instrument registry "
                             "(counters/histograms in --metrics-out)")
    parser.add_argument("--trace", metavar="PATH", default=None,
                        help="write a Chrome trace_event JSON of the run "
                             "(implies --obs; open in ui.perfetto.dev)")
    parser.add_argument("--metrics-out", metavar="PATH", default=None,
                        help="write run metrics (and, with --obs, the "
                             "instrument snapshot) as JSON")
    parser.add_argument("--timeout", type=float, default=None, metavar="S",
                        help="per-sweep wall-clock bound for parallel "
                             "fan-outs (seconds)")
    parser.add_argument("--backend", choices=("numpy", "python"),
                        default="numpy",
                        help="economics evaluation backend (default "
                             "numpy; falls back to python when numpy "
                             "is unavailable). Stamped into sweep cache "
                             "keys, so backends never alias.")
    mode = parser.add_mutually_exclusive_group()
    mode.add_argument("--sampling", action="store_true",
                      help="interval-sampled simulation for simulation "
                           "sweeps (bounded, reported IPC error)")
    mode.add_argument("--exact", action="store_true",
                      help="exact cycle-level simulation (default; "
                           "golden/bit-identity paths)")
    parser.add_argument("--profile", action="store_true",
                        help="wrap the run in cProfile and write a "
                             "pstats dump next to --metrics-out "
                             "(default runner_profile.pstats)")
    return parser


def profile_dump_path(metrics_out: Optional[str]) -> str:
    """Where ``--profile`` writes its pstats dump.

    Lands next to ``--metrics-out`` (same directory, ``.pstats``
    suffix), or in the working directory without one.
    """
    import os.path

    if metrics_out:
        base, _ = os.path.splitext(metrics_out)
        return base + ".pstats"
    return "runner_profile.pstats"


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.profile:
        import cProfile
        import pstats

        profiler = cProfile.Profile()
        profiler.enable()
        try:
            return _run(args)
        finally:
            profiler.disable()
            path = profile_dump_path(args.metrics_out)
            pstats.Stats(profiler).dump_stats(path)
            print(f"wrote {path} (inspect: python -m pstats {path}, "
                  "or snakeviz)")
    return _run(args)


def _run(args) -> int:
    cache = ResultCache(root=args.cache_dir, enabled=not args.no_cache)
    obs = (Observability(trace=args.trace is not None)
           if (args.obs or args.trace is not None) else OBS_OFF)
    sampling = None
    if args.sampling:
        from repro.sampling import DEFAULT_SAMPLING
        sampling = DEFAULT_SAMPLING
    if args.no_store:
        store = None
    elif args.workload_store is True:
        # Default placement is under the cache dir; honouring
        # --no-cache keeps that run entirely off-disk.
        store = None if args.no_cache else True
    else:
        store = args.workload_store
    engine = SweepEngine(jobs=args.jobs, cache=cache, obs=obs,
                         timeout_s=args.timeout, sampling=sampling,
                         backend=args.backend, store=store)
    if obs is not OBS_OFF:
        from repro.trace import materialize
        materialize.attach_obs(obs.scope("trace.workload_lru"))
    run_metrics = RunMetrics(engine=engine, obs=obs)

    selected = [
        (title, module)
        for title, module in EXPERIMENTS
        if args.only is None or module.NAME in args.only
    ]
    results = []
    for title, module in selected:
        print("=" * 72)
        print(title)
        print("=" * 72)
        kwargs = {"engine": engine}
        if "backend" in inspect.signature(module.run).parameters:
            kwargs["backend"] = args.backend
        with run_metrics.measure(module.NAME):
            result = module.run(**kwargs)
        module.render(result)
        results.append(result)
        print(f"[{result.elapsed:.1f}s]\n")

    if args.json:
        payload = {
            "schema": EXPORT_SCHEMA,
            "results": [r.to_dict(include_elapsed=False) for r in results],
            "metrics": run_metrics.to_dict(),
        }
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2)
        print(f"wrote {args.json}")
    if args.metrics_out:
        payload = {
            "schema": EXPORT_SCHEMA,
            "metrics": run_metrics.to_dict(),
        }
        with open(args.metrics_out, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, default=str)
        print(f"wrote {args.metrics_out}")
    if args.trace:
        obs.export_trace(args.trace, process_name="repro.experiments")
        print(f"wrote {args.trace}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
