"""The common experiment API: pure ``run()``, thin ``main()`` renderer.

Every experiment module follows one protocol:

* ``NAME`` - the runner-facing identifier (``--only <NAME>``);
* ``run(..., engine=None) -> <frozen dataclass result>`` - pure (no
  printing), returns a module-specific :class:`ExperimentResult`
  subclass; when an :class:`~repro.engine.core.SweepEngine` is passed,
  grids are sourced through it (parallel fan-out + persistent cache),
  otherwise the evaluation is plain and serial - the numbers are
  identical either way (regression-tested);
* ``render(result)`` - prints a result the way the paper presents it;
* ``main()`` - ``render(run())``, the CLI entry point.

:class:`ExperimentResult` carries the JSON-facing surface: ``name``,
``params``, ``rows`` (flat dicts, the artefact's tabular form),
``elapsed`` and ``to_json()``.  Subclasses add richer typed payloads
(series, tables, gain lists) for programmatic consumers.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, Protocol, Tuple, runtime_checkable


def _jsonable(value: Any) -> Any:
    """Best-effort JSON coercion for row/param values."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    return str(value)


@dataclass(frozen=True)
class ExperimentResult:
    """Common base: what every experiment returns from ``run()``."""

    name: str
    params: Dict[str, Any]
    rows: Tuple[Dict[str, Any], ...]
    elapsed: float

    def to_dict(self, include_elapsed: bool = True) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "name": self.name,
            "params": _jsonable(self.params),
            "rows": [_jsonable(row) for row in self.rows],
        }
        if include_elapsed:
            out["elapsed"] = self.elapsed
        return out

    def to_json(self, indent: int = 2,
                include_elapsed: bool = True) -> str:
        return json.dumps(self.to_dict(include_elapsed=include_elapsed),
                          indent=indent)


@runtime_checkable
class Experiment(Protocol):
    """Structural protocol every experiment module satisfies."""

    NAME: str

    def run(self, *args: Any, **kwargs: Any) -> ExperimentResult: ...

    def main(self) -> None: ...
