"""Ablation: operand-network channel count (paper Section 5.1).

"By conducting a sensitivity study on operand communication bandwidth,
we discovered that by adding a second operand network, performance would
improve by only 1% across our applications."

Runs the cycle-level simulator with link-contention modelling on one and
two operand-network channels and reports the improvement.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, Optional, Sequence

from repro.core.config import SimConfig
from repro.core.simulator import SharingSimulator
from repro.trace.generator import make_workload


def run(benchmarks: Sequence[str] = ("gcc", "libquantum"),
        num_slices: int = 4,
        l2_cache_kb: float = 256.0,
        trace_length: int = 3000,
        seed: int = 1) -> Dict[str, Dict[str, float]]:
    """Cycles with one vs two operand networks, contention modelled."""
    results: Dict[str, Dict[str, float]] = {}
    for bench in benchmarks:
        warmup, trace = make_workload(bench, trace_length, seed=seed)
        cycles = {}
        for channels in (1, 2):
            config = SimConfig(
                model_contention=True,
                operand_network_channels=channels,
            ).with_vcore(num_slices=num_slices, l2_cache_kb=l2_cache_kb)
            sim = SharingSimulator(trace, config, warmup_addresses=warmup)
            cycles[channels] = sim.run().cycles
        improvement = cycles[1] / cycles[2] - 1.0
        results[bench] = {
            "cycles_1net": cycles[1],
            "cycles_2net": cycles[2],
            "improvement": improvement,
        }
    return results


def main() -> None:
    results = run()
    print("Ablation: second operand network (paper: ~1% improvement)")
    for bench, row in results.items():
        print(f"  {bench:11} 1-net {row['cycles_1net']:.0f} cyc, "
              f"2-net {row['cycles_2net']:.0f} cyc, "
              f"improvement {row['improvement'] * 100:.2f}%")


if __name__ == "__main__":
    main()
