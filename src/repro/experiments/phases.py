"""Table 7: optimal VCore configurations for gcc's 10 phases.

Per-phase optimal configurations under the three efficiency metrics, the
best static configuration, and the dynamic-over-static gain net of
reconfiguration costs (10 000 cycles on a cache change, 500 cycles on a
Slice-only change).  The paper reports gains of 9.1% / 15.1% / 19.4%.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.economics.efficiency import STANDARD_METRICS, EfficiencyMetric
from repro.economics.phases_analysis import PhaseScheduleResult, analyze_phases
from repro.trace.phases import PhasedProfile, gcc_phases


def run(phased: Optional[PhasedProfile] = None,
        metrics: Sequence[EfficiencyMetric] = STANDARD_METRICS
        ) -> Dict[str, PhaseScheduleResult]:
    phased = phased or gcc_phases()
    return {
        metric.name: analyze_phases(phased, metric) for metric in metrics
    }


def main() -> None:
    results = run()
    print("Table 7: gcc dynamic phases (10 phases)")
    for name, result in results.items():
        configs = " ".join(
            f"({int(c)}K,{s})" for c, s in result.per_phase_configs
        )
        print(f"== {name} ==")
        print(f"  per-phase optima: {configs}")
        static_c, static_s = result.static_config
        print(f"  best static: ({int(static_c)} KB, {static_s} Slices)")
        print(f"  reconfiguration cycles: {result.reconfig_cycles}")
        print(f"  dynamic/static gain: {result.gain * 100:.1f}%")


if __name__ == "__main__":
    main()
