"""Table 7: optimal VCore configurations for gcc's 10 phases.

Per-phase optimal configurations under the three efficiency metrics, the
best static configuration, and the dynamic-over-static gain net of
reconfiguration costs (10 000 cycles on a cache change, 500 cycles on a
Slice-only change).  The paper reports gains of 9.1% / 15.1% / 19.4%.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from repro.economics.efficiency import STANDARD_METRICS, EfficiencyMetric
from repro.economics.phases_analysis import PhaseScheduleResult, analyze_phases
from repro.experiments.base import ExperimentResult
from repro.trace.phases import PhasedProfile, gcc_phases

NAME = "phases"


@dataclass(frozen=True)
class PhasesResult(ExperimentResult):
    """``{metric: PhaseScheduleResult}`` for the phased benchmark."""

    schedules: Dict[str, PhaseScheduleResult]


def run(phased: Optional[PhasedProfile] = None,
        metrics: Sequence[EfficiencyMetric] = STANDARD_METRICS,
        engine=None) -> PhasesResult:
    """Table 7 as a frozen result."""
    start = time.perf_counter()
    phased = phased or gcc_phases()
    model = None
    if engine is not None:
        model = engine.grid_model(
            profiles=[phase.profile for phase in phased]
        )
    schedules = {
        metric.name: analyze_phases(phased, metric, model=model)
        for metric in metrics
    }
    rows = tuple(
        {"metric": name,
         "static_cache_kb": sched.static_config[0],
         "static_slices": sched.static_config[1],
         "reconfig_cycles": sched.reconfig_cycles,
         "gain": sched.gain}
        for name, sched in schedules.items()
    )
    return PhasesResult(
        name=NAME,
        params={"benchmark": phased.name,
                "phases": len(phased),
                "metrics": [m.name for m in metrics]},
        rows=rows,
        elapsed=time.perf_counter() - start,
        schedules=schedules,
    )


def render(result: PhasesResult) -> None:
    print(f"Table 7: {result.params['benchmark']} dynamic phases "
          f"({result.params['phases']} phases)")
    for name, sched in result.schedules.items():
        configs = " ".join(
            f"({int(c)}K,{s})" for c, s in sched.per_phase_configs
        )
        print(f"== {name} ==")
        print(f"  per-phase optima: {configs}")
        static_c, static_s = sched.static_config
        print(f"  best static: ({int(static_c)} KB, {static_s} Slices)")
        print(f"  reconfiguration cycles: {sched.reconfig_cycles}")
        print(f"  dynamic/static gain: {sched.gain * 100:.1f}%")


def main() -> None:
    render(run())


if __name__ == "__main__":
    main()
