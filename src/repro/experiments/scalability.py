"""Figure 12: scalability of VCore performance.

Performance for 1-8 Slices per VCore, normalised to one Slice with a
128 KB L2 (the paper's baseline).  SPEC benchmarks run single-threaded;
PARSEC benchmarks run 4 threads on 4 equally configured VCores, so the
per-VCore speedup is what varies (and is bounded by ~2, Section 5.3).

``run()`` uses the analytic model (the sweep source for the paper-shaped
curves), through the sweep engine when one is given; ``run_simulated()``
drives the cycle-level simulator on a short trace for anchor validation.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.core.simulator import simulate
from repro.experiments.base import ExperimentResult
from repro.perfmodel.model import AnalyticModel, SLICE_GRID
from repro.trace.profiles import all_benchmarks

NAME = "scalability"
BASELINE_CACHE_KB = 128.0


@dataclass(frozen=True)
class ScalabilityResult(ExperimentResult):
    """Normalised performance per Slice count, per benchmark."""

    slice_grid: Tuple[int, ...]
    series: Dict[str, Tuple[float, ...]]


def run(benchmarks: Optional[Sequence[str]] = None,
        slice_grid: Sequence[int] = SLICE_GRID,
        model: Optional[AnalyticModel] = None,
        engine=None) -> ScalabilityResult:
    """Figure 12's curves as a frozen result."""
    start = time.perf_counter()
    benchmarks = list(benchmarks or all_benchmarks())
    slice_grid = tuple(int(s) for s in slice_grid)
    if model is None:
        if engine is not None:
            grid = tuple(sorted({*slice_grid, 1}))
            model = engine.grid_model(cache_grid=(BASELINE_CACHE_KB,),
                                      slice_grid=grid,
                                      profiles=benchmarks)
        else:
            model = AnalyticModel()
    series = {
        bench: tuple(
            model.speedup(bench, BASELINE_CACHE_KB, s,
                          baseline_cache_kb=BASELINE_CACHE_KB,
                          baseline_slices=1)
            for s in slice_grid
        )
        for bench in benchmarks
    }
    rows = tuple(
        {"benchmark": bench, "slices": s, "speedup": value}
        for bench, values in series.items()
        for s, value in zip(slice_grid, values)
    )
    return ScalabilityResult(
        name=NAME,
        params={"baseline_cache_kb": BASELINE_CACHE_KB,
                "slice_grid": list(slice_grid),
                "benchmarks": benchmarks},
        rows=rows,
        elapsed=time.perf_counter() - start,
        slice_grid=slice_grid,
        series=series,
    )


def run_simulated(benchmark: str = "gcc",
                  slice_grid: Sequence[int] = (1, 2, 4, 8),
                  trace_length: int = 4000,
                  seed: int = 1,
                  sampling=None,
                  engine=None,
                  backend: str = "python") -> Dict[int, float]:
    """Cycle-level anchor points for one benchmark.

    ``sampling`` (a :class:`~repro.sampling.SamplingConfig`) switches
    the sweep to interval-sampled simulation; ``engine`` routes the
    points through a :class:`~repro.engine.SweepEngine` (cached,
    fanned out), in which case the engine's own ``sampling`` setting
    applies unless overridden here.  ``backend="batched"`` advances the
    whole Slice grid in one structure-of-arrays pass (bit-identical
    points, one trace materialization instead of ``len(slice_grid)``).
    """
    slice_grid = tuple(int(s) for s in slice_grid)
    if engine is not None:
        if sampling is not None and engine.sampling is None:
            engine.sampling = sampling
        sim_config = None
        if backend != "python":
            from repro.core.config import SimConfig
            sim_config = SimConfig(backend=backend)
        sweep = engine.simulation_map(
            [benchmark], cache_grid=(BASELINE_CACHE_KB,),
            slice_grid=slice_grid, trace_length=trace_length,
            trace_seed=seed, sim_config=sim_config)
        grid = sweep.grid(benchmark)
        ipcs = {s: grid[(BASELINE_CACHE_KB, s)] for s in slice_grid}
        base = ipcs[slice_grid[0]]
        return {s: ipc / base for s, ipc in ipcs.items()}
    from repro.trace.materialize import get_workload
    warmup, trace = get_workload(benchmark, trace_length, seed)
    if backend == "batched":
        from repro.core.batched import BatchedSimulator

        sim = BatchedSimulator(
            trace, [(s, BASELINE_CACHE_KB) for s in slice_grid],
            warmup_addresses=[warmup])
        if sampling is not None:
            results = sim.run_sampled(sampling)
            base = results[0].ipc
            return {s: r.ipc / base
                    for s, r in zip(slice_grid, results)}
        results = sim.run()
        base = results[0].stats.cycles
        return {s: base / r.stats.cycles
                for s, r in zip(slice_grid, results)}
    if sampling is not None:
        from repro.sampling import simulate_sampled
        results = {
            s: simulate_sampled(trace, num_slices=s,
                                l2_cache_kb=BASELINE_CACHE_KB,
                                sampling=sampling,
                                warmup_addresses=warmup)
            for s in slice_grid
        }
        base = results[slice_grid[0]].ipc
        return {s: r.ipc / base for s, r in results.items()}
    cycles = {
        s: simulate(trace, num_slices=s, l2_cache_kb=BASELINE_CACHE_KB,
                    warmup_addresses=warmup).cycles
        for s in slice_grid
    }
    base = cycles[slice_grid[0]]
    return {s: base / c for s, c in cycles.items()}


def render(result: ScalabilityResult) -> None:
    grid = list(result.slice_grid)
    print("Figure 12: normalised performance vs Slice count "
          f"(baseline: 1 Slice, {BASELINE_CACHE_KB:.0f} KB)")
    print("benchmark   " + " ".join(f"s={s}" for s in grid))
    for bench, values in result.series.items():
        print(f"{bench:11} " + " ".join(f"{v:4.2f}" for v in values))


def main() -> None:
    render(run())


if __name__ == "__main__":
    main()
