"""Figure 12: scalability of VCore performance.

Performance for 1-8 Slices per VCore, normalised to one Slice with a
128 KB L2 (the paper's baseline).  SPEC benchmarks run single-threaded;
PARSEC benchmarks run 4 threads on 4 equally configured VCores, so the
per-VCore speedup is what varies (and is bounded by ~2, Section 5.3).

``run()`` uses the analytic model (the sweep source for the paper-shaped
curves); ``run_simulated()`` drives the cycle-level simulator on a short
trace for anchor validation.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.simulator import simulate
from repro.perfmodel.model import AnalyticModel, SLICE_GRID
from repro.trace.generator import make_workload
from repro.trace.profiles import all_benchmarks

BASELINE_CACHE_KB = 128.0


def run(benchmarks: Optional[Sequence[str]] = None,
        slice_grid: Sequence[int] = SLICE_GRID,
        model: Optional[AnalyticModel] = None) -> Dict[str, List[float]]:
    """Normalised performance per Slice count, per benchmark."""
    model = model or AnalyticModel()
    benchmarks = list(benchmarks or all_benchmarks())
    return {
        bench: [
            model.speedup(bench, BASELINE_CACHE_KB, s,
                          baseline_cache_kb=BASELINE_CACHE_KB,
                          baseline_slices=1)
            for s in slice_grid
        ]
        for bench in benchmarks
    }


def run_simulated(benchmark: str = "gcc",
                  slice_grid: Sequence[int] = (1, 2, 4, 8),
                  trace_length: int = 4000,
                  seed: int = 1) -> Dict[int, float]:
    """Cycle-level anchor points for one benchmark."""
    warmup, trace = make_workload(benchmark, trace_length, seed=seed)
    cycles = {
        s: simulate(trace, num_slices=s, l2_cache_kb=BASELINE_CACHE_KB,
                    warmup_addresses=warmup).cycles
        for s in slice_grid
    }
    base = cycles[slice_grid[0]]
    return {s: base / c for s, c in cycles.items()}


def main() -> None:
    series = run()
    grid = list(SLICE_GRID)
    print("Figure 12: normalised performance vs Slice count "
          f"(baseline: 1 Slice, {BASELINE_CACHE_KB:.0f} KB)")
    print("benchmark   " + " ".join(f"s={s}" for s in grid))
    for bench, values in series.items():
        print(f"{bench:11} " + " ".join(f"{v:4.2f}" for v in values))


if __name__ == "__main__":
    main()
