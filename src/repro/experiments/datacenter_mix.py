"""Figure 17: datacenter heterogeneity study.

The big/small core ratio is swept against the hmmer/gobmk application
ratio.  The paper's conclusion: "depending on application mix, different
ratios of big and small cores are required for optimal performance/area
efficiency.  A fixed mixture of big and small cores therefore cannot
always optimally service heterogeneous workloads in the cloud."
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.baselines.heterogeneous import (
    BIG_CORE,
    SMALL_CORE,
    HeterogeneousDatacenter,
    MixPoint,
)
from repro.experiments.base import ExperimentResult

NAME = "datacenter_mix"

DEFAULT_BIG_FRACTIONS = tuple(i / 10 for i in range(11))
DEFAULT_APP_FRACTIONS = (0.0, 0.25, 0.5, 0.75, 1.0)


@dataclass(frozen=True)
class DatacenterMixResult(ExperimentResult):
    """Figure 17's surfaces and per-app-mix optimal core ratios."""

    surfaces: Dict[float, Tuple[MixPoint, ...]]
    optimal_big_fraction: Dict[float, float]
    apps: Tuple[str, str]


def run(app_a: str = "hmmer", app_b: str = "gobmk",
        big_fractions: Sequence[float] = DEFAULT_BIG_FRACTIONS,
        app_fractions: Sequence[float] = DEFAULT_APP_FRACTIONS,
        datacenter: Optional[HeterogeneousDatacenter] = None,
        engine=None) -> DatacenterMixResult:
    """Figure 17 as a frozen result."""
    start = time.perf_counter()
    if datacenter is None:
        model = None
        if engine is not None:
            grids = sorted({BIG_CORE.cache_kb, SMALL_CORE.cache_kb})
            slices = sorted({BIG_CORE.slices, SMALL_CORE.slices})
            model = engine.grid_model(cache_grid=tuple(grids),
                                     slice_grid=tuple(slices),
                                     profiles=[app_a, app_b])
        datacenter = HeterogeneousDatacenter(app_a=app_a, app_b=app_b,
                                             model=model)
    surfaces = {
        app_frac: tuple(points)
        for app_frac, points in datacenter.sweep(
            big_fractions, app_fractions
        ).items()
    }
    optima = {
        app_frac: datacenter.optimal_big_fraction(app_frac, big_fractions)
        for app_frac in app_fractions
    }
    rows = tuple(
        {"app_a_fraction": app_frac, "optimal_big_fraction": big_frac}
        for app_frac, big_frac in optima.items()
    )
    return DatacenterMixResult(
        name=NAME,
        params={"app_a": app_a, "app_b": app_b,
                "big_fractions": list(big_fractions),
                "app_fractions": list(app_fractions)},
        rows=rows,
        elapsed=time.perf_counter() - start,
        surfaces=surfaces,
        optimal_big_fraction=optima,
        apps=(app_a, app_b),
    )


def render(result: DatacenterMixResult) -> None:
    app_a, app_b = result.apps
    print(f"Figure 17: big/small core mix serving {app_a}/{app_b}")
    print(f"  ({app_a} fraction) -> optimal big-core fraction")
    for app_frac, big_frac in result.optimal_big_fraction.items():
        print(f"  {app_frac:4.2f} -> {big_frac:4.2f}")
    distinct = len(set(result.optimal_big_fraction.values()))
    print(f"  distinct optimal mixes across app ratios: {distinct}")
    print("  (a fixed mixture cannot serve every mix optimally)"
          if distinct > 1 else "  WARNING: mixes did not diverge")


def main() -> None:
    render(run())


if __name__ == "__main__":
    main()
