"""Figure 17: datacenter heterogeneity study.

The big/small core ratio is swept against the hmmer/gobmk application
ratio.  The paper's conclusion: "depending on application mix, different
ratios of big and small cores are required for optimal performance/area
efficiency.  A fixed mixture of big and small cores therefore cannot
always optimally service heterogeneous workloads in the cloud."
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.baselines.heterogeneous import HeterogeneousDatacenter

DEFAULT_BIG_FRACTIONS = tuple(i / 10 for i in range(11))
DEFAULT_APP_FRACTIONS = (0.0, 0.25, 0.5, 0.75, 1.0)


def run(app_a: str = "hmmer", app_b: str = "gobmk",
        big_fractions: Sequence[float] = DEFAULT_BIG_FRACTIONS,
        app_fractions: Sequence[float] = DEFAULT_APP_FRACTIONS,
        datacenter: Optional[HeterogeneousDatacenter] = None) -> Dict:
    dc = datacenter or HeterogeneousDatacenter(app_a=app_a, app_b=app_b)
    surfaces = dc.sweep(big_fractions, app_fractions)
    optima = {
        app_frac: dc.optimal_big_fraction(app_frac, big_fractions)
        for app_frac in app_fractions
    }
    return {
        "surfaces": surfaces,
        "optimal_big_fraction": optima,
        "apps": (app_a, app_b),
    }


def main() -> None:
    result = run()
    app_a, app_b = result["apps"]
    print(f"Figure 17: big/small core mix serving {app_a}/{app_b}")
    print(f"  ({app_a} fraction) -> optimal big-core fraction")
    for app_frac, big_frac in result["optimal_big_fraction"].items():
        print(f"  {app_frac:4.2f} -> {big_frac:4.2f}")
    distinct = len(set(result["optimal_big_fraction"].values()))
    print(f"  distinct optimal mixes across app ratios: {distinct}")
    print("  (a fixed mixture cannot serve every mix optimally)"
          if distinct > 1 else "  WARNING: mixes did not diverge")


if __name__ == "__main__":
    main()
