"""Table 6: optimal VCore configurations in three markets.

Peak-utility configurations for every benchmark under Utility1-3 in
Market1 (Slices at 4x equal-area price), Market2 (prices equal area) and
Market3 (cache at 4x).  The paper uses these to show optimal purchases
move when demand-driven prices depart from area costs.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.economics.market import STANDARD_MARKETS, Market
from repro.economics.optimizer import UtilityOptimizer
from repro.economics.utility import STANDARD_UTILITIES, UtilityFunction
from repro.experiments.base import ExperimentResult
from repro.trace.profiles import all_benchmarks

NAME = "markets"

MarketTable = Dict[Tuple[str, str, str], Tuple[float, int]]


@dataclass(frozen=True)
class MarketsResult(ExperimentResult):
    """``{(market, utility, benchmark): (cache_kb, slices)}`` + shifts."""

    table: MarketTable
    shifts: Dict[str, float]


def run(benchmarks: Optional[Sequence[str]] = None,
        markets: Sequence[Market] = STANDARD_MARKETS,
        utilities: Sequence[UtilityFunction] = STANDARD_UTILITIES,
        optimizer: Optional[UtilityOptimizer] = None,
        engine=None, backend: Optional[str] = None) -> MarketsResult:
    """Table 6 as a frozen result."""
    start = time.perf_counter()
    optimizer = optimizer or UtilityOptimizer(engine=engine,
                                              backend=backend)
    benchmarks = list(benchmarks or all_benchmarks())
    raw = optimizer.table6(benchmarks, utilities, markets)
    table: MarketTable = {
        key: (choice.cache_kb, choice.slices)
        for key, choice in raw.items()
    }
    shifts = market_shift_summary(table)
    rows = tuple(
        {"market": m, "utility": u, "benchmark": b,
         "cache_kb": cfg[0], "slices": cfg[1]}
        for (m, u, b), cfg in table.items()
    )
    return MarketsResult(
        name=NAME,
        params={"benchmarks": benchmarks,
                "markets": [m.name for m in markets],
                "utilities": [u.name for u in utilities],
                "backend": optimizer.backend},
        rows=rows,
        elapsed=time.perf_counter() - start,
        table=table,
        shifts=shifts,
    )


def market_shift_summary(table: MarketTable) -> Dict[str, float]:
    """How far optima move between markets, per utility function.

    Returns the fraction of benchmarks whose optimal configuration
    changes between Market1 and Market3 - the paper's demand-shifts-
    allocation argument quantified.
    """
    utilities = sorted({u for _, u, _ in table})
    benches = sorted({b for _, _, b in table})
    shifts = {}
    for u in utilities:
        moved = sum(
            1
            for b in benches
            if table[("Market1", u, b)] != table[("Market3", u, b)]
        )
        shifts[u] = moved / len(benches)
    return shifts


def render(result: MarketsResult) -> None:
    table = result.table
    markets = sorted({m for m, _, _ in table})
    utilities = sorted({u for _, u, _ in table})
    benches = sorted({b for _, _, b in table})
    print("Table 6: optimal (cache KB, Slices) per market and utility")
    for market in markets:
        print(f"== {market} ==")
        print("benchmark   " + "  ".join(f"{u:>12}" for u in utilities))
        for b in benches:
            cells = [
                f"({int(table[(market, u, b)][0])}K,"
                f"{table[(market, u, b)][1]}s)"
                for u in utilities
            ]
            print(f"{b:11} " + "  ".join(f"{c:>12}" for c in cells))
    print("fraction of optima moved Market1->Market3:", result.shifts)


def main() -> None:
    render(run())


if __name__ == "__main__":
    main()
