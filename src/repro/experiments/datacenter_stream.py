"""Streaming datacenter service: a churning market driven event by event.

``datacenter_scale`` places 10k tenants in one batch; a real IaaS
provider faces a *stream* - tenants arrive, resize, and depart
continuously while prices track demand.  This experiment drives the
:class:`~repro.cloud.service.AllocationService` with a seeded synthetic
event stream (Table 5 workload mix, bounded active population) and
reports the service-level metrics the batch experiments cannot see:

* sustained events/sec and per-event latency percentiles;
* admission outcomes - profit-floor rejections vs capacity rejections;
* fabric fragmentation over time and opportunistic compactions;
* warm-started price-convergence rounds per repricing step.

The stream is sharded deterministically (seed + shard), so the engine
can fan shards across workers as ``kind="service"`` work units; the
default single shard runs in-process.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.cloud.fabric import Fabric
from repro.cloud.resilience import (
    DEFAULT_INJECT_KINDS,
    FaultInjector,
    FaultPlan,
    rng_state_from_json,
    rng_state_to_json,
)
from repro.cloud.service import AllocationService, Event, TenantRequest
from repro.cloud.shards import CoupledShards
from repro.economics.backend import resolve_backend
from repro.economics.utility import STANDARD_UTILITIES
from repro.experiments.base import ExperimentResult
from repro.experiments.datacenter_scale import (
    BUDGET_SPAN,
    MAX_VCORES,
    RACK_HEIGHT,
    RACK_WIDTH,
)
from repro.trace.profiles import PROFILES

NAME = "datacenter_stream"

#: Steady-state active population the stream churns around.
ACTIVE_TARGET = 160

#: Fraction of events that are budget resizes (when tenants are active).
RESIZE_FRACTION = 0.06

#: Below this utility-per-budget-unit the provider declines the tenant.
ADMISSION_FLOOR = 0.02

#: Metric order of the engine's ``kind="service"`` work-unit rows.
#: (Extending this tuple requires bumping ``STATS_VERSION`` below so
#: cached shard rows from older layouts can never alias.)
STREAM_METRICS = (
    "events", "admitted", "rejected_price", "rejected_capacity",
    "departures", "resizes", "reprice_rounds", "compactions",
    "active_tenants", "events_per_s", "final_fragmentation",
    "slice_price", "bank_price",
    "dead_letters", "degraded_steps", "readmitted",
    "wall_s", "latency_p50_ms", "latency_p99_ms", "price_syncs",
)

#: Stamped into every ``kind="service"`` unit's params (and therefore
#: its cache key) - bumped whenever the row layout above changes.
#: 3: wall_s + latency percentiles + price_syncs columns (coupled
#: sharding).
STATS_VERSION = 3

#: Default per-shard event interval between global price syncs in a
#: coupled group.
SYNC_EVERY = 500


@dataclass(frozen=True)
class DatacenterStreamResult(ExperimentResult):
    """Service-level stream statistics."""

    num_events: int
    seed: int
    backend: str
    events_per_s: float
    rejection_rate: float
    mean_rounds: float
    latency_p50_ms: float
    latency_p99_ms: float

    def to_dict(self, include_elapsed: bool = True):
        out = super().to_dict(include_elapsed=include_elapsed)
        out["stream"] = {
            "num_events": self.num_events,
            "seed": self.seed,
            "backend": self.backend,
            "events_per_s": self.events_per_s,
            "rejection_rate": self.rejection_rate,
            "mean_rounds": self.mean_rounds,
            "latency_p50_ms": self.latency_p50_ms,
            "latency_p99_ms": self.latency_p99_ms,
        }
        return out


def build_service(backend: Optional[str] = None,
                  admission_floor: float = ADMISSION_FLOOR,
                  obs=None, **service_kwargs) -> AllocationService:
    """One rack-backed service with the experiment's standard knobs.

    Extra keyword arguments (``degrade_on_divergence``,
    ``dead_letter_limit``, the readmit knobs, ...) pass straight
    through to :class:`~repro.cloud.service.AllocationService`.
    """
    return AllocationService(
        fabric=Fabric(RACK_WIDTH, RACK_HEIGHT),
        backend=backend,
        admission_floor=admission_floor,
        max_vcores=MAX_VCORES,
        obs=obs,
        **service_kwargs,
    )


def synthesize_event(rng: random.Random, active: List[str],
                     serial: int, active_target: int,
                     resize_fraction: float) -> Tuple[Event, int]:
    """The next stream event against the currently active tenants.

    Arrivals dominate until the population reaches ``active_target``,
    after which departures balance them; resizes are sprinkled in at
    ``resize_fraction``.  Deterministic in (rng state, active list).
    """
    benchmarks = sorted(PROFILES)
    r = rng.random()
    if active and r < resize_fraction:
        lo, hi = BUDGET_SPAN
        return Event(kind="resize", tenant_id=rng.choice(active),
                     budget=rng.uniform(lo, hi)), serial
    if active and (len(active) >= active_target or r < 0.45):
        return Event(kind="depart",
                     tenant_id=rng.choice(active)), serial
    lo, hi = BUDGET_SPAN
    serial += 1
    tenant = TenantRequest(
        name=f"t{serial}",
        benchmark=benchmarks[rng.randrange(len(benchmarks))],
        utility=STANDARD_UTILITIES[
            rng.randrange(len(STANDARD_UTILITIES))],
        budget=rng.uniform(lo, hi),
    )
    return Event(kind="submit", tenant=tenant), serial


def drive_stream(service: AllocationService, num_events: int, seed: int,
                 active_target: int = ACTIVE_TARGET,
                 resize_fraction: float = RESIZE_FRACTION,
                 reprice_every: int = 1,
                 collect_latencies: bool = False,
                 serial0: int = 0,
                 active: Optional[List[str]] = None,
                 *,
                 strict: bool = True,
                 readmit: bool = False,
                 injector: Optional[FaultInjector] = None,
                 audit_every: int = 0,
                 checkpoint_every: int = 0,
                 on_checkpoint: Optional[
                     Callable[[int, Dict[str, Any]], None]] = None,
                 rng: Optional[random.Random] = None,
                 first_index: int = 0
                 ) -> Tuple[Dict[str, float], List[float], int]:
    """Drive ``num_events`` seeded events through a live service.

    Returns ``(stats, per_event_latencies_s, serial)``; pass the
    returned ``serial`` (and keep the same ``active`` list) to chain
    segments of one continuous stream.

    Resilience knobs (all default-off; the default path is bit-equal
    to the historical loop): ``strict=False`` dead-letters rejectable
    events instead of raising, ``readmit=True`` retries
    capacity-rejected tenants with capped backoff after departures,
    ``injector`` perturbs the run with a seeded
    :class:`~repro.cloud.resilience.FaultInjector`, ``audit_every=N``
    verifies service invariants every N events, and
    ``checkpoint_every=N`` hands a resumable checkpoint dict to
    ``on_checkpoint`` every N events.  ``rng``/``first_index`` are the
    resume entry points (see :func:`resume_stream`): the loop runs
    absolute indices ``first_index..num_events``, so repricing and
    checkpoint boundaries line up with the uninterrupted run.
    """
    if rng is None:
        rng = random.Random(seed)
    if active is None:
        active = []
    serial = serial0
    count = num_events - first_index
    latencies: List[float] = []
    before = service.summary()
    t0 = time.perf_counter()
    for i in range(first_index, num_events):
        if injector is not None:
            injector.perturb(service, i)
        event, serial = synthesize_event(rng, active, serial,
                                         active_target, resize_fraction)
        t_event = time.perf_counter() if collect_latencies else 0.0
        outcome = service.process(event, i, strict=strict)
        if readmit and event.kind == "submit" and outcome is not None \
                and not outcome.admitted \
                and outcome.reason == "rejected_capacity":
            service.note_capacity_rejection(event.tenant, i)
        if reprice_every and (i + 1) % reprice_every == 0:
            service.step()
        if collect_latencies:
            latencies.append(time.perf_counter() - t_event)
        if event.kind == "submit" and outcome is not None \
                and outcome.admitted:
            active.append(event.tenant.name)
        elif event.kind == "depart" and outcome is not None:
            active.remove(event.tenant_id)
            if readmit:
                active.extend(service.readmit_pending(i))
        if audit_every and (i + 1) % audit_every == 0:
            service.verify_invariants()
        if (checkpoint_every and on_checkpoint is not None
                and (i + 1) % checkpoint_every == 0):
            on_checkpoint(i + 1, make_checkpoint(
                service, rng, active, serial, i + 1, seed,
                injector=injector))
    elapsed = time.perf_counter() - t0
    after = service.summary()
    stats = {
        "events": float(count),
        "admitted": float(after.admitted - before.admitted),
        "rejected_price": float(after.rejected_price
                                - before.rejected_price),
        "rejected_capacity": float(after.rejected_capacity
                                   - before.rejected_capacity),
        "departures": float(after.departures - before.departures),
        "resizes": float(after.resizes - before.resizes),
        "reprice_rounds": float(after.reprice_rounds
                                - before.reprice_rounds),
        "compactions": float(after.compactions - before.compactions),
        "active_tenants": float(after.active_tenants),
        "events_per_s": (count / elapsed if elapsed > 0
                         else float("inf")),
        "final_fragmentation": after.fragmentation,
        "slice_price": after.slice_price,
        "bank_price": after.bank_price,
        "dead_letters": float(after.dead_letters - before.dead_letters),
        "degraded_steps": float(after.degraded_steps
                                - before.degraded_steps),
        "readmitted": float(after.readmitted - before.readmitted),
        "wall_s": elapsed,
        "latency_p50_ms": _percentile(sorted(latencies), 0.50) * 1e3,
        "latency_p99_ms": _percentile(sorted(latencies), 0.99) * 1e3,
        "price_syncs": 0.0,
    }
    return stats, latencies, serial


def make_checkpoint(service: AllocationService, rng: random.Random,
                    active: List[str], serial: int, events_done: int,
                    seed: int,
                    injector: Optional[FaultInjector] = None
                    ) -> Dict[str, Any]:
    """A resumable stream checkpoint: full service snapshot plus the
    driver's own state (event RNG, active roster view, name serial)
    and, when a chaos run, the injector's state.  JSON-stable, so it
    can be written with
    :func:`repro.cloud.resilience.save_checkpoint` verbatim."""
    checkpoint: Dict[str, Any] = {
        "service": service.snapshot(),
        "stream": {
            "rng_state": rng_state_to_json(rng.getstate()),
            "active": list(active),
            "serial": serial,
            "events_done": events_done,
            "seed": seed,
        },
    }
    if injector is not None:
        checkpoint["injector"] = injector.snapshot()
    return checkpoint


def resume_stream(service: AllocationService,
                  checkpoint: Dict[str, Any], num_events: int,
                  **drive_kwargs
                  ) -> Tuple[Dict[str, float], List[float], int]:
    """Resume a killed run from a checkpoint, bit-equal to never dying.

    ``service`` must be a freshly built service of the same shape as
    the snapshotting one (e.g. :func:`build_service` with the same
    knobs); its state is replaced by the checkpoint's, the event RNG
    is rewound to the captured state, and the stream continues at the
    next absolute event index.  Stats cover the resumed segment only.
    """
    service.restore(checkpoint["service"])
    stream = checkpoint["stream"]
    injector = drive_kwargs.get("injector")
    if injector is not None and "injector" in checkpoint:
        injector.restore(checkpoint["injector"])
    rng = random.Random()
    rng.setstate(rng_state_from_json(stream["rng_state"]))
    return drive_stream(
        service, num_events, seed=stream["seed"],
        serial0=stream["serial"], active=list(stream["active"]),
        rng=rng, first_index=stream["events_done"], **drive_kwargs)


def build_coupled_group(couple: int,
                        sync_every: int = SYNC_EVERY,
                        backend: Optional[str] = None,
                        admission_floor: float = ADMISSION_FLOOR,
                        obs=None, **service_kwargs) -> CoupledShards:
    """``couple`` rack-backed shard services coupled through one
    global price vector.

    On the numpy backend all shards share one
    :class:`~repro.economics.tensor.MarketKernel`, so memoized
    ``P^k`` rows (the arena's row source) are built once per group.
    """
    if couple < 1:
        raise ValueError("couple must be >= 1")
    backend_name = resolve_backend(backend)
    services: List[AllocationService] = []
    kernel = None
    for _ in range(couple):
        service = build_service(backend=backend_name,
                                admission_floor=admission_floor,
                                obs=obs, kernel=kernel,
                                **service_kwargs)
        kernel = kernel or service.kernel
        services.append(service)
    return CoupledShards(services, sync_every=sync_every, obs=obs)


def drive_coupled_stream(group: CoupledShards, num_events: int,
                         seed: int,
                         active_target: int = ACTIVE_TARGET,
                         resize_fraction: float = RESIZE_FRACTION,
                         reprice_every: int = 1,
                         collect_latencies: bool = False,
                         *,
                         strict: bool = True,
                         readmit: bool = False,
                         audit_every: int = 0,
                         checkpoint_every: int = 0,
                         on_checkpoint: Optional[
                             Callable[[int, Dict[str, Any]], None]] = None,
                         resume: Optional[Dict[str, Any]] = None
                         ) -> Tuple[Dict[str, float], List[float]]:
    """Drive ``num_events`` total events through a coupled shard group.

    The total splits evenly across shards (earlier shards absorb any
    remainder); shard ``j``'s event stream is seeded
    ``seed * 1000 + j`` so per-shard populations decorrelate.  Shards
    advance in fixed round-robin order, ``group.sync_every`` events
    per shard per round, with a global price averaging/broadcast after
    every round - fully deterministic, so a coupled run is exactly
    reproducible and resumable (``resume`` takes the ``"stream"``
    section of a coupled checkpoint; the caller restores the group
    itself first, see :func:`resume_coupled_stream`).

    Returns ``(stats, pooled_latencies)`` with the same keys as
    :func:`drive_stream` plus ``price_syncs``.
    """
    n = len(group.services)
    quota = [num_events // n + (1 if j < num_events % n else 0)
             for j in range(n)]
    if resume is None:
        rngs = [random.Random(seed * 1000 + j) for j in range(n)]
        actives: List[List[str]] = [[] for _ in range(n)]
        serials = [0] * n
        done = [0] * n
    else:
        rngs = []
        for state_json in resume["rng_states"]:
            rng = random.Random()
            rng.setstate(rng_state_from_json(state_json))
            rngs.append(rng)
        actives = [list(a) for a in resume["actives"]]
        serials = [int(s) for s in resume["serials"]]
        done = [int(d) for d in resume["done"]]
    totals: Optional[Dict[str, float]] = None
    latencies: List[float] = []
    wall = 0.0
    syncs_before = group.n_syncs
    next_cp = 0
    if checkpoint_every:
        next_cp = (sum(done) // checkpoint_every + 1) * checkpoint_every
    while any(done[j] < quota[j] for j in range(n)):
        for j, service in enumerate(group.services):
            end = min(quota[j], done[j] + group.sync_every)
            if end <= done[j]:
                continue
            stats, lats, serials[j] = drive_stream(
                service, end, seed * 1000 + j,
                active_target=active_target,
                resize_fraction=resize_fraction,
                reprice_every=reprice_every,
                collect_latencies=collect_latencies,
                serial0=serials[j], active=actives[j],
                strict=strict, readmit=readmit,
                audit_every=audit_every,
                rng=rngs[j], first_index=done[j],
            )
            done[j] = end
            wall += stats["wall_s"]
            latencies.extend(lats)
            if totals is None:
                totals = {key: 0.0 for key in stats}
            for key in ("events", "admitted", "rejected_price",
                        "rejected_capacity", "departures", "resizes",
                        "reprice_rounds", "compactions",
                        "dead_letters", "degraded_steps",
                        "readmitted"):
                totals[key] += stats[key]
        group.sync()
        total_done = sum(done)
        if (checkpoint_every and on_checkpoint is not None
                and total_done >= next_cp
                and total_done < num_events):
            on_checkpoint(total_done, make_coupled_checkpoint(
                group, rngs, actives, serials, done, seed))
            next_cp = ((total_done // checkpoint_every + 1)
                       * checkpoint_every)
    assert totals is not None, "coupled stream drove zero events"
    slice_price, bank_price = group.prices()
    totals["active_tenants"] = float(sum(
        svc.summary().active_tenants for svc in group.services))
    totals["final_fragmentation"] = (
        sum(svc.fragmentation() for svc in group.services) / n)
    totals["slice_price"] = slice_price
    totals["bank_price"] = bank_price
    totals["wall_s"] = wall
    totals["events_per_s"] = (totals["events"] / wall if wall > 0
                              else float("inf"))
    ordered = sorted(latencies)
    totals["latency_p50_ms"] = _percentile(ordered, 0.50) * 1e3
    totals["latency_p99_ms"] = _percentile(ordered, 0.99) * 1e3
    totals["price_syncs"] = float(group.n_syncs - syncs_before)
    return totals, latencies


def make_coupled_checkpoint(group: CoupledShards,
                            rngs: List[random.Random],
                            actives: List[List[str]],
                            serials: List[int], done: List[int],
                            seed: int) -> Dict[str, Any]:
    """A resumable coupled-stream checkpoint: the group snapshot
    (every shard's service state + sync counter) plus the driver's
    per-shard RNGs, active views, serials, and progress."""
    return {
        "group": group.snapshot(),
        "stream": {
            "rng_states": [rng_state_to_json(r.getstate())
                           for r in rngs],
            "actives": [list(a) for a in actives],
            "serials": list(serials),
            "done": list(done),
            "seed": seed,
        },
    }


def resume_coupled_stream(group: CoupledShards,
                          checkpoint: Dict[str, Any], num_events: int,
                          **drive_kwargs
                          ) -> Tuple[Dict[str, float], List[float]]:
    """Resume a killed coupled run, bit-equal to never dying.

    ``group`` must be a freshly built group of the same shape
    (:func:`build_coupled_group` with the same knobs); its state is
    replaced by the checkpoint's and every shard stream continues at
    its next event index.  Stats cover the resumed segment only.
    """
    group.restore(checkpoint["group"])
    return drive_coupled_stream(
        group, num_events, seed=checkpoint["stream"]["seed"],
        resume=checkpoint["stream"], **drive_kwargs)


def evaluate_shard(params: Dict[str, object]) -> List[List[float]]:
    """One engine work unit: an independent stream shard, or - with
    ``couple > 1`` - a whole coupled shard group run in-process.

    ``params`` comes from the unit's frozen ``service`` field; rows are
    ``[[metric_index, 0, value], ...]`` in :data:`STREAM_METRICS`
    order, which is what :class:`~repro.engine.core.SweepResult`
    re-keys into a grid.  Coupled units decorrelate their inner shard
    streams from the unit seed (``seed * 1000 + j``), so engine-level
    shards (``seed0 + shard``) stay distinct from group-level ones.
    """
    fault_rate = float(params.get("fault_rate", 0.0))
    strict = bool(params.get("strict", fault_rate == 0.0))
    num_events = int(params["num_events"])
    couple = int(params.get("couple", 1))
    if couple > 1:
        group = build_coupled_group(
            couple,
            sync_every=int(params.get("sync_every", SYNC_EVERY)),
            backend=str(params.get("backend", "numpy")),
            admission_floor=float(params.get("admission_floor",
                                             ADMISSION_FLOOR)),
            degrade_on_divergence=not strict,
        )
        stats, _ = drive_coupled_stream(
            group, num_events, seed=int(params["seed"]),
            active_target=int(params.get("active_target",
                                         ACTIVE_TARGET)),
            resize_fraction=float(params.get("resize_fraction",
                                             RESIZE_FRACTION)),
            reprice_every=int(params.get("reprice_every", 1)),
            strict=strict,
            readmit=bool(params.get("readmit", False)),
            audit_every=int(params.get("audit_every", 0)),
        )
        return [[float(i), 0.0, float(stats[name])]
                for i, name in enumerate(STREAM_METRICS)]
    injector = None
    if fault_rate > 0.0:
        injector = FaultInjector(
            FaultPlan.seeded(num_events, fault_rate,
                             int(params.get("chaos_seed", 0)),
                             kinds=DEFAULT_INJECT_KINDS),
            seed=int(params.get("chaos_seed", 0)),
        )
    service = build_service(
        backend=str(params.get("backend", "numpy")),
        admission_floor=float(params.get("admission_floor",
                                         ADMISSION_FLOOR)),
        degrade_on_divergence=not strict,
    )
    stats, _, _ = drive_stream(
        service,
        num_events=num_events,
        seed=int(params["seed"]),
        active_target=int(params.get("active_target", ACTIVE_TARGET)),
        resize_fraction=float(params.get("resize_fraction",
                                         RESIZE_FRACTION)),
        reprice_every=int(params.get("reprice_every", 1)),
        strict=strict,
        readmit=bool(params.get("readmit", False)),
        injector=injector,
        audit_every=int(params.get("audit_every", 0)),
    )
    return [[float(i), 0.0, float(stats[name])]
            for i, name in enumerate(STREAM_METRICS)]


def _percentile(sorted_values: List[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    idx = min(len(sorted_values) - 1,
              max(0, int(round(q * (len(sorted_values) - 1)))))
    return sorted_values[idx]


def run(num_events: int = 20_000, seed: int = 11,
        backend: Optional[str] = None,
        active_target: int = ACTIVE_TARGET,
        admission_floor: float = ADMISSION_FLOOR,
        reprice_every: int = 1, segments: int = 4,
        shards: int = 1,
        couple: int = 1, sync_every: int = SYNC_EVERY,
        fault_rate: float = 0.0, chaos_seed: int = 0,
        strict: Optional[bool] = None, readmit: bool = False,
        audit_every: int = 0,
        checkpoint_every: int = 0,
        checkpoint_path: Optional[str] = None,
        engine=None, obs=None) -> DatacenterStreamResult:
    """Drive one continuous stream, reported in ``segments`` rows.

    With ``shards > 1`` and an engine, independent shards fan out as
    ``kind="service"`` work units instead (one row per shard).
    ``couple > 1`` makes each unit a *coupled group* of that many
    shard services trading against one shared global price vector,
    averaged/broadcast every ``sync_every`` events per shard - the
    1M-event configuration is ``shards * couple`` services covering
    ``num_events`` total events in one invocation.

    ``fault_rate > 0`` perturbs the stream with a
    :class:`~repro.cloud.resilience.FaultPlan` seeded by
    ``chaos_seed``; the service then runs lenient (dead letters,
    graceful degradation) unless ``strict=True`` is forced.
    ``checkpoint_every=N`` writes a resumable checkpoint JSON to
    ``checkpoint_path`` every N events (single-stream mode only).
    """
    start = time.perf_counter()
    backend_name = resolve_backend(backend)
    if obs is None and engine is not None:
        obs = getattr(engine, "obs", None)
    if strict is None:
        strict = fault_rate == 0.0

    if shards > 1 and engine is not None:
        params = {"num_events": num_events // shards, "seed": seed,
                  "backend": backend_name,
                  "admission_floor": admission_floor,
                  "active_target": active_target,
                  "reprice_every": reprice_every,
                  "stats_version": STATS_VERSION}
        if couple > 1:
            params.update({"couple": couple,
                           "sync_every": sync_every})
        if fault_rate > 0.0:
            params.update({"fault_rate": fault_rate,
                           "chaos_seed": chaos_seed,
                           "strict": strict, "readmit": readmit,
                           "audit_every": audit_every})
        sweep = engine.service_map(params, shards=shards)
        rows = []
        for shard in range(shards):
            grid = sweep.values[(f"stream/shard{shard}",)]
            stats = {name: grid[(float(i), 0)]
                     for i, name in enumerate(STREAM_METRICS)}
            stats["segment"] = f"shard{shard}"
            rows.append(stats)
        latencies: List[float] = []
    elif couple > 1:
        group = build_coupled_group(
            couple, sync_every=sync_every, backend=backend_name,
            admission_floor=admission_floor, obs=obs,
            degrade_on_divergence=not strict)
        stats, latencies = drive_coupled_stream(
            group, num_events, seed,
            active_target=active_target,
            reprice_every=reprice_every,
            collect_latencies=True,
            strict=strict, readmit=readmit,
            audit_every=audit_every)
        stats["segment"] = "coupled"
        rows = [stats]
        latencies = list(latencies)
    else:
        service = build_service(backend=backend_name,
                                admission_floor=admission_floor,
                                obs=obs,
                                degrade_on_divergence=not strict)
        injector = None
        if fault_rate > 0.0:
            injector = FaultInjector(
                FaultPlan.seeded(num_events, fault_rate, chaos_seed,
                                 kinds=DEFAULT_INJECT_KINDS),
                seed=chaos_seed,
            )
        on_checkpoint = None
        if checkpoint_every and checkpoint_path:
            from repro.cloud.resilience import save_checkpoint

            def on_checkpoint(count, payload,
                              _path=checkpoint_path):
                save_checkpoint(_path, payload)

        rows = []
        latencies = []
        active: List[str] = []
        serial = 0
        per_segment = max(1, num_events // max(1, segments))
        done = 0
        for segment in range(max(1, segments)):
            count = (num_events - per_segment * (segments - 1)
                     if segment == segments - 1 else per_segment)
            stats, lats, serial = drive_stream(
                service, done + count, seed + segment,
                active_target=active_target,
                reprice_every=reprice_every,
                collect_latencies=True,
                serial0=serial, active=active,
                strict=strict, readmit=readmit, injector=injector,
                audit_every=audit_every,
                checkpoint_every=checkpoint_every,
                on_checkpoint=on_checkpoint,
                first_index=done,
            )
            done += count
            stats["segment"] = f"q{segment + 1}"
            rows.append(stats)
            latencies.extend(lats)

    run_params = {"num_events": num_events, "seed": seed,
                  "backend": backend_name,
                  "active_target": active_target,
                  "admission_floor": admission_floor,
                  "reprice_every": reprice_every,
                  "shards": shards,
                  "couple": couple, "sync_every": sync_every,
                  "rack": f"{RACK_WIDTH}x{RACK_HEIGHT}"}
    if fault_rate > 0.0:
        run_params.update({"fault_rate": fault_rate,
                           "chaos_seed": chaos_seed,
                           "strict": strict, "readmit": readmit})

    total_events = sum(r["events"] for r in rows)
    total_elapsed = sum(r["events"] / r["events_per_s"] for r in rows
                        if r["events_per_s"] > 0)
    submitted = sum(r["admitted"] + r["rejected_price"]
                    + r["rejected_capacity"] for r in rows)
    rejected = sum(r["rejected_price"] + r["rejected_capacity"]
                   for r in rows)
    steps = sum(r["events"] for r in rows) / max(1, reprice_every)
    latencies.sort()
    return DatacenterStreamResult(
        name=NAME,
        params=run_params,
        rows=tuple(rows),
        elapsed=time.perf_counter() - start,
        num_events=int(total_events),
        seed=seed,
        backend=backend_name,
        events_per_s=(total_events / total_elapsed
                      if total_elapsed > 0 else float("inf")),
        rejection_rate=rejected / submitted if submitted else 0.0,
        mean_rounds=(sum(r["reprice_rounds"] for r in rows)
                     / steps if steps else 0.0),
        latency_p50_ms=_percentile(latencies, 0.50) * 1e3,
        latency_p99_ms=_percentile(latencies, 0.99) * 1e3,
    )


def render(result: DatacenterStreamResult) -> None:
    print(f"Streaming datacenter service: {result.num_events} events, "
          f"backend={result.backend}")
    print("  segment   events  admit  rej$  rejCap  depart  rounds"
          "  frag   ev/s")
    for row in result.rows:
        print(f"  {row['segment']:<8} {row['events']:>7.0f} "
              f"{row['admitted']:>6.0f} {row['rejected_price']:>5.0f} "
              f"{row['rejected_capacity']:>7.0f} "
              f"{row['departures']:>7.0f} "
              f"{row['reprice_rounds']:>7.0f} "
              f"{row['final_fragmentation']:>5.2f} "
              f"{row['events_per_s']:>7.0f}")
    print(f"  throughput: {result.events_per_s:.0f} events/s, "
          f"rejection rate {result.rejection_rate:.1%}, "
          f"mean {result.mean_rounds:.2f} rounds/step")
    dead = sum(row.get("dead_letters", 0.0) for row in result.rows)
    degraded = sum(row.get("degraded_steps", 0.0) for row in result.rows)
    readmitted = sum(row.get("readmitted", 0.0) for row in result.rows)
    if dead or degraded or readmitted:
        print(f"  resilience: {dead:.0f} dead-lettered, "
              f"{degraded:.0f} degraded steps, "
              f"{readmitted:.0f} re-admitted")
    syncs = sum(row.get("price_syncs", 0.0) for row in result.rows)
    if syncs:
        print(f"  coupled: {syncs:.0f} global price syncs")
    if result.latency_p99_ms:
        print(f"  latency: p50 {result.latency_p50_ms:.3f} ms, "
              f"p99 {result.latency_p99_ms:.3f} ms")
    print(f"  total: {result.elapsed:.2f}s")


def main() -> None:
    render(run())


if __name__ == "__main__":
    main()
