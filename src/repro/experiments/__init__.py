"""Experiment harness: one runner per paper table and figure.

Each module follows the :mod:`repro.experiments.base` protocol: ``NAME``,
a pure ``run(..., engine=None)`` returning a frozen
:class:`~repro.experiments.base.ExperimentResult` subclass, a
``render(result)`` printer and a thin ``main()``.  Passing a
:class:`~repro.engine.core.SweepEngine` sources grids through the
parallel, cache-backed sweep path; the numbers are identical either way.
The benchmark suite in ``benchmarks/`` wraps these runners with
pytest-benchmark so every artefact is regenerated and timed by
``pytest benchmarks/ --benchmark-only``.

Index (see DESIGN.md section 4):

=========  ==================================================
fig10/11   Slice area decomposition (with/without 64 KB L2)
fig12      VCore scalability, 1-8 Slices
fig13      cache sensitivity, 0 KB-8 MB
tab4       optimal configs for perf^k/area
fig14      utility surfaces for gcc/bzip under Utility1/2
tab6       optimal configs in Markets 1-3 x Utilities 1-3
fig15      utility gain vs best static fixed architecture
fig16      utility gain vs heterogeneous multicore
fig17      datacenter big/small core mix study
tab7       gcc dynamic phases, dyn vs static gains
tab8       related-work taxonomy
parsec     PARSEC on 4 VCores with directory coherence (§3.5, §5.3)
ablation   operand-network channel count (Section 5.1)
datacenter 10k+ tenant market allocation at scale (extension)
stream     event-driven streaming allocation service (extension)
=========  ==================================================
"""

from repro.experiments import (  # noqa: F401
    base,
    area_decomposition,
    scalability,
    cache_sensitivity,
    optima,
    utility_surfaces,
    markets,
    static_comparison,
    hetero_comparison,
    datacenter_mix,
    datacenter_scale,
    datacenter_stream,
    phases,
    taxonomy,
    parsec_multivcore,
    energy_delay,
)
