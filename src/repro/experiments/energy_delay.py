"""Extension experiment: Energy*Delay^n optimal configurations.

Paper Section 2.2 motivates its performance-preference utilities through
the energy literature: "P^2 or P^3 may be very reasonable metrics ...
these metrics have much similarity to Energy*Delay^2 and Energy*Delay^3
used in energy efficient computing research."  This experiment closes
the loop: it computes the ``E*D^n``-optimal VCore configurations from
the energy model and shows they drift with ``n`` exactly as the
``perf^k/area`` optima of Table 4 do - bigger exponents buy bigger
cores.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from repro.area.energy import EnergyModel
from repro.trace.profiles import all_benchmarks

DELAY_EXPONENTS = (1, 2, 3)


def run(benchmarks: Optional[Sequence[str]] = None,
        model: Optional[EnergyModel] = None
        ) -> Dict[int, Dict[str, Tuple[float, int]]]:
    """``{delay_exponent: {benchmark: (cache_kb, slices)}}``."""
    model = model or EnergyModel()
    benchmarks = list(benchmarks or all_benchmarks())
    return {
        n: {
            bench: model.best_config(bench, delay_exponent=n)
            for bench in benchmarks
        }
        for n in DELAY_EXPONENTS
    }


def main() -> None:
    table = run()
    benches = list(next(iter(table.values())))
    print("Energy*Delay^n optimal VCore configurations")
    print("benchmark   " + "  ".join(f"{'E*D^%d' % n:>12}" for n in table))
    for bench in benches:
        cells = [
            f"({int(table[n][bench][0])}K,{table[n][bench][1]}s)"
            for n in table
        ]
        print(f"{bench:11} " + "  ".join(f"{c:>12}" for c in cells))
    for n in DELAY_EXPONENTS:
        distinct = len(set(table[n].values()))
        print(f"E*D^{n}: {distinct} distinct optima across benchmarks")


if __name__ == "__main__":
    main()
