"""Extension experiment: Energy*Delay^n optimal configurations.

Paper Section 2.2 motivates its performance-preference utilities through
the energy literature: "P^2 or P^3 may be very reasonable metrics ...
these metrics have much similarity to Energy*Delay^2 and Energy*Delay^3
used in energy efficient computing research."  This experiment closes
the loop: it computes the ``E*D^n``-optimal VCore configurations from
the energy model and shows they drift with ``n`` exactly as the
``perf^k/area`` optima of Table 4 do - bigger exponents buy bigger
cores.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.area.energy import EnergyModel
from repro.experiments.base import ExperimentResult
from repro.trace.profiles import all_benchmarks

NAME = "energy_delay"

DELAY_EXPONENTS = (1, 2, 3)

EnergyTable = Dict[int, Dict[str, Tuple[float, int]]]


@dataclass(frozen=True)
class EnergyDelayResult(ExperimentResult):
    """``{delay_exponent: {benchmark: (cache_kb, slices)}}``."""

    table: EnergyTable


def run(benchmarks: Optional[Sequence[str]] = None,
        model: Optional[EnergyModel] = None,
        engine=None) -> EnergyDelayResult:
    """The Energy*Delay^n study as a frozen result."""
    start = time.perf_counter()
    benchmarks = list(benchmarks or all_benchmarks())
    if model is None:
        perf_model = (engine.grid_model(profiles=benchmarks)
                      if engine is not None else None)
        model = EnergyModel(perf_model=perf_model)
    table: EnergyTable = {
        n: {
            bench: model.best_config(bench, delay_exponent=n)
            for bench in benchmarks
        }
        for n in DELAY_EXPONENTS
    }
    rows = tuple(
        {"delay_exponent": n, "benchmark": bench,
         "cache_kb": cfg[0], "slices": cfg[1]}
        for n, row in table.items()
        for bench, cfg in row.items()
    )
    return EnergyDelayResult(
        name=NAME,
        params={"benchmarks": benchmarks,
                "delay_exponents": list(DELAY_EXPONENTS)},
        rows=rows,
        elapsed=time.perf_counter() - start,
        table=table,
    )


def render(result: EnergyDelayResult) -> None:
    table = result.table
    benches = list(next(iter(table.values())))
    print("Energy*Delay^n optimal VCore configurations")
    print("benchmark   " + "  ".join(f"{'E*D^%d' % n:>12}" for n in table))
    for bench in benches:
        cells = [
            f"({int(table[n][bench][0])}K,{table[n][bench][1]}s)"
            for n in table
        ]
        print(f"{bench:11} " + "  ".join(f"{c:>12}" for c in cells))
    for n in DELAY_EXPONENTS:
        distinct = len(set(table[n].values()))
        print(f"E*D^{n}: {distinct} distinct optima across benchmarks")


def main() -> None:
    render(run())


if __name__ == "__main__":
    main()
