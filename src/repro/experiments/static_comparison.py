"""Figure 15: utility gain over the best static fixed architecture.

All ~1000 pairwise mixes of (benchmark, utility) customers, each pair's
summed utility on the Sharing Architecture divided by its summed utility
on the single best static configuration.  The paper reports gains of up
to 5x.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.economics.comparison import MarketEfficiencyComparison, PairGain
from repro.trace.profiles import all_benchmarks


def run(benchmarks: Optional[Sequence[str]] = None,
        comparison: Optional[MarketEfficiencyComparison] = None) -> Dict:
    comparison = comparison or MarketEfficiencyComparison(
        list(benchmarks or all_benchmarks())
    )
    gains: List[PairGain] = comparison.gains_vs_static()
    return {
        "static_config": comparison.best_static_config(),
        "gains": gains,
        "summary": comparison.summarize(gains),
    }


def main() -> None:
    result = run()
    cache_kb, slices = result["static_config"]
    summary = result["summary"]
    print("Figure 15: utility gain vs best static fixed architecture")
    print(f"  reference config: {int(cache_kb)} KB L2, {slices} Slices")
    print(f"  pairs: {summary['pairs']}")
    print(f"  gain min/median/mean/max: "
          f"{summary['min']:.2f} / {summary['median']:.2f} / "
          f"{summary['mean']:.2f} / {summary['max']:.2f}")
    # Histogram, mirroring the paper's scatter density.
    buckets = [0] * 10
    for g in result["gains"]:
        buckets[min(9, int(g.gain))] += 1
    for i, count in enumerate(buckets):
        if count:
            print(f"  gain {i}-{i + 1}x: {'#' * max(1, count // 20)} "
                  f"({count})")


if __name__ == "__main__":
    main()
