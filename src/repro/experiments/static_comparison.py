"""Figure 15: utility gain over the best static fixed architecture.

All ~1000 pairwise mixes of (benchmark, utility) customers, each pair's
summed utility on the Sharing Architecture divided by its summed utility
on the single best static configuration.  The paper reports gains of up
to 5x.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.economics.comparison import MarketEfficiencyComparison, PairGain
from repro.experiments.base import ExperimentResult
from repro.trace.profiles import all_benchmarks

NAME = "static_comparison"


@dataclass(frozen=True)
class StaticComparisonResult(ExperimentResult):
    """Figure 15's pair gains against the best static configuration."""

    static_config: Tuple[float, int]
    gains: Tuple[PairGain, ...]
    summary: Dict[str, float]


def run(benchmarks: Optional[Sequence[str]] = None,
        comparison: Optional[MarketEfficiencyComparison] = None,
        engine=None,
        backend: Optional[str] = None) -> StaticComparisonResult:
    """Figure 15 as a frozen result."""
    start = time.perf_counter()
    comparison = comparison or MarketEfficiencyComparison(
        list(benchmarks or all_benchmarks()), engine=engine,
        backend=backend,
    )
    gains = tuple(comparison.gains_vs_static())
    summary = comparison.summarize(gains)
    rows = tuple(
        {"customer_a": f"{g.customer_a[0]}/{g.customer_a[1]}",
         "customer_b": f"{g.customer_b[0]}/{g.customer_b[1]}",
         "gain": g.gain}
        for g in gains
    )
    return StaticComparisonResult(
        name=NAME,
        params={"benchmarks": list(comparison.benchmarks),
                "market": comparison.market.name,
                "backend": comparison.backend},
        rows=rows,
        elapsed=time.perf_counter() - start,
        static_config=comparison.best_static_config(),
        gains=gains,
        summary=summary,
    )


def render(result: StaticComparisonResult) -> None:
    cache_kb, slices = result.static_config
    summary = result.summary
    print("Figure 15: utility gain vs best static fixed architecture")
    print(f"  reference config: {int(cache_kb)} KB L2, {slices} Slices")
    print(f"  pairs: {summary['pairs']}")
    print(f"  gain min/median/mean/max: "
          f"{summary['min']:.2f} / {summary['median']:.2f} / "
          f"{summary['mean']:.2f} / {summary['max']:.2f}")
    # Histogram, mirroring the paper's scatter density.
    buckets = [0] * 10
    for g in result.gains:
        buckets[min(9, int(g.gain))] += 1
    for i, count in enumerate(buckets):
        if count:
            print(f"  gain {i}-{i + 1}x: {'#' * max(1, count // 20)} "
                  f"({count})")


def main() -> None:
    render(run())


if __name__ == "__main__":
    main()
