"""Table 8: taxonomy of differences with related work.

The paper's feature comparison across nine architecture families.
Encoded as data so it can be queried and tested; "Y/N" cells (features
present in some members of a family) are ``None``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.experiments.base import ExperimentResult

NAME = "taxonomy"

#: Feature rows of Table 8.
FEATURES = (
    "scale_up_down",
    "distributed",
    "switched",
    "symmetric",
    "dynamic_ooo",
    "isa_compatible",
    "partition_l2",
    "multi_metric",
)

#: Architecture columns of Table 8.  ``None`` encodes the paper's "Y/N".
TAXONOMY: Dict[str, Dict[str, Optional[bool]]] = {
    "distributed_ilp": {
        "scale_up_down": True, "distributed": True, "switched": True,
        "symmetric": True, "dynamic_ooo": False, "isa_compatible": True,
        "partition_l2": True, "multi_metric": False,
    },
    "trips_clp": {
        "scale_up_down": True, "distributed": True, "switched": True,
        "symmetric": True, "dynamic_ooo": False, "isa_compatible": False,
        "partition_l2": True, "multi_metric": True,
    },
    "core_fusion": {
        "scale_up_down": False, "distributed": False, "switched": False,
        "symmetric": True, "dynamic_ooo": True, "isa_compatible": True,
        "partition_l2": False, "multi_metric": False,
    },
    "widget": {
        "scale_up_down": True, "distributed": False, "switched": False,
        "symmetric": True, "dynamic_ooo": False, "isa_compatible": True,
        "partition_l2": False, "multi_metric": False,
    },
    "conjoined": {
        "scale_up_down": False, "distributed": False, "switched": False,
        "symmetric": True, "dynamic_ooo": True, "isa_compatible": True,
        "partition_l2": False, "multi_metric": False,
    },
    "clustered": {
        "scale_up_down": False, "distributed": False, "switched": False,
        "symmetric": True, "dynamic_ooo": True, "isa_compatible": True,
        "partition_l2": False, "multi_metric": False,
    },
    "heterogeneous": {
        "scale_up_down": False, "distributed": False, "switched": False,
        "symmetric": False, "dynamic_ooo": None, "isa_compatible": True,
        "partition_l2": False, "multi_metric": False,
    },
    "smt_morph": {
        "scale_up_down": False, "distributed": False, "switched": False,
        "symmetric": True, "dynamic_ooo": None, "isa_compatible": True,
        "partition_l2": False, "multi_metric": False,
    },
    "sharing": {
        "scale_up_down": True, "distributed": True, "switched": True,
        "symmetric": True, "dynamic_ooo": True, "isa_compatible": True,
        "partition_l2": True, "multi_metric": True,
    },
}


@dataclass(frozen=True)
class TaxonomyResult(ExperimentResult):
    """Table 8 plus the Sharing Architecture's unique advantages."""

    table: Dict[str, Dict[str, Optional[bool]]]
    advantages: List[str]


def run(engine=None) -> TaxonomyResult:
    """Table 8 as a frozen result.

    ``engine`` is accepted for runner uniformity; the taxonomy is pure
    data and sweeps nothing.
    """
    start = time.perf_counter()
    rows = tuple(
        {"architecture": arch, **{f: cells[f] for f in FEATURES}}
        for arch, cells in TAXONOMY.items()
    )
    return TaxonomyResult(
        name=NAME,
        params={"features": list(FEATURES)},
        rows=rows,
        elapsed=time.perf_counter() - start,
        table=TAXONOMY,
        advantages=unique_advantages(),
    )


def unique_advantages(architecture: str = "sharing") -> List[str]:
    """Features this architecture has that no other column has in full."""
    ours = TAXONOMY[architecture]
    return [
        feature
        for feature in FEATURES
        if ours[feature] is True
        and all(
            other[feature] is not True
            for name, other in TAXONOMY.items()
            if name != architecture
        )
    ]


def render(result: TaxonomyResult) -> None:
    def cell(v: Optional[bool]) -> str:
        return "Y/N" if v is None else ("Y" if v else "N")

    table = result.table
    print("Table 8: taxonomy of differences with related work")
    print(f"{'feature':16}" + "".join(f"{a[:9]:>10}" for a in table))
    for feature in FEATURES:
        row = "".join(f"{cell(table[a][feature]):>10}" for a in table)
        print(f"{feature:16}" + row)
    print("\nThe Sharing Architecture is the only column answering Y to "
          "every feature.")


def main() -> None:
    render(run())


if __name__ == "__main__":
    main()
