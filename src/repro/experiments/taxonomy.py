"""Table 8: taxonomy of differences with related work.

The paper's feature comparison across nine architecture families.
Encoded as data so it can be queried and tested; "Y/N" cells (features
present in some members of a family) are ``None``.
"""

from __future__ import annotations

from typing import Dict, List, Optional

#: Feature rows of Table 8.
FEATURES = (
    "scale_up_down",
    "distributed",
    "switched",
    "symmetric",
    "dynamic_ooo",
    "isa_compatible",
    "partition_l2",
    "multi_metric",
)

#: Architecture columns of Table 8.  ``None`` encodes the paper's "Y/N".
TAXONOMY: Dict[str, Dict[str, Optional[bool]]] = {
    "distributed_ilp": {
        "scale_up_down": True, "distributed": True, "switched": True,
        "symmetric": True, "dynamic_ooo": False, "isa_compatible": True,
        "partition_l2": True, "multi_metric": False,
    },
    "trips_clp": {
        "scale_up_down": True, "distributed": True, "switched": True,
        "symmetric": True, "dynamic_ooo": False, "isa_compatible": False,
        "partition_l2": True, "multi_metric": True,
    },
    "core_fusion": {
        "scale_up_down": False, "distributed": False, "switched": False,
        "symmetric": True, "dynamic_ooo": True, "isa_compatible": True,
        "partition_l2": False, "multi_metric": False,
    },
    "widget": {
        "scale_up_down": True, "distributed": False, "switched": False,
        "symmetric": True, "dynamic_ooo": False, "isa_compatible": True,
        "partition_l2": False, "multi_metric": False,
    },
    "conjoined": {
        "scale_up_down": False, "distributed": False, "switched": False,
        "symmetric": True, "dynamic_ooo": True, "isa_compatible": True,
        "partition_l2": False, "multi_metric": False,
    },
    "clustered": {
        "scale_up_down": False, "distributed": False, "switched": False,
        "symmetric": True, "dynamic_ooo": True, "isa_compatible": True,
        "partition_l2": False, "multi_metric": False,
    },
    "heterogeneous": {
        "scale_up_down": False, "distributed": False, "switched": False,
        "symmetric": False, "dynamic_ooo": None, "isa_compatible": True,
        "partition_l2": False, "multi_metric": False,
    },
    "smt_morph": {
        "scale_up_down": False, "distributed": False, "switched": False,
        "symmetric": True, "dynamic_ooo": None, "isa_compatible": True,
        "partition_l2": False, "multi_metric": False,
    },
    "sharing": {
        "scale_up_down": True, "distributed": True, "switched": True,
        "symmetric": True, "dynamic_ooo": True, "isa_compatible": True,
        "partition_l2": True, "multi_metric": True,
    },
}


def run() -> Dict[str, Dict[str, Optional[bool]]]:
    return TAXONOMY


def unique_advantages(architecture: str = "sharing") -> List[str]:
    """Features this architecture has that no other column has in full."""
    ours = TAXONOMY[architecture]
    return [
        feature
        for feature in FEATURES
        if ours[feature] is True
        and all(
            other[feature] is not True
            for name, other in TAXONOMY.items()
            if name != architecture
        )
    ]


def main() -> None:
    def cell(v: Optional[bool]) -> str:
        return "Y/N" if v is None else ("Y" if v else "N")

    print("Table 8: taxonomy of differences with related work")
    print(f"{'feature':16}" + "".join(f"{a[:9]:>10}" for a in TAXONOMY))
    for feature in FEATURES:
        row = "".join(f"{cell(TAXONOMY[a][feature]):>10}" for a in TAXONOMY)
        print(f"{feature:16}" + row)
    print("\nThe Sharing Architecture is the only column answering Y to "
          "every feature.")


if __name__ == "__main__":
    main()
