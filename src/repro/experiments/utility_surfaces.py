"""Figure 14: utility surfaces for gcc and bzip under Utility1/Utility2.

The paper plots utility as a function of Slice count (x) and the number
of 64 KB banks on a log2 scale (y), showing that (a) changing the
utility function moves the peak drastically for the same workload, and
(b) changing the workload moves the peak for the same utility function.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.economics.market import MARKET2, Market
from repro.economics.optimizer import UtilityOptimizer
from repro.economics.utility import UTILITY1, UTILITY2, UtilityFunction
from repro.experiments.base import ExperimentResult

NAME = "utility_surfaces"

#: The paper's four panels.
PANELS: Tuple[Tuple[str, UtilityFunction], ...] = (
    ("gcc", UTILITY1),
    ("gcc", UTILITY2),
    ("bzip", UTILITY1),
    ("bzip", UTILITY2),
)

SurfaceKey = Tuple[str, str]
Surface = Dict[Tuple[float, int], float]


@dataclass(frozen=True)
class UtilitySurfacesResult(ExperimentResult):
    """Surfaces and peaks for the paper's four panels."""

    surfaces: Dict[SurfaceKey, Surface]
    peaks: Dict[SurfaceKey, Tuple[float, int]]


def run(market: Market = MARKET2,
        optimizer: Optional[UtilityOptimizer] = None,
        engine=None,
        backend: Optional[str] = None) -> UtilitySurfacesResult:
    """Figure 14 as a frozen result."""
    start = time.perf_counter()
    optimizer = optimizer or UtilityOptimizer(engine=engine,
                                              backend=backend)
    surfaces: Dict[SurfaceKey, Surface] = {}
    peaks: Dict[SurfaceKey, Tuple[float, int]] = {}
    for bench, utility in PANELS:
        surface = optimizer.utility_surface(bench, utility, market)
        surfaces[(bench, utility.name)] = surface
        peaks[(bench, utility.name)] = max(surface, key=surface.get)
    rows = tuple(
        {"benchmark": bench, "utility": uname,
         "peak_cache_kb": cfg[0], "peak_slices": cfg[1]}
        for (bench, uname), cfg in peaks.items()
    )
    return UtilitySurfacesResult(
        name=NAME,
        params={"market": market.name,
                "panels": [[b, u.name] for b, u in PANELS],
                "backend": optimizer.backend},
        rows=rows,
        elapsed=time.perf_counter() - start,
        surfaces=surfaces,
        peaks=peaks,
    )


def render(result: UtilitySurfacesResult) -> None:
    print("Figure 14: peak-utility configurations")
    for (bench, uname), (cache_kb, slices) in result.peaks.items():
        print(f"  {bench:5} {uname:9} peak at ({int(cache_kb)} KB, "
              f"{slices} Slices)")
    # Render one coarse ASCII surface as the paper renders heatmaps.
    key = ("gcc", "Utility2")
    surface = result.surfaces[key]
    slices_axis = sorted({s for _, s in surface})
    cache_axis = sorted({c for c, _ in surface})
    peak = max(surface.values())
    print(f"\n  gcc/Utility2 surface (rows: cache KB, cols: Slices; "
          "0-9 relative to peak)")
    for c in reversed(cache_axis):
        row = "".join(
            str(min(9, int(10 * surface[(c, s)] / peak)))
            for s in slices_axis
        )
        print(f"  {int(c):6} {row}")


def main() -> None:
    render(run())


if __name__ == "__main__":
    main()
